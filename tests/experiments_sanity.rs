//! Reduced-scale runs of the paper's experiments asserting the
//! qualitative results the figures and tables report. `cargo bench`
//! regenerates the full outputs; these tests keep the shapes pinned in CI.

use zombieland::energy::MachineProfile;
use zombieland::hypervisor::{Policy, SwapBackend};
use zombieland::simcore::SimDuration;
use zombieland::simulator::{simulate, PolicyKind, SimConfig};
use zombieland_bench::experiments::{self, VmGeometry};

const SCALE: f64 = 0.06; // ~430 MiB VM: fast enough for CI.

/// Table 1's two headline shapes: the micro-benchmark cliff between 40 %
/// and 50 % local, and monotonically decreasing penalties for everything.
#[test]
fn table1_shapes() {
    let rows = experiments::table1(SCALE);
    for row in &rows {
        // Penalty at 20 % local exceeds penalty at 80 % local.
        let first = row.penalties.first().unwrap().1;
        let last = row.penalties.last().unwrap().1;
        assert!(first > last, "{}: {first} > {last}", row.workload);
    }
    let micro = &rows[0];
    assert_eq!(micro.workload, "micro-bench");
    let p40 = micro.penalties[1].1;
    let p50 = micro.penalties[2].1;
    assert!(
        p40 > 500.0 && p50 < 60.0,
        "the 40->50 cliff: {p40}% -> {p50}%"
    );
}

/// Table 2's two observations: (1) RAM Ext beats Explicit SD at the same
/// split; (2) remote RAM beats local storage, even fast SSDs.
#[test]
fn table2_orderings() {
    let geo = VmGeometry::at_scale(SCALE);
    let local = geo.reserved.mul_f64(0.5);
    let re = experiments::run_ram_ext("micro-bench", geo, local, Policy::MIXED_DEFAULT);
    let esd = experiments::run_explicit_sd("micro-bench", geo, local, SwapBackend::RemoteRam);
    let lfsd = experiments::run_explicit_sd("micro-bench", geo, local, SwapBackend::LocalSsd);
    let lssd = experiments::run_explicit_sd("micro-bench", geo, local, SwapBackend::LocalHdd);
    assert!(re.exec_time <= esd.exec_time, "v1 <= v2-ESD");
    assert!(esd.exec_time < lfsd.exec_time, "remote RAM < local SSD");
    assert!(lfsd.exec_time < lssd.exec_time, "SSD < HDD");
}

/// Fig. 8's orderings: Clock faults least and costs the most per
/// eviction; FIFO is the cheapest and faults the most; Mixed is bounded
/// in between on cost.
#[test]
fn fig8_orderings() {
    let geo = VmGeometry::at_scale(SCALE);
    let local = geo.reserved.mul_f64(0.4);
    let fifo = experiments::run_ram_ext("micro-bench", geo, local, Policy::Fifo);
    let clock = experiments::run_ram_ext("micro-bench", geo, local, Policy::Clock);
    let mixed = experiments::run_ram_ext("micro-bench", geo, local, Policy::MIXED_DEFAULT);
    assert!(clock.remote_faults < fifo.remote_faults, "clock protects");
    assert!(
        mixed.remote_faults <= fifo.remote_faults,
        "mixed >= fifo quality"
    );
    assert!(
        fifo.cycles_per_eviction() < mixed.cycles_per_eviction()
            && mixed.cycles_per_eviction() < clock.cycles_per_eviction(),
        "cost ordering: {} < {} < {}",
        fifo.cycles_per_eviction(),
        mixed.cycles_per_eviction(),
        clock.cycles_per_eviction()
    );
    // And the headline: Mixed's execution beats FIFO's.
    assert!(mixed.exec_time <= fifo.exec_time);
}

/// Fig. 9: ZombieStack migration beats native pre-copy at every WSS
/// ratio, most at the smallest.
#[test]
fn fig9_zombiestack_migrates_faster() {
    let pts = experiments::figure9();
    for (pct, native, zombie) in &pts {
        assert!(zombie < native, "at {pct}%: {zombie} < {native}");
    }
    let advantage_low = pts.first().unwrap().1 / pts.first().unwrap().2;
    let advantage_high = pts.last().unwrap().1 / pts.last().unwrap().2;
    assert!(advantage_low > advantage_high, "advantage shrinks with WSS");
}

/// Fig. 10 at reduced scale: ZombieStack saves the most energy, and its
/// lead grows on the modified (memory-doubled) traces.
#[test]
fn fig10_orderings() {
    let trace = experiments::fig10_trace(120, 1, 3);
    let modified = trace.modified();
    let gap = |t: &zombieland::trace::ClusterTrace| {
        let run = |p| simulate(t, &SimConfig::new(p, MachineProfile::hp()));
        let base = run(PolicyKind::AlwaysOn);
        let neat = run(PolicyKind::Neat).savings_pct(&base);
        let zombie = run(PolicyKind::ZombieStack).savings_pct(&base);
        assert!(zombie > neat, "zombie {zombie} > neat {neat}");
        zombie - neat
    };
    assert!(
        gap(&modified) > gap(&trace),
        "gap widens under memory pressure"
    );
}

/// Table 3: the Eq. 1 derivation reproduces the paper's Sz numbers
/// exactly (12.67 % HP, 11.15 % Dell).
#[test]
fn table3_exact() {
    assert!((MachineProfile::hp().sz_fraction() - 0.1267).abs() < 1e-9);
    assert!((MachineProfile::dell().sz_fraction() - 0.1115).abs() < 1e-9);
}

/// Fig. 4: architecture ordering and rough magnitudes.
#[test]
fn fig4_ordering() {
    let [sc, ideal, micro, zombie] = experiments::figure4_data();
    assert!(ideal.total_emax < zombie.total_emax);
    assert!(zombie.total_emax < micro.total_emax);
    assert!(micro.total_emax < sc.total_emax);
    assert!((zombie.total_emax - 1.2).abs() < 0.15);
}

/// Figs. 1–3 datasets keep their motivating shapes.
#[test]
fn motivation_figures() {
    // Fig 1: actual power dominates ideal everywhere.
    let hp = MachineProfile::hp();
    for p in zombieland::energy::curve::figure1(&hp, 20) {
        assert!(p.actual_pct >= p.ideal_pct);
    }
    // Fig 2: demand ratio rises.
    assert!(zombieland::trace::aws::trend_slope() > 0.0);
    // Fig 3: capacity ratio falls below 0.4.
    assert!(zombieland::trace::generations::figure3().last().unwrap().1 < 0.4);
}

/// The suspend path printed for Fig. 6 matches the paper's function list.
#[test]
fn fig6_call_path() {
    let mut p = zombieland::acpi::Platform::sz_capable();
    let outcome = p.suspend("zom").unwrap();
    assert_eq!(
        outcome.report.call_trace,
        zombieland::acpi::ospm::SUSPEND_PATH
    );
    assert!(outcome.latency > SimDuration::from_secs(1));
}
