//! The incremental consolidation layer (DESIGN §13): `consolidate()`
//! re-keys only hosts whose load changed since the last round and walks
//! a used-ordered index with an early exit, instead of gathering and
//! sorting every active host. That is a scan restructuring, not a
//! policy change — for any shard count and thread budget the merged
//! `SimReport` must stay byte-identical, and (in debug builds) the
//! in-loop `validate()` sweep asserts the dirty-set invariants after
//! every consolidation round of every run below.

use zombieland::energy::MachineProfile;
use zombieland::simcore::with_thread_budget;
use zombieland::simulator::{simulate, PolicyKind, SimConfig, SimReport};
use zombieland_bench::experiments;

/// Consolidating policies only — AlwaysOn never runs the scan under
/// test. ZombieStack additionally exercises the mid-round `by_used`
/// edits (evacuated hosts leave the index while the candidate snapshot
/// is being consumed).
const POLICIES: [PolicyKind; 3] = [PolicyKind::Neat, PolicyKind::Oasis, PolicyKind::ZombieStack];

fn run(
    trace: &zombieland::trace::ClusterTrace,
    policy: PolicyKind,
    racks: u32,
    shards: u32,
    jobs: usize,
) -> SimReport {
    let cfg = SimConfig {
        racks,
        shards,
        ..SimConfig::new(policy, MachineProfile::hp())
    };
    with_thread_budget(jobs, || simulate(trace, &cfg))
}

fn assert_bytes_equal(a: &SimReport, b: &SimReport, what: &str) {
    assert_eq!(a, b, "{what}: report diverged");
    assert_eq!(
        a.energy.get().to_bits(),
        b.energy.get().to_bits(),
        "{what}: energy bits diverged"
    );
    for i in 0..3 {
        assert_eq!(
            a.state_seconds[i].to_bits(),
            b.state_seconds[i].to_bits(),
            "{what}: state_seconds[{i}] bits diverged"
        );
    }
}

/// Dirty-set consolidation is invariant over shards {1, 8} × jobs
/// {1, 2}: every combination reproduces the serial report bit for bit.
#[test]
fn dirty_set_consolidation_is_shard_and_job_invariant() {
    let trace = experiments::fig10_trace(160, 1, 11);
    for policy in POLICIES {
        let serial = run(&trace, policy, 8, 1, 1);
        for shards in [1u32, 8] {
            for jobs in [1usize, 2] {
                let got = run(&trace, policy, 8, shards, jobs);
                assert_bytes_equal(
                    &serial,
                    &got,
                    &format!("{policy:?} shards={shards} jobs={jobs}"),
                );
            }
        }
    }
}

/// A fleet that churns through wake/evacuate cycles (odd rack split,
/// longer horizon) keeps the lazy used-keys coherent: cooldown expiry,
/// reactivation re-filing and mid-round dirtying all hit here, with
/// debug `validate()` checking `by_used` after every round.
#[test]
fn churny_fleet_stays_coherent_across_shards() {
    let trace = experiments::fig10_trace(130, 2, 23);
    for policy in [PolicyKind::Neat, PolicyKind::ZombieStack] {
        let serial = run(&trace, policy, 7, 1, 1);
        let sharded = run(&trace, policy, 7, 8, 2);
        assert_bytes_equal(
            &serial,
            &sharded,
            &format!("{policy:?} churny 7-rack fleet"),
        );
    }
}
