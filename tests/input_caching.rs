//! Shared-input caching: heavy experiment inputs (the fig. 10 cluster
//! trace) are built once and shared by `Arc` across all runs of a grid.
//! These tests prove that sharing is invisible in the output — a grid
//! fed the memoized, shared trace produces byte-identical reports to a
//! grid whose trace is regenerated from scratch, serial or parallel.

use std::sync::Arc;

use zombieland::energy::MachineProfile;
use zombieland_bench::experiments;

/// The memoization cache returns the *same allocation* for the same
/// generating parameters, and distinct allocations for distinct ones.
#[test]
fn fig10_trace_is_memoized_by_parameters() {
    let a = experiments::fig10_trace(40, 1, 7);
    let b = experiments::fig10_trace(40, 1, 7);
    assert!(
        Arc::ptr_eq(&a, &b),
        "same (servers, days, seed) must hit the cache"
    );
    let c = experiments::fig10_trace(40, 1, 8);
    assert!(!Arc::ptr_eq(&a, &c), "a different seed must miss the cache");
}

/// The full fig. 10 grid over the shared cached trace equals the grid
/// over a freshly regenerated trace, at jobs=1 and jobs=4, down to the
/// rendered report bytes.
#[test]
fn cached_trace_grid_matches_regenerated_trace_grid() {
    let cached = experiments::fig10_trace(40, 1, 7);
    let cached_modified = cached.modified();

    // Regenerate from scratch: same parameters, brand-new allocation,
    // and a brand-new per-trace events cache.
    let fresh = experiments::generate_fig10_trace(40, 1, 7);
    let fresh_modified = fresh.modified();

    for jobs in [1, 4] {
        let shared = experiments::figure10_grid(&cached, &cached_modified, jobs);
        let regenerated = experiments::figure10_grid(&fresh, &fresh_modified, jobs);
        assert_eq!(
            shared, regenerated,
            "jobs={jobs}: shared trace changed a grid report"
        );
        assert_eq!(
            experiments::render_figure10(&shared),
            experiments::render_figure10(&regenerated),
            "jobs={jobs}: rendered report bytes differ"
        );
    }
}

/// Per-report check: each policy report computed from the shared trace
/// equals the one computed from a per-run regenerated trace — the
/// sharing granularity (one trace for all cells vs one trace per cell)
/// does not leak into results.
#[test]
fn per_cell_regeneration_equals_shared_input() {
    let shared = experiments::fig10_trace(30, 1, 5);
    let hp = MachineProfile::hp();
    let from_shared = experiments::figure10_reports(&shared, &hp, 2);
    // Regenerate the trace independently for a second pass, as if every
    // cell had built its own copy.
    let per_run = experiments::generate_fig10_trace(30, 1, 5);
    let from_fresh = experiments::figure10_reports(&per_run, &hp, 2);
    assert_eq!(from_shared, from_fresh);
}
