//! Paper-scale runs, `#[ignore]`d by default (minutes each):
//! `cargo test --release -- --ignored`.

use zombieland::energy::MachineProfile;
use zombieland::hypervisor::Policy;
use zombieland::simulator::{simulate, PolicyKind, SimConfig};
use zombieland_bench::experiments::{self, VmGeometry};

/// The paper's exact memory geometry: a 7 GiB VM with a 6 GiB working
/// set, micro-benchmark, full Table 1 column.
#[test]
#[ignore = "paper-geometry run: ~a minute in release"]
fn table1_micro_at_full_scale() {
    let geo = VmGeometry::at_scale(1.0);
    let base = experiments::baseline("micro-bench", geo);
    let p40 = experiments::run_ram_ext(
        "micro-bench",
        geo,
        geo.reserved.mul_f64(0.4),
        Policy::MIXED_DEFAULT,
    )
    .penalty_pct(&base);
    let p50 = experiments::run_ram_ext(
        "micro-bench",
        geo,
        geo.reserved.mul_f64(0.5),
        Policy::MIXED_DEFAULT,
    )
    .penalty_pct(&base);
    // The cliff survives at full scale.
    assert!(p40 > 500.0, "40% local: {p40}%");
    assert!(p50 < 60.0, "50% local: {p50}%");
}

/// A datacenter run 4x the bench default on both axes.
#[test]
#[ignore = "1200 servers x 2 days: a few minutes in release"]
fn fig10_at_larger_scale() {
    let trace = experiments::fig10_trace(1_200, 2, 11);
    let modified = trace.modified();
    let run = |t: &zombieland::trace::ClusterTrace, p| {
        simulate(t, &SimConfig::new(p, MachineProfile::hp()))
    };
    let base = run(&trace, PolicyKind::AlwaysOn);
    let neat = run(&trace, PolicyKind::Neat).savings_pct(&base);
    let zombie = run(&trace, PolicyKind::ZombieStack).savings_pct(&base);
    assert!(zombie > neat, "{zombie} > {neat}");
    assert!(zombie > 40.0, "headline saving holds at scale: {zombie}");

    let base_m = run(&modified, PolicyKind::AlwaysOn);
    let neat_m = run(&modified, PolicyKind::Neat).savings_pct(&base_m);
    let zombie_m = run(&modified, PolicyKind::ZombieStack).savings_pct(&base_m);
    assert!(
        zombie_m - neat_m > zombie - neat,
        "the gap widens under memory pressure at scale too"
    );
}
