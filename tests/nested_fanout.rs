//! Nested fan-out: a `run_indexed` body that itself calls `run_indexed`
//! must (a) produce bytes identical to a fully serial evaluation and
//! (b) never run more workers at once than the top-level job budget —
//! the inner call splits the inherited budget instead of multiplying
//! thread counts.

use std::sync::atomic::{AtomicUsize, Ordering};

use zombieland::simcore::{derive_seed, run_indexed, DetRng};

const OUTER: usize = 6;
const INNER: usize = 5;
const BASE_SEED: u64 = 0xBEEF;

/// The per-cell work: a deterministic function of (outer, inner) only.
fn cell(outer: usize, inner: usize) -> u64 {
    let seed = derive_seed(derive_seed(BASE_SEED, outer as u64), inner as u64);
    let mut rng = DetRng::new(seed);
    (0..64).map(|_| rng.below(1 << 20)).sum()
}

/// Ground truth computed with plain loops — no runner involved at all.
fn serial_grid() -> Vec<Vec<u64>> {
    (0..OUTER)
        .map(|o| (0..INNER).map(|i| cell(o, i)).collect())
        .collect()
}

/// Every (outer_jobs, inner_jobs) combination yields the serial grid.
#[test]
fn nested_fan_out_matches_serial_exactly() {
    let expected = serial_grid();
    for (outer_jobs, inner_jobs) in [(1, 1), (1, 4), (4, 1), (4, 4), (2, 8), (8, 2), (8, 8)] {
        let got = run_indexed(outer_jobs, OUTER, |o| {
            run_indexed(inner_jobs, INNER, |i| cell(o, i))
        });
        assert_eq!(
            got, expected,
            "jobs=({outer_jobs},{inner_jobs}) changed the grid"
        );
    }
}

/// With a top-level budget of 4, asking for 4×8 nested workers must not
/// oversubscribe: the number of cell bodies executing at any instant
/// stays within the budget, because inner calls inherit a share of it.
#[test]
fn nested_fan_out_respects_the_job_budget() {
    const BUDGET: usize = 4;
    let live = AtomicUsize::new(0);
    let peak = AtomicUsize::new(0);
    let expected = serial_grid();

    let got = run_indexed(BUDGET, OUTER, |o| {
        run_indexed(8, INNER, |i| {
            let now = live.fetch_add(1, Ordering::SeqCst) + 1;
            peak.fetch_max(now, Ordering::SeqCst);
            let v = cell(o, i);
            live.fetch_sub(1, Ordering::SeqCst);
            v
        })
    });

    assert_eq!(got, expected, "budgeted nested run changed the grid");
    let peak = peak.load(Ordering::SeqCst);
    assert!(peak >= 1, "at least one worker ran");
    assert!(
        peak <= BUDGET,
        "peak of {peak} concurrent cell bodies exceeds the budget of {BUDGET}"
    );
}

/// Three levels deep still terminates, stays serial-identical, and
/// stays within budget (the innermost calls degrade to serial once the
/// budget share reaches one).
#[test]
fn triple_nesting_stays_bounded_and_deterministic() {
    const BUDGET: usize = 3;
    let live = AtomicUsize::new(0);
    let peak = AtomicUsize::new(0);

    let expected: Vec<Vec<Vec<u64>>> = (0..3)
        .map(|a| {
            (0..3)
                .map(|b| (0..3).map(|c| cell(a * 3 + b, c)).collect())
                .collect()
        })
        .collect();

    let got = run_indexed(BUDGET, 3, |a| {
        run_indexed(4, 3, |b| {
            run_indexed(4, 3, |c| {
                let now = live.fetch_add(1, Ordering::SeqCst) + 1;
                peak.fetch_max(now, Ordering::SeqCst);
                let v = cell(a * 3 + b, c);
                live.fetch_sub(1, Ordering::SeqCst);
                v
            })
        })
    });

    assert_eq!(got, expected);
    assert!(
        peak.load(Ordering::SeqCst) <= BUDGET,
        "triple nesting oversubscribed the budget"
    );
}
