//! End-to-end: the whole stack from cloud scheduler down to RDMA verbs.

use zombieland::cloud::stack::{VmSpec, ZombieStack};
use zombieland::core::manager::PoolKind;
use zombieland::core::RackConfig;
use zombieland::hypervisor::engine::{self, Backing, EngineConfig};
use zombieland::simcore::{Bytes, SimDuration};
use zombieland::workloads::DataCaching;

fn spec(id: u64, cpu: f64, mem_gib: u64, cpu_used: f64) -> VmSpec {
    VmSpec {
        id,
        cpu,
        mem: Bytes::gib(mem_gib),
        wss: Bytes::gib(mem_gib).mul_f64(0.8),
        cpu_used,
    }
}

/// Boot VMs through the cloud layer, consolidate, then actually *run* a
/// workload on the consolidated rack via the hypervisor engine, paging to
/// the zombie the consolidation created.
#[test]
fn consolidate_then_page_through_the_created_zombie() {
    let mut stack = ZombieStack::new(RackConfig {
        servers: 3,
        ..RackConfig::default()
    });
    // One busy memory-heavy VM pins host A; an idle VM lands alone and
    // gets consolidated away; its host becomes a zombie.
    stack.boot_vm(spec(1, 0.4, 12, 0.35)).unwrap();
    stack.boot_vm(spec(2, 0.3, 8, 0.05)).unwrap();
    let report = stack.consolidate().unwrap();
    assert!(
        !report.suspended.is_empty(),
        "consolidation created zombies"
    );
    let pool_before = stack.rack().db().free_buffers();
    assert!(pool_before > 0);

    // The migrated VM keeps part of its memory remote.
    let migrated = stack.vms().find(|v| v.spec.id == 2).unwrap();
    assert!(!migrated.remote_buffers.is_empty());
    assert!(migrated.local >= migrated.spec.mem.mul_f64(0.3).mul_f64(0.8));
}

/// The full data path under an engine-driven workload across the rack the
/// examples use, ending with clean teardown.
#[test]
fn engine_workload_over_rack_is_leak_free() {
    let mut rack = zombieland::core::Rack::new(RackConfig::default());
    let ids = rack.server_ids();
    let (user, zombie) = (ids[0], ids[1]);
    rack.goto_zombie(zombie).unwrap();
    let free_before = rack.db().free_buffers();
    let alloc = rack.alloc_ext(user, Bytes::mib(256)).unwrap();

    let mut w = DataCaching::new(Bytes::mib(96).pages(), 5);
    let cfg = EngineConfig::ram_ext(Bytes::mib(128), Bytes::mib(48));
    let stats = engine::run(
        &mut w,
        &cfg,
        Backing::Rack {
            rack: &mut rack,
            user,
            pool: PoolKind::Ext,
        },
    )
    .unwrap();
    assert!(stats.remote_faults > 0, "workload actually paged");
    assert!(stats.exec_time > SimDuration::ZERO);

    // Teardown: no live pages, buffers releasable, pool restored.
    assert_eq!(rack.manager(user).live_pages(), 0);
    rack.release(user, &alloc.buffers).unwrap();
    assert_eq!(rack.db().free_buffers(), free_before);

    // The zombie wakes into a clean state.
    let wake = rack.wake(zombie, None).unwrap();
    assert_eq!(wake.revoked, 0, "nothing left allocated");
    assert_eq!(rack.db().free_buffers(), 0);
}

/// Cross-layer traffic accounting: every byte the engine paged shows up
/// on the zombie's NIC as inbound one-sided traffic.
#[test]
fn paging_traffic_lands_on_the_zombie_nic() {
    let mut rack = zombieland::core::Rack::new(RackConfig::default());
    let ids = rack.server_ids();
    let (user, zombie) = (ids[0], ids[1]);
    rack.goto_zombie(zombie).unwrap();
    rack.alloc_ext(user, Bytes::mib(256)).unwrap();
    let znode = zombieland::rdma::NodeId::new(2 + zombie.get());
    let before = rack.fabric().stats(znode).unwrap();

    let mut w = DataCaching::new(Bytes::mib(64).pages(), 6);
    let cfg = EngineConfig::ram_ext(Bytes::mib(96), Bytes::mib(24));
    let stats = engine::run(
        &mut w,
        &cfg,
        Backing::Rack {
            rack: &mut rack,
            user,
            pool: PoolKind::Ext,
        },
    )
    .unwrap();

    let after = rack.fabric().stats(znode).unwrap();
    let inbound_pages =
        (after.inbound_bytes - before.inbound_bytes).get() / zombieland::simcore::PAGE_SIZE;
    // Demotion writes + promotion reads, minus the clean-demotion
    // optimization, all land on the zombie.
    assert!(
        inbound_pages >= stats.remote_faults,
        "inbound {inbound_pages} >= faults {}",
        stats.remote_faults
    );
    assert_eq!(after.outbound_ops, before.outbound_ops, "zombie CPU idle");
}
