//! Reproducibility: every experiment is bit-for-bit deterministic — the
//! property the whole evaluation methodology rests on (no wall-clock, no
//! OS entropy, seeded RNG everywhere).

use zombieland::energy::MachineProfile;
use zombieland::hypervisor::Policy;
use zombieland::simulator::{simulate, PolicyKind, SimConfig};
use zombieland_bench::experiments::{self, VmGeometry};

const SCALE: f64 = 0.05;

#[test]
fn ram_ext_runs_are_identical() {
    let geo = VmGeometry::at_scale(SCALE);
    let local = geo.reserved.mul_f64(0.4);
    let a = experiments::run_ram_ext("micro-bench", geo, local, Policy::MIXED_DEFAULT);
    let b = experiments::run_ram_ext("micro-bench", geo, local, Policy::MIXED_DEFAULT);
    assert_eq!(a.exec_time, b.exec_time);
    assert_eq!(a.remote_faults, b.remote_faults);
    assert_eq!(a.demotions, b.demotions);
    assert_eq!(a.policy_cycles, b.policy_cycles);
    assert_eq!(a.io_time, b.io_time);
}

#[test]
fn datacenter_runs_are_identical() {
    let trace = experiments::fig10_trace(80, 1, 5);
    let run = || {
        simulate(
            &trace,
            &SimConfig::new(PolicyKind::ZombieStack, MachineProfile::hp()),
        )
    };
    let (a, b) = (run(), run());
    assert_eq!(a.energy.get(), b.energy.get());
    assert_eq!(a.migrations, b.migrations);
    assert_eq!(a.wakeups, b.wakeups);
    assert_eq!(a.state_seconds, b.state_seconds);
}

#[test]
fn traces_are_identical_across_generations() {
    let a = experiments::fig10_trace(60, 1, 9);
    let b = experiments::fig10_trace(60, 1, 9);
    assert_eq!(a.tasks().len(), b.tasks().len());
    for (x, y) in a.tasks().iter().zip(b.tasks()) {
        assert_eq!(x.start, y.start);
        assert_eq!(x.cpu_booked, y.cpu_booked);
        assert_eq!(x.mem_used, y.mem_used);
    }
    // And a different seed genuinely differs.
    let c = experiments::fig10_trace(60, 1, 10);
    assert_ne!(a.tasks().len(), c.tasks().len());
}

#[test]
fn table_outputs_are_identical() {
    let a = experiments::table1(SCALE);
    let b = experiments::table1(SCALE);
    for (ra, rb) in a.iter().zip(&b) {
        assert_eq!(ra.workload, rb.workload);
        assert_eq!(ra.penalties, rb.penalties, "{}", ra.workload);
    }
}
