//! Golden-report regression tests for the hot-path optimizations.
//!
//! The optimization contract is byte identity: incremental accounting,
//! ordered index sets, dense paging tables and buffer reuse may change
//! *when* work happens, never *what* comes out. These tests pin the
//! exact report bytes produced by the pre-optimization code (captured
//! from the release CLI at the seed grids below) and fail on any drift —
//! a float summed in a different order, a tie broken toward a different
//! host, a column padded differently.
//!
//! Goldens live in `tests/golden/` and were captured with `--jobs 2` to
//! also lock the parallel-collection path. Regenerate them only for an
//! intentional output change, with a note in the commit message:
//!
//! ```text
//! ZL_DC_SERVERS=48 ZL_DC_DAYS=1 zombieland-cli experiment fig10 --jobs 2
//! ZL_SCALE=0.04    zombieland-cli experiment table1 --jobs 2
//! ```

use zombieland_bench::experiments;

/// Fig. 10 at the 48-server × 1-day grid renders the exact pre-change
/// bytes.
#[test]
fn figure10_bytes_match_prechange_golden() {
    let trace = experiments::fig10_trace(48, 1, 11);
    let modified = trace.modified();
    let groups = experiments::figure10_grid(&trace, &modified, 2);
    let rendered = experiments::render_figure10(&groups);
    let golden = include_str!("golden/fig10_48x1.txt");
    assert_eq!(
        rendered, golden,
        "Fig. 10 report bytes drifted from the pre-optimization golden"
    );
}

/// Table 1 at scale 0.04 renders the exact pre-change bytes.
#[test]
fn table1_bytes_match_prechange_golden() {
    let rows = experiments::table1_jobs(0.04, 2);
    let rendered = experiments::render_table1(&rows);
    let golden = include_str!("golden/table1_s004.txt");
    assert_eq!(
        rendered, golden,
        "Table 1 report bytes drifted from the pre-optimization golden"
    );
}
