//! Cross-crate integration tests pinning the paper's central claims.

use zombieland::acpi::{Platform, SleepState};
use zombieland::core::manager::PoolKind;
use zombieland::core::{Rack, RackConfig};
use zombieland::energy::MachineProfile;
use zombieland::rdma::{Availability, Fabric, FabricError};
use zombieland::simcore::{Bytes, SimDuration, SimTime};

/// §1: "a server in Sz state is a Zombie as it is brain-dead (CPU-dead),
/// limps along consuming minimal resources (low-energy), but still has
/// basic motor functions such as serving memory (memory-alive)."
#[test]
fn zombie_is_cpu_dead_memory_alive_low_energy() {
    // CPU-dead + memory-alive at the platform level.
    let mut p = Platform::sz_capable();
    p.suspend("zom").unwrap();
    assert!(!p.state().cpu_alive());
    assert!(p.memory_remotely_accessible());

    // Low-energy at the model level: Sz ≈ an eighth of idle-S0.
    for profile in [MachineProfile::hp(), MachineProfile::dell()] {
        assert!(profile.sz_fraction() < profile.s0_idle_fraction() / 3.0);
    }

    // Memory-alive at the fabric level: one-sided verbs work, CPU verbs
    // do not.
    let mut fabric = Fabric::new();
    let user = fabric.attach();
    let zombie = fabric.attach();
    let mr = fabric.register(zombie, Bytes::mib(1)).unwrap();
    fabric.set_availability(zombie, Availability::MemoryOnly);
    assert!(fabric.write(user, mr, Bytes::ZERO, b"alive").is_ok());
    assert!(matches!(
        fabric.send(user, zombie, Bytes::kib(1)),
        Err(FabricError::Unreachable {
            needs_cpu: true,
            ..
        })
    ));
}

/// §3: Sz differs from S3 exactly by keeping memory remotely usable —
/// and S3/S4 do not serve memory.
#[test]
fn only_s0_and_sz_serve_memory() {
    for (kw, serves) in [("mem", false), ("disk", false), ("zom", true)] {
        let mut p = Platform::sz_capable();
        p.suspend(kw).unwrap();
        assert_eq!(p.memory_remotely_accessible(), serves, "{kw}");
    }
}

/// §4.4: zombie memory has priority over active-server memory, and
/// `GS_alloc_ext` is admission-controlled while `GS_alloc_swap` is
/// best-effort.
#[test]
fn allocation_semantics() {
    let mut rack = Rack::new(RackConfig::default());
    let ids = rack.server_ids();
    let (user, zombie, active) = (ids[0], ids[1], ids[2]);
    rack.goto_zombie(zombie).unwrap();
    rack.lend_active(active, 4).unwrap();

    // Zombie-first.
    let alloc = rack.alloc_ext(user, Bytes::gib(1)).unwrap();
    for b in &alloc.buffers {
        assert_eq!(
            rack.db().record(*b).unwrap().kind,
            zombieland::core::db::BufferKind::Zombie
        );
    }

    // Swap is best-effort: asking for the impossible returns what exists.
    let huge = rack.alloc_swap(user, Bytes::gib(500)).unwrap();
    assert!(!huge.buffers.is_empty());
}

/// §4.3: after a zombie reclaims memory that users had data on, every
/// page remains reachable (relocated or via the local backup).
#[test]
fn reclaim_never_loses_pages() {
    let mut rack = Rack::new(RackConfig::default());
    let ids = rack.server_ids();
    let (user, z1, z2) = (ids[0], ids[1], ids[2]);
    rack.goto_zombie(z1).unwrap();
    rack.goto_zombie(z2).unwrap();
    rack.alloc_ext(user, Bytes::gib(20)).unwrap();
    let mut handles = Vec::new();
    for _ in 0..200 {
        handles.push(rack.place_page(user, PoolKind::Ext).unwrap().0);
    }
    rack.wake(z1, None).unwrap();
    for h in &handles {
        assert!(rack.fetch_page(user, *h, false).is_ok());
    }
    // And again after the second zombie wakes (only backups remain).
    rack.wake(z2, None).unwrap();
    for h in &handles {
        assert!(rack.fetch_page(user, *h, false).is_ok());
    }
}

/// §4.1–4.2: controller failover is transparent; the heartbeat monitor
/// promotes the secondary and operations continue on mirrored state.
#[test]
fn controller_failover_is_transparent_end_to_end() {
    let mut rack = Rack::new(RackConfig::default());
    let ids = rack.server_ids();
    let (user, zombie) = (ids[0], ids[1]);
    rack.goto_zombie(zombie).unwrap();
    let before = rack.db().free_buffers();

    rack.heartbeat(SimTime::ZERO + SimDuration::from_secs(1));
    rack.crash_primary();
    assert!(!rack.check_failover(SimTime::ZERO + SimDuration::from_secs(2)));
    assert!(rack.check_failover(SimTime::ZERO + SimDuration::from_secs(30)));

    let alloc = rack.alloc_ext(user, Bytes::gib(1)).unwrap();
    assert_eq!(
        rack.db().free_buffers(),
        before - alloc.buffers.len() as u64
    );
    rack.release(user, &alloc.buffers).unwrap();
    assert_eq!(rack.db().free_buffers(), before);
}

/// Fig. 5 semantics: suspend/wake round trips through every sleep state
/// keep the platform usable.
#[test]
fn sleep_state_round_trips() {
    let mut p = Platform::sz_capable();
    for kw in ["mem", "disk", "zom", "zom", "mem"] {
        p.suspend(kw).unwrap();
        assert!(p.state().is_sleeping());
        p.wake().unwrap();
        assert_eq!(p.state(), SleepState::S0);
    }
    assert_eq!(p.suspend_count(), 5);
}
