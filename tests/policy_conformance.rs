//! Policy-conformance suite: every registered policy runs over a pinned
//! small trace and must keep producing exactly the reports the
//! pre-refactor (monolithic `match cfg.policy`) simulator produced.
//!
//! The golden in `tests/golden/policy_conformance_40x1.txt` captures the
//! full report of each paper policy — energy, migrations, wakeups, drops,
//! state-seconds integrals and peak parked memory — with floats rendered
//! as their exact bit patterns, so a single ULP of drift anywhere in the
//! policy/power extraction fails the suite.

use zombieland::energy::MachineProfile;
use zombieland::simulator::{policy, simulate, PolicyKind, SimConfig, SimReport};
use zombieland_bench::experiments;

/// The paper's four policies, baseline first (pinned order).
const PAPER_POLICIES: [PolicyKind; 4] = [
    PolicyKind::AlwaysOn,
    PolicyKind::Neat,
    PolicyKind::Oasis,
    PolicyKind::ZombieStack,
];

/// Renders one report with bit-exact floats.
fn render(label: &str, r: &SimReport) -> String {
    format!
        ("{label} energy={:#018x} migrations={} wakeups={} dropped={} overcommitted={} state_s=[{:#018x},{:#018x},{:#018x}] peak_parked={:#018x}\n",
        r.energy.get().to_bits(),
        r.migrations,
        r.wakeups,
        r.dropped,
        r.overcommitted,
        r.state_seconds[0].to_bits(),
        r.state_seconds[1].to_bits(),
        r.state_seconds[2].to_bits(),
        r.peak_parked.to_bits(),
    )
}

fn pinned_reports() -> String {
    let trace = experiments::fig10_trace(40, 1, 11);
    let mut out = String::new();
    for p in PAPER_POLICIES {
        let r = simulate(&trace, &SimConfig::new(p, MachineProfile::hp()));
        // The label comes from the report itself, so the golden also pins
        // the registry's `label` strings end to end.
        out.push_str(&render(r.policy, &r));
    }
    out
}

/// (a) The three paper policies (plus the AlwaysOn baseline) are
/// byte-identical to the pre-refactor goldens.
#[test]
fn paper_policies_match_prerefactor_golden() {
    let golden = include_str!("golden/policy_conformance_40x1.txt");
    assert_eq!(
        pinned_reports(),
        golden,
        "a registered paper policy drifted from the monolith's reports"
    );
}

/// (b) A policy outside [`PolicyKind`] — the `noconsolidate` toy — is a
/// first-class citizen: it resolves through the registry by name
/// (case-insensitively, as the CLI's `--policy` flag does), runs through
/// [`simulate`], and labels its own report.
#[test]
fn toy_policy_round_trips_through_registry() {
    let spec = policy::lookup("NoConsolidate").expect("toy policy is registered");
    assert_eq!(spec.key, "noconsolidate");
    assert!(
        policy::REGISTRY.iter().any(|s| std::ptr::eq(*s, spec)),
        "lookup must hand back the registry's own static"
    );

    let trace = experiments::fig10_trace(40, 1, 11);
    let r = simulate(&trace, &SimConfig::with_spec(spec, MachineProfile::hp()));
    assert_eq!(r.policy, "NoConsolidate", "report carries the spec's label");

    // Full-booking placement with consolidation disabled never suspends a
    // host, so the toy must reproduce the AlwaysOn baseline bit for bit.
    let baseline = simulate(
        &trace,
        &SimConfig::new(PolicyKind::AlwaysOn, MachineProfile::hp()),
    );
    assert_eq!(r.energy.get().to_bits(), baseline.energy.get().to_bits());
    assert_eq!(r.migrations, baseline.migrations);
    assert_eq!(r.wakeups, baseline.wakeups);
    assert_eq!(r.dropped, baseline.dropped);
    assert_eq!(r.overcommitted, baseline.overcommitted);
    for (a, b) in r.state_seconds.iter().zip(baseline.state_seconds.iter()) {
        assert_eq!(a.to_bits(), b.to_bits());
    }
}

/// Prints the golden body (run with `--ignored --nocapture` to
/// regenerate after an intentional behavior change).
#[test]
#[ignore]
fn regenerate_golden() {
    print!("{}", pinned_reports());
}
