//! The parallel runner's contract: fanning experiment batches across
//! worker threads changes wall-clock time only — every report is
//! bit-for-bit identical at any `--jobs` count, because each run is a
//! pure function of its grid index (derived seed + virtual clock, no OS
//! entropy) and results are collected by index, not completion order.

use zombieland::energy::MachineProfile;
use zombieland::obs::{observe, ObsLevel};
use zombieland::simcore::{derive_seed, run_batch, run_indexed, SimDuration};
use zombieland::simulator::{simulate, SimConfig, SimReport};
use zombieland_bench::experiments::{self, FIG10_POLICIES};

/// Small enough for CI, big enough that runs interleave under threads.
const SCALE: f64 = 0.04;

/// Fig. 10 policy reports are byte-identical across `--jobs 1/2/8`.
#[test]
fn fig10_reports_identical_across_jobs() {
    let trace = experiments::fig10_trace(48, 1, 7);
    let hp = MachineProfile::hp();
    let serial = experiments::figure10_reports(&trace, &hp, 1);
    for jobs in [2, 8] {
        let parallel = experiments::figure10_reports(&trace, &hp, jobs);
        assert_eq!(serial, parallel, "jobs={jobs} changed a report");
    }
}

/// The full Fig. 10 grid (2 machines × 2 traces × 4 policies) is
/// jobs-invariant, including the derived savings percentages.
#[test]
fn fig10_grid_identical_across_jobs() {
    let trace = experiments::fig10_trace(40, 1, 7);
    let modified = trace.modified();
    let serial = experiments::figure10_grid(&trace, &modified, 1);
    for jobs in [2, 8] {
        assert_eq!(serial, experiments::figure10_grid(&trace, &modified, jobs));
    }
}

/// Reports carrying a full timeline (every sampled field) survive the
/// fan-out bit-for-bit too.
#[test]
fn timeline_reports_identical_across_jobs() {
    let trace = experiments::fig10_trace(40, 1, derive_seed(7, 1));
    let run_all = |jobs: usize| -> Vec<SimReport> {
        run_indexed(jobs, FIG10_POLICIES.len(), |i| {
            let cfg = SimConfig {
                sample_interval: Some(SimDuration::from_hours(6)),
                ..SimConfig::new(FIG10_POLICIES[i], MachineProfile::dell())
            };
            simulate(&trace, &cfg)
        })
    };
    let serial = run_all(1);
    assert!(
        serial.iter().all(|r| !r.timeline.is_empty()),
        "timelines must actually be sampled for this test to mean anything"
    );
    for jobs in [2, 8] {
        assert_eq!(serial, run_all(jobs));
    }
}

/// The Table 1 and Table 2 sweeps — the `run_ram_ext` / swap-technology
/// grids — are jobs-invariant down to the floating-point bit.
#[test]
fn table_sweeps_identical_across_jobs() {
    let table1_serial = experiments::table1_jobs(SCALE, 1);
    let table2_serial = experiments::table2_jobs("micro-bench", SCALE, 1);
    for jobs in [2, 8] {
        assert_eq!(table1_serial, experiments::table1_jobs(SCALE, jobs));
        assert_eq!(
            table2_serial,
            experiments::table2_jobs("micro-bench", SCALE, jobs)
        );
    }
}

/// `run_batch` (heterogeneous closures) carries the same guarantee as
/// `run_indexed` (uniform grids).
#[test]
fn batch_of_mixed_experiments_is_jobs_invariant() {
    let trace = experiments::fig10_trace(30, 1, 5);
    let build = || -> Vec<Box<dyn FnOnce() -> SimReport + Send>> {
        FIG10_POLICIES
            .iter()
            .map(|&p| {
                let trace = &trace;
                Box::new(move || simulate(trace, &SimConfig::new(p, MachineProfile::hp())))
                    as Box<dyn FnOnce() -> SimReport + Send>
            })
            .collect()
    };
    let serial = run_batch(1, build());
    for jobs in [2, 8] {
        assert_eq!(serial, run_batch(jobs, build()));
    }
}

/// The observability contract on the Fig. 10 grid: full tracing changes
/// no simulation result, and the exported artifacts — the JSONL event
/// trace and the metrics JSON, exactly as `--trace-out`/`--metrics-out`
/// write them — are byte-identical across `--jobs 1/2/8`.
#[test]
fn obs_artifacts_identical_across_jobs() {
    let trace = experiments::fig10_trace(40, 1, 7);
    let modified = trace.modified();
    let plain = experiments::figure10_grid(&trace, &modified, 2);
    let capture = |jobs| {
        observe(ObsLevel::Full, || {
            experiments::figure10_grid(&trace, &modified, jobs)
        })
    };
    let (serial_groups, serial) = capture(1);
    assert_eq!(plain, serial_groups, "full tracing changed a result");
    assert!(!serial.events.is_empty(), "the grid must actually trace");
    assert!(!serial.metrics.is_empty());
    let serial_trace = serial.events_jsonl();
    let serial_metrics = serial.metrics.to_json().pretty();
    for jobs in [2, 8] {
        let (groups, run) = capture(jobs);
        assert_eq!(plain, groups, "jobs={jobs} changed a traced result");
        assert_eq!(
            serial_trace,
            run.events_jsonl(),
            "jobs={jobs} changed the trace bytes"
        );
        assert_eq!(
            serial_metrics,
            run.metrics.to_json().pretty(),
            "jobs={jobs} changed the metrics bytes"
        );
    }
}

/// Summary level records metrics without events, and still changes no
/// result.
#[test]
fn summary_level_is_events_free_and_result_neutral() {
    let trace = experiments::fig10_trace(30, 1, 5);
    let hp = MachineProfile::hp();
    let plain = experiments::figure10_reports(&trace, &hp, 2);
    let (reports, run) = observe(ObsLevel::Summary, || {
        experiments::figure10_reports(&trace, &hp, 2)
    });
    assert_eq!(plain, reports);
    assert!(run.events.is_empty(), "summary captures no events");
    assert!(run.metrics.counter("sim.runs") >= 4, "metrics captured");
}

/// The seed-derivation function is a wire format: repetition seeds are
/// pinned, so historic results stay reproducible release over release.
#[test]
fn derived_seeds_are_pinned() {
    assert_eq!(derive_seed(0, 0), 0xE220_A839_7B1D_CDAF);
    assert_eq!(derive_seed(42, 0), 0xBDD7_3226_2FEB_6E95);
    assert_eq!(derive_seed(42, 1), 0x28EF_E333_B266_F103);
    // Neighbouring bases and indices decorrelate completely.
    let mut seen = std::collections::HashSet::new();
    for base in 0..8u64 {
        for index in 0..64u64 {
            assert!(seen.insert(derive_seed(base, index)));
        }
    }
}
