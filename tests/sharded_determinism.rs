//! The rack-sharded event loop's contract (DESIGN §12): the shard count
//! partitions *decision scans*, never results. For any `--shards` and
//! any thread budget the merged report is byte-identical to the serial
//! loop — energy down to the f64 bit — because every mutation runs on
//! the coordinator in serial order and the per-shard scan merges are
//! constructed to equal the full serial scan.

use zombieland::energy::MachineProfile;
use zombieland::simcore::with_thread_budget;
use zombieland::simulator::{simulate, PolicyKind, SimConfig, SimReport};
use zombieland_bench::experiments;

const POLICIES: [PolicyKind; 3] = [PolicyKind::Neat, PolicyKind::Oasis, PolicyKind::ZombieStack];

/// One run at an explicit shard count and thread budget.
fn run(
    trace: &zombieland::trace::ClusterTrace,
    policy: PolicyKind,
    racks: u32,
    shards: u32,
    jobs: usize,
) -> SimReport {
    let cfg = SimConfig {
        racks,
        shards,
        ..SimConfig::new(policy, MachineProfile::hp())
    };
    with_thread_budget(jobs, || simulate(trace, &cfg))
}

/// Asserts two reports are *byte*-identical: `assert_eq!` via the
/// derived `PartialEq`, plus the float fields compared as raw bits
/// (f64 `==` would let a `-0.0`/`+0.0` divergence slip through).
fn assert_bytes_equal(a: &SimReport, b: &SimReport, what: &str) {
    assert_eq!(a, b, "{what}: report diverged");
    assert_eq!(
        a.energy.get().to_bits(),
        b.energy.get().to_bits(),
        "{what}: energy bits diverged"
    );
    for i in 0..3 {
        assert_eq!(
            a.state_seconds[i].to_bits(),
            b.state_seconds[i].to_bits(),
            "{what}: state_seconds[{i}] bits diverged"
        );
    }
    assert_eq!(
        a.peak_parked.to_bits(),
        b.peak_parked.to_bits(),
        "{what}: peak_parked bits diverged"
    );
}

/// Fig-10-sized fleet, racks dividing the fleet evenly: shards
/// {1, 2, 8} × thread budget {1, 2} all match the serial loop.
#[test]
fn fig10_sized_fleet_is_shard_invariant() {
    let trace = experiments::fig10_trace(160, 1, 11);
    for policy in POLICIES {
        let serial = run(&trace, policy, 8, 1, 1);
        for shards in [2, 8] {
            for jobs in [1, 2] {
                let sharded = run(&trace, policy, 8, shards, jobs);
                assert_bytes_equal(
                    &serial,
                    &sharded,
                    &format!("{policy:?} shards={shards} jobs={jobs}"),
                );
            }
        }
    }
}

/// A fleet whose size is not a multiple of the rack count (and whose
/// rack count is not a multiple of the shard count), so every uneven
/// partition boundary is exercised: 130 hosts over 7 racks.
#[test]
fn rack_odd_fleet_is_shard_invariant() {
    let (servers, racks) = (130u32, 7u32);
    assert_ne!(servers % racks, 0, "the fixture must stay rack-odd");
    let trace = experiments::fig10_trace(servers, 1, 3);
    for policy in [PolicyKind::Neat, PolicyKind::ZombieStack] {
        let serial = run(&trace, policy, racks, 1, 1);
        for shards in [2, 8] {
            for jobs in [1, 2] {
                let sharded = run(&trace, policy, racks, shards, jobs);
                assert_bytes_equal(
                    &serial,
                    &sharded,
                    &format!("{policy:?} shards={shards} jobs={jobs}"),
                );
            }
        }
    }
}

/// A fleet above the crew gate (`CREW_MIN_FLEET = 512`) with a real
/// thread budget, so the scan rounds actually cross threads — the
/// result must still match the single-shard, single-thread loop.
#[test]
fn crew_threads_change_nothing() {
    let trace = experiments::fig10_trace(600, 1, 11);
    for policy in [PolicyKind::ZombieStack, PolicyKind::Oasis] {
        let serial = run(&trace, policy, 15, 1, 1);
        for (shards, jobs) in [(8, 2), (8, 4), (15, 3)] {
            let crewed = run(&trace, policy, 15, shards, jobs);
            assert_bytes_equal(
                &serial,
                &crewed,
                &format!("{policy:?} shards={shards} jobs={jobs}"),
            );
        }
    }
}

/// The golden path (`SimConfig::new` under the default scenario — one
/// rack, one shard) is untouched by the SoA/shard refactor: the default
/// resolves to the serial loop, and forcing the shard knob on a
/// one-rack config clamps back to one shard with an identical report.
/// `golden_report` and `policy_conformance` pin the actual values; this
/// pins that their configuration still runs the code path they froze.
#[test]
fn golden_config_resolves_to_the_serial_loop() {
    let cfg = SimConfig::new(PolicyKind::ZombieStack, MachineProfile::hp());
    assert_eq!(cfg.racks, 1, "goldens run the one-rack config");
    assert_eq!(cfg.shards, 1, "one rack resolves to one shard");
    let trace = experiments::fig10_trace(48, 1, 7);
    for policy in POLICIES {
        let default_path = with_thread_budget(1, || {
            simulate(&trace, &SimConfig::new(policy, MachineProfile::hp()))
        });
        let forced = run(&trace, policy, 1, 8, 2);
        assert_bytes_equal(&default_path, &forced, &format!("{policy:?} forced-shards"));
    }
}
