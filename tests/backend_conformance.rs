//! Backend-conformance suite for the `FabricBackend` refactor.
//!
//! The refactor lifted the RDMA-to-zombie remote-memory path behind
//! [`zombieland::core::backend::FabricBackend`]. Its contract has two
//! halves, and this suite pins both:
//!
//! 1. **RdmaZombie is the identity.** Selecting the paper's backend
//!    explicitly — through the trait, at any shard or job count — must
//!    reproduce the pre-refactor goldens byte for byte. The goldens in
//!    `tests/golden/` were captured *before* the trait existed, so any
//!    repricing sneaking into the default path fails here.
//! 2. **CxlPool is a genuinely different point.** The shared-tier
//!    backend must change fault latency and fleet energy (that is its
//!    purpose) while leaving the trace-replay semantics intact: same
//!    events, nothing dropped, no host ever in Sz.

use zombieland::core::backend::{self, CXL_POOL, RDMA_ZOMBIE};
use zombieland::core::manager::PoolKind;
use zombieland::core::rack::{Rack, RackConfig};
use zombieland::energy::MachineProfile;
use zombieland::simcore::Bytes;
use zombieland::simulator::{simulate, PolicyKind, SimConfig, SimReport};
use zombieland_bench::experiments;

const PAPER_POLICIES: [PolicyKind; 4] = [
    PolicyKind::AlwaysOn,
    PolicyKind::Neat,
    PolicyKind::Oasis,
    PolicyKind::ZombieStack,
];

/// Renders one report with bit-exact floats (the
/// `policy_conformance.rs` format, reused so the same golden pins both
/// suites).
fn render(label: &str, r: &SimReport) -> String {
    format!
        ("{label} energy={:#018x} migrations={} wakeups={} dropped={} overcommitted={} state_s=[{:#018x},{:#018x},{:#018x}] peak_parked={:#018x}\n",
        r.energy.get().to_bits(),
        r.migrations,
        r.wakeups,
        r.dropped,
        r.overcommitted,
        r.state_seconds[0].to_bits(),
        r.state_seconds[1].to_bits(),
        r.state_seconds[2].to_bits(),
        r.peak_parked.to_bits(),
    )
}

/// (1a) The explicit `--backend rdma` path is byte-identical to the
/// pre-refactor policy-conformance golden, serial and sharded.
#[test]
fn rdma_through_the_trait_matches_prerefactor_golden() {
    let golden = include_str!("golden/policy_conformance_40x1.txt");
    let trace = experiments::fig10_trace(40, 1, 11);
    for shards in [1u32, 8] {
        let mut out = String::new();
        for p in PAPER_POLICIES {
            let cfg = SimConfig {
                backend: &RDMA_ZOMBIE,
                shards,
                ..SimConfig::new(p, MachineProfile::hp())
            };
            let r = simulate(&trace, &cfg);
            out.push_str(&render(r.policy, &r));
        }
        assert_eq!(
            out, golden,
            "explicit rdma backend drifted from the pre-trait golden at shards={shards}"
        );
    }
}

/// (1b) The Fig. 10 grid — the report the paper's headline numbers come
/// from — is byte-identical under the default (rdma) backend at one and
/// two jobs. The golden was captured with `--jobs 2` before the trait
/// existed.
#[test]
fn figure10_grid_is_backend_invariant_across_jobs() {
    let trace = experiments::fig10_trace(48, 1, 11);
    let modified = trace.modified();
    let golden = include_str!("golden/fig10_48x1.txt");
    for jobs in [1usize, 2] {
        let groups = experiments::figure10_grid(&trace, &modified, jobs);
        let rendered = experiments::render_figure10(&groups);
        assert_eq!(
            rendered, golden,
            "Fig. 10 bytes drifted from the pre-trait golden at jobs={jobs}"
        );
    }
}

/// (2a) Rack level: a CXL load is faster than an RDMA fetch from a
/// zombie, and writes land quicker too — the backend reprices the same
/// quoted operation.
#[test]
fn cxl_fetches_beat_rdma_at_the_rack() {
    let run = |spec: &'static backend::BackendSpec| {
        let mut rack = Rack::new(RackConfig {
            backend: spec,
            ..RackConfig::default()
        });
        let ids = rack.server_ids();
        let (user, zombie) = (ids[0], ids[1]);
        rack.goto_zombie(zombie).unwrap();
        rack.alloc_ext(user, Bytes::gib(1)).unwrap();
        let (h, w) = rack.place_page(user, PoolKind::Ext).unwrap();
        let r = rack.fetch_page(user, h, true).unwrap();
        (w, r)
    };
    let (rdma_w, rdma_r) = run(&RDMA_ZOMBIE);
    let (cxl_w, cxl_r) = run(&CXL_POOL);
    assert!(
        cxl_r < rdma_r,
        "CXL page fault must be faster: {cxl_r} vs {rdma_r}"
    );
    assert!(
        cxl_w < rdma_w,
        "CXL page write must be faster: {cxl_w} vs {rdma_w}"
    );
    // The repriced latencies stay in the regime the backend advertises:
    // hundreds of nanoseconds, not the RDMA path's microseconds.
    assert!(cxl_r.as_nanos() < 1_000, "{cxl_r}");
    assert!(rdma_r.as_micros() >= 1, "{rdma_r}");
}

/// (2b) Datacenter level: the shared tier changes the energy point and
/// eliminates zombies without changing what the trace does.
#[test]
fn cxl_pool_changes_energy_not_events() {
    let trace = experiments::fig10_trace(40, 1, 11);
    let base = SimConfig::new(PolicyKind::ZombieStack, MachineProfile::hp());
    let rdma = simulate(&trace, &base);
    let cxl = simulate(
        &trace,
        &SimConfig {
            backend: &CXL_POOL,
            cxl_capacity: 4.0,
            ..base.clone()
        },
    );
    // Same trace, same feasibility: nothing dropped either way.
    assert_eq!(cxl.dropped, 0);
    assert_eq!(rdma.dropped, 0);
    // The CXL fleet has no zombie tier at all; its evacuated hosts all
    // reach S3 (deeper sleep than the rdma fleet can afford).
    assert_eq!(cxl.state_seconds[1], 0.0, "no Sz under a shared tier");
    assert!(cxl.state_seconds[2] > 0.0, "S3 time exists");
    assert!(rdma.state_seconds[1] > 0.0, "rdma still runs zombies");
    // And the energy point moves — the whole reason the backend exists.
    assert_ne!(
        cxl.energy.get().to_bits(),
        rdma.energy.get().to_bits(),
        "CxlPool priced identically to RdmaZombie"
    );
}

/// The registry resolves keys and labels case-insensitively and
/// suggests near-misses, mirroring the policy registry's ergonomics.
#[test]
fn registry_lookup_and_suggestions() {
    assert!(std::ptr::eq(backend::lookup("RDMA").unwrap(), &RDMA_ZOMBIE));
    assert!(std::ptr::eq(backend::lookup("cxlpool").unwrap(), &CXL_POOL));
    assert!(backend::lookup("infiniband").is_none());
    assert_eq!(backend::suggest("xcl"), Some("cxl"));
    assert_eq!(backend::suggest("rdna"), Some("rdma"));
    assert_eq!(backend::suggest("totally-unrelated"), None);
}
