//! Byte-level end-to-end integrity: pages written to zombie memory come
//! back bit-identical through every disruptive event the system models.

use zombieland::core::manager::PoolKind;
use zombieland::core::{PageHandle, Rack, RackConfig, ServerId};
use zombieland::simcore::Bytes;

fn page_pattern(i: u64) -> Vec<u8> {
    (0..4096u64)
        .map(|j| ((i * 131 + j * 7) % 251) as u8)
        .collect()
}

fn place_pages(rack: &mut Rack, user: ServerId, n: u64) -> Vec<(PageHandle, Vec<u8>)> {
    (0..n)
        .map(|i| {
            let data = page_pattern(i);
            let (h, _) = rack.place_page_data(user, PoolKind::Ext, &data).unwrap();
            (h, data)
        })
        .collect()
}

fn verify_all(rack: &mut Rack, user: ServerId, pages: &[(PageHandle, Vec<u8>)]) {
    for (h, expected) in pages {
        let (got, _) = rack.fetch_page_data(user, *h, false).unwrap();
        assert_eq!(&got, expected, "{h:?} corrupted");
    }
}

#[test]
fn round_trip_through_zombie_memory() {
    let mut rack = Rack::new(RackConfig::default());
    let ids = rack.server_ids();
    let (user, zombie) = (ids[0], ids[1]);
    rack.goto_zombie(zombie).unwrap();
    rack.alloc_ext(user, Bytes::gib(1)).unwrap();
    let mut pages = place_pages(&mut rack, user, 64);
    verify_all(&mut rack, user, &pages);
    // Freeing consumes the page; the data comes along one last time.
    let (h, expected) = pages.pop().unwrap();
    let (got, _) = rack.fetch_page_data(user, h, true).unwrap();
    assert_eq!(got, expected);
    assert!(rack.fetch_page_data(user, h, false).is_err());
}

#[test]
fn bytes_survive_zombie_wake_with_relocation() {
    let mut rack = Rack::new(RackConfig::default());
    let ids = rack.server_ids();
    let (user, z1, z2) = (ids[0], ids[1], ids[2]);
    rack.goto_zombie(z1).unwrap();
    rack.goto_zombie(z2).unwrap();
    rack.alloc_ext(user, Bytes::gib(20)).unwrap();
    let pages = place_pages(&mut rack, user, 128);

    // Waking z1 revokes its buffers; pages relocate (real bytes flow from
    // the backup into z2's memory) or fall back.
    let out = rack.wake(z1, None).unwrap();
    assert!(out.relocated_pages > 0);
    verify_all(&mut rack, user, &pages);
}

#[test]
fn bytes_survive_a_crash_via_the_mirror() {
    let mut rack = Rack::new(RackConfig::default());
    let ids = rack.server_ids();
    let (user, zombie) = (ids[0], ids[1]);
    rack.goto_zombie(zombie).unwrap();
    rack.alloc_ext(user, Bytes::gib(1)).unwrap();
    let pages = place_pages(&mut rack, user, 64);

    // The serving zombie dies without any handshake.
    let lost = rack.crash_server(zombie).unwrap();
    assert!(lost > 0);
    // Every byte is still there — from the asynchronous local mirror.
    verify_all(&mut rack, user, &pages);
}

#[test]
fn bytes_survive_controller_failover() {
    use zombieland::simcore::{SimDuration, SimTime};
    let mut rack = Rack::new(RackConfig::default());
    let ids = rack.server_ids();
    let (user, zombie) = (ids[0], ids[1]);
    rack.goto_zombie(zombie).unwrap();
    rack.alloc_ext(user, Bytes::gib(1)).unwrap();
    let pages = place_pages(&mut rack, user, 32);

    rack.crash_primary();
    assert!(rack.check_failover(SimTime::ZERO + SimDuration::from_secs(60)));
    verify_all(&mut rack, user, &pages);
}
