//! Failure injection: crashes at awkward moments must never lose pages.

use zombieland::core::manager::{PageLoc, PoolKind};
use zombieland::core::{Rack, RackConfig};
use zombieland::simcore::{Bytes, SimDuration, SimTime};

fn rack_with_two_zombies() -> (
    Rack,
    zombieland::core::ServerId,
    Vec<zombieland::core::ServerId>,
) {
    let mut rack = Rack::new(RackConfig::default());
    let ids = rack.server_ids();
    rack.goto_zombie(ids[1]).unwrap();
    rack.goto_zombie(ids[2]).unwrap();
    (rack, ids[0], vec![ids[1], ids[2]])
}

/// A zombie crashes (no reclaim handshake): every page it served is
/// immediately reachable again via the local backup, and the pool
/// keeps working.
#[test]
fn zombie_crash_degrades_but_never_loses_pages() {
    let (mut rack, user, zombies) = rack_with_two_zombies();
    rack.alloc_ext(user, Bytes::gib(4)).unwrap();
    let mut handles = Vec::new();
    for _ in 0..128 {
        handles.push(rack.place_page(user, PoolKind::Ext).unwrap().0);
    }

    let lost = rack.crash_server(zombies[0]).unwrap();
    assert!(lost > 0, "the dead zombie served pages");

    let mut backup_served = 0;
    for &h in &handles {
        let cost = rack.fetch_page(user, h, false).expect("page reachable");
        if rack.manager(user).locate(h).unwrap() == PageLoc::LocalBackup {
            assert_eq!(cost, rack.config().backup_read_4k);
            backup_served += 1;
        }
    }
    assert_eq!(backup_served as u64, lost);

    // New placements keep landing on the surviving zombie.
    let (h, _) = rack.place_page(user, PoolKind::Ext).unwrap();
    assert!(matches!(
        rack.manager(user).locate(h).unwrap(),
        PageLoc::Remote(_)
    ));
}

/// Controller crash *between* an allocation and the data path: the
/// promoted secondary has the allocation mirrored and the data path never
/// notices.
#[test]
fn failover_mid_allocation_preserves_grants() {
    let (mut rack, user, _) = rack_with_two_zombies();
    let alloc = rack.alloc_ext(user, Bytes::gib(2)).unwrap();

    rack.heartbeat(SimTime::ZERO);
    rack.crash_primary();
    assert!(rack.check_failover(SimTime::ZERO + SimDuration::from_secs(60)));

    // The grant survives: pages flow, release works.
    let (h, _) = rack.place_page(user, PoolKind::Ext).unwrap();
    rack.fetch_page(user, h, true).unwrap();
    rack.release(user, &alloc.buffers).unwrap();
}

/// Double failure: the controller dies, then a zombie dies. Data is still
/// served; the (promoted) controller's database stays consistent.
#[test]
fn controller_then_zombie_crash() {
    let (mut rack, user, zombies) = rack_with_two_zombies();
    rack.alloc_ext(user, Bytes::gib(4)).unwrap();
    let mut handles = Vec::new();
    for _ in 0..64 {
        handles.push(rack.place_page(user, PoolKind::Ext).unwrap().0);
    }

    rack.crash_primary();
    assert!(rack.check_failover(SimTime::ZERO + SimDuration::from_secs(60)));
    rack.crash_server(zombies[1]).unwrap();

    for &h in &handles {
        rack.fetch_page(user, h, false).expect("still reachable");
    }
    // The purged host no longer appears in the database.
    assert!(rack.db().buffers_of_host(zombies[1]).is_empty());
}

/// A crashed zombie that later reboots re-enters the pool cleanly.
#[test]
fn crashed_zombie_can_rejoin_after_reboot() {
    let (mut rack, user, zombies) = rack_with_two_zombies();
    rack.alloc_ext(user, Bytes::gib(1)).unwrap();
    rack.crash_server(zombies[0]).unwrap();

    // Reboot: wake the platform (S5-ish path is modeled by wake) and lend
    // again.
    rack.wake(zombies[0], None).unwrap();
    let z = rack.goto_zombie(zombies[0]).unwrap();
    assert!(!z.buffers.is_empty());
    assert!(rack.db().is_zombie(zombies[0]));
}
