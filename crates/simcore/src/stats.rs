//! Small statistics helpers used when aggregating experiment runs.

/// Running summary of a stream of samples (count, mean, min, max and
/// variance via Welford's algorithm).
///
/// # Examples
///
/// ```
/// use zombieland_simcore::stats::Summary;
///
/// let mut s = Summary::new();
/// for v in [1.0, 2.0, 3.0] {
///     s.record(v);
/// }
/// assert_eq!(s.count(), 3);
/// assert!((s.mean() - 2.0).abs() < 1e-12);
/// ```
#[derive(Clone, Debug, Default)]
pub struct Summary {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Summary {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, v: f64) {
        self.count += 1;
        let delta = v - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (v - self.mean);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population standard deviation (0 with fewer than two samples).
    pub fn stddev(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            (self.m2 / self.count as f64).sqrt()
        }
    }

    /// Merges another summary into this one as if its samples had been
    /// recorded here, using the Chan et al. parallel combination of
    /// Welford's moments. Lets per-job summaries from the parallel
    /// runner aggregate without re-streaming samples.
    ///
    /// # Examples
    ///
    /// ```
    /// use zombieland_simcore::stats::Summary;
    ///
    /// let (mut a, mut b) = (Summary::new(), Summary::new());
    /// for v in [1.0, 2.0] {
    ///     a.record(v);
    /// }
    /// for v in [3.0, 4.0, 5.0] {
    ///     b.record(v);
    /// }
    /// a.merge(&b);
    /// assert_eq!(a.count(), 5);
    /// assert!((a.mean() - 3.0).abs() < 1e-12);
    /// assert_eq!(a.max(), Some(5.0));
    /// ```
    pub fn merge(&mut self, other: &Summary) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let n_a = self.count as f64;
        let n_b = other.count as f64;
        let n = n_a + n_b;
        let delta = other.mean - self.mean;
        self.mean += delta * n_b / n;
        self.m2 += other.m2 + delta * delta * n_a * n_b / n;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Smallest sample (`None` when empty).
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample (`None` when empty).
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }
}

/// A fixed-size log₂ histogram of nanosecond-scale durations.
///
/// Buckets are powers of two from 1 ns to ~17 minutes (2⁰..2⁴⁰ ns), which
/// covers everything from cache hits to HDD seeks. `Copy` and allocation
/// free, so hot paths can record into it unconditionally.
///
/// # Examples
///
/// ```
/// use zombieland_simcore::stats::LatencyHistogram;
/// use zombieland_simcore::SimDuration;
///
/// let mut h = LatencyHistogram::new();
/// h.record(SimDuration::from_micros(3));
/// h.record(SimDuration::from_micros(5));
/// h.record(SimDuration::from_millis(11));
/// assert_eq!(h.count(), 3);
/// let p50 = h.quantile(0.5).unwrap();
/// assert!(p50 >= SimDuration::from_micros(2) && p50 <= SimDuration::from_micros(10));
/// ```
#[derive(Clone, Copy, Debug)]
pub struct LatencyHistogram {
    buckets: [u64; 41],
    count: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    pub const fn new() -> Self {
        LatencyHistogram {
            buckets: [0; 41],
            count: 0,
        }
    }

    fn bucket_of(d: crate::SimDuration) -> usize {
        let ns = d.as_nanos();
        if ns == 0 {
            0
        } else {
            (63 - ns.leading_zeros() as usize).min(40)
        }
    }

    /// Records one duration.
    pub fn record(&mut self, d: crate::SimDuration) {
        self.buckets[Self::bucket_of(d)] += 1;
        self.count += 1;
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// The `q`-quantile, resolved to the upper edge of its bucket
    /// (`None` when empty).
    pub fn quantile(&self, q: f64) -> Option<crate::SimDuration> {
        if self.count == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(crate::SimDuration::from_nanos(1u64 << (i + 1).min(63)));
            }
        }
        None
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
    }
}

/// The `q`-quantile (`0 ≤ q ≤ 1`) of `samples` by linear interpolation.
/// Sorts a copy; intended for end-of-run reporting, not hot paths.
///
/// Returns `None` when `samples` is empty.
pub fn quantile(samples: &[f64], q: f64) -> Option<f64> {
    if samples.is_empty() {
        return None;
    }
    let mut v: Vec<f64> = samples.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("NaN sample"));
    let pos = q.clamp(0.0, 1.0) * (v.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    Some(v[lo] * (1.0 - frac) + v[hi] * frac)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_moments() {
        let mut s = Summary::new();
        for v in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.record(v);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.stddev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
    }

    #[test]
    fn empty_summary() {
        let s = Summary::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.stddev(), 0.0);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
    }

    #[test]
    fn summary_merge_matches_streaming() {
        let samples = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0, -1.0, 12.5];
        let mut whole = Summary::new();
        for &v in &samples {
            whole.record(v);
        }
        // Split the stream at every point and check the merged moments
        // agree with the streaming ones.
        for split in 0..=samples.len() {
            let (left, right) = samples.split_at(split);
            let mut a = Summary::new();
            let mut b = Summary::new();
            for &v in left {
                a.record(v);
            }
            for &v in right {
                b.record(v);
            }
            a.merge(&b);
            assert_eq!(a.count(), whole.count());
            assert!((a.mean() - whole.mean()).abs() < 1e-12, "split {split}");
            assert!((a.stddev() - whole.stddev()).abs() < 1e-12, "split {split}");
            assert_eq!(a.min(), whole.min());
            assert_eq!(a.max(), whole.max());
        }
    }

    #[test]
    fn summary_merge_with_empty() {
        let mut a = Summary::new();
        a.merge(&Summary::new());
        assert_eq!(a.count(), 0);
        assert_eq!(a.min(), None);

        let mut b = Summary::new();
        b.record(3.0);
        a.merge(&b);
        assert_eq!(a.count(), 1);
        assert_eq!(a.min(), Some(3.0));
        b.merge(&Summary::new());
        assert_eq!(b.count(), 1);
    }

    #[test]
    fn histogram_quantiles_and_merge() {
        use crate::SimDuration;
        let mut h = LatencyHistogram::new();
        for _ in 0..90 {
            h.record(SimDuration::from_micros(2)); // ~2^11 ns.
        }
        for _ in 0..10 {
            h.record(SimDuration::from_millis(10)); // ~2^23 ns.
        }
        assert_eq!(h.count(), 100);
        let p50 = h.quantile(0.5).unwrap();
        assert!(p50 <= SimDuration::from_micros(8), "{p50}");
        let p99 = h.quantile(0.99).unwrap();
        assert!(p99 >= SimDuration::from_millis(8), "{p99}");

        let mut other = LatencyHistogram::new();
        other.record(SimDuration::from_nanos(1));
        other.merge(&h);
        assert_eq!(other.count(), 101);
        assert_eq!(LatencyHistogram::new().quantile(0.5), None);
    }

    #[test]
    fn histogram_extremes() {
        use crate::SimDuration;
        let mut h = LatencyHistogram::new();
        h.record(SimDuration::ZERO);
        h.record(SimDuration::from_secs(100_000)); // Beyond the top bucket.
        assert_eq!(h.count(), 2);
        assert!(h.quantile(1.0).is_some());
    }

    #[test]
    fn quantiles() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&v, 0.0), Some(1.0));
        assert_eq!(quantile(&v, 1.0), Some(4.0));
        assert_eq!(quantile(&v, 0.5), Some(2.5));
        assert_eq!(quantile(&[], 0.5), None);
    }
}
