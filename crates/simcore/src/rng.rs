//! A small, dependency-free, deterministic random number generator.
//!
//! Experiments must be reproducible bit-for-bit across runs and platforms,
//! so the workspace uses this xoshiro256**-based generator (seeded through
//! SplitMix64) rather than OS entropy. The distributions implemented here
//! are the ones the workload and trace generators need: uniform, Zipf
//! (skewed key popularity, used by the Data Caching workload model),
//! exponential (inter-arrival times) and Pareto (heavy-tailed task
//! durations).

/// Deterministic RNG (xoshiro256** seeded via SplitMix64).
///
/// # Examples
///
/// ```
/// use zombieland_simcore::DetRng;
///
/// let mut a = DetRng::new(42);
/// let mut b = DetRng::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Clone, Debug)]
pub struct DetRng {
    s: [u64; 4],
}

impl DetRng {
    /// Creates a generator from a seed. Any seed (including 0) is valid.
    pub fn new(seed: u64) -> Self {
        // SplitMix64 expansion ensures a zero seed does not produce the
        // all-zero (invalid) xoshiro state.
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        };
        DetRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// Derives an independent child generator; useful to give each simulated
    /// entity its own stream without coupling their sequences.
    pub fn fork(&mut self) -> DetRng {
        DetRng::new(self.next_u64())
    }

    /// The next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// A uniform float in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        // 53 high bits give a uniform double in [0, 1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0) is meaningless");
        // Lemire's multiply-shift rejection method: unbiased.
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (n as u128);
            let low = m as u64;
            if low >= n.wrapping_neg() % n {
                return (m >> 64) as u64;
            }
        }
    }

    /// A uniform integer in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range");
        lo + self.below(hi - lo)
    }

    /// A uniform float in `[lo, hi)`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + self.f64() * (hi - lo)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// An exponentially distributed float with the given rate parameter.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not strictly positive.
    pub fn exponential(&mut self, rate: f64) -> f64 {
        assert!(rate > 0.0, "rate must be positive");
        let u = 1.0 - self.f64(); // In (0, 1]: ln is finite.
        -u.ln() / rate
    }

    /// A Pareto-distributed float with scale `xm > 0` and shape
    /// `alpha > 0` (heavy-tailed; small `alpha` means heavier tail).
    pub fn pareto(&mut self, xm: f64, alpha: f64) -> f64 {
        assert!(xm > 0.0 && alpha > 0.0);
        let u = 1.0 - self.f64(); // In (0, 1].
        xm / u.powf(1.0 / alpha)
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }

    /// Picks a uniformly random element, or `None` when empty.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> Option<&'a T> {
        if items.is_empty() {
            None
        } else {
            Some(&items[self.below(items.len() as u64) as usize])
        }
    }
}

/// Derives a stable per-run seed from a base seed and a run index.
///
/// This is the seed-derivation rule the parallel experiment runner
/// ([`crate::runner`]) relies on: run `i` of a batch seeded with `base`
/// always receives the same derived seed, no matter how many worker
/// threads execute the batch or in which order runs complete. The mix is
/// one SplitMix64 finalization round over `base` and a golden-ratio
/// spread of the index, so neighbouring indices land in unrelated parts
/// of the seed space (adjacent raw seeds would correlate the first few
/// xoshiro outputs).
///
/// The exact output values are pinned by tests — changing this function
/// changes every derived experiment result, so treat it as a wire format.
///
/// # Examples
///
/// ```
/// use zombieland_simcore::rng::derive_seed;
///
/// assert_eq!(derive_seed(42, 0), derive_seed(42, 0));
/// assert_ne!(derive_seed(42, 0), derive_seed(42, 1));
/// assert_ne!(derive_seed(42, 0), derive_seed(43, 0));
/// ```
pub const fn derive_seed(base: u64, index: u64) -> u64 {
    let mut z = base ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A Zipf(θ) sampler over ranks `0..n`, using the rejection-inversion
/// method so construction is O(1) and sampling O(1) expected.
///
/// Rank 0 is the most popular item. `theta` near 0 approaches uniform;
/// `theta` near 1 is the classic web/memcached skew.
#[derive(Clone, Debug)]
pub struct Zipf {
    n: u64,
    theta: f64,
    h_x1: f64,
    h_n: f64,
}

impl Zipf {
    /// Creates a sampler over `n` ranks with exponent `theta`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`, or if `theta` is not in `(0, 1) ∪ (1, ∞)`
    /// (the harmonic integral below is undefined at exactly 1; use e.g.
    /// 0.99).
    pub fn new(n: u64, theta: f64) -> Self {
        assert!(n > 0, "need at least one rank");
        assert!(theta > 0.0 && theta != 1.0, "theta must be > 0 and != 1");
        let h = |x: f64| (x.powf(1.0 - theta) - 1.0) / (1.0 - theta);
        Zipf {
            n,
            theta,
            h_x1: h(1.5) - 1.0,
            h_n: h(n as f64 + 0.5),
        }
    }

    /// Samples a rank in `0..n`.
    pub fn sample(&self, rng: &mut DetRng) -> u64 {
        let h_inv = |x: f64| (1.0 + x * (1.0 - self.theta)).powf(1.0 / (1.0 - self.theta));
        loop {
            let u = self.h_x1 + rng.f64() * (self.h_n - self.h_x1);
            let x = h_inv(u);
            let k = (x + 0.5).floor().max(1.0).min(self.n as f64);
            // Accept with the ratio of the true mass to the envelope.
            let h = |y: f64| (y.powf(1.0 - self.theta) - 1.0) / (1.0 - self.theta);
            let left = h(k - 0.5);
            let right = h(k + 0.5);
            if u >= left && u <= right || rng.f64() < (right - left) / (k.powf(-self.theta)) {
                return k as u64 - 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_streams() {
        let mut a = DetRng::new(7);
        let mut b = DetRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = DetRng::new(8);
        assert_ne!(DetRng::new(7).next_u64(), c.next_u64());
    }

    #[test]
    fn zero_seed_is_usable() {
        let mut r = DetRng::new(0);
        // The all-zero state would yield only zeros; SplitMix prevents it.
        assert!((0..8).map(|_| r.next_u64()).any(|v| v != 0));
    }

    #[test]
    fn below_is_in_range_and_covers() {
        let mut r = DetRng::new(1);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            let v = r.below(8);
            assert!(v < 8);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn f64_bounds_and_mean() {
        let mut r = DetRng::new(2);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let v = r.f64();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} too far from 0.5");
    }

    #[test]
    fn exponential_mean() {
        let mut r = DetRng::new(3);
        let rate = 2.0;
        let mean: f64 = (0..20_000).map(|_| r.exponential(rate)).sum::<f64>() / 20_000.0;
        assert!((mean - 0.5).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn pareto_is_heavy_tailed_above_scale() {
        let mut r = DetRng::new(4);
        for _ in 0..1_000 {
            assert!(r.pareto(3.0, 1.5) >= 3.0);
        }
    }

    #[test]
    fn zipf_rank0_is_most_popular() {
        let mut r = DetRng::new(5);
        let z = Zipf::new(1_000, 0.99);
        let mut counts = vec![0u32; 1_000];
        for _ in 0..50_000 {
            counts[z.sample(&mut r) as usize] += 1;
        }
        // Rank 0 should dominate rank 100 by a wide margin under theta=0.99.
        assert!(
            counts[0] > counts[100] * 5,
            "{} vs {}",
            counts[0],
            counts[100]
        );
        // And the head should hold most of the mass.
        let head: u32 = counts[..100].iter().sum();
        assert!(head as f64 > 0.5 * 50_000.0);
    }

    #[test]
    fn shuffle_permutes() {
        let mut r = DetRng::new(6);
        let mut v: Vec<u32> = (0..100).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(
            v, sorted,
            "shuffle left the slice sorted (astronomically unlikely)"
        );
    }

    #[test]
    fn fork_streams_diverge() {
        let mut parent = DetRng::new(9);
        let mut c1 = parent.fork();
        let mut c2 = parent.fork();
        assert_ne!(c1.next_u64(), c2.next_u64());
    }

    #[test]
    fn derive_seed_is_stable_and_spreads() {
        // Pinned values: derive_seed is a wire format — if these change,
        // every derived experiment result changes with them.
        assert_eq!(derive_seed(0, 0), 0xE220_A839_7B1D_CDAF);
        assert_eq!(derive_seed(42, 0), 0xBDD7_3226_2FEB_6E95);
        assert_eq!(derive_seed(42, 1), 0x28EF_E333_B266_F103);
        // Distinctness across a realistic grid of bases and indices.
        let mut seen = std::collections::HashSet::new();
        for base in 0..64u64 {
            for index in 0..64u64 {
                assert!(seen.insert(derive_seed(base, index)));
            }
        }
    }

    #[test]
    fn choose_empty_is_none() {
        let mut r = DetRng::new(10);
        let empty: [u8; 0] = [];
        assert!(r.choose(&empty).is_none());
        assert_eq!(r.choose(&[42]), Some(&42));
    }
}
