//! Deterministic parallel execution of independent simulation runs.
//!
//! Every experiment in the workspace is a batch of *independent*
//! simulations: the Fig. 10 policy×profile×trace grid, the Table 1/2
//! local-percentage sweeps, the ablation suite. Each run is a pure
//! function of its inputs (seeded [`crate::DetRng`], virtual
//! [`crate::SimTime`] clock, no OS entropy or wall-clock reads), so the
//! batch can fan out across threads without changing a single output
//! bit: results are collected *by index*, never by completion order, and
//! per-run seeds come from [`crate::rng::derive_seed`] rather than any
//! shared RNG stream.
//!
//! The implementation uses `std::thread::scope` — plain std, keeping the
//! workspace's no-external-dependencies rule — with a shared atomic
//! cursor handing out run indices. Worker count changes scheduling only;
//! a panic in any run propagates to the caller once the scope joins.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// The number of worker threads to use when the caller does not say:
/// the machine's available parallelism, or 1 if that cannot be probed.
pub fn available_jobs() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Runs `count` independent jobs, `f(index)` each, on up to `jobs`
/// worker threads, returning results ordered by index.
///
/// `f` must be a pure function of its index (plus captured immutable
/// state) for the determinism guarantee to hold; the function signature
/// (`Fn` + `Sync`, results `Send`) enforces the sharing rules, and
/// index-ordered collection erases scheduling order from the output.
///
/// `jobs == 1` (or a single job) degenerates to a plain serial loop on
/// the calling thread — byte-identical to what the scoped workers
/// produce, which tests assert.
pub fn run_indexed<T, F>(jobs: usize, count: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let jobs = jobs.max(1).min(count.max(1));
    if jobs <= 1 {
        return (0..count).map(f).collect();
    }
    let mut slots: Vec<Option<T>> = Vec::with_capacity(count);
    slots.resize_with(count, || None);
    let slots = Mutex::new(slots);
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= count {
                    break;
                }
                let result = f(i);
                slots.lock().expect("no poisoned result slots")[i] = Some(result);
            });
        }
    });
    slots
        .into_inner()
        .expect("scope joined all workers")
        .into_iter()
        .map(|r| r.expect("every index was produced"))
        .collect()
}

/// Runs a batch of one-shot closures on up to `jobs` threads, returning
/// results in batch order.
///
/// The closure-per-run form suits heterogeneous batches (e.g. "run these
/// four policies, then these two sweeps"); for uniform grids prefer
/// [`run_indexed`].
pub fn run_batch<T, F>(jobs: usize, tasks: Vec<F>) -> Vec<T>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    let count = tasks.len();
    if jobs.max(1) <= 1 || count <= 1 {
        return tasks.into_iter().map(|t| t()).collect();
    }
    // FnOnce closures must be *taken* by exactly one worker; a mutex'd
    // Option per slot hands ownership across the scope boundary.
    let tasks: Vec<Mutex<Option<F>>> = tasks.into_iter().map(|t| Mutex::new(Some(t))).collect();
    run_indexed(jobs, count, |i| {
        let task = tasks[i]
            .lock()
            .expect("no poisoned task slots")
            .take()
            .expect("each task runs exactly once");
        task()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::derive_seed;
    use crate::DetRng;

    /// A stand-in for a simulation: hash a few thousand RNG draws.
    fn fake_sim(seed: u64) -> u64 {
        let mut rng = DetRng::new(seed);
        (0..5_000).fold(0u64, |acc, _| acc.wrapping_add(rng.next_u64()))
    }

    #[test]
    fn results_are_index_ordered_and_jobs_invariant() {
        let serial = run_indexed(1, 40, |i| fake_sim(derive_seed(99, i as u64)));
        for jobs in [2, 3, 8, 64] {
            let parallel = run_indexed(jobs, 40, |i| fake_sim(derive_seed(99, i as u64)));
            assert_eq!(serial, parallel, "jobs={jobs} must not change results");
        }
    }

    #[test]
    fn batch_runs_every_closure_once() {
        use std::sync::atomic::AtomicU64;
        let calls = AtomicU64::new(0);
        let tasks: Vec<_> = (0..17)
            .map(|i| {
                let calls = &calls;
                move || {
                    calls.fetch_add(1, Ordering::Relaxed);
                    i * 2
                }
            })
            .collect();
        let out = run_batch(4, tasks);
        assert_eq!(out, (0..17).map(|i| i * 2).collect::<Vec<_>>());
        assert_eq!(calls.load(Ordering::Relaxed), 17);
    }

    #[test]
    fn empty_and_single_batches_work() {
        let none: Vec<u32> = run_indexed(8, 0, |_| unreachable!());
        assert!(none.is_empty());
        assert_eq!(run_indexed(8, 1, |i| i), vec![0]);
        let empty: Vec<fn() -> u32> = Vec::new();
        assert!(run_batch(8, empty).is_empty());
    }

    #[test]
    fn worker_panic_propagates() {
        let caught = std::panic::catch_unwind(|| {
            run_indexed(4, 8, |i| {
                if i == 5 {
                    panic!("boom");
                }
                i
            })
        });
        assert!(caught.is_err());
    }
}
