//! Deterministic parallel execution of independent simulation runs.
//!
//! Every experiment in the workspace is a batch of *independent*
//! simulations: the Fig. 10 policy×profile×trace grid, the Table 1/2
//! local-percentage sweeps, the ablation suite. Each run is a pure
//! function of its inputs (seeded [`crate::DetRng`], virtual
//! [`crate::SimTime`] clock, no OS entropy or wall-clock reads), so the
//! batch can fan out across threads without changing a single output
//! bit: results are collected *by index*, never by completion order, and
//! per-run seeds come from [`crate::rng::derive_seed`] rather than any
//! shared RNG stream.
//!
//! The implementation uses `std::thread::scope` — plain std, keeping the
//! workspace's no-external-dependencies rule — with a shared atomic
//! cursor handing out run indices. Worker count changes scheduling only;
//! a panic in any run propagates to the caller once the scope joins.
//!
//! Two properties keep the fan-out from *costing* time at small per-run
//! budgets:
//!
//! * **Lock-free result collection.** Each result lands in its own
//!   [`UnsafeCell`] slot. The atomic cursor hands every index to exactly
//!   one worker, so slot writes are disjoint by construction and need no
//!   lock; the scope join sequences all writes before the caller reads
//!   the slots back.
//! * **A shared worker budget.** Nested fan-outs (an experiment grid
//!   whose cells fan out again) *split* the inherited worker count
//!   instead of multiplying it: a top-level `run_indexed(jobs = N, ..)`
//!   grants the whole call tree a budget of `N` live workers, and each
//!   worker passes an equal share to whatever it runs. Total live worker
//!   threads never exceed the top-level `jobs`, at any nesting depth.

use std::cell::{Cell, UnsafeCell};
use std::sync::atomic::{AtomicUsize, Ordering};

thread_local! {
    /// The worker budget this thread may spend on fan-outs. `None`
    /// outside any runner scope, meaning the next `run_indexed` call is
    /// top-level and its `jobs` argument *is* the budget; `Some(n)`
    /// inside a worker, meaning nested calls may keep at most `n`
    /// workers (this thread included) live.
    static BUDGET: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Restores a thread's previous budget when a fan-out ends or unwinds.
struct BudgetGuard(Option<usize>);

impl Drop for BudgetGuard {
    fn drop(&mut self) {
        BUDGET.with(|b| b.set(self.0));
    }
}

/// The number of worker threads to use when nothing configures one: the
/// machine's available parallelism (1 if that cannot be probed).
///
/// Configuration overrides (`--jobs`, `ZL_JOBS`, a scenario file's
/// `jobs` key) are resolved by the `zombieland-core` scenario layer,
/// which falls back to this probe — simcore itself never reads the
/// environment, so nested fan-outs stay a pure function of their
/// arguments.
pub fn available_jobs() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// The worker budget visible to the calling thread: the inherited share
/// when called from inside a `run_indexed` worker (or under
/// [`with_thread_budget`]), else 1.
///
/// Long-lived helpers that spawn their *own* threads — e.g. a sharded
/// simulation's per-shard scan crew — use this to size themselves so
/// the whole process stays within the top-level `--jobs` grant: a grid
/// cell running on a share of 1 sees `thread_budget() == 1` and stays
/// serial, while a lone full-scale run launched with `--jobs 8` (via
/// [`with_thread_budget`]) may keep up to 8 threads live.
pub fn thread_budget() -> usize {
    BUDGET.with(|b| b.get()).unwrap_or(1)
}

/// Runs `f` with this thread's worker budget set to `budget`, restoring
/// the previous budget afterwards (also on unwind).
///
/// This is the entry point for granting a *single* run a multi-thread
/// budget without fanning out over run indices: `run_indexed` splits a
/// budget across grid cells, `with_thread_budget` hands one to a lone
/// call tree. Nested `run_indexed` calls and [`thread_budget`] readers
/// both observe the grant.
pub fn with_thread_budget<R>(budget: usize, f: impl FnOnce() -> R) -> R {
    let _restore = BudgetGuard(BUDGET.with(|b| b.replace(Some(budget.max(1)))));
    f()
}

/// One result slot per run index, written without locks.
///
/// Safety argument (why the `Sync` impl below is sound): indices come
/// from a single `fetch_add` cursor, so each index — and therefore each
/// cell — is handed to exactly one worker, and no two threads ever touch
/// the same cell. The caller only reads the cells after
/// `std::thread::scope` joins every worker, which happens-before the
/// reads. On unwind the `Vec` drops each cell's contents normally.
struct Slots<T>(Vec<UnsafeCell<Option<T>>>);

// SAFETY: disjoint-index write discipline plus the scope-join barrier,
// as argued on the struct.
unsafe impl<T: Send> Sync for Slots<T> {}

impl<T> Slots<T> {
    fn new(count: usize) -> Self {
        Slots((0..count).map(|_| UnsafeCell::new(None)).collect())
    }

    /// Stores the result for index `i`.
    ///
    /// # Safety
    ///
    /// The caller must be the one worker the cursor handed index `i` to.
    unsafe fn put(&self, i: usize, value: T) {
        *self.0[i].get() = Some(value);
    }

    /// Consumes the table after every worker has joined.
    fn into_results(self) -> Vec<T> {
        self.0
            .into_iter()
            .map(|c| c.into_inner().expect("every index was produced"))
            .collect()
    }
}

/// Runs `count` independent jobs, `f(index)` each, on up to `jobs`
/// worker threads, returning results ordered by index.
///
/// `f` must be a pure function of its index (plus captured immutable
/// state) for the determinism guarantee to hold; the function signature
/// (`Fn` + `Sync`, results `Send`) enforces the sharing rules, and
/// index-ordered collection erases scheduling order from the output.
///
/// `jobs == 1` (or a single job) degenerates to a plain serial loop on
/// the calling thread — byte-identical to what the scoped workers
/// produce, which tests assert.
///
/// The calling thread participates as a worker, so `jobs = N` means `N`
/// live workers, not `N` spawned threads plus an idle caller. When
/// called from inside another `run_indexed` worker, `jobs` is clamped to
/// that worker's budget share and the share is split further among the
/// nested workers — see the module docs.
pub fn run_indexed<T, F>(jobs: usize, count: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let inherited = BUDGET.with(|b| b.get());
    // The budget is the total number of live workers this call tree may
    // use: the inherited share when nested, else this call's own `jobs`.
    let total = inherited.unwrap_or_else(|| jobs.max(1));
    let workers = total.min(jobs.max(1)).min(count.max(1));
    if workers <= 1 {
        // Serial path. The budget is deliberately left untouched: under
        // `jobs = 1` a nested call may still use its own `jobs`, and
        // under an exhausted share (`Some(1)`) nested calls stay serial.
        return (0..count).map(f).collect();
    }
    // Each worker inherits an equal share of the budget, so nested
    // fan-outs split the worker count instead of multiplying it:
    // `workers` live threads each owning `total / workers` keeps the
    // whole tree at `workers · floor(total / workers) ≤ total`.
    let share = (total / workers).max(1);
    let slots = Slots::new(count);
    let cursor = AtomicUsize::new(0);
    let worker = || {
        let _restore = BudgetGuard(BUDGET.with(|b| b.replace(Some(share))));
        loop {
            let i = cursor.fetch_add(1, Ordering::Relaxed);
            if i >= count {
                break;
            }
            let result = f(i);
            // SAFETY: the cursor handed index `i` to this worker alone
            // (see `Slots`).
            unsafe { slots.put(i, result) };
        }
    };
    std::thread::scope(|scope| {
        for _ in 1..workers {
            scope.spawn(worker);
        }
        // The calling thread is worker 0: it would otherwise idle at the
        // scope join while a spawned thread burned a core on its behalf.
        worker();
    });
    slots.into_results()
}

/// One task slot per batch index; ownership is *taken* (not locked) by
/// the single worker the cursor hands that index to.
///
/// Same disjoint-index safety argument as [`Slots`]: one worker per
/// index, scope join before any further access, and the `Vec` drops
/// un-taken tasks normally on unwind.
struct Tasks<F>(Vec<UnsafeCell<Option<F>>>);

// SAFETY: disjoint-index take discipline, as argued on the struct.
unsafe impl<F: Send> Sync for Tasks<F> {}

impl<F> Tasks<F> {
    /// Takes ownership of task `i`.
    ///
    /// # Safety
    ///
    /// The caller must be the one worker the cursor handed index `i` to.
    unsafe fn take(&self, i: usize) -> F {
        (*self.0[i].get())
            .take()
            .expect("each task runs exactly once")
    }
}

/// Runs a batch of one-shot closures on up to `jobs` threads, returning
/// results in batch order.
///
/// The closure-per-run form suits heterogeneous batches (e.g. "run these
/// four policies, then these two sweeps"); for uniform grids prefer
/// [`run_indexed`]. Each closure is handed to its worker through the
/// same lock-free disjoint-index mechanism the result slots use — no
/// per-task mutex.
pub fn run_batch<T, F>(jobs: usize, tasks: Vec<F>) -> Vec<T>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    let count = tasks.len();
    let tasks = Tasks(
        tasks
            .into_iter()
            .map(|t| UnsafeCell::new(Some(t)))
            .collect(),
    );
    run_indexed(jobs, count, |i| {
        // SAFETY: the cursor hands index `i` to exactly one worker (see
        // `Tasks`), so this is the only `take` of slot `i`.
        let task = unsafe { tasks.take(i) };
        task()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::derive_seed;
    use crate::DetRng;
    use std::collections::HashSet;
    use std::sync::Mutex;
    use std::thread::ThreadId;

    /// A stand-in for a simulation: hash a few thousand RNG draws.
    fn fake_sim(seed: u64) -> u64 {
        let mut rng = DetRng::new(seed);
        (0..5_000).fold(0u64, |acc, _| acc.wrapping_add(rng.next_u64()))
    }

    #[test]
    fn results_are_index_ordered_and_jobs_invariant() {
        let serial = run_indexed(1, 40, |i| fake_sim(derive_seed(99, i as u64)));
        for jobs in [2, 3, 8, 64] {
            let parallel = run_indexed(jobs, 40, |i| fake_sim(derive_seed(99, i as u64)));
            assert_eq!(serial, parallel, "jobs={jobs} must not change results");
        }
    }

    #[test]
    fn batch_runs_every_closure_once() {
        use std::sync::atomic::AtomicU64;
        let calls = AtomicU64::new(0);
        let tasks: Vec<_> = (0..17)
            .map(|i| {
                let calls = &calls;
                move || {
                    calls.fetch_add(1, Ordering::Relaxed);
                    i * 2
                }
            })
            .collect();
        let out = run_batch(4, tasks);
        assert_eq!(out, (0..17).map(|i| i * 2).collect::<Vec<_>>());
        assert_eq!(calls.load(Ordering::Relaxed), 17);
    }

    #[test]
    fn empty_and_single_batches_work() {
        let none: Vec<u32> = run_indexed(8, 0, |_| unreachable!());
        assert!(none.is_empty());
        assert_eq!(run_indexed(8, 1, |i| i), vec![0]);
        let empty: Vec<fn() -> u32> = Vec::new();
        assert!(run_batch(8, empty).is_empty());
    }

    #[test]
    fn worker_panic_propagates() {
        let caught = std::panic::catch_unwind(|| {
            run_indexed(4, 8, |i| {
                if i == 5 {
                    panic!("boom");
                }
                i
            })
        });
        assert!(caught.is_err());
    }

    #[test]
    fn batch_worker_panic_drops_untaken_tasks() {
        // A panicking batch must not leak or double-run the remaining
        // closures: the slot table drops un-taken tasks on unwind.
        let tasks: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..8usize)
            .map(|i| {
                Box::new(move || {
                    if i == 3 {
                        panic!("boom");
                    }
                    i
                }) as Box<dyn FnOnce() -> usize + Send>
            })
            .collect();
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| run_batch(2, tasks)));
        assert!(caught.is_err());
    }

    /// Records every distinct thread that executed a closure. Thread IDs
    /// are never reused while the process lives, so the set size bounds
    /// the peak number of live workers from above.
    fn record(threads: &Mutex<HashSet<ThreadId>>) {
        threads
            .lock()
            .expect("no poisoned thread set")
            .insert(std::thread::current().id());
    }

    #[test]
    fn thread_budget_reflects_grants_and_shares() {
        // Outside any scope the budget defaults to 1 (serial).
        assert_eq!(thread_budget(), 1);
        // A direct grant is visible and restored afterwards.
        let seen = with_thread_budget(6, thread_budget);
        assert_eq!(seen, 6);
        assert_eq!(thread_budget(), 1);
        // Inside a fan-out each worker sees its split share.
        let shares = run_indexed(4, 4, |_| thread_budget());
        assert!(shares.iter().all(|&s| s == 1), "4 workers split 4 ways");
        // A zero grant clamps to 1 rather than wedging nested calls.
        assert_eq!(with_thread_budget(0, thread_budget), 1);
    }

    #[test]
    fn nested_fan_out_splits_the_budget() {
        let threads = Mutex::new(HashSet::new());
        let run = |outer_jobs, inner_jobs| {
            threads.lock().expect("no poisoned thread set").clear();
            run_indexed(outer_jobs, 6, |i| {
                record(&threads);
                run_indexed(inner_jobs, 5, |j| {
                    record(&threads);
                    fake_sim(derive_seed(i as u64, j as u64))
                })
            })
        };
        let serial = run(1, 1);
        for (outer, inner) in [(4, 8), (2, 2), (8, 1)] {
            let nested = run(outer, inner);
            assert_eq!(serial, nested, "outer={outer} inner={inner}");
            let used = threads.lock().expect("no poisoned thread set").len();
            assert!(
                used <= outer,
                "outer={outer} inner={inner}: {used} distinct workers exceed the budget"
            );
        }
    }

    #[test]
    fn budget_shares_split_across_wide_outer_items() {
        // Two outer items under jobs = 4 leave each worker a share of 2:
        // the inner fan-outs may go parallel, but the whole tree stays
        // within 4 live workers.
        let threads = Mutex::new(HashSet::new());
        run_indexed(4, 2, |i| {
            record(&threads);
            run_indexed(8, 6, |j| {
                record(&threads);
                fake_sim(derive_seed(i as u64, j as u64))
            })
        });
        let used = threads.lock().expect("no poisoned thread set").len();
        assert!(used <= 4, "{used} distinct workers exceed the budget of 4");
    }

    #[test]
    fn serial_top_level_does_not_pin_nested_calls() {
        // `jobs = 1` at the top level sets no budget, so a nested call
        // is free to use its own `jobs` — and still stays deterministic.
        let threads = Mutex::new(HashSet::new());
        let out = run_indexed(1, 2, |i| {
            run_indexed(3, 9, |j| {
                record(&threads);
                fake_sim(derive_seed(i as u64, j as u64))
            })
        });
        let serial = run_indexed(1, 2, |i| {
            run_indexed(1, 9, |j| fake_sim(derive_seed(i as u64, j as u64)))
        });
        assert_eq!(out, serial);
        let used = threads.lock().expect("no poisoned thread set").len();
        assert!(
            used <= 3,
            "{used} distinct workers exceed the inner jobs of 3"
        );
    }
}
