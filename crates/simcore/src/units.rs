//! Physical units used across the workspace: memory sizes, CPU cycles and
//! energy.

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// Size of a memory page in bytes (4 KiB, matching the paper's
/// micro-benchmark entries and the x86-64 base page size).
pub const PAGE_SIZE: u64 = 4096;

/// A byte count.
///
/// # Examples
///
/// ```
/// use zombieland_simcore::Bytes;
///
/// let vm = Bytes::gib(7);
/// assert_eq!(vm.pages().count(), 7 * 262_144);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Bytes(u64);

impl Bytes {
    /// Zero bytes.
    pub const ZERO: Bytes = Bytes(0);

    /// Builds from a raw byte count.
    pub const fn new(b: u64) -> Self {
        Bytes(b)
    }

    /// Builds from kibibytes.
    pub const fn kib(k: u64) -> Self {
        Bytes(k * 1024)
    }

    /// Builds from mebibytes.
    pub const fn mib(m: u64) -> Self {
        Bytes(m * 1024 * 1024)
    }

    /// Builds from gibibytes.
    pub const fn gib(g: u64) -> Self {
        Bytes(g * 1024 * 1024 * 1024)
    }

    /// The raw byte count.
    pub const fn get(self) -> u64 {
        self.0
    }

    /// The count as fractional GiB (for reporting).
    pub fn as_gib_f64(self) -> f64 {
        self.0 as f64 / (1024.0 * 1024.0 * 1024.0)
    }

    /// Number of whole pages this many bytes spans, rounding up.
    pub const fn pages(self) -> Pages {
        Pages(self.0.div_ceil(PAGE_SIZE))
    }

    /// Saturating subtraction.
    pub const fn saturating_sub(self, rhs: Bytes) -> Bytes {
        Bytes(self.0.saturating_sub(rhs.0))
    }

    /// Checked subtraction.
    pub const fn checked_sub(self, rhs: Bytes) -> Option<Bytes> {
        match self.0.checked_sub(rhs.0) {
            Some(v) => Some(Bytes(v)),
            None => None,
        }
    }

    /// Scales by a non-negative float, rounding to the nearest byte and
    /// saturating at `u64::MAX`.
    ///
    /// # Panics
    ///
    /// Panics if `k` is NaN or negative — a bad factor used to saturate
    /// silently to zero through the `as u64` cast.
    pub fn mul_f64(self, k: f64) -> Bytes {
        assert!(!k.is_nan(), "Bytes::mul_f64 called with NaN factor");
        assert!(k >= 0.0, "Bytes::mul_f64 called with negative factor {k}");
        Bytes((self.0 as f64 * k).round() as u64)
    }

    /// The smaller of two sizes.
    pub fn min(self, rhs: Bytes) -> Bytes {
        Bytes(self.0.min(rhs.0))
    }

    /// The larger of two sizes.
    pub fn max(self, rhs: Bytes) -> Bytes {
        Bytes(self.0.max(rhs.0))
    }
}

/// A page count.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Pages(u64);

impl Pages {
    /// Zero pages.
    pub const ZERO: Pages = Pages(0);

    /// Builds from a raw page count.
    pub const fn new(p: u64) -> Self {
        Pages(p)
    }

    /// The raw page count.
    pub const fn count(self) -> u64 {
        self.0
    }

    /// Total size in bytes.
    pub const fn bytes(self) -> Bytes {
        Bytes(self.0 * PAGE_SIZE)
    }

    /// Saturating subtraction.
    pub const fn saturating_sub(self, rhs: Pages) -> Pages {
        Pages(self.0.saturating_sub(rhs.0))
    }

    /// The smaller of two counts.
    pub fn min(self, rhs: Pages) -> Pages {
        Pages(self.0.min(rhs.0))
    }
}

/// A CPU cycle count (used to report replacement-policy costs as the paper
/// does in Fig. 8 bottom).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Cycles(u64);

impl Cycles {
    /// Zero cycles.
    pub const ZERO: Cycles = Cycles(0);

    /// Builds from a raw cycle count.
    pub const fn new(c: u64) -> Self {
        Cycles(c)
    }

    /// The raw cycle count.
    pub const fn get(self) -> u64 {
        self.0
    }

    /// Converts to a duration assuming the given core frequency in GHz.
    pub fn at_ghz(self, ghz: f64) -> crate::SimDuration {
        crate::SimDuration::from_secs_f64(self.0 as f64 / (ghz * 1e9))
    }
}

/// Electrical power in Watts.
#[derive(Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Watts(f64);

impl Watts {
    /// Zero power.
    pub const ZERO: Watts = Watts(0.0);

    /// Builds from a raw Watt value.
    pub fn new(w: f64) -> Self {
        debug_assert!(w.is_finite() && w >= 0.0, "power must be non-negative");
        Watts(w)
    }

    /// The raw Watt value.
    pub const fn get(self) -> f64 {
        self.0
    }

    /// Energy dissipated by drawing this power for `d`.
    pub fn over(self, d: crate::SimDuration) -> Joules {
        Joules(self.0 * d.as_secs_f64())
    }
}

/// Energy in Joules.
#[derive(Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Joules(f64);

impl Joules {
    /// Zero energy.
    pub const ZERO: Joules = Joules(0.0);

    /// Builds from a raw Joule value.
    pub fn new(j: f64) -> Self {
        debug_assert!(j.is_finite() && j >= 0.0, "energy must be non-negative");
        Joules(j)
    }

    /// The raw Joule value.
    pub const fn get(self) -> f64 {
        self.0
    }

    /// The value in kilowatt-hours (for datacenter-scale reporting).
    pub fn as_kwh(self) -> f64 {
        self.0 / 3.6e6
    }
}

macro_rules! impl_u64_arith {
    ($ty:ident) => {
        impl Add for $ty {
            type Output = $ty;
            fn add(self, rhs: $ty) -> $ty {
                $ty(self.0 + rhs.0)
            }
        }
        impl AddAssign for $ty {
            fn add_assign(&mut self, rhs: $ty) {
                self.0 += rhs.0;
            }
        }
        impl Sub for $ty {
            type Output = $ty;
            fn sub(self, rhs: $ty) -> $ty {
                $ty(self.0 - rhs.0)
            }
        }
        impl SubAssign for $ty {
            fn sub_assign(&mut self, rhs: $ty) {
                self.0 -= rhs.0;
            }
        }
        impl Mul<u64> for $ty {
            type Output = $ty;
            fn mul(self, rhs: u64) -> $ty {
                $ty(self.0 * rhs)
            }
        }
        impl Div<u64> for $ty {
            type Output = $ty;
            fn div(self, rhs: u64) -> $ty {
                $ty(self.0 / rhs)
            }
        }
        impl Sum for $ty {
            fn sum<I: Iterator<Item = $ty>>(iter: I) -> $ty {
                iter.fold($ty(0), |a, b| a + b)
            }
        }
    };
}

macro_rules! impl_f64_arith {
    ($ty:ident) => {
        impl Add for $ty {
            type Output = $ty;
            fn add(self, rhs: $ty) -> $ty {
                $ty(self.0 + rhs.0)
            }
        }
        impl AddAssign for $ty {
            fn add_assign(&mut self, rhs: $ty) {
                self.0 += rhs.0;
            }
        }
        impl Sub for $ty {
            type Output = $ty;
            fn sub(self, rhs: $ty) -> $ty {
                $ty(self.0 - rhs.0)
            }
        }
        impl Mul<f64> for $ty {
            type Output = $ty;
            fn mul(self, rhs: f64) -> $ty {
                $ty(self.0 * rhs)
            }
        }
        impl Div<f64> for $ty {
            type Output = $ty;
            fn div(self, rhs: f64) -> $ty {
                $ty(self.0 / rhs)
            }
        }
        impl Div<$ty> for $ty {
            type Output = f64;
            fn div(self, rhs: $ty) -> f64 {
                self.0 / rhs.0
            }
        }
        impl Sum for $ty {
            fn sum<I: Iterator<Item = $ty>>(iter: I) -> $ty {
                iter.fold($ty(0.0), |a, b| a + b)
            }
        }
    };
}

impl_u64_arith!(Bytes);
impl_u64_arith!(Pages);
impl_u64_arith!(Cycles);
impl_f64_arith!(Watts);
impl_f64_arith!(Joules);

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let b = self.0;
        if b >= 1 << 30 {
            write!(f, "{:.2}GiB", b as f64 / (1u64 << 30) as f64)
        } else if b >= 1 << 20 {
            write!(f, "{:.2}MiB", b as f64 / (1u64 << 20) as f64)
        } else if b >= 1 << 10 {
            write!(f, "{:.2}KiB", b as f64 / 1024.0)
        } else {
            write!(f, "{b}B")
        }
    }
}

impl fmt::Debug for Pages {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}pg", self.0)
    }
}

impl fmt::Debug for Cycles {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}cy", self.0)
    }
}

impl fmt::Debug for Watts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2}W", self.0)
    }
}

impl fmt::Debug for Joules {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2}J", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SimDuration;

    #[test]
    fn byte_constructors() {
        assert_eq!(Bytes::kib(1).get(), 1024);
        assert_eq!(Bytes::mib(1).get(), 1024 * 1024);
        assert_eq!(Bytes::gib(1).get(), 1 << 30);
    }

    #[test]
    fn page_rounding() {
        assert_eq!(Bytes::new(1).pages().count(), 1);
        assert_eq!(Bytes::new(4096).pages().count(), 1);
        assert_eq!(Bytes::new(4097).pages().count(), 2);
        assert_eq!(Bytes::ZERO.pages().count(), 0);
        assert_eq!(Pages::new(3).bytes().get(), 3 * 4096);
    }

    #[test]
    fn power_over_time_is_energy() {
        let e = Watts::new(100.0).over(SimDuration::from_secs(60));
        assert!((e.get() - 6_000.0).abs() < 1e-9);
        assert!((Joules::new(3.6e6).as_kwh() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cycles_at_frequency() {
        // 3 GHz: 3e9 cycles per second.
        let d = Cycles::new(3_000).at_ghz(3.0);
        assert_eq!(d.as_nanos(), 1_000);
    }

    #[test]
    fn arithmetic() {
        assert_eq!(Bytes::mib(2) + Bytes::mib(3), Bytes::mib(5));
        assert_eq!(Bytes::mib(5) - Bytes::mib(3), Bytes::mib(2));
        assert_eq!(Bytes::mib(2) * 3, Bytes::mib(6));
        assert_eq!(Bytes::mib(6) / 2, Bytes::mib(3));
        assert_eq!(Bytes::mib(1).mul_f64(0.5), Bytes::kib(512));
        assert_eq!(Bytes::mib(1).saturating_sub(Bytes::mib(2)), Bytes::ZERO);
        assert_eq!(Bytes::mib(1).checked_sub(Bytes::mib(2)), None);
    }

    #[test]
    #[should_panic(expected = "NaN factor")]
    fn mul_f64_rejects_nan() {
        let _ = Bytes::gib(1).mul_f64(f64::NAN);
    }

    #[test]
    #[should_panic(expected = "negative factor")]
    fn mul_f64_rejects_negative() {
        let _ = Bytes::gib(1).mul_f64(-1.0);
    }

    #[test]
    fn mul_f64_saturates_on_overflow() {
        assert_eq!(Bytes::gib(1).mul_f64(f64::INFINITY), Bytes::new(u64::MAX));
    }

    #[test]
    fn display_units() {
        assert_eq!(Bytes::new(12).to_string(), "12B");
        assert_eq!(Bytes::kib(2).to_string(), "2.00KiB");
        assert_eq!(Bytes::gib(16).to_string(), "16.00GiB");
    }
}
