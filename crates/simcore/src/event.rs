//! A deterministic discrete-event queue.

use core::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// A monotonic priority queue of timed events.
///
/// Events scheduled for the same instant pop in insertion order (FIFO), so
/// simulations are fully deterministic regardless of the payload type.
///
/// # Examples
///
/// ```
/// use zombieland_simcore::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_nanos(20), "late");
/// q.schedule(SimTime::from_nanos(10), "early");
/// assert_eq!(q.pop(), Some((SimTime::from_nanos(10), "early")));
/// assert_eq!(q.pop(), Some((SimTime::from_nanos(20), "late")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
}

#[derive(Debug)]
struct Entry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap but we want the earliest event
        // (and, within an instant, the lowest sequence number) on top.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Creates an empty queue whose backing heap can hold `capacity`
    /// events without reallocating — simulations that know their event
    /// count up front (a replayed trace plus a tick chain) schedule into
    /// pre-sized storage and never pay a mid-run `memcpy`.
    ///
    /// # Examples
    ///
    /// ```
    /// use zombieland_simcore::{EventQueue, SimTime};
    ///
    /// let mut q = EventQueue::with_capacity(2);
    /// let cap = q.capacity();
    /// assert!(cap >= 2);
    /// q.schedule(SimTime::ZERO, 'a');
    /// q.schedule(SimTime::ZERO, 'b');
    /// assert_eq!(q.capacity(), cap, "no reallocation while within capacity");
    /// ```
    pub fn with_capacity(capacity: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(capacity),
            seq: 0,
        }
    }

    /// Reserves space for at least `additional` more events.
    ///
    /// # Examples
    ///
    /// ```
    /// use zombieland_simcore::EventQueue;
    ///
    /// let mut q: EventQueue<u32> = EventQueue::new();
    /// q.reserve(1_000);
    /// assert!(q.capacity() >= 1_000);
    /// ```
    pub fn reserve(&mut self, additional: usize) {
        self.heap.reserve(additional);
    }

    /// Number of events the queue can hold without reallocating.
    pub fn capacity(&self) -> usize {
        self.heap.capacity()
    }

    /// Schedules `event` to fire at `at`.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry { at, seq, event });
    }

    /// Removes and returns the earliest event, or `None` when empty.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|e| (e.at, e.event))
    }

    /// The firing time of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// The earliest pending event without removing it.
    ///
    /// # Examples
    ///
    /// ```
    /// use zombieland_simcore::{EventQueue, SimTime};
    ///
    /// let mut q = EventQueue::new();
    /// assert_eq!(q.peek(), None);
    /// q.schedule(SimTime::from_nanos(20), "late");
    /// q.schedule(SimTime::from_nanos(10), "early");
    /// assert_eq!(q.peek(), Some((SimTime::from_nanos(10), &"early")));
    /// assert_eq!(q.len(), 2, "peek leaves the queue untouched");
    /// ```
    pub fn peek(&self) -> Option<(SimTime, &E)> {
        self.heap.peek().map(|e| (e.at, &e.event))
    }

    /// Number of pending events.
    ///
    /// # Examples
    ///
    /// ```
    /// use zombieland_simcore::{EventQueue, SimTime};
    ///
    /// let mut q = EventQueue::new();
    /// q.schedule(SimTime::ZERO, 1);
    /// q.schedule(SimTime::ZERO, 2);
    /// assert_eq!(q.len(), 2);
    /// q.pop();
    /// assert_eq!(q.len(), 1);
    /// ```
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    ///
    /// # Examples
    ///
    /// ```
    /// use zombieland_simcore::{EventQueue, SimTime};
    ///
    /// let mut q = EventQueue::new();
    /// assert!(q.is_empty());
    /// q.schedule(SimTime::ZERO, ());
    /// assert!(!q.is_empty());
    /// ```
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drops every pending event and resets the FIFO tie-break counter,
    /// keeping the allocated capacity. A cleared queue is observably
    /// identical to a freshly constructed one — the sequence-counter
    /// reset matters, since same-instant pop order depends on it —
    /// which is what lets per-thread pools recycle queues between
    /// simulation runs without changing a byte of output.
    ///
    /// # Examples
    ///
    /// ```
    /// use zombieland_simcore::{EventQueue, SimTime};
    ///
    /// let mut q = EventQueue::with_capacity(64);
    /// q.schedule(SimTime::ZERO, 'a');
    /// let cap = q.capacity();
    /// q.clear();
    /// assert!(q.is_empty());
    /// assert_eq!(q.capacity(), cap, "capacity survives the clear");
    /// ```
    pub fn clear(&mut self) {
        self.heap.clear();
        self.seq = 0;
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(30), 3);
        q.schedule(SimTime::from_nanos(10), 1);
        q.schedule(SimTime::from_nanos(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, [1, 2, 3]);
    }

    #[test]
    fn ties_pop_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_nanos(5);
        for i in 0..100 {
            q.schedule(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn with_capacity_never_reallocates_within_bound() {
        let mut q = EventQueue::with_capacity(256);
        let cap = q.capacity();
        assert!(cap >= 256);
        for i in 0..256 {
            q.schedule(SimTime::from_nanos(256 - i), i);
        }
        assert_eq!(q.capacity(), cap);
        // Still pops in time order: capacity is a perf knob, not a
        // behavior change.
        let order: Vec<u64> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..256).rev().collect::<Vec<_>>());
    }

    #[test]
    fn cleared_queue_behaves_like_fresh() {
        let mut recycled = EventQueue::new();
        let t = SimTime::from_nanos(5);
        for i in 0..50 {
            recycled.schedule(t, i);
        }
        while recycled.pop().is_some() {}
        recycled.clear();
        let mut fresh = EventQueue::new();
        for i in 0..50 {
            recycled.schedule(t, i);
            fresh.schedule(t, i);
        }
        // Same-instant FIFO order depends on the sequence counter; the
        // clear must reset it so recycled and fresh queues agree.
        let a: Vec<i32> = std::iter::from_fn(|| recycled.pop().map(|(_, e)| e)).collect();
        let b: Vec<i32> = std::iter::from_fn(|| fresh.pop().map(|(_, e)| e)).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn peek_and_len() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.schedule(SimTime::from_nanos(7), ());
        assert_eq!(q.len(), 1);
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(7)));
    }

    #[test]
    fn peek_returns_earliest_without_removing() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek(), None);
        q.schedule(SimTime::from_nanos(9), 'b');
        q.schedule(SimTime::from_nanos(4), 'a');
        assert_eq!(q.peek(), Some((SimTime::from_nanos(4), &'a')));
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some((SimTime::from_nanos(4), 'a')));
        assert_eq!(q.peek(), Some((SimTime::from_nanos(9), &'b')));
    }
}
