//! Deterministic simulation substrate shared by every Zombieland crate.
//!
//! The paper's evaluation mixes *timing* results (page-fault latencies,
//! migration durations) with *energy* results (Joules integrated over a
//! 29-day trace). Both are reproduced here on top of a single virtual
//! nanosecond clock ([`time::SimTime`]), a deterministic event queue
//! ([`event::EventQueue`]) and a seedable, dependency-free random number
//! generator ([`rng::DetRng`]). Nothing in the workspace reads wall-clock
//! time; re-running an experiment with the same seed reproduces every number
//! bit-for-bit.

pub mod event;
pub mod fasthash;
pub mod report;
pub mod rng;
pub mod runner;
pub mod stats;
pub mod time;
pub mod units;

pub use event::EventQueue;
pub use fasthash::{FastMap, FastSet};
pub use rng::{derive_seed, DetRng, Zipf};
pub use runner::{available_jobs, run_batch, run_indexed, thread_budget, with_thread_budget};
pub use time::{SimDuration, SimTime};
pub use units::{Bytes, Cycles, Joules, Pages, Watts, PAGE_SIZE};
