//! Virtual time: a nanosecond-resolution clock decoupled from wall time.

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant on the simulation timeline, in nanoseconds since simulation
/// start.
///
/// `SimTime` is a totally ordered, copyable newtype. Arithmetic with
/// [`SimDuration`] is checked in debug builds (overflow panics) and follows
/// the usual instant/duration algebra: `instant + duration = instant`,
/// `instant - instant = duration`.
///
/// # Examples
///
/// ```
/// use zombieland_simcore::{SimDuration, SimTime};
///
/// let t0 = SimTime::ZERO;
/// let t1 = t0 + SimDuration::from_micros(3);
/// assert_eq!(t1 - t0, SimDuration::from_nanos(3_000));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch.
    pub const ZERO: SimTime = SimTime(0);

    /// Builds an instant from nanoseconds since the epoch.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Nanoseconds since the epoch.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since the epoch, as a float (for reporting).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The duration elapsed since `earlier`, saturating to zero if `earlier`
    /// is in the future.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// The empty duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Builds a duration from nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Builds a duration from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Builds a duration from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Builds a duration from seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Builds a duration from minutes.
    pub const fn from_mins(m: u64) -> Self {
        SimDuration::from_secs(m * 60)
    }

    /// Builds a duration from hours.
    pub const fn from_hours(h: u64) -> Self {
        SimDuration::from_secs(h * 3_600)
    }

    /// Builds a duration from days.
    pub const fn from_days(d: u64) -> Self {
        SimDuration::from_secs(d * 86_400)
    }

    /// Builds a duration from fractional seconds, rounding to the nearest
    /// nanosecond and saturating at zero for negative inputs.
    pub fn from_secs_f64(s: f64) -> Self {
        SimDuration((s.max(0.0) * 1e9).round() as u64)
    }

    /// The duration in nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// The duration in microseconds (truncating).
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// The duration in milliseconds (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// The duration in seconds, as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }

    /// Scales the duration by an integer count, saturating at `u64::MAX`
    /// nanoseconds instead of overflowing. Cost models multiplying a
    /// per-row time by a row count reachable from the wire must use this
    /// rather than `*`, which panics in debug builds and wraps in release.
    pub const fn saturating_mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }

    /// Saturating addition.
    pub const fn saturating_add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }

    /// Scales the duration by a non-negative float, rounding to the nearest
    /// nanosecond and saturating at `u64::MAX` nanoseconds.
    ///
    /// # Panics
    ///
    /// Panics if `k` is NaN or negative. A bad scale factor used to
    /// saturate silently to zero through the `as u64` cast, corrupting
    /// whatever latency/energy total it fed; failing loudly here keeps
    /// the corruption out of the reports.
    pub fn mul_f64(self, k: f64) -> SimDuration {
        assert!(!k.is_nan(), "SimDuration::mul_f64 called with NaN factor");
        assert!(
            k >= 0.0,
            "SimDuration::mul_f64 called with negative factor {k}"
        );
        // `as u64` saturates at the type bounds, so +inf and overflowing
        // products clamp to u64::MAX rather than wrapping.
        SimDuration((self.0 as f64 * k).round() as u64)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;

    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;

    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;

    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;

    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;

    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;

    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;

    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Div<SimDuration> for SimDuration {
    type Output = f64;

    /// The ratio of two durations.
    ///
    /// # Panics
    ///
    /// Panics on a zero denominator: the NaN/inf it used to return
    /// propagated silently into report percentages.
    fn div(self, rhs: SimDuration) -> f64 {
        assert!(
            rhs.0 != 0,
            "SimDuration / SimDuration with zero denominator"
        );
        self.0 as f64 / rhs.0 as f64
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, |a, b| a + b)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}", SimDuration(self.0))
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns >= 1_000_000_000 {
            write!(f, "{:.3}s", ns as f64 / 1e9)
        } else if ns >= 1_000_000 {
            write!(f, "{:.3}ms", ns as f64 / 1e6)
        } else if ns >= 1_000 {
            write!(f, "{:.3}us", ns as f64 / 1e3)
        } else {
            write!(f, "{ns}ns")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instant_duration_algebra() {
        let t = SimTime::from_nanos(100);
        assert_eq!(t + SimDuration::from_nanos(50), SimTime::from_nanos(150));
        assert_eq!(SimTime::from_nanos(150) - t, SimDuration::from_nanos(50));
        assert_eq!(t - SimDuration::from_nanos(100), SimTime::ZERO);
    }

    #[test]
    fn conversions_round_trip() {
        assert_eq!(SimDuration::from_micros(3).as_nanos(), 3_000);
        assert_eq!(SimDuration::from_millis(2).as_micros(), 2_000);
        assert_eq!(SimDuration::from_secs(1).as_millis(), 1_000);
        assert_eq!(SimDuration::from_days(1).as_nanos(), 86_400_000_000_000);
        assert_eq!(SimDuration::from_hours(2), SimDuration::from_mins(120));
    }

    #[test]
    fn float_conversions() {
        assert_eq!(SimDuration::from_secs_f64(1.5).as_millis(), 1_500);
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert!((SimDuration::from_secs(3).as_secs_f64() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn scaling() {
        let d = SimDuration::from_secs(10);
        assert_eq!(d.mul_f64(0.5), SimDuration::from_secs(5));
        assert_eq!(d * 3, SimDuration::from_secs(30));
        assert_eq!(d / 2, SimDuration::from_secs(5));
        assert!((d / SimDuration::from_secs(4) - 2.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "NaN factor")]
    fn mul_f64_rejects_nan() {
        let _ = SimDuration::from_secs(1).mul_f64(f64::NAN);
    }

    #[test]
    #[should_panic(expected = "negative factor")]
    fn mul_f64_rejects_negative() {
        let _ = SimDuration::from_secs(1).mul_f64(-0.5);
    }

    #[test]
    fn saturating_mul_and_add_clamp() {
        assert_eq!(
            SimDuration::from_nanos(200).saturating_mul(3),
            SimDuration::from_nanos(600)
        );
        assert_eq!(
            SimDuration::from_nanos(200).saturating_mul(u64::MAX),
            SimDuration::from_nanos(u64::MAX)
        );
        assert_eq!(
            SimDuration::from_nanos(u64::MAX).saturating_add(SimDuration::from_secs(1)),
            SimDuration::from_nanos(u64::MAX)
        );
    }

    #[test]
    fn mul_f64_saturates_on_overflow() {
        assert_eq!(
            SimDuration::from_secs(1).mul_f64(f64::INFINITY),
            SimDuration::from_nanos(u64::MAX)
        );
        assert_eq!(
            SimDuration::from_nanos(u64::MAX).mul_f64(2.0),
            SimDuration::from_nanos(u64::MAX)
        );
    }

    #[test]
    #[should_panic(expected = "zero denominator")]
    fn ratio_of_zero_durations_panics() {
        let _ = SimDuration::from_secs(1) / SimDuration::ZERO;
    }

    #[test]
    fn saturating_ops() {
        let early = SimTime::from_nanos(5);
        let late = SimTime::from_nanos(9);
        assert_eq!(early.saturating_since(late), SimDuration::ZERO);
        assert_eq!(late.saturating_since(early), SimDuration::from_nanos(4));
        assert_eq!(
            SimDuration::from_nanos(3).saturating_sub(SimDuration::from_nanos(9)),
            SimDuration::ZERO
        );
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(SimDuration::from_nanos(7).to_string(), "7ns");
        assert_eq!(SimDuration::from_micros(7).to_string(), "7.000us");
        assert_eq!(SimDuration::from_millis(7).to_string(), "7.000ms");
        assert_eq!(SimDuration::from_secs(7).to_string(), "7.000s");
    }
}
