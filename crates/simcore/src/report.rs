//! Plain-text table rendering for the benchmark harnesses.
//!
//! Every table/figure harness in `zombieland-bench` prints its rows through
//! this module so the output visually matches the paper's tables and can be
//! diffed between runs.

use std::fmt::Write as _;

/// A column-aligned text table.
///
/// # Examples
///
/// ```
/// use zombieland_simcore::report::Table;
///
/// let mut t = Table::new("Demo", &["k", "v"]);
/// t.row(&["a".into(), "1".into()]);
/// let s = t.render();
/// assert!(s.contains("Demo"));
/// assert!(s.contains('a'));
/// ```
#[derive(Debug)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Table {
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count does not match the header count.
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match header width"
        );
        self.rows.push(cells.to_vec());
    }

    /// Renders the table to a string.
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let line = |out: &mut String, cells: &[String]| {
            for (i, cell) in cells.iter().enumerate() {
                let sep = if i + 1 == ncols { "\n" } else { "  " };
                let _ = write!(out, "{:<width$}{}", cell, sep, width = widths[i]);
            }
        };
        line(&mut out, &self.headers);
        let rule: usize = widths.iter().sum::<usize>() + 2 * (ncols - 1);
        let _ = writeln!(out, "{}", "-".repeat(rule));
        for row in &self.rows {
            line(&mut out, row);
        }
        out
    }

    /// Renders and prints to stdout.
    pub fn print(&self) {
        println!("{}", self.render());
    }
}

/// Formats a percentage the way the paper's tables do: `∞` for effectively
/// unusable configurations, `Nk%` for thousands of percent, plain otherwise.
pub fn fmt_penalty(pct: f64) -> String {
    if !pct.is_finite() || pct >= 100_000.0 {
        "inf".to_string()
    } else if pct >= 1_000.0 {
        format!("{:.0}k%", pct / 1_000.0)
    } else if pct >= 10.0 {
        format!("{pct:.1}%")
    } else {
        format!("{pct:.2}%")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("T", &["name", "value"]);
        t.row(&["short".into(), "1".into()]);
        t.row(&["a-much-longer-name".into(), "2".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert!(lines[0].contains("T"));
        // Header and both rows align on the second column.
        let col = lines[1].find("value").unwrap();
        assert_eq!(lines[3].chars().nth(col - 1), Some(' '));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn row_width_checked() {
        let mut t = Table::new("T", &["a", "b"]);
        t.row(&["only-one".into()]);
    }

    #[test]
    fn penalty_formatting() {
        assert_eq!(fmt_penalty(f64::INFINITY), "inf");
        assert_eq!(fmt_penalty(9_000.0), "9k%");
        assert_eq!(fmt_penalty(15.6), "15.6%");
        assert_eq!(fmt_penalty(0.04), "0.04%");
    }
}
