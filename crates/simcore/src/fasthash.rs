//! Deterministic fast hashing for hot-path integer-keyed maps.
//!
//! `std`'s default `RandomState` does two things wrong for the
//! simulator: SipHash costs ~50 ns per small-key lookup (the page-fault
//! path does several per fault), and its per-process random seed makes
//! map iteration order vary between runs. [`FxHasher64`] is the
//! multiply-rotate hash rustc uses for its own interning tables — a few
//! cycles per word, and fully deterministic, so any accidental
//! order-dependence shows up in tests instead of flaking.
//!
//! These maps are for *non-iterated* hot-path tables (lookup, insert,
//! remove). Where iteration order is observable, either keep a `BTreeMap`
//! or sort explicitly at the iteration site.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// The `FxHash` multiplier (a 64-bit golden-ratio-derived odd constant).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// A deterministic multiply-rotate hasher for small keys.
#[derive(Default)]
pub struct FxHasher64 {
    hash: u64,
}

impl FxHasher64 {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher64 {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            self.add(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }
}

/// A `HashMap` with the deterministic fast hasher.
pub type FastMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher64>>;

/// A `HashSet` with the deterministic fast hasher.
pub type FastSet<K> = HashSet<K, BuildHasherDefault<FxHasher64>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = FxHasher64::default();
        let mut b = FxHasher64::default();
        a.write_u64(0xDEAD_BEEF);
        b.write_u64(0xDEAD_BEEF);
        assert_eq!(a.finish(), b.finish());
        assert_ne!(a.finish(), 0);
    }

    #[test]
    fn distinct_keys_distinct_hashes() {
        // Not a collision-resistance claim — just a sanity check that
        // nearby integer keys spread.
        let h = |v: u64| {
            let mut x = FxHasher64::default();
            x.write_u64(v);
            x.finish()
        };
        let hashes: FastSet<u64> = (0..10_000).map(h).collect();
        assert_eq!(hashes.len(), 10_000);
    }

    #[test]
    fn map_basic_ops() {
        let mut m: FastMap<u64, u32> = FastMap::default();
        for i in 0..1_000u64 {
            m.insert(i, (i * 2) as u32);
        }
        for i in 0..1_000u64 {
            assert_eq!(m.get(&i), Some(&((i * 2) as u32)));
        }
        assert_eq!(m.remove(&500), Some(1_000));
        assert_eq!(m.len(), 999);
    }
}
