//! Property tests for the metric registry algebra the telemetry plane
//! leans on: `merge` must be order-independent, associative and have the
//! empty registry as identity (sharded scrape = merge in any order), and
//! `Histogram::quantile` must stay inside its bucket bounds and be
//! monotone in `q`. The exposition encoder must round-trip through its
//! parser for any registry.

use proptest::prelude::*;
use zombieland_obs::metrics::{Histogram, MetricRegistry};
use zombieland_obs::telemetry::{expose, hist_snapshot, parse_exposition};

/// The registry API takes `&'static str` names; draw from a fixed menu.
const NAMES: [&str; 4] = ["alpha.ops", "beta.depth", "gamma-lat", "delta_4"];

/// One recorded sample: which instrument, which name, what value.
#[derive(Clone, Copy, Debug)]
enum Sample {
    Counter(usize, u64),
    Gauge(usize, u64),
    Hist(usize, u64),
}

/// Metric values: full-range draws shifted down six bits. Instruments
/// running-sum their samples in a `u64`, so 63 samples must not overflow
/// it (63 × (2⁵⁸ − 1) < 2⁶⁴); the shift still exercises bucket edges up
/// to 2⁵⁸ − 1.
fn values() -> impl Strategy<Value = u64> {
    any::<u64>().prop_map(|v| v >> 6)
}

fn samples() -> impl Strategy<Value = Vec<Sample>> {
    let one = prop_oneof![
        (0..NAMES.len(), any::<u32>()).prop_map(|(n, v)| Sample::Counter(n, v as u64)),
        (0..NAMES.len(), values()).prop_map(|(n, v)| Sample::Gauge(n, v)),
        (0..NAMES.len(), values()).prop_map(|(n, v)| Sample::Hist(n, v)),
    ];
    prop::collection::vec(one, 0..64)
}

fn registry_of(samples: &[Sample]) -> MetricRegistry {
    let mut r = MetricRegistry::new();
    for &s in samples {
        match s {
            Sample::Counter(n, v) => r.counter_add(NAMES[n], v),
            Sample::Gauge(n, v) => r.gauge_set(NAMES[n], v),
            Sample::Hist(n, v) => r.hist_record(NAMES[n], v),
        }
    }
    r
}

/// Upper edge of the log₂ bucket holding `v` (0 lands on edge 0).
fn bucket_edge(v: u64) -> u64 {
    ((1u128 << (64 - v.leading_zeros())) - 1) as u64
}

/// A quantile in `[0, 1]` *inclusive* — the endpoints are the edge cases
/// worth hitting, and the shim's `Range<f64>` strategy is half-open.
fn quantiles() -> impl Strategy<Value = f64> {
    (0u64..1001).prop_map(|n| n as f64 / 1000.0)
}

proptest! {
    #[test]
    fn merge_is_order_independent(parts in prop::collection::vec(samples(), 0..6)) {
        let regs: Vec<MetricRegistry> = parts.iter().map(|p| registry_of(p)).collect();
        let mut forward = MetricRegistry::new();
        for r in &regs {
            forward.merge(r);
        }
        let mut backward = MetricRegistry::new();
        for r in regs.iter().rev() {
            backward.merge(r);
        }
        prop_assert_eq!(&forward, &backward);
        // The exported bytes — what the golden tests pin — match too.
        prop_assert_eq!(forward.to_json().pretty(), backward.to_json().pretty());
    }

    #[test]
    fn merge_is_associative(a in samples(), b in samples(), c in samples()) {
        let (ra, rb, rc) = (registry_of(&a), registry_of(&b), registry_of(&c));
        // (a ⊕ b) ⊕ c
        let mut left = MetricRegistry::new();
        left.merge(&ra);
        left.merge(&rb);
        let mut left_outer = MetricRegistry::new();
        left_outer.merge(&left);
        left_outer.merge(&rc);
        // a ⊕ (b ⊕ c)
        let mut right = MetricRegistry::new();
        right.merge(&rb);
        right.merge(&rc);
        let mut right_outer = MetricRegistry::new();
        right_outer.merge(&ra);
        right_outer.merge(&right);
        prop_assert_eq!(left_outer, right_outer);
    }

    #[test]
    fn empty_registry_is_merge_identity(s in samples()) {
        let r = registry_of(&s);
        let mut left = MetricRegistry::new();
        left.merge(&r);
        prop_assert_eq!(&left, &r, "empty ⊕ r = r");
        let mut right = r.clone();
        right.merge(&MetricRegistry::new());
        prop_assert_eq!(&right, &r, "r ⊕ empty = r");
    }

    #[test]
    fn quantile_stays_inside_bucket_bounds(
        values in prop::collection::vec(values(), 1..64),
        q in quantiles(),
    ) {
        let mut reg = MetricRegistry::new();
        for &v in &values {
            reg.hist_record("h", v);
        }
        let h = reg.histogram("h").unwrap();
        let answer = h.quantile(q).expect("non-empty");
        let lo = values.iter().copied().map(bucket_edge).min().unwrap();
        let hi = values.iter().copied().map(bucket_edge).max().unwrap();
        prop_assert!(answer >= lo, "quantile {answer} below lowest edge {lo}");
        prop_assert!(answer <= hi, "quantile {answer} above highest edge {hi}");
    }

    #[test]
    fn quantile_is_monotone_in_q(
        values in prop::collection::vec(values(), 1..64),
        q1 in quantiles(),
        q2 in quantiles(),
    ) {
        let (q1, q2) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        let mut reg = MetricRegistry::new();
        for &v in &values {
            reg.hist_record("h", v);
        }
        let h = reg.histogram("h").unwrap();
        prop_assert!(h.quantile(q1) <= h.quantile(q2));
    }

    #[test]
    fn empty_histogram_has_no_quantile(q in quantiles()) {
        prop_assert_eq!(Histogram::default().quantile(q), None);
    }

    #[test]
    fn exposition_round_trips(s in samples()) {
        let reg = registry_of(&s);
        let snap = parse_exposition(&expose(&reg)).expect("own exposition parses");
        for (name, v) in reg.counters() {
            let exposed = name.replace(['.', '-'], "_");
            prop_assert_eq!(snap.counters.get(exposed.as_str()).copied(), Some(v));
        }
        for (name, g) in reg.gauges() {
            let exposed = name.replace(['.', '-'], "_");
            let got = snap.gauges.get(exposed.as_str()).copied().expect("gauge present");
            prop_assert!((got - g.mean()).abs() <= g.mean().abs() * 1e-3 + 1e-3);
        }
        for (name, h) in reg.histograms() {
            let exposed = name.replace(['.', '-'], "_");
            let got = snap.histograms.get(exposed.as_str()).expect("histogram present");
            prop_assert_eq!(got, &hist_snapshot(h));
            prop_assert_eq!(got.quantile(0.5), h.quantile(0.5));
            prop_assert_eq!(got.quantile(0.99), h.quantile(0.99));
        }
    }
}
