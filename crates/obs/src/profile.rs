//! Wall-time phase profiling for the hot-path hunt.
//!
//! This is the one obs module that is *allowed* to read the wall clock:
//! it measures how long the host spends in each phase of a run so the
//! next optimisation targets the right loop. It never feeds back into
//! simulation state — spans record into process-global atomics that the
//! deterministic output paths never read — so enabling `--profile`
//! cannot change a single simulated byte.
//!
//! Accounting is **self-time**: each thread keeps a span stack, and
//! elapsed wall time is always attributed to the phase on top of the
//! stack at the moment it passed. Entering a nested span charges the
//! time so far to the parent, then switches attribution to the child;
//! leaving charges the child and switches back. A nanosecond is
//! therefore counted **at most once** no matter how spans nest, which is
//! what lets a profile report claim "phases sum to ≈ total run time"
//! instead of double-counting parents and children.
//!
//! Profiling is off by default and gated by one relaxed atomic load, so
//! instrumented loops cost ~nothing when disabled.

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Instant;

/// A profiled phase of the run. Variants double as accumulator indices.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(usize)]
pub enum Phase {
    /// Workload/trace generation before the event loop starts.
    TraceGen,
    /// Building the datacenter model and seeding the event queue.
    SimSetup,
    /// Job arrival handling (placement, admission) in the event loop.
    Arrivals,
    /// Job departure handling in the event loop.
    Departures,
    /// Consolidation scans (evacuate-and-zombify sweeps).
    Consolidation,
    /// Waking sleeping servers to place or reclaim.
    WakeUps,
    /// Periodic timeline sampling at tick events.
    Sampling,
    /// Hypervisor engine setup and teardown around a fault batch.
    HvSetup,
    /// The hypervisor remote-fault batch loop itself.
    FaultBatch,
    /// Replay client: encoding and writing request frames.
    ReplaySend,
    /// Replay client: reading and decoding response frames.
    ReplayRecv,
    /// Rendering tables and writing artifacts after the run.
    Render,
    /// One parallel scan round across the simulator's rack shards.
    ShardRound,
}

/// Every phase, in accumulator-index order.
pub const PHASES: [Phase; 13] = [
    Phase::TraceGen,
    Phase::SimSetup,
    Phase::Arrivals,
    Phase::Departures,
    Phase::Consolidation,
    Phase::WakeUps,
    Phase::Sampling,
    Phase::HvSetup,
    Phase::FaultBatch,
    Phase::ReplaySend,
    Phase::ReplayRecv,
    Phase::Render,
    Phase::ShardRound,
];

const PHASE_COUNT: usize = PHASES.len();

impl Phase {
    /// The snake_case spelling used in tables and `PROFILE_*.json`.
    pub fn name(self) -> &'static str {
        match self {
            Phase::TraceGen => "trace_gen",
            Phase::SimSetup => "sim_setup",
            Phase::Arrivals => "arrivals",
            Phase::Departures => "departures",
            Phase::Consolidation => "consolidation",
            Phase::WakeUps => "wake_ups",
            Phase::Sampling => "sampling",
            Phase::HvSetup => "hv_setup",
            Phase::FaultBatch => "fault_batch",
            Phase::ReplaySend => "replay_send",
            Phase::ReplayRecv => "replay_recv",
            Phase::Render => "render",
            Phase::ShardRound => "shard_round",
        }
    }
}

static ENABLED: AtomicBool = AtomicBool::new(false);

#[allow(clippy::declare_interior_mutable_const)]
const ZERO: AtomicU64 = AtomicU64::new(0);
static WALL_NS: [AtomicU64; PHASE_COUNT] = [ZERO; PHASE_COUNT];
static SPANS: [AtomicU64; PHASE_COUNT] = [ZERO; PHASE_COUNT];

thread_local! {
    static STACK: RefCell<SpanStack> = const { RefCell::new(SpanStack { frames: Vec::new(), last: None }) };
}

struct SpanStack {
    /// Phase indices of the open spans, innermost last.
    frames: Vec<usize>,
    /// When attribution last switched (span entry or exit).
    last: Option<Instant>,
}

impl SpanStack {
    /// Charges the time since `last` to the span currently on top.
    fn settle(&mut self, now: Instant) {
        if let (Some(&top), Some(last)) = (self.frames.last(), self.last) {
            let ns = now.duration_since(last).as_nanos() as u64;
            WALL_NS[top].fetch_add(ns, Ordering::Relaxed);
        }
        self.last = Some(now);
    }
}

/// Turns profiling on or off process-wide. Spans opened while disabled
/// stay no-ops even if profiling is enabled before they drop.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether profiling is on.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Zeroes all accumulators (call before a profiled run).
pub fn reset() {
    for a in &WALL_NS {
        a.store(0, Ordering::Relaxed);
    }
    for a in &SPANS {
        a.store(0, Ordering::Relaxed);
    }
}

/// Opens a span for `phase` on this thread. Time passing while this
/// guard is the innermost open span is attributed to `phase`; dropping
/// it resumes attribution to the enclosing span (if any).
#[must_use = "a span only measures while the guard is alive"]
pub fn span(phase: Phase) -> SpanGuard {
    if !enabled() {
        return SpanGuard { armed: false };
    }
    let idx = phase as usize;
    SPANS[idx].fetch_add(1, Ordering::Relaxed);
    STACK.with(|s| {
        let mut s = s.borrow_mut();
        s.settle(Instant::now());
        s.frames.push(idx);
    });
    SpanGuard { armed: true }
}

/// Closes its phase's span on drop (see [`span`]).
pub struct SpanGuard {
    armed: bool,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        STACK.with(|s| {
            let mut s = s.borrow_mut();
            s.settle(Instant::now());
            s.frames.pop();
            if s.frames.is_empty() {
                s.last = None;
            }
        });
    }
}

/// One phase's accumulated totals.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PhaseStat {
    /// Which phase.
    pub phase: Phase,
    /// Self-time attributed to the phase, in wall nanoseconds.
    pub wall_ns: u64,
    /// How many spans were opened for the phase.
    pub spans: u64,
}

/// Reads every phase that recorded at least one span, in index order.
pub fn snapshot() -> Vec<PhaseStat> {
    PHASES
        .iter()
        .map(|&phase| PhaseStat {
            phase,
            wall_ns: WALL_NS[phase as usize].load(Ordering::Relaxed),
            spans: SPANS[phase as usize].load(Ordering::Relaxed),
        })
        .filter(|s| s.spans > 0)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    /// One test function on purpose: the accumulators are process-global,
    /// and `cargo test` runs test functions in parallel.
    #[test]
    fn spans_partition_time_and_respect_the_enable_gate() {
        // Disabled: spans are free and record nothing.
        set_enabled(false);
        reset();
        {
            let _g = span(Phase::Arrivals);
            std::thread::sleep(Duration::from_millis(2));
        }
        assert!(snapshot().is_empty(), "disabled spans must not record");

        // Enabled, nested: child time comes out of the parent's account.
        set_enabled(true);
        reset();
        let start = Instant::now();
        {
            let _outer = span(Phase::FaultBatch);
            std::thread::sleep(Duration::from_millis(4));
            {
                let _inner = span(Phase::WakeUps);
                std::thread::sleep(Duration::from_millis(4));
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        let total = start.elapsed().as_nanos() as u64;
        let stats = snapshot();
        let get = |p: Phase| stats.iter().find(|s| s.phase == p).copied().unwrap();
        let outer = get(Phase::FaultBatch);
        let inner = get(Phase::WakeUps);
        assert_eq!(outer.spans, 1);
        assert_eq!(inner.spans, 1);
        assert!(inner.wall_ns >= Duration::from_millis(4).as_nanos() as u64);
        // Self-time: the sum of phases never exceeds covered wall time.
        let sum = outer.wall_ns + inner.wall_ns;
        assert!(
            sum <= total,
            "self-time must not double-count: {sum} > {total}"
        );
        // And the two phases together cover (almost) the whole window.
        assert!(
            sum >= Duration::from_millis(9).as_nanos() as u64,
            "phases should cover the slept time, got {sum}ns"
        );

        // An empty stack after all guards dropped: a fresh span still works.
        {
            let _g = span(Phase::Render);
        }
        assert_eq!(get(Phase::FaultBatch).wall_ns, outer.wall_ns);

        set_enabled(false);
        reset();
    }
}
