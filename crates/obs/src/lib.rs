//! Deterministic observability for the Zombieland simulation stack.
//!
//! Every crate in the workspace simulates on a virtual nanosecond clock
//! ([`zombieland_simcore::SimTime`]); this crate makes that simulation
//! *explainable* without making it *nondeterministic*. Three rules govern
//! everything here:
//!
//! 1. **Sim-time only.** Events are stamped with the emitting component's
//!    virtual clock, never the wall clock, so a trace is a pure function
//!    of the run's inputs and reproduces bit-for-bit.
//! 2. **Per-run capture.** A collector is installed around one simulation
//!    run on the thread that executes it ([`observe`]); the parallel
//!    runner's workers each capture their own run, and the caller merges
//!    the per-run results *by grid index*, erasing scheduling order.
//! 3. **Exact merge arithmetic.** Metrics are u64 counters, gauges and
//!    log₂-bucket histograms; [`MetricRegistry::merge`] is commutative and
//!    associative, so the merged registry is identical at any job count.
//!
//! When no collector is installed — or the installed level says off —
//! [`trace_event!`] drops events *before* formatting a single field:
//! instrumented hot paths pay one thread-local byte read.
//!
//! Export goes through the workspace's hand-rolled
//! [`zombieland_trace::json`] module: traces as JSONL (one compact object
//! per event), metrics as a single pretty JSON document plus a
//! human-readable [`zombieland_simcore::report::Table`].
//!
//! Two modules sit deliberately on the *other* side of the sim-time
//! wall: [`telemetry`] (live, sharded metrics for serving processes,
//! scraped while requests are in flight) and [`profile`] (wall-clock
//! phase timers for hot-path hunting). Both observe the host, never the
//! simulation, and nothing in the deterministic export paths reads them.

pub mod metrics;
pub mod profile;
pub mod runner;
pub mod sink;
pub mod telemetry;

pub use metrics::MetricRegistry;
pub use runner::run_indexed_obs;
pub use sink::{observe, ObsRun};
pub use telemetry::{Telemetry, TelemetryHandle};

use zombieland_simcore::SimTime;
use zombieland_trace::json::Value;

/// How much a run records.
///
/// The default is [`ObsLevel::Off`], under which instrumentation is a
/// no-op and simulation output is byte-identical to an uninstrumented
/// build.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord)]
pub enum ObsLevel {
    /// Record nothing; instrumentation points drop out before argument
    /// evaluation.
    #[default]
    Off,
    /// Record metrics (counters, gauges, histograms) but no trace events.
    Summary,
    /// Record metrics and the full sim-time-stamped event trace.
    Full,
}

impl ObsLevel {
    /// Parses the CLI spelling (`off`, `summary`, `full`).
    pub fn parse(s: &str) -> Option<ObsLevel> {
        match s {
            "off" => Some(ObsLevel::Off),
            "summary" => Some(ObsLevel::Summary),
            "full" => Some(ObsLevel::Full),
            _ => None,
        }
    }

    /// The CLI spelling.
    pub fn name(self) -> &'static str {
        match self {
            ObsLevel::Off => "off",
            ObsLevel::Summary => "summary",
            ObsLevel::Full => "full",
        }
    }
}

/// One field value on a trace event.
///
/// Only exactly-representable payloads: u64, strings and booleans. Float
/// measurements are carried as scaled integers by the instrumentation
/// sites (e.g. milliwatts), keeping the JSONL byte stream independent of
/// float-formatting quirks.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FieldValue {
    /// An unsigned integer.
    U64(u64),
    /// A string.
    Str(String),
    /// A boolean.
    Bool(bool),
}

impl From<u64> for FieldValue {
    fn from(v: u64) -> Self {
        FieldValue::U64(v)
    }
}

impl From<u32> for FieldValue {
    fn from(v: u32) -> Self {
        FieldValue::U64(v as u64)
    }
}

impl From<usize> for FieldValue {
    fn from(v: usize) -> Self {
        FieldValue::U64(v as u64)
    }
}

impl From<bool> for FieldValue {
    fn from(v: bool) -> Self {
        FieldValue::Bool(v)
    }
}

impl From<&str> for FieldValue {
    fn from(v: &str) -> Self {
        FieldValue::Str(v.to_string())
    }
}

impl From<String> for FieldValue {
    fn from(v: String) -> Self {
        FieldValue::Str(v)
    }
}

impl FieldValue {
    fn to_json(&self) -> Value {
        match self {
            FieldValue::U64(v) => Value::UInt(*v),
            FieldValue::Str(s) => Value::Str(s.clone()),
            FieldValue::Bool(b) => Value::Bool(*b),
        }
    }
}

/// One structured, sim-time-stamped trace event.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceEvent {
    /// When the event happened on the emitting component's virtual clock.
    pub at: SimTime,
    /// Grid index of the run that produced the event (stamped by
    /// [`ObsRun::tag_run`]; 0 for single-run captures).
    pub run: u64,
    /// The emitting subsystem (`"acpi"`, `"hypervisor"`, ...).
    pub target: &'static str,
    /// What happened (`"suspend"`, `"remote_fault"`, ...).
    pub kind: &'static str,
    /// Event payload, in emission order.
    pub fields: Vec<(&'static str, FieldValue)>,
}

impl TraceEvent {
    /// Renders the event as one compact JSON object (a JSONL line,
    /// without the trailing newline).
    pub fn to_jsonl(&self) -> String {
        let mut obj = vec![
            ("at".to_string(), Value::UInt(self.at.as_nanos())),
            ("run".to_string(), Value::UInt(self.run)),
            ("target".to_string(), Value::Str(self.target.to_string())),
            ("kind".to_string(), Value::Str(self.kind.to_string())),
        ];
        let fields = self
            .fields
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_json()))
            .collect();
        obj.push(("fields".to_string(), Value::Object(fields)));
        Value::Object(obj).compact()
    }
}

/// Emits a trace event if (and only if) the current thread has a
/// [`ObsLevel::Full`] collector installed. Field expressions are not
/// evaluated otherwise.
///
/// ```
/// use zombieland_obs::{observe, ObsLevel};
/// use zombieland_simcore::SimTime;
///
/// let ((), run) = observe(ObsLevel::Full, || {
///     zombieland_obs::trace_event!(SimTime::from_nanos(7), "demo", "ping",
///         "answer" => 42u64, "who" => "doctest");
/// });
/// assert_eq!(run.events.len(), 1);
/// assert_eq!(run.events[0].kind, "ping");
/// ```
#[macro_export]
macro_rules! trace_event {
    ($at:expr, $target:expr, $kind:expr $(, $k:literal => $v:expr)* $(,)?) => {
        if $crate::sink::trace_enabled() {
            $crate::sink::emit($crate::TraceEvent {
                at: $at,
                run: 0,
                target: $target,
                kind: $kind,
                fields: ::std::vec![$(($k, $crate::FieldValue::from($v))),*],
            });
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_parses_round_trip() {
        for level in [ObsLevel::Off, ObsLevel::Summary, ObsLevel::Full] {
            assert_eq!(ObsLevel::parse(level.name()), Some(level));
        }
        assert_eq!(ObsLevel::parse("verbose"), None);
    }

    #[test]
    fn event_jsonl_is_compact_and_parseable() {
        let e = TraceEvent {
            at: SimTime::from_nanos(1_234),
            run: 3,
            target: "acpi",
            kind: "suspend",
            fields: vec![("state", FieldValue::from("Sz")), ("ok", true.into())],
        };
        let line = e.to_jsonl();
        assert!(!line.contains('\n'));
        let back = zombieland_trace::json::parse(&line).unwrap();
        assert_eq!(back.get("at").and_then(|v| v.as_u64()), Some(1_234));
        assert_eq!(back.get("run").and_then(|v| v.as_u64()), Some(3));
        assert_eq!(
            back.get("fields").and_then(|f| f.get("state")),
            Some(&Value::Str("Sz".into()))
        );
    }
}
