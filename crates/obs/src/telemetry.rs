//! Live telemetry: sharded registries merged on scrape, plus a
//! Prometheus-style text exposition encoder and parser.
//!
//! The deterministic metric registry ([`crate::metrics`]) captures one
//! *run* and is exported after the run exits. A serving process —
//! `zombied` — needs the opposite: metrics that accumulate *while*
//! requests are in flight and can be read at any moment without
//! stopping the world. [`Telemetry`] provides that as a fixed set of
//! shards, each a [`MetricRegistry`] behind its own mutex. Every
//! connection (or worker thread) takes a [`TelemetryHandle`] bound to
//! one shard — round-robin over the shard set — so concurrent recorders
//! almost never contend, and a scrape merges all shards through the
//! existing order-independent [`MetricRegistry::merge`].
//!
//! Telemetry is **wall-clock-side** state: it lives next to sockets and
//! threads, never inside the simulation. The deterministic sim-time
//! registry and its byte-identical export contracts are untouched —
//! nothing here is reachable from an `observe` scope.
//!
//! [`expose`] renders a registry as Prometheus-style text (`# TYPE`
//! lines, one sample per line, stable sort order, std-only);
//! [`parse_exposition`] reads that text back into a [`Snapshot`] so
//! clients like `zlctl top` can diff consecutive scrapes.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use crate::metrics::{Histogram, MetricRegistry, HIST_BUCKETS};

/// Default shard count for a serving process: enough that a handful of
/// connection threads rarely share a shard, small enough that a scrape
/// stays cheap.
pub const DEFAULT_SHARDS: usize = 16;

/// A set of independently lockable metric shards.
pub struct Telemetry {
    shards: Vec<Mutex<MetricRegistry>>,
    next: AtomicUsize,
}

impl Telemetry {
    /// Creates a telemetry set with `shards` shards (at least one).
    pub fn new(shards: usize) -> Telemetry {
        Telemetry {
            shards: (0..shards.max(1))
                .map(|_| Mutex::new(MetricRegistry::new()))
                .collect(),
            next: AtomicUsize::new(0),
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Hands out a recorder bound to the next shard (round-robin), so
    /// per-connection recorders spread across the shard set.
    pub fn handle(self: &Arc<Self>) -> TelemetryHandle {
        let shard = self.next.fetch_add(1, Ordering::Relaxed) % self.shards.len();
        TelemetryHandle {
            telemetry: Arc::clone(self),
            shard,
        }
    }

    /// Merges every shard into one registry. Shard merge order is
    /// irrelevant ([`MetricRegistry::merge`] is commutative), so a
    /// scrape taken while other threads record is a valid point-in-time
    /// aggregate: each shard is locked once, counters only grow.
    pub fn scrape(&self) -> MetricRegistry {
        let mut merged = MetricRegistry::new();
        for shard in &self.shards {
            merged.merge(&shard.lock().expect("telemetry shard lock"));
        }
        merged
    }
}

/// A recorder bound to one shard of a [`Telemetry`] set.
pub struct TelemetryHandle {
    telemetry: Arc<Telemetry>,
    shard: usize,
}

impl TelemetryHandle {
    /// Runs `f` with the shard's registry locked — use to record a batch
    /// of related samples under one lock acquisition.
    pub fn with<R>(&self, f: impl FnOnce(&mut MetricRegistry) -> R) -> R {
        f(&mut self.telemetry.shards[self.shard]
            .lock()
            .expect("telemetry shard lock"))
    }

    /// Adds `v` to a counter on this handle's shard.
    pub fn counter_add(&self, name: &'static str, v: u64) {
        self.with(|reg| reg.counter_add(name, v));
    }

    /// Records a gauge sample on this handle's shard.
    pub fn gauge_set(&self, name: &'static str, v: u64) {
        self.with(|reg| reg.gauge_set(name, v));
    }

    /// Records a histogram sample on this handle's shard.
    pub fn hist_record(&self, name: &'static str, v: u64) {
        self.with(|reg| reg.hist_record(name, v));
    }

    /// The telemetry set this handle records into.
    pub fn telemetry(&self) -> &Arc<Telemetry> {
        &self.telemetry
    }
}

/// Maps a metric name to its exposition spelling: `[a-zA-Z0-9_:]` pass
/// through, everything else (the registry's `.` separators) becomes `_`.
pub fn sanitize_name(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

/// Formats a gauge value: integral means print as an integer, otherwise
/// three decimals — stable, locale-free output.
fn fmt_value(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 9e15 {
        format!("{}", v as i64)
    } else {
        format!("{v:.3}")
    }
}

/// Renders a registry as Prometheus-style exposition text.
///
/// Families appear counters-first, then gauges, then histograms, each
/// block alphabetical (the registry's `BTreeMap` order) — so two scrapes
/// of the same state are byte-identical. Counters and gauges are one
/// sample each (gauges expose the mean of their recorded samples);
/// histograms expose cumulative `_bucket{le="..."}` lines at the log₂
/// bucket upper edges, a `+Inf` bucket, `_sum` and `_count`.
pub fn expose(reg: &MetricRegistry) -> String {
    let mut out = String::new();
    for (name, v) in reg.counters() {
        let n = sanitize_name(name);
        let _ = writeln!(out, "# TYPE {n} counter");
        let _ = writeln!(out, "{n} {v}");
    }
    for (name, g) in reg.gauges() {
        let n = sanitize_name(name);
        let _ = writeln!(out, "# TYPE {n} gauge");
        let _ = writeln!(out, "{n} {}", fmt_value(g.mean()));
    }
    for (name, h) in reg.histograms() {
        let n = sanitize_name(name);
        let _ = writeln!(out, "# TYPE {n} histogram");
        let top = HIST_BUCKETS - h.buckets.iter().rev().take_while(|&&c| c == 0).count();
        let mut cum = 0u64;
        for (i, &c) in h.buckets[..top].iter().enumerate() {
            cum += c;
            let le = ((1u128 << i) - 1) as u64;
            let _ = writeln!(out, "{n}_bucket{{le=\"{le}\"}} {cum}");
        }
        let _ = writeln!(out, "{n}_bucket{{le=\"+Inf\"}} {}", h.count);
        let _ = writeln!(out, "{n}_sum {}", h.sum);
        let _ = writeln!(out, "{n}_count {}", h.count);
    }
    out
}

/// A histogram read back from exposition text: cumulative counts at the
/// emitted bucket edges (the `+Inf` bucket is folded into `count`).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HistSnapshot {
    /// `(upper_edge, cumulative_count)` in emission order.
    pub cum: Vec<(u64, u64)>,
    /// Sum of all samples.
    pub sum: u64,
    /// Total samples.
    pub count: u64,
}

impl HistSnapshot {
    /// The `q`-quantile resolved to its bucket's upper edge (`None` when
    /// empty) — the same resolution [`Histogram::quantile`] gives.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        for &(le, cum) in &self.cum {
            if cum >= rank {
                return Some(le);
            }
        }
        Some(u64::MAX)
    }

    /// The samples recorded since `prev` (an earlier scrape of the same
    /// histogram): cumulative counts subtract edge-wise. For an edge
    /// above `prev`'s highest emitted bucket, `prev`'s cumulative count
    /// is its total (a CDF saturates), not zero — otherwise old samples
    /// would reappear in the delta at every higher edge.
    pub fn since(&self, prev: &HistSnapshot) -> HistSnapshot {
        let before: BTreeMap<u64, u64> = prev.cum.iter().copied().collect();
        let at = |le: u64| before.range(..=le).next_back().map_or(0, |(_, &c)| c);
        let mut cum = Vec::with_capacity(self.cum.len());
        for &(le, c) in &self.cum {
            cum.push((le, c.saturating_sub(at(le))));
        }
        HistSnapshot {
            cum,
            sum: self.sum.wrapping_sub(prev.sum),
            count: self.count.saturating_sub(prev.count),
        }
    }
}

/// One parsed scrape.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Snapshot {
    /// Counter samples by exposition name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge samples by exposition name.
    pub gauges: BTreeMap<String, f64>,
    /// Histograms by exposition (family) name.
    pub histograms: BTreeMap<String, HistSnapshot>,
}

impl Snapshot {
    /// Sum of every counter whose exposition name starts with `prefix`.
    pub fn counter_sum(&self, prefix: &str) -> u64 {
        self.counters
            .iter()
            .filter(|(k, _)| k.starts_with(prefix))
            .map(|(_, &v)| v)
            .sum()
    }
}

/// Parses exposition text (the [`expose`] format) back into a
/// [`Snapshot`]. Unknown or malformed lines are errors — a scrape is
/// machine-generated, so anything unexpected means a damaged transport.
pub fn parse_exposition(text: &str) -> Result<Snapshot, String> {
    let mut snap = Snapshot::default();
    let mut kinds: BTreeMap<String, String> = BTreeMap::new();
    for (ln, line) in text.lines().enumerate() {
        let err = |what: &str| format!("line {}: {what}: {line:?}", ln + 1);
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut it = rest.split_whitespace();
            let (name, kind) = (it.next(), it.next());
            match (name, kind) {
                (Some(n), Some(k)) => {
                    kinds.insert(n.to_string(), k.to_string());
                }
                _ => return Err(err("malformed TYPE line")),
            }
            continue;
        }
        if line.starts_with('#') {
            continue; // A HELP or comment line: ignorable by spec.
        }
        let (key, value) = line
            .rsplit_once(' ')
            .ok_or_else(|| err("sample without a value"))?;
        if let Some((family, rest)) = key.split_once("_bucket{le=\"") {
            let le_str = rest
                .strip_suffix("\"}")
                .ok_or_else(|| err("malformed bucket label"))?;
            let cum: u64 = value.parse().map_err(|_| err("bad bucket count"))?;
            let hist = snap.histograms.entry(family.to_string()).or_default();
            if le_str == "+Inf" {
                hist.count = hist.count.max(cum);
            } else {
                let le: u64 = le_str.parse().map_err(|_| err("bad bucket edge"))?;
                hist.cum.push((le, cum));
            }
            continue;
        }
        if let Some(family) = key.strip_suffix("_sum") {
            if kinds.get(family).map(String::as_str) == Some("histogram") {
                snap.histograms.entry(family.to_string()).or_default().sum =
                    value.parse().map_err(|_| err("bad histogram sum"))?;
                continue;
            }
        }
        if let Some(family) = key.strip_suffix("_count") {
            if kinds.get(family).map(String::as_str) == Some("histogram") {
                snap.histograms.entry(family.to_string()).or_default().count =
                    value.parse().map_err(|_| err("bad histogram count"))?;
                continue;
            }
        }
        match kinds.get(key).map(String::as_str) {
            Some("counter") => {
                snap.counters.insert(
                    key.to_string(),
                    value.parse().map_err(|_| err("bad counter value"))?,
                );
            }
            Some("gauge") => {
                snap.gauges.insert(
                    key.to_string(),
                    value.parse().map_err(|_| err("bad gauge value"))?,
                );
            }
            Some(_) | None => return Err(err("sample without a TYPE declaration")),
        }
    }
    Ok(snap)
}

/// Converts an in-process [`Histogram`] to the snapshot form (test and
/// tooling convenience — what [`parse_exposition`] would yield).
pub fn hist_snapshot(h: &Histogram) -> HistSnapshot {
    let top = HIST_BUCKETS - h.buckets.iter().rev().take_while(|&&c| c == 0).count();
    let mut cum = Vec::with_capacity(top);
    let mut running = 0u64;
    for (i, &c) in h.buckets[..top].iter().enumerate() {
        running += c;
        cum.push((((1u128 << i) - 1) as u64, running));
    }
    HistSnapshot {
        cum,
        sum: h.sum,
        count: h.count,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_registry() -> MetricRegistry {
        let mut r = MetricRegistry::new();
        r.counter_add("zombied.op.gs_alloc_ext", 3);
        r.counter_add("zombied.op.gs_reclaim", 2);
        r.gauge_set("zombied.pool.free_buffers", 40);
        r.gauge_set("zombied.pool.free_buffers", 41);
        for v in [0, 1, 900, 900, 1_000_000] {
            r.hist_record("zombied.decision_ns", v);
        }
        r
    }

    #[test]
    fn exposition_is_stable_and_typed() {
        let text = expose(&sample_registry());
        assert_eq!(text, expose(&sample_registry()), "byte-stable");
        assert!(text.contains("# TYPE zombied_op_gs_alloc_ext counter"));
        assert!(text.contains("zombied_op_gs_alloc_ext 3"));
        assert!(text.contains("# TYPE zombied_pool_free_buffers gauge"));
        assert!(text.contains("zombied_pool_free_buffers 40.5"));
        assert!(text.contains("# TYPE zombied_decision_ns histogram"));
        assert!(text.contains("zombied_decision_ns_bucket{le=\"+Inf\"} 5"));
        assert!(text.contains("zombied_decision_ns_count 5"));
        // Counter block precedes gauges precedes histograms.
        let c = text.find("counter").unwrap();
        let g = text.find("gauge").unwrap();
        let h = text.find("histogram").unwrap();
        assert!(c < g && g < h);
    }

    #[test]
    fn exposition_round_trips_through_the_parser() {
        let reg = sample_registry();
        let snap = parse_exposition(&expose(&reg)).unwrap();
        assert_eq!(snap.counters["zombied_op_gs_alloc_ext"], 3);
        assert_eq!(snap.counter_sum("zombied_op_"), 5);
        assert_eq!(snap.gauges["zombied_pool_free_buffers"], 40.5);
        let h = &snap.histograms["zombied_decision_ns"];
        assert_eq!(h.count, 5);
        assert_eq!(
            h.quantile(0.5),
            reg.histogram("zombied.decision_ns").unwrap().quantile(0.5)
        );
        assert_eq!(
            h.quantile(0.99),
            reg.histogram("zombied.decision_ns").unwrap().quantile(0.99)
        );
        assert_eq!(
            h,
            &hist_snapshot(reg.histogram("zombied.decision_ns").unwrap())
        );
    }

    #[test]
    fn parser_rejects_damage() {
        assert!(parse_exposition("no_type_line 4").is_err());
        assert!(parse_exposition("# TYPE x counter\nx notanumber").is_err());
        assert!(parse_exposition("# TYPE x histogram\nx_bucket{le=\"oops\"} 1").is_err());
        assert!(parse_exposition("").is_ok());
    }

    #[test]
    fn hist_delta_isolates_new_samples() {
        let mut reg = MetricRegistry::new();
        // First window: 10 fast samples.
        for _ in 0..10 {
            reg.hist_record("x", 100);
        }
        let first = hist_snapshot(reg.histogram("x").unwrap());
        for _ in 0..5 {
            reg.hist_record("x", 1_000_000);
        }
        let second = hist_snapshot(reg.histogram("x").unwrap());
        let delta = second.since(&first);
        assert_eq!(delta.count, 5);
        // Every sample in the window is slow; the window's p50 must be
        // the slow edge even though the all-time p50 is still fast.
        assert_eq!(delta.quantile(0.5), Some((1u64 << 20) - 1));
        assert_eq!(second.quantile(0.5), Some(127));
    }

    #[test]
    fn sharded_scrape_merges_like_a_single_registry() {
        let t = Arc::new(Telemetry::new(4));
        let handles: Vec<TelemetryHandle> = (0..8).map(|_| t.handle()).collect();
        for (i, h) in handles.iter().enumerate() {
            h.counter_add("ops", 1);
            h.hist_record("lat", (i as u64 + 1) * 100);
        }
        let merged = t.scrape();
        assert_eq!(merged.counter("ops"), 8);
        assert_eq!(merged.histogram("lat").unwrap().count, 8);
        // Scrape again: nothing double-counts, scrape is a read.
        assert_eq!(t.scrape().counter("ops"), 8);
    }

    #[test]
    fn concurrent_recording_with_scrapes_keeps_counters_monotone() {
        let t = Arc::new(Telemetry::new(DEFAULT_SHARDS));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let h = t.handle();
                s.spawn(move || {
                    for _ in 0..1_000 {
                        h.counter_add("ops", 1);
                    }
                });
            }
            let mut last = 0;
            for _ in 0..50 {
                let now = t.scrape().counter("ops");
                assert!(now >= last, "counter went backwards: {last} -> {now}");
                last = now;
            }
        });
        assert_eq!(t.scrape().counter("ops"), 4_000);
    }
}
