//! Observable deterministic fan-out.
//!
//! [`run_indexed_obs`] is the observability-aware twin of
//! [`zombieland_simcore::run_indexed`]. The plain runner fans
//! independent runs out across worker threads; since collectors are
//! thread-local ([`crate::sink`]), anything those workers emit would be
//! lost. This wrapper closes the gap without giving up a single bit of
//! determinism:
//!
//! 1. the *calling* thread's level is read once, before the fan-out;
//! 2. each grid item runs under its own fresh collector at that level,
//!    on whichever worker picks it up;
//! 3. each capture is tagged with its grid index
//!    ([`crate::ObsRun::tag_run`]) and merged back into the caller's
//!    collector **in index order**, erasing scheduling order exactly the
//!    way index-ordered result collection does for the results
//!    themselves.
//!
//! At [`crate::ObsLevel::Off`] the wrapper adds nothing: it delegates to
//! the plain runner and the closure runs collector-free.

use crate::{sink, ObsLevel};

/// Runs `count` independent jobs on up to `jobs` worker threads exactly
/// like [`zombieland_simcore::run_indexed`], additionally capturing each
/// job's trace events and metrics and merging them into the calling
/// thread's collector (if one is installed) in grid-index order.
///
/// The trace and metric output is byte-identical at any `jobs` value —
/// the property `tests/parallel_determinism.rs` asserts on the Fig. 10
/// grid.
pub fn run_indexed_obs<T, F>(jobs: usize, count: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let level = sink::level();
    if level == ObsLevel::Off {
        return zombieland_simcore::run_indexed(jobs, count, f);
    }
    let pairs = zombieland_simcore::run_indexed(jobs, count, |i| {
        let (value, mut run) = sink::observe(level, || f(i));
        run.tag_run(i as u64);
        (value, run)
    });
    let mut out = Vec::with_capacity(count);
    for (value, run) in pairs {
        sink::absorb_current(run);
        out.push(value);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::{counter_add, observe};
    use zombieland_simcore::SimTime;

    fn grid_item(i: usize) -> u64 {
        counter_add("grid.items", 1);
        crate::trace_event!(SimTime::from_nanos(i as u64), "test", "item", "i" => i);
        i as u64 * 10
    }

    #[test]
    fn captures_worker_output_in_index_order() {
        let capture = |jobs| observe(ObsLevel::Full, || run_indexed_obs(jobs, 8, grid_item));
        let (serial_out, serial) = capture(1);
        assert_eq!(serial_out, (0..8).map(|i| i * 10).collect::<Vec<u64>>());
        assert_eq!(serial.metrics.counter("grid.items"), 8);
        assert_eq!(serial.events.len(), 8);
        for jobs in [2, 8] {
            let (out, run) = capture(jobs);
            assert_eq!(out, serial_out);
            assert_eq!(run.events_jsonl(), serial.events_jsonl());
            assert_eq!(
                run.metrics.to_json().pretty(),
                serial.metrics.to_json().pretty()
            );
        }
        // Events carry their grid index regardless of which worker ran
        // them.
        let (_, run) = capture(4);
        let runs: Vec<u64> = run.events.iter().map(|e| e.run).collect();
        assert_eq!(runs, (0..8).collect::<Vec<u64>>());
    }

    #[test]
    fn off_level_adds_no_capture() {
        // No collector installed: delegates to the plain runner.
        let out = run_indexed_obs(4, 4, grid_item);
        assert_eq!(out, vec![0, 10, 20, 30]);
        let ((), run) = observe(ObsLevel::Off, || {
            run_indexed_obs(4, 4, grid_item);
        });
        assert!(run.events.is_empty());
        assert!(run.metrics.is_empty());
    }
}
