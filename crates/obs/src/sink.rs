//! The per-thread trace sink.
//!
//! Instrumentation points across the workspace call the free functions
//! here ([`counter_add`], [`gauge_set`], [`hist_record`], and
//! [`emit`] via the [`crate::trace_event!`] macro). They are no-ops
//! unless the current thread is inside an [`observe`] scope — one
//! thread-local byte read decides, so hot paths cost nothing when
//! observability is off.
//!
//! Scoping per *thread* rather than per *process* is what keeps the
//! parallel runner deterministic: each worker wraps each run it executes
//! in its own `observe`, events never interleave across runs, and the
//! caller merges the returned [`ObsRun`]s by grid index.

use std::cell::{Cell, RefCell};

use crate::metrics::MetricRegistry;
use crate::{ObsLevel, TraceEvent};

thread_local! {
    /// Fast-path switch: 0 = off/absent, 1 = summary, 2 = full.
    static LEVEL: Cell<u8> = const { Cell::new(0) };
    /// The installed collector, if any.
    static COLLECTOR: RefCell<Option<ObsRun>> = const { RefCell::new(None) };
    /// Emptied collector shells (event-buffer capacity retained) for
    /// reuse by later [`observe`] scopes on this thread. Grid runs under
    /// `run_indexed_obs` open one scope per cell; recycling the shell
    /// avoids re-growing the event buffer every time.
    static SHELLS: RefCell<Vec<ObsRun>> = const { RefCell::new(Vec::new()) };
}

/// Shells kept per thread; beyond this they drop (scopes rarely nest
/// deeper in practice).
const SHELL_POOL_CAP: usize = 8;

/// Pops a recycled shell (or builds a fresh collector) at `level`.
fn recycled_run(level: ObsLevel) -> ObsRun {
    SHELLS
        .with(|p| p.borrow_mut().pop())
        .map(|mut shell| {
            shell.level = level;
            shell
        })
        .unwrap_or_else(|| ObsRun::new(level))
}

/// Empties a spent capture and parks it for reuse on this thread.
fn recycle(mut shell: ObsRun) {
    shell.level = ObsLevel::Off;
    shell.events.clear();
    shell.metrics.clear();
    SHELLS.with(|p| {
        let mut pool = p.borrow_mut();
        if pool.len() < SHELL_POOL_CAP {
            pool.push(shell);
        }
    });
}

/// What one [`observe`] scope captured.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ObsRun {
    /// The level the run was captured at.
    pub level: ObsLevel,
    /// Trace events in emission order (empty below [`ObsLevel::Full`]).
    pub events: Vec<TraceEvent>,
    /// The run's metrics (empty at [`ObsLevel::Off`]).
    pub metrics: MetricRegistry,
}

impl ObsRun {
    /// An empty capture at `level`.
    pub fn new(level: ObsLevel) -> Self {
        ObsRun {
            level,
            events: Vec::new(),
            metrics: MetricRegistry::new(),
        }
    }

    /// Stamps every event with the grid index of the run that produced
    /// it, so merged traces stay attributable.
    pub fn tag_run(&mut self, run: u64) {
        for e in &mut self.events {
            e.run = run;
        }
    }

    /// Appends another capture: events concatenate (call in grid-index
    /// order for deterministic traces), metrics merge exactly (order
    /// never matters for them).
    pub fn absorb(&mut self, other: ObsRun) {
        self.level = self.level.max(other.level);
        self.events.extend(other.events);
        self.metrics.merge(&other.metrics);
    }

    /// Renders all events as JSONL: one compact JSON object per line,
    /// trailing newline after each (empty string when no events).
    pub fn events_jsonl(&self) -> String {
        let mut out = String::new();
        for e in &self.events {
            out.push_str(&e.to_jsonl());
            out.push('\n');
        }
        out
    }
}

/// Runs `f` with a collector installed at `level` on this thread and
/// returns its result plus everything captured.
///
/// At [`ObsLevel::Off`] no collector is installed at all — the closure
/// runs exactly as it would in an uninstrumented build and the returned
/// [`ObsRun`] is empty. Scopes nest: an inner `observe` shadows the
/// outer one for its extent, then restores it.
pub fn observe<T>(level: ObsLevel, f: impl FnOnce() -> T) -> (T, ObsRun) {
    if level == ObsLevel::Off {
        return (f(), ObsRun::new(ObsLevel::Off));
    }
    let previous = COLLECTOR.with(|c| c.borrow_mut().replace(recycled_run(level)));
    let previous_level = LEVEL.with(|l| {
        let p = l.get();
        l.set(match level {
            ObsLevel::Off => 0,
            ObsLevel::Summary => 1,
            ObsLevel::Full => 2,
        });
        p
    });
    // No catch_unwind: a panicking simulation aborts the experiment
    // anyway (the runner propagates it), so collector state is moot.
    let result = f();
    LEVEL.with(|l| l.set(previous_level));
    let captured = COLLECTOR.with(|c| {
        let mut slot = c.borrow_mut();
        let captured = slot.take().expect("observe installed a collector");
        *slot = previous;
        captured
    });
    (result, captured)
}

/// The level of the collector installed on the current thread
/// ([`ObsLevel::Off`] outside any [`observe`] scope).
pub fn level() -> ObsLevel {
    match LEVEL.with(|l| l.get()) {
        2 => ObsLevel::Full,
        1 => ObsLevel::Summary,
        _ => ObsLevel::Off,
    }
}

/// Merges a finished capture into the collector installed on the
/// current thread (no-op without one). This is how the parallel runner
/// hands worker-thread captures back to the caller's scope. The spent
/// capture's storage is recycled for future [`observe`] scopes on this
/// thread.
pub fn absorb_current(mut run: ObsRun) {
    if !metrics_enabled() {
        return;
    }
    COLLECTOR.with(|c| {
        if let Some(current) = c.borrow_mut().as_mut() {
            current.level = current.level.max(run.level);
            current.events.append(&mut run.events);
            current.metrics.merge(&run.metrics);
            recycle(run);
        }
    });
}

/// Whether the current thread records trace events (level = full).
#[inline]
pub fn trace_enabled() -> bool {
    LEVEL.with(|l| l.get()) >= 2
}

/// Whether the current thread records metrics (level ≥ summary).
#[inline]
pub fn metrics_enabled() -> bool {
    LEVEL.with(|l| l.get()) >= 1
}

/// Records a fully built trace event. Prefer [`crate::trace_event!`],
/// which skips field construction when tracing is off.
pub fn emit(event: TraceEvent) {
    if !trace_enabled() {
        return;
    }
    COLLECTOR.with(|c| {
        if let Some(run) = c.borrow_mut().as_mut() {
            run.events.push(event);
        }
    });
}

/// Adds `v` to the named counter of the current collector, if any.
#[inline]
pub fn counter_add(name: &'static str, v: u64) {
    if !metrics_enabled() {
        return;
    }
    COLLECTOR.with(|c| {
        if let Some(run) = c.borrow_mut().as_mut() {
            run.metrics.counter_add(name, v);
        }
    });
}

/// Records a gauge sample on the current collector, if any.
#[inline]
pub fn gauge_set(name: &'static str, v: u64) {
    if !metrics_enabled() {
        return;
    }
    COLLECTOR.with(|c| {
        if let Some(run) = c.borrow_mut().as_mut() {
            run.metrics.gauge_set(name, v);
        }
    });
}

/// Records a histogram sample on the current collector, if any.
#[inline]
pub fn hist_record(name: &'static str, v: u64) {
    if !metrics_enabled() {
        return;
    }
    COLLECTOR.with(|c| {
        if let Some(run) = c.borrow_mut().as_mut() {
            run.metrics.hist_record(name, v);
        }
    });
}

/// Records `n` identical histogram samples on the current collector —
/// bit-identical to calling [`hist_record`] `n` times, at the cost of a
/// single level check and registry lookup. Hot paths accumulate
/// (value, count) pairs locally and flush them here once per batch.
#[inline]
pub fn hist_record_n(name: &'static str, v: u64, n: u64) {
    if n == 0 || !metrics_enabled() {
        return;
    }
    COLLECTOR.with(|c| {
        if let Some(run) = c.borrow_mut().as_mut() {
            run.metrics.hist_record_n(name, v, n);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use zombieland_simcore::SimTime;

    fn instrumented_work() {
        counter_add("work.ops", 2);
        gauge_set("work.depth", 5);
        hist_record("work.lat", 900);
        crate::trace_event!(SimTime::from_nanos(10), "test", "tick", "n" => 1u64);
    }

    #[test]
    fn off_captures_nothing() {
        let ((), run) = observe(ObsLevel::Off, instrumented_work);
        assert!(run.events.is_empty());
        assert!(run.metrics.is_empty());
        // And outside any scope, calls are harmless no-ops.
        instrumented_work();
    }

    #[test]
    fn summary_captures_metrics_only() {
        let ((), run) = observe(ObsLevel::Summary, instrumented_work);
        assert!(run.events.is_empty());
        assert_eq!(run.metrics.counter("work.ops"), 2);
    }

    #[test]
    fn full_captures_everything() {
        let ((), run) = observe(ObsLevel::Full, instrumented_work);
        assert_eq!(run.events.len(), 1);
        assert_eq!(run.metrics.counter("work.ops"), 2);
        assert_eq!(run.events[0].at, SimTime::from_nanos(10));
        let jsonl = run.events_jsonl();
        assert!(jsonl.ends_with('\n'));
        zombieland_trace::json::parse(jsonl.trim_end()).unwrap();
    }

    #[test]
    fn scopes_nest_and_restore() {
        let ((), outer) = observe(ObsLevel::Full, || {
            counter_add("outer", 1);
            let ((), inner) = observe(ObsLevel::Summary, || {
                counter_add("inner", 1);
                assert!(!trace_enabled(), "inner scope is summary");
            });
            assert_eq!(inner.metrics.counter("inner"), 1);
            assert!(trace_enabled(), "outer scope restored");
            counter_add("outer", 1);
        });
        assert_eq!(outer.metrics.counter("outer"), 2);
        assert_eq!(outer.metrics.counter("inner"), 0, "inner stayed separate");
    }

    #[test]
    fn threads_capture_independently() {
        let handles: Vec<_> = (0u64..4)
            .map(|i| {
                std::thread::spawn(move || {
                    let ((), run) = observe(ObsLevel::Summary, || {
                        counter_add("thread.ops", i + 1);
                    });
                    run.metrics.counter("thread.ops")
                })
            })
            .collect();
        let got: Vec<u64> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert_eq!(got, vec![1, 2, 3, 4]);
    }

    #[test]
    fn recycled_shells_are_indistinguishable() {
        // Three sequential scopes absorb into an outer collector: the
        // second and third reuse the first's recycled shell, and nothing
        // from an earlier capture leaks into a later one.
        let ((), outer) = observe(ObsLevel::Full, || {
            for i in 0..3u64 {
                let ((), mut run) = observe(ObsLevel::Full, || {
                    counter_add("n", i + 1);
                    crate::trace_event!(SimTime::from_nanos(i), "test", "tick");
                });
                assert_eq!(run.events.len(), 1, "one event per scope, no leftovers");
                run.tag_run(i);
                absorb_current(run);
            }
        });
        assert_eq!(outer.metrics.counter("n"), 6);
        assert_eq!(outer.events.len(), 3);
        assert_eq!(
            outer.events.iter().map(|e| e.run).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
    }

    #[test]
    fn absorb_tags_and_concatenates() {
        let ((), mut a) = observe(ObsLevel::Full, || {
            crate::trace_event!(SimTime::ZERO, "t", "a");
        });
        let ((), mut b) = observe(ObsLevel::Full, || {
            crate::trace_event!(SimTime::ZERO, "t", "b");
            counter_add("c", 3);
        });
        a.tag_run(0);
        b.tag_run(1);
        let mut merged = ObsRun::new(ObsLevel::Full);
        merged.absorb(a);
        merged.absorb(b);
        assert_eq!(merged.events.len(), 2);
        assert_eq!(merged.events[0].run, 0);
        assert_eq!(merged.events[1].run, 1);
        assert_eq!(merged.metrics.counter("c"), 3);
    }
}
