//! The metric registry: named counters, gauges and log₂ histograms.
//!
//! Everything is exact u64 arithmetic so that [`MetricRegistry::merge`]
//! is commutative and associative — per-job registries produced under the
//! parallel runner combine into the same bytes at any worker count,
//! regardless of which jobs ran on which thread.

use std::collections::BTreeMap;

use zombieland_simcore::report::Table;
use zombieland_trace::json::Value;

/// A sampled gauge: how many times it was set, the sum of the samples
/// and the high watermark. Means derive from `sum / samples`; keeping
/// sums instead of means is what makes merging exact.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Gauge {
    /// Number of `set` calls.
    pub samples: u64,
    /// Sum of all set values.
    pub sum: u64,
    /// Largest value ever set.
    pub max: u64,
}

impl Gauge {
    fn set(&mut self, v: u64) {
        self.samples += 1;
        self.sum += v;
        self.max = self.max.max(v);
    }

    /// Mean of the samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.samples == 0 {
            0.0
        } else {
            self.sum as f64 / self.samples as f64
        }
    }

    fn merge(&mut self, other: &Gauge) {
        self.samples += other.samples;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }
}

/// Number of histogram buckets: one per possible u64 bit length, plus
/// bucket 0 for the value zero.
pub const HIST_BUCKETS: usize = 65;

/// A fixed-bucket log₂ histogram of u64 values.
///
/// Value `v` lands in the bucket of its bit length (`0` in bucket 0, `1`
/// in bucket 1, `2..=3` in bucket 2, ...), so the upper edge of bucket
/// `i > 0` is `2^i - 1`. Bucket counts are exact u64s; merging adds
/// bucket-wise and is therefore order-independent.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    /// Per-bucket counts, index = bit length of the value.
    pub buckets: [u64; HIST_BUCKETS],
    /// Total samples.
    pub count: u64,
    /// Exact sum of all samples (wrapping add: merges stay exact and
    /// order-independent even if a pathological stream overflows).
    pub sum: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; HIST_BUCKETS],
            count: 0,
            sum: 0,
        }
    }
}

impl Histogram {
    fn bucket_of(v: u64) -> usize {
        (64 - v.leading_zeros()) as usize
    }

    fn record(&mut self, v: u64) {
        self.buckets[Self::bucket_of(v)] += 1;
        self.count += 1;
        self.sum = self.sum.wrapping_add(v);
    }

    /// Records `n` samples of value `v` in O(1). Bit-identical to calling
    /// `record(v)` `n` times: one bucket gains `n`, the count gains `n`,
    /// and the wrapping sum gains `v * n` (multiplication modulo 2^64 is
    /// exactly n repeated wrapping adds). Batching layers use this to
    /// flush accumulated identical samples once per batch instead of once
    /// per event.
    fn record_n(&mut self, v: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.buckets[Self::bucket_of(v)] += n;
        self.count += n;
        self.sum = self.sum.wrapping_add(v.wrapping_mul(n));
    }

    /// The `q`-quantile resolved to its bucket's upper edge (`None` when
    /// empty).
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(((1u128 << i) - 1) as u64);
            }
        }
        None
    }

    fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.wrapping_add(other.sum);
    }
}

/// Named counters, gauges and histograms for one run (or a merge of
/// runs). `BTreeMap` keys make every iteration — rendering, JSON export —
/// deterministic.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricRegistry {
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, Gauge>,
    histograms: BTreeMap<&'static str, Histogram>,
}

impl MetricRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Removes every recorded metric, returning the registry to the
    /// freshly constructed state (used when recycling collector shells).
    pub fn clear(&mut self) {
        self.counters.clear();
        self.gauges.clear();
        self.histograms.clear();
    }

    /// Adds `v` to a counter.
    pub fn counter_add(&mut self, name: &'static str, v: u64) {
        *self.counters.entry(name).or_insert(0) += v;
    }

    /// Records a gauge sample.
    pub fn gauge_set(&mut self, name: &'static str, v: u64) {
        self.gauges.entry(name).or_default().set(v);
    }

    /// Records a histogram sample.
    pub fn hist_record(&mut self, name: &'static str, v: u64) {
        self.histograms.entry(name).or_default().record(v);
    }

    /// Records `n` identical histogram samples in one registry lookup —
    /// bit-identical to `n` `hist_record` calls. `n == 0` is a no-op and
    /// does not create the histogram entry.
    pub fn hist_record_n(&mut self, name: &'static str, v: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.histograms.entry(name).or_default().record_n(v, n);
    }

    /// Reads a counter (0 when never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// All counters, in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.counters.iter().map(|(&k, &v)| (k, v))
    }

    /// All gauges, in name order.
    pub fn gauges(&self) -> impl Iterator<Item = (&'static str, &Gauge)> + '_ {
        self.gauges.iter().map(|(&k, g)| (k, g))
    }

    /// All histograms, in name order.
    pub fn histograms(&self) -> impl Iterator<Item = (&'static str, &Histogram)> + '_ {
        self.histograms.iter().map(|(&k, h)| (k, h))
    }

    /// Reads a gauge.
    pub fn gauge(&self, name: &str) -> Option<&Gauge> {
        self.gauges.get(name)
    }

    /// Reads a histogram.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Merges another registry into this one. Exact u64 arithmetic
    /// throughout: the result is independent of merge order, which is what
    /// lets `simcore::runner` fan jobs out and combine per-job registries
    /// without changing a byte of the final export.
    pub fn merge(&mut self, other: &MetricRegistry) {
        for (name, v) in &other.counters {
            *self.counters.entry(name).or_insert(0) += v;
        }
        for (name, g) in &other.gauges {
            self.gauges.entry(name).or_default().merge(g);
        }
        for (name, h) in &other.histograms {
            self.histograms.entry(name).or_default().merge(h);
        }
    }

    /// Renders the registry as one JSON document (pretty layout, parse it
    /// back with [`zombieland_trace::json::parse`]).
    pub fn to_json(&self) -> Value {
        let counters = self
            .counters
            .iter()
            .map(|(k, v)| (k.to_string(), Value::UInt(*v)))
            .collect();
        let gauges = self
            .gauges
            .iter()
            .map(|(k, g)| {
                (
                    k.to_string(),
                    Value::Object(vec![
                        ("samples".into(), Value::UInt(g.samples)),
                        ("sum".into(), Value::UInt(g.sum)),
                        ("max".into(), Value::UInt(g.max)),
                    ]),
                )
            })
            .collect();
        let histograms = self
            .histograms
            .iter()
            .map(|(k, h)| {
                // Trailing empty buckets carry no information; trimming
                // them keeps the export compact without affecting parsing.
                let top = HIST_BUCKETS - h.buckets.iter().rev().take_while(|&&c| c == 0).count();
                let buckets = h.buckets[..top].iter().map(|&c| Value::UInt(c)).collect();
                (
                    k.to_string(),
                    Value::Object(vec![
                        ("count".into(), Value::UInt(h.count)),
                        ("sum".into(), Value::UInt(h.sum)),
                        ("buckets".into(), Value::Array(buckets)),
                    ]),
                )
            })
            .collect();
        Value::Object(vec![
            ("counters".into(), Value::Object(counters)),
            ("gauges".into(), Value::Object(gauges)),
            ("histograms".into(), Value::Object(histograms)),
        ])
    }

    /// Renders the registry as a human-readable table.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            "Metrics",
            &["metric", "kind", "n", "total", "mean", "max/p99"],
        );
        for (name, v) in &self.counters {
            t.row(&[
                name.to_string(),
                "counter".into(),
                "-".into(),
                v.to_string(),
                "-".into(),
                "-".into(),
            ]);
        }
        for (name, g) in &self.gauges {
            t.row(&[
                name.to_string(),
                "gauge".into(),
                g.samples.to_string(),
                g.sum.to_string(),
                format!("{:.1}", g.mean()),
                g.max.to_string(),
            ]);
        }
        for (name, h) in &self.histograms {
            let mean = if h.count == 0 {
                0.0
            } else {
                h.sum as f64 / h.count as f64
            };
            t.row(&[
                name.to_string(),
                "histogram".into(),
                h.count.to_string(),
                h.sum.to_string(),
                format!("{mean:.1}"),
                h.quantile(0.99).map_or("-".into(), |v| v.to_string()),
            ]);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_registry(values: &[u64]) -> MetricRegistry {
        let mut r = MetricRegistry::new();
        for &v in values {
            r.counter_add("ops", 1);
            r.gauge_set("depth", v);
            r.hist_record("lat", v);
        }
        r
    }

    #[test]
    fn records_and_reads() {
        let r = sample_registry(&[0, 1, 7, 1_000]);
        assert_eq!(r.counter("ops"), 4);
        assert_eq!(r.counter("missing"), 0);
        let g = r.gauge("depth").unwrap();
        assert_eq!((g.samples, g.sum, g.max), (4, 1_008, 1_000));
        let h = r.histogram("lat").unwrap();
        assert_eq!(h.count, 4);
        assert_eq!(h.buckets[0], 1); // The zero sample.
        assert_eq!(h.buckets[1], 1); // 1 lands in bucket 1 (bit length 1).
        assert_eq!(h.buckets[3], 1); // 7 lands in bucket 3 (bit length 3).
    }

    #[test]
    fn merge_is_order_independent() {
        let parts = [
            sample_registry(&[3, 9]),
            sample_registry(&[0]),
            sample_registry(&[1 << 40, 17, 17]),
        ];
        let mut forward = MetricRegistry::new();
        for p in &parts {
            forward.merge(p);
        }
        let mut backward = MetricRegistry::new();
        for p in parts.iter().rev() {
            backward.merge(p);
        }
        assert_eq!(forward, backward);
        assert_eq!(
            forward.to_json().pretty(),
            backward.to_json().pretty(),
            "export bytes must match too"
        );
        assert_eq!(forward.counter("ops"), 6);
    }

    #[test]
    fn record_n_matches_repeated_records() {
        let mut folded = MetricRegistry::new();
        let mut unrolled = MetricRegistry::new();
        for &(v, n) in &[(0u64, 3u64), (1_000, 97), (u64::MAX, 5), (7, 0)] {
            folded.hist_record_n("lat", v, n);
            for _ in 0..n {
                unrolled.hist_record("lat", v);
            }
        }
        assert_eq!(folded, unrolled);
        assert_eq!(folded.to_json().pretty(), unrolled.to_json().pretty());
    }

    #[test]
    fn histogram_quantiles_hit_bucket_edges() {
        let mut h = Histogram::default();
        for _ in 0..90 {
            h.record(1_000); // Bucket 10, upper edge 1023.
        }
        for _ in 0..10 {
            h.record(1_000_000); // Bucket 20, upper edge 1048575.
        }
        assert_eq!(h.quantile(0.5), Some(1_023));
        assert_eq!(h.quantile(0.99), Some(1_048_575));
        assert_eq!(Histogram::default().quantile(0.5), None);
        let mut z = Histogram::default();
        z.record(0);
        assert_eq!(z.quantile(1.0), Some(0));
        z.record(u64::MAX);
        assert_eq!(z.quantile(1.0), Some(u64::MAX));
    }

    #[test]
    fn json_round_trips_and_table_renders() {
        let r = sample_registry(&[5, 50_000]);
        let doc = r.to_json().pretty();
        let back = zombieland_trace::json::parse(&doc).unwrap();
        assert_eq!(
            back.get("counters")
                .and_then(|c| c.get("ops"))
                .and_then(|v| v.as_u64()),
            Some(2)
        );
        let rendered = r.table().render();
        assert!(rendered.contains("ops"));
        assert!(rendered.contains("counter"));
        assert!(rendered.contains("histogram"));
    }

    #[test]
    fn empty_registry_is_empty() {
        let r = MetricRegistry::new();
        assert!(r.is_empty());
        assert!(!sample_registry(&[1]).is_empty());
    }
}
