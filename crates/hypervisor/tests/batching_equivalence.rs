//! The batched fault path is a pure restructuring: for any access
//! stream, [`engine::run_ops`] (batched pulls, coalesced demand
//! fetches, deferred obs flushes) must produce a [`RunStats`] that is
//! *byte-identical* to [`engine::run_ops_reference`] (one page at a
//! time) — every counter, every simulated nanosecond, every fault
//! latency bucket. Batching is a host-wall-clock optimisation only; any
//! sim-time divergence is a bug, not a tolerance.

use proptest::prelude::*;
use zombieland_core::manager::PoolKind;
use zombieland_core::{Rack, RackConfig};
use zombieland_hypervisor::engine::{self, Backing, EngineConfig};
use zombieland_hypervisor::Policy;
use zombieland_simcore::{Bytes, DetRng, Pages, SimDuration};
use zombieland_workloads::{Access, Workload};

/// Seeded random accesses over a hot/cold split — the same fuzz shape
/// the engine property suite uses, cloneable so both engine variants
/// replay the identical stream.
#[derive(Clone)]
struct FuzzWorkload {
    wss: Pages,
    rng: DetRng,
    hot: u64,
    hot_bias: f64,
    write_bias: f64,
}

impl Workload for FuzzWorkload {
    fn clone_box(&self) -> Box<dyn Workload> {
        Box::new(self.clone())
    }

    fn name(&self) -> &'static str {
        "fuzz"
    }

    fn wss(&self) -> Pages {
        self.wss
    }

    fn base_op_cost(&self) -> SimDuration {
        SimDuration::from_nanos(100)
    }

    fn next_access(&mut self) -> Access {
        let page = if self.rng.chance(self.hot_bias) {
            self.rng.below(self.hot)
        } else {
            self.rng.below(self.wss.count())
        };
        Access {
            page,
            write: self.rng.chance(self.write_bias),
        }
    }

    fn suggested_ops(&self) -> u64 {
        self.wss.count() * 4
    }
}

/// All four replacement policies the engine ships.
fn policies() -> impl Strategy<Value = Policy> {
    prop_oneof![
        Just(Policy::Fifo),
        Just(Policy::Clock),
        Just(Policy::MIXED_DEFAULT),
        Just(Policy::Random),
    ]
}

/// Runs one engine variant on a fresh rack with identical construction.
fn run_variant(batched: bool, w: &FuzzWorkload, cfg: &EngineConfig, ops: u64) -> engine::RunStats {
    let mut rack = Rack::new(RackConfig::default());
    let ids = rack.server_ids();
    let (user, zombie) = (ids[0], ids[1]);
    rack.goto_zombie(zombie).unwrap();
    rack.alloc_ext(user, Bytes::mib(64)).unwrap();
    let mut w = w.clone();
    let backing = Backing::Rack {
        rack: &mut rack,
        user,
        pool: PoolKind::Ext,
    };
    if batched {
        engine::run_ops(&mut w, cfg, backing, ops).unwrap()
    } else {
        engine::run_ops_reference(&mut w, cfg, backing, ops).unwrap()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Batched `RunStats` ≡ per-page reference, across the coalescing
    /// window being live (readahead 0) and dead (readahead 8), every
    /// policy, and write-heavy vs read-only streams.
    #[test]
    fn batched_stats_match_reference(
        seed in 0u64..1_000,
        local_frac in 0.05f64..0.9,
        hot_bias in 0.0f64..1.0,
        write_heavy in any::<bool>(),
        readahead in prop_oneof![Just(0u32), Just(8u32)],
        policy in policies(),
    ) {
        let wss = Pages::new(2_048);
        let reserved = Bytes::mib(10);
        let w = FuzzWorkload {
            wss,
            rng: DetRng::new(seed),
            hot: (wss.count() / 8).max(1),
            hot_bias,
            write_bias: if write_heavy { 0.7 } else { 0.0 },
        };
        let cfg = EngineConfig {
            policy,
            seed,
            readahead,
            ..EngineConfig::ram_ext(reserved, reserved.mul_f64(local_frac))
        };
        let ops = wss.count() * 4;
        let batched = run_variant(true, &w, &cfg, ops);
        let reference = run_variant(false, &w, &cfg, ops);
        // `RunStats` carries integers, sim-time nanos and the latency
        // histogram; its Debug rendering covers every field, so equal
        // strings ⇒ byte-equal stats (no float rounding to hide in —
        // sim durations are integer nanoseconds).
        prop_assert_eq!(
            format!("{batched:?}"),
            format!("{reference:?}"),
            "batched fault path diverged from the per-page reference"
        );
    }
}

/// The run cap and chunk boundaries sit exactly where sequential
/// streams stress them: a pure sequential sweep coalesces maximal runs
/// (every page cold-faults once, then cycles remote) and must still
/// match the reference exactly.
#[test]
fn sequential_sweep_matches_reference() {
    #[derive(Clone)]
    struct Seq {
        wss: Pages,
        next: u64,
    }
    impl Workload for Seq {
        fn clone_box(&self) -> Box<dyn Workload> {
            Box::new(self.clone())
        }
        fn name(&self) -> &'static str {
            "seq"
        }
        fn wss(&self) -> Pages {
            self.wss
        }
        fn base_op_cost(&self) -> SimDuration {
            SimDuration::from_nanos(100)
        }
        fn next_access(&mut self) -> Access {
            let page = self.next % self.wss.count();
            self.next += 1;
            Access {
                page,
                write: page.is_multiple_of(3),
            }
        }
        fn suggested_ops(&self) -> u64 {
            self.wss.count() * 3
        }
    }
    for policy in [
        Policy::Fifo,
        Policy::Clock,
        Policy::MIXED_DEFAULT,
        Policy::Random,
    ] {
        let reserved = Bytes::mib(10);
        let cfg = EngineConfig {
            policy,
            seed: 7,
            ..EngineConfig::ram_ext(reserved, reserved.mul_f64(0.2))
        };
        let run = |batched: bool| {
            let mut rack = Rack::new(RackConfig::default());
            let ids = rack.server_ids();
            rack.goto_zombie(ids[1]).unwrap();
            rack.alloc_ext(ids[0], Bytes::mib(64)).unwrap();
            let mut w = Seq {
                wss: Pages::new(2_048),
                next: 0,
            };
            let ops = w.suggested_ops();
            let backing = Backing::Rack {
                rack: &mut rack,
                user: ids[0],
                pool: PoolKind::Ext,
            };
            if batched {
                engine::run_ops(&mut w, &cfg, backing, ops).unwrap()
            } else {
                engine::run_ops_reference(&mut w, &cfg, backing, ops).unwrap()
            }
        };
        assert_eq!(
            format!("{:?}", run(true)),
            format!("{:?}", run(false)),
            "{policy:?}: sequential sweep diverged"
        );
    }
}
