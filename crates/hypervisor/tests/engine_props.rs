//! Property tests: the paging engine's accounting stays consistent for
//! arbitrary access streams and memory splits.

use proptest::prelude::*;
use zombieland_core::manager::PoolKind;
use zombieland_core::{Rack, RackConfig};
use zombieland_hypervisor::engine::{self, Backing, EngineConfig};
use zombieland_hypervisor::Policy;
use zombieland_simcore::{Bytes, DetRng, Pages, SimDuration};
use zombieland_workloads::{Access, Workload};

/// A fuzz workload: random page picks from a seeded stream, with a
/// configurable skew between a small hot set and the full range.
#[derive(Clone)]
struct FuzzWorkload {
    wss: Pages,
    rng: DetRng,
    hot: u64,
    hot_bias: f64,
    write_bias: f64,
}

impl Workload for FuzzWorkload {
    fn clone_box(&self) -> Box<dyn Workload> {
        Box::new(self.clone())
    }

    fn name(&self) -> &'static str {
        "fuzz"
    }

    fn wss(&self) -> Pages {
        self.wss
    }

    fn base_op_cost(&self) -> SimDuration {
        SimDuration::from_nanos(100)
    }

    fn next_access(&mut self) -> Access {
        let page = if self.rng.chance(self.hot_bias) {
            self.rng.below(self.hot)
        } else {
            self.rng.below(self.wss.count())
        };
        Access {
            page,
            write: self.rng.chance(self.write_bias),
        }
    }

    fn suggested_ops(&self) -> u64 {
        self.wss.count() * 4
    }
}

fn policies() -> impl Strategy<Value = Policy> {
    prop_oneof![
        Just(Policy::Fifo),
        Just(Policy::Clock),
        Just(Policy::MIXED_DEFAULT),
        (1usize..64).prop_map(|x| Policy::Mixed { x }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn engine_accounting_is_consistent(
        seed in 0u64..1_000,
        local_frac in 0.05f64..1.0,
        hot_bias in 0.0f64..1.0,
        write_bias in 0.0f64..1.0,
        policy in policies(),
    ) {
        let wss = Pages::new(2_048);
        let reserved = Bytes::mib(10);
        let mut rack = Rack::new(RackConfig::default());
        let ids = rack.server_ids();
        let (user, zombie) = (ids[0], ids[1]);
        rack.goto_zombie(zombie).unwrap();
        rack.alloc_ext(user, Bytes::mib(64)).unwrap();

        let mut w = FuzzWorkload {
            wss,
            rng: DetRng::new(seed),
            hot: (wss.count() / 8).max(1),
            hot_bias,
            write_bias,
        };
        let local = reserved.mul_f64(local_frac);
        let cfg = EngineConfig {
            policy,
            seed,
            ..EngineConfig::ram_ext(reserved, local)
        };
        let stats = engine::run(
            &mut w,
            &cfg,
            Backing::Rack { rack: &mut rack, user, pool: PoolKind::Ext },
        )
        .unwrap();

        // Accounting invariants.
        prop_assert_eq!(stats.ops, wss.count() * 4);
        prop_assert!(stats.minor_faults <= wss.count(), "one first-touch per page");
        prop_assert!(stats.remote_faults <= stats.ops);
        // Every remote fault re-fetches a page that was demoted at some
        // point; with the clean-copy cache a page can refault without a
        // fresh demotion, but never before its first demotion.
        if stats.remote_faults > 0 {
            prop_assert!(stats.demotions > 0);
        }
        prop_assert!(stats.clean_demotions <= stats.demotions);
        // Evictions happen only under memory pressure.
        if local >= reserved {
            prop_assert_eq!(stats.demotions, 0);
        }
        // Time accounting: io is part of exec; both positive.
        prop_assert!(stats.io_time <= stats.exec_time);
        prop_assert!(stats.exec_time >= SimDuration::from_nanos(100) * stats.ops);
        // Teardown happened: no leaked remote pages.
        prop_assert_eq!(rack.manager(user).live_pages(), 0);
    }

    #[test]
    fn more_local_memory_never_hurts_much(
        seed in 0u64..200,
        hot_bias in 0.3f64..0.95,
    ) {
        // Monotonicity (allowing 5% jitter for policy noise): exec time
        // with 75% local <= exec time with 25% local.
        let wss = Pages::new(1_024);
        let reserved = Bytes::mib(5);
        let run = |frac: f64| {
            let mut rack = Rack::new(RackConfig::default());
            let ids = rack.server_ids();
            rack.goto_zombie(ids[1]).unwrap();
            rack.alloc_ext(ids[0], Bytes::mib(32)).unwrap();
            let mut w = FuzzWorkload {
                wss,
                rng: DetRng::new(seed),
                hot: wss.count() / 8,
                hot_bias,
                write_bias: 0.3,
            };
            let cfg = EngineConfig::ram_ext(reserved, reserved.mul_f64(frac));
            engine::run(
                &mut w,
                &cfg,
                Backing::Rack { rack: &mut rack, user: ids[0], pool: PoolKind::Ext },
            )
            .unwrap()
            .exec_time
        };
        let scarce = run(0.25);
        let ample = run(0.75);
        prop_assert!(
            ample.as_nanos() as f64 <= scarce.as_nanos() as f64 * 1.05,
            "{ample} vs {scarce}"
        );
    }
}
