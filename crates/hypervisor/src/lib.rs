//! The modified KVM hypervisor: demand paging with remote memory (§4.5).
//!
//! The paper extends KVM's page-fault handler so a VM's pseudo-physical
//! memory can be backed by a mix of local machine frames and remote
//! buffer slots, with a replacement policy demoting cold pages as local
//! memory runs out. Two remote-memory modes exist:
//!
//! - **RAM Extension** (`RAM Ext`): hypervisor-managed and invisible to
//!   the guest. The VM believes all of `VMMemSize` is local RAM; the
//!   hypervisor pages the excess to remote buffers.
//! - **Explicit Swap Device** (`Explicit SD`): a swap disk the *guest*
//!   manages, backed by remote memory (or, for the Table 2 comparison,
//!   by a local SSD/HDD). The guest sees less RAM and behaves
//!   accordingly — the reason the paper finds `RAM Ext` superior.
//!
//! Modules: [`policy`] implements the three §6.2 replacement policies
//! (FIFO, Clock, Mixed); [`swapdev`] models the swap backends of Table 2;
//! [`splitdriver`] is the Explicit SD as a request-level paravirtual
//! device (the paper's split-driver model); [`engine`] is the paging
//! engine that executes a workload's access stream against a memory
//! split and produces the timing/fault statistics behind Fig. 8 and
//! Tables 1–2; [`wss`] estimates a VM's working-set size by accessed-bit
//! sampling — the input to ZombieStack's 30 % consolidation rule.

pub mod engine;
pub mod policy;
pub mod splitdriver;
pub mod swapdev;
pub mod wss;

pub use engine::{EngineConfig, Mode, RunStats};
pub use policy::Policy;
pub use swapdev::SwapBackend;
