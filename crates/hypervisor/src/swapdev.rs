//! Swap backends for the Table 2 comparison.
//!
//! §6.4 compares the remote-RAM Explicit SD against "a local fast swap
//! device (provided by an SSD, Samsung MZ-7PD256), and a local slow swap
//! device (provided by a HDD, Seagate ST12000NM0007)". This module
//! carries the 4 KiB latency profiles of those devices; remote RAM goes
//! through the rack's RDMA path instead of a constant.

use zombieland_simcore::SimDuration;

/// Where an Explicit Swap Device's blocks live.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SwapBackend {
    /// Remote RAM over RDMA (the paper's Explicit SD).
    RemoteRam,
    /// Local SATA SSD (Samsung MZ-7PD256-class).
    LocalSsd,
    /// Local HDD (Seagate ST12000NM-class).
    LocalHdd,
}

impl SwapBackend {
    /// Table 2 column label.
    pub fn label(self) -> &'static str {
        match self {
            SwapBackend::RemoteRam => "ESD",
            SwapBackend::LocalSsd => "LFSD",
            SwapBackend::LocalHdd => "LSSD",
        }
    }

    /// 4 KiB random-read latency. `None` for [`SwapBackend::RemoteRam`],
    /// whose cost comes from the RDMA path.
    pub fn read_4k(self) -> Option<SimDuration> {
        match self {
            SwapBackend::RemoteRam => None,
            SwapBackend::LocalSsd => Some(SimDuration::from_micros(95)),
            SwapBackend::LocalHdd => Some(SimDuration::from_millis(11)),
        }
    }

    /// 4 KiB write latency (SSD writes buffer in SLC/DRAM cache; HDD pays
    /// the same mechanical cost both ways).
    pub fn write_4k(self) -> Option<SimDuration> {
        match self {
            SwapBackend::RemoteRam => None,
            SwapBackend::LocalSsd => Some(SimDuration::from_micros(60)),
            SwapBackend::LocalHdd => Some(SimDuration::from_millis(11)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn device_ordering() {
        // SSD is ~100× faster than HDD; RDMA (≈2-3 µs) beats both, which
        // is Table 2's observation (2): "Using a remote RAM as the swap
        // space through Infiniband is better than using a local storage,
        // even if the latter is fast".
        let ssd = SwapBackend::LocalSsd.read_4k().unwrap();
        let hdd = SwapBackend::LocalHdd.read_4k().unwrap();
        assert!(hdd > ssd * 50);
        assert!(ssd > SimDuration::from_micros(10));
        assert!(SwapBackend::RemoteRam.read_4k().is_none());
    }

    #[test]
    fn labels_match_table2() {
        assert_eq!(SwapBackend::RemoteRam.label(), "ESD");
        assert_eq!(SwapBackend::LocalSsd.label(), "LFSD");
        assert_eq!(SwapBackend::LocalHdd.label(), "LSSD");
    }
}
