//! The Explicit Swap Device as a paravirtual split driver (§4.5).
//!
//! "Our Explicit SD implementation is based on the split-driver model
//! \[47\]": the guest's frontend queues block requests on a shared ring;
//! the host backend pops them, places/fetches pages through the
//! remote-mem-mgr, and "asynchronously swaps to local storage for fault
//! tolerance". This module models that device at request granularity —
//! the paging engine uses an aggregate cost model for speed, while this
//! one exists for protocol-level tests and the examples.

use std::collections::{BTreeMap, VecDeque};

use zombieland_core::manager::{PageLoc, PoolKind};
use zombieland_core::{PageHandle, Rack, RackError, ServerId};
use zombieland_simcore::{Bytes, Pages, SimDuration};

/// Cost of one frontend→backend ring notification (hypercall/event
/// channel kick).
const RING_KICK: SimDuration = SimDuration::from_micros(2);
/// Backend per-request processing (grant mapping, request parsing).
const BACKEND_WORK: SimDuration = SimDuration::from_micros(3);

/// A guest block request against the swap device.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SwapRequest {
    /// Write guest page `sector` out to the device.
    Out {
        /// Device sector (one sector = one 4 KiB page).
        sector: u64,
    },
    /// Read guest page `sector` back in.
    In {
        /// Device sector.
        sector: u64,
    },
}

impl SwapRequest {
    fn sector(&self) -> u64 {
        match self {
            SwapRequest::Out { sector } | SwapRequest::In { sector } => *sector,
        }
    }
}

/// A completed request with its cost and where the data came from/went.
#[derive(Clone, Copy, Debug)]
pub struct Completion {
    /// The request.
    pub request: SwapRequest,
    /// Synchronous latency the guest observed.
    pub latency: SimDuration,
    /// Whether the slow local-backup path served it.
    pub from_backup: bool,
}

/// Errors of the device protocol.
#[derive(Debug)]
pub enum SwapDevError {
    /// Sector beyond the device capacity.
    OutOfRange(u64),
    /// Reading a sector that was never written.
    NotPresent(u64),
    /// The rack data path failed.
    Rack(RackError),
}

impl core::fmt::Display for SwapDevError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            SwapDevError::OutOfRange(s) => write!(f, "sector {s} beyond device"),
            SwapDevError::NotPresent(s) => write!(f, "sector {s} never written"),
            SwapDevError::Rack(e) => write!(f, "rack: {e}"),
        }
    }
}

impl std::error::Error for SwapDevError {}

impl From<RackError> for SwapDevError {
    fn from(e: RackError) -> Self {
        SwapDevError::Rack(e)
    }
}

/// The split swap device: guest frontend ring + host backend state.
pub struct SplitSwapDevice {
    user: ServerId,
    capacity: Pages,
    ring: VecDeque<SwapRequest>,
    /// Sector → remote page handle for swapped-out sectors.
    sectors: BTreeMap<u64, PageHandle>,
    kicks: u64,
}

impl SplitSwapDevice {
    /// Creates a device of `capacity` for the VM on `user`. The caller
    /// must have provisioned the user's swap pool (`GS_alloc_swap`).
    pub fn new(user: ServerId, capacity: Bytes) -> Self {
        SplitSwapDevice {
            user,
            capacity: capacity.pages(),
            ring: VecDeque::new(),
            sectors: BTreeMap::new(),
            kicks: 0,
        }
    }

    /// Device capacity in sectors (pages).
    pub fn capacity(&self) -> Pages {
        self.capacity
    }

    /// Sectors currently swapped out.
    pub fn used_sectors(&self) -> u64 {
        self.sectors.len() as u64
    }

    /// Frontend: the guest queues a request and kicks the backend.
    pub fn submit(&mut self, req: SwapRequest) -> Result<(), SwapDevError> {
        if req.sector() >= self.capacity.count() {
            return Err(SwapDevError::OutOfRange(req.sector()));
        }
        if matches!(req, SwapRequest::In { .. }) && !self.sectors.contains_key(&req.sector()) {
            return Err(SwapDevError::NotPresent(req.sector()));
        }
        self.ring.push_back(req);
        self.kicks += 1;
        Ok(())
    }

    /// Pending (unprocessed) requests.
    pub fn pending(&self) -> usize {
        self.ring.len()
    }

    /// Backend: drains the ring against the rack, returning one
    /// completion per request in submission order.
    pub fn process(&mut self, rack: &mut Rack) -> Result<Vec<Completion>, SwapDevError> {
        let mut done = Vec::with_capacity(self.ring.len());
        while let Some(req) = self.ring.pop_front() {
            let mut latency = RING_KICK + BACKEND_WORK;
            let mut from_backup = false;
            match req {
                SwapRequest::Out { sector } => {
                    match self.sectors.get(&sector) {
                        // Overwrite of a live sector: rewrite in place
                        // (+ async mirror, counted by the manager).
                        Some(&h) => latency += rack.rewrite_page(self.user, h)?,
                        None => {
                            let (h, cost) = rack.place_page(self.user, PoolKind::Swap)?;
                            self.sectors.insert(sector, h);
                            latency += cost;
                        }
                    }
                }
                SwapRequest::In { sector } => {
                    let h = self.sectors[&sector];
                    from_backup = rack.manager(self.user).locate(h).map_err(RackError::from)?
                        == PageLoc::LocalBackup;
                    // Swap-in frees the sector (Linux drops swap-cache
                    // entries for exclusive pages).
                    latency += rack.fetch_page(self.user, h, true)?;
                    self.sectors.remove(&sector);
                }
            }
            done.push(Completion {
                request: req,
                latency,
                from_backup,
            });
        }
        Ok(done)
    }

    /// Ring notifications so far.
    pub fn kicks(&self) -> u64 {
        self.kicks
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zombieland_core::RackConfig;

    fn setup() -> (Rack, SplitSwapDevice) {
        let mut rack = Rack::new(RackConfig::default());
        let ids = rack.server_ids();
        let (user, zombie) = (ids[0], ids[1]);
        rack.goto_zombie(zombie).unwrap();
        rack.alloc_swap(user, Bytes::mib(128)).unwrap();
        (rack, SplitSwapDevice::new(user, Bytes::mib(128)))
    }

    #[test]
    fn swap_out_then_in_round_trips() {
        let (mut rack, mut dev) = setup();
        dev.submit(SwapRequest::Out { sector: 7 }).unwrap();
        let out = dev.process(&mut rack).unwrap();
        assert_eq!(dev.used_sectors(), 1);

        dev.submit(SwapRequest::In { sector: 7 }).unwrap();
        let back = dev.process(&mut rack).unwrap();
        assert_eq!(out.len() + back.len(), 2);
        assert!(out[0].latency > RING_KICK && back[0].latency > RING_KICK);
        assert!(!back[0].from_backup);
        assert_eq!(dev.used_sectors(), 0, "swap-in freed the sector");
    }

    #[test]
    fn protocol_errors() {
        let (_, mut dev) = setup();
        assert!(matches!(
            dev.submit(SwapRequest::Out { sector: u64::MAX }),
            Err(SwapDevError::OutOfRange(_))
        ));
        assert!(matches!(
            dev.submit(SwapRequest::In { sector: 3 }),
            Err(SwapDevError::NotPresent(3))
        ));
    }

    #[test]
    fn overwrite_rewrites_in_place() {
        let (mut rack, mut dev) = setup();
        dev.submit(SwapRequest::Out { sector: 1 }).unwrap();
        dev.process(&mut rack).unwrap();
        let before = rack.manager(dev.user).backup_pages_written();
        dev.submit(SwapRequest::Out { sector: 1 }).unwrap();
        dev.process(&mut rack).unwrap();
        assert_eq!(dev.used_sectors(), 1);
        // The rewrite mirrored to the local backup again.
        assert_eq!(rack.manager(dev.user).backup_pages_written(), before + 1);
    }

    #[test]
    fn requests_complete_in_order() {
        let (mut rack, mut dev) = setup();
        for s in 0..16 {
            dev.submit(SwapRequest::Out { sector: s }).unwrap();
        }
        assert_eq!(dev.pending(), 16);
        let done = dev.process(&mut rack).unwrap();
        let sectors: Vec<u64> = done.iter().map(|c| c.request.sector()).collect();
        assert_eq!(sectors, (0..16).collect::<Vec<_>>());
        assert_eq!(dev.pending(), 0);
        assert_eq!(dev.kicks(), 16);
    }

    #[test]
    fn survives_zombie_crash_via_backup() {
        let (mut rack, mut dev) = setup();
        for s in 0..8 {
            dev.submit(SwapRequest::Out { sector: s }).unwrap();
        }
        dev.process(&mut rack).unwrap();
        // The serving zombie dies.
        let ids = rack.server_ids();
        rack.crash_server(ids[1]).unwrap();
        // Swap-ins still succeed — from the local mirror, slower.
        for s in 0..8 {
            dev.submit(SwapRequest::In { sector: s }).unwrap();
        }
        let done = dev.process(&mut rack).unwrap();
        assert!(done.iter().all(|c| c.from_backup));
    }
}
