//! The paging engine: executes a workload's access stream against a
//! local/remote memory split (§4.5's modified page-fault handler).
//!
//! Per access the engine charges the workload's own CPU cost, then walks
//! the same paths KVM's handler does:
//!
//! - **present** — hardware sets the accessed/dirty bits; no cost.
//! - **first touch** — minor fault: allocate a machine frame (evicting a
//!   victim if local memory is scarce) and map it.
//! - **remote fault** — the page was demoted: allocate a frame (again
//!   possibly evicting), fetch the page back, flip the PTE.
//!
//! Demotion writes the victim to the backing store *unless* a clean
//! remote copy is still valid — promoted-for-read pages keep their remote
//! copy, so re-demoting them is free (the swap-cache optimization). When
//! the remote pool fills up, stale clean copies are discarded to make
//! room.
//!
//! In **Explicit SD** mode the same machinery models the *guest* kernel
//! instead: the guest sees only the local share as RAM, loses a slice of
//! it to its own kernel/page cache ([`GUEST_EFFICIENCY`]), pays the
//! virtio/block-layer path on every swap I/O ([`GUEST_IO_PATH`]), and
//! its LRU is approximated by the Clock policy. This is how the paper's
//! observation that "applications and operating systems are configured
//! according to the RAM size they see at start time" becomes measurable.

use zombieland_core::manager::{PageHandle, PoolKind};
use zombieland_core::{DemandFetchBatch, Rack, RackError, ServerId};
use zombieland_mem::buffer::{BufferId, RemoteSlot};
use zombieland_mem::{AccessOutcome, FrameAllocator, Gfn, GfnSet, GuestPageTable, PageLocation};
use zombieland_simcore::{Bytes, Cycles, SimDuration};
use zombieland_workloads::{Access, Workload};

use crate::policy::{FaultList, Policy};
use crate::swapdev::SwapBackend;
use crate::wss::WssEstimator;

/// VM-exit + fault-handler entry/exit for a major (remote) fault.
const FAULT_TRAP: SimDuration = SimDuration::from_nanos(900);
/// Fast-path cost of a first-touch minor fault.
const MINOR_FAULT: SimDuration = SimDuration::from_nanos(500);
/// Extra guest block-layer + virtio cost per Explicit-SD swap I/O.
pub const GUEST_IO_PATH: SimDuration = SimDuration::from_micros(7);
/// Fraction of its RAM the guest can actually give the application
/// (kernel, slab and page cache take the rest) — why an Explicit-SD VM
/// behaves worse than RAM Ext at the same split.
pub const GUEST_EFFICIENCY: f64 = 0.80;
/// Synthetic buffer id marking "swapped to a local device" in the PTE
/// (device mode has no real remote slots; the token is never
/// dereferenced).
const DEVICE_BUFFER: BufferId = BufferId::new(u64::MAX);
/// Accesses pulled from the workload per [`Workload::fill`] batch.
const ACCESS_BATCH: usize = 4096;
/// Longest run of adjacent remote faults coalesced into one posted
/// fabric batch (bounds the staged-read buffer; runs longer than this
/// simply split into consecutive batches).
const DEMAND_RUN_CAP: usize = 64;

/// Remote-memory mode.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mode {
    /// Hypervisor-managed RAM Extension (guest oblivious).
    RamExt,
    /// Guest-visible Explicit Swap Device on the given backend.
    ExplicitSd(SwapBackend),
}

/// Engine configuration for one run.
#[derive(Clone, Copy, Debug)]
pub struct EngineConfig {
    /// The VM's reserved memory (`VMMemSize`).
    pub reserved: Bytes,
    /// The local share (`LocalMemSize`); the rest is remote/swap.
    pub local: Bytes,
    /// Replacement policy (ignored in Explicit-SD mode: the guest kernel
    /// decides there).
    pub policy: Policy,
    /// Remote-memory mode.
    pub mode: Mode,
    /// Core frequency used to convert policy cycles to time.
    pub cpu_ghz: f64,
    /// RNG seed for policy tie-breaking.
    pub seed: u64,
    /// Swap readahead window: on a remote fault, up to this many
    /// *adjacent* remote pages are prefetched in one pipelined RDMA batch
    /// (0 disables; only free frames are used, never evictions — the
    /// Linux swap-readahead discipline).
    pub readahead: u32,
}

impl EngineConfig {
    /// A RAM-Ext configuration with the paper's defaults (Mixed policy,
    /// 3 GHz cores).
    pub fn ram_ext(reserved: Bytes, local: Bytes) -> Self {
        EngineConfig {
            reserved,
            local,
            policy: Policy::MIXED_DEFAULT,
            mode: Mode::RamExt,
            cpu_ghz: 3.0,
            seed: 1,
            readahead: 0,
        }
    }

    /// An Explicit-SD configuration on the given backend.
    pub fn explicit_sd(reserved: Bytes, local: Bytes, backend: SwapBackend) -> Self {
        EngineConfig {
            reserved,
            local,
            policy: Policy::Clock, // The guest kernel's LRU.
            mode: Mode::ExplicitSd(backend),
            cpu_ghz: 3.0,
            seed: 1,
            readahead: 0,
        }
    }
}

/// Statistics of one run — the raw material of Fig. 8 and Tables 1–2.
#[derive(Clone, Copy, Debug, Default)]
pub struct RunStats {
    /// Total simulated execution time.
    pub exec_time: SimDuration,
    /// Accesses executed.
    pub ops: u64,
    /// Remote (major) faults: pages fetched back.
    pub remote_faults: u64,
    /// First-touch minor faults.
    pub minor_faults: u64,
    /// Pages demoted to the backing store.
    pub demotions: u64,
    /// Demotions that skipped the write (clean copy still valid).
    pub clean_demotions: u64,
    /// Total cycles spent inside the replacement policy.
    pub policy_cycles: Cycles,
    /// Times the policy ran.
    pub policy_invocations: u64,
    /// Time spent on backing-store I/O (RDMA or device).
    pub io_time: SimDuration,
    /// Pages pulled in by the readahead window (subset of promotions that
    /// never trapped).
    pub prefetched: u64,
    /// Distribution of remote-fault service times (trap + fetch).
    pub fault_latency: zombieland_simcore::stats::LatencyHistogram,
    /// Working-set size as the hypervisor's accessed-bit sampler saw it
    /// (what the 30 % consolidation rule would consume), in pages.
    pub wss_estimate: u64,
    /// Write faults onto clean pages — the page-dirtying events a
    /// pre-copy migration would chase.
    pub pages_dirtied: u64,
}

impl RunStats {
    /// Mean policy cost per invocation in cycles (Fig. 8 bottom).
    pub fn cycles_per_eviction(&self) -> f64 {
        if self.policy_invocations == 0 {
            0.0
        } else {
            self.policy_cycles.get() as f64 / self.policy_invocations as f64
        }
    }

    /// Performance penalty versus a baseline run, in percent ("how much
    /// longer the execution takes", Tables 1–2).
    pub fn penalty_pct(&self, baseline: &RunStats) -> f64 {
        (self.exec_time / baseline.exec_time - 1.0) * 100.0
    }

    /// The observed page-dirtying rate in pages per second of simulated
    /// execution — the parameter pre-copy migration models need.
    pub fn dirty_rate_pps(&self) -> f64 {
        if self.exec_time == SimDuration::ZERO {
            0.0
        } else {
            self.pages_dirtied as f64 / self.exec_time.as_secs_f64()
        }
    }
}

/// The backing store pages are demoted to.
pub enum Backing<'a> {
    /// Remote rack memory over RDMA.
    Rack {
        /// The rack serving remote memory.
        rack: &'a mut Rack,
        /// The user server the VM runs on.
        user: ServerId,
        /// Which granted pool to draw slots from.
        pool: PoolKind,
    },
    /// A local swap device with constant 4 KiB latencies.
    Device {
        /// 4 KiB read latency.
        read: SimDuration,
        /// 4 KiB write latency.
        write: SimDuration,
    },
}

/// Errors from a run.
#[derive(Debug)]
pub enum EngineError {
    /// The rack data path failed.
    Rack(RackError),
    /// Local memory is zero pages — nothing can run.
    NoLocalMemory,
}

impl core::fmt::Display for EngineError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            EngineError::Rack(e) => write!(f, "rack: {e}"),
            EngineError::NoLocalMemory => write!(f, "VM has no local memory"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<RackError> for EngineError {
    fn from(e: RackError) -> Self {
        EngineError::Rack(e)
    }
}

struct Engine<'a> {
    cfg: EngineConfig,
    backing: Backing<'a>,
    gpt: GuestPageTable,
    frames: FrameAllocator,
    list: FaultList,
    /// RAM-Ext/remote mode: the rack handle of each demoted (or
    /// clean-copied) guest page, indexed densely by frame number — every
    /// fault-path lookup is one array access instead of a tree walk.
    handles: Vec<Option<PageHandle>>,
    /// Local pages that still have a valid (clean) remote copy.
    clean_copies: GfnSet,
    /// Device mode: pages with a valid copy on the device.
    on_device: GfnSet,
    stats: RunStats,
    accesses_since_clear: u64,
    clear_interval: u64,
    wss: WssEstimator,
    wss_round_open: bool,
    /// Staged demand-fault reads awaiting one posted fabric batch
    /// (drained by every coalesced run; reused across runs).
    demand_batch: DemandFetchBatch,
    /// Run-local (fault-latency ns → sample count) pairs, flushed to the
    /// `hv.fault_ns` obs histogram once per access batch instead of once
    /// per fault. Fault latencies take a handful of distinct values per
    /// run (the fabric page cost is a pure function of the page size), so
    /// the list stays tiny.
    fault_ns_pending: Vec<(u64, u64)>,
    /// Whether the obs metrics sink was on when the run started. The
    /// level is thread-local and nothing inside a run changes it, so one
    /// load up front replaces a per-fault check — `--obs-level off` costs
    /// nothing on the fault path.
    obs_metrics: bool,
}

/// Recycled per-run paging structures. One engine run at experiment
/// scale allocates tens of megabytes of dense tables (PTEs, the handle
/// table, fault-list node arrays, bitsets); when a grid fans out, N
/// workers re-faulting that much freshly zeroed memory per run through
/// the global allocator cost more than the runs themselves. Each
/// structure's `reset` restores the exact fresh-construction state, so
/// recycling is invisible in the results.
#[derive(Default)]
struct Scratch {
    gpt: Option<GuestPageTable>,
    frames: Option<FrameAllocator>,
    list: Option<FaultList>,
    handles: Vec<Option<PageHandle>>,
    clean_copies: Option<GfnSet>,
    on_device: Option<GfnSet>,
    accesses: Vec<Access>,
}

thread_local! {
    static SCRATCH: std::cell::RefCell<Scratch> = std::cell::RefCell::new(Scratch::default());
}

/// Runs `workload` to its suggested op count under `cfg` and `backing`.
pub fn run(
    workload: &mut dyn Workload,
    cfg: &EngineConfig,
    backing: Backing<'_>,
) -> Result<RunStats, EngineError> {
    let ops = workload.suggested_ops();
    run_ops(workload, cfg, backing, ops)
}

/// Runs exactly `ops` accesses through the batched fault path: accesses
/// are pulled in [`Workload::fill`] batches, per-op base cost is charged
/// per chunk, adjacent remote faults ride one posted fabric batch, and
/// obs histogram samples flush once per batch. Byte-identical results to
/// [`run_ops_reference`] — pinned by the `batching_equivalence` suite.
pub fn run_ops(
    workload: &mut dyn Workload,
    cfg: &EngineConfig,
    backing: Backing<'_>,
    ops: u64,
) -> Result<RunStats, EngineError> {
    run_ops_impl(workload, cfg, backing, ops, true)
}

/// Runs exactly `ops` accesses one page at a time — the per-page
/// reference semantics the batched path is pinned against. Kept callable
/// for equivalence tests and microbenches; [`run_ops`] is the production
/// path.
pub fn run_ops_reference(
    workload: &mut dyn Workload,
    cfg: &EngineConfig,
    backing: Backing<'_>,
    ops: u64,
) -> Result<RunStats, EngineError> {
    run_ops_impl(workload, cfg, backing, ops, false)
}

fn run_ops_impl(
    workload: &mut dyn Workload,
    cfg: &EngineConfig,
    backing: Backing<'_>,
    ops: u64,
    batched: bool,
) -> Result<RunStats, EngineError> {
    let effective_local = match cfg.mode {
        Mode::RamExt => cfg.local,
        Mode::ExplicitSd(_) => cfg.local.mul_f64(GUEST_EFFICIENCY),
    };
    let local_pages = effective_local.pages();
    if local_pages.count() == 0 {
        return Err(EngineError::NoLocalMemory);
    }
    let setup = zombieland_obs::profile::span(zombieland_obs::profile::Phase::HvSetup);
    let table_pages = cfg.reserved.pages().max(workload.wss());
    let pages = table_pages.count();
    let mut scratch = SCRATCH.with(|s| std::mem::take(&mut *s.borrow_mut()));
    let gpt = match scratch.gpt.take() {
        Some(mut g) => {
            g.reset(table_pages);
            g
        }
        None => GuestPageTable::new(table_pages),
    };
    let frames = match scratch.frames.take() {
        Some(mut f) => {
            f.reset(effective_local);
            f
        }
        None => FrameAllocator::new(effective_local),
    };
    let list = match scratch.list.take() {
        Some(mut l) => {
            l.reset(cfg.seed, pages);
            l
        }
        None => FaultList::with_capacity(cfg.seed, pages),
    };
    let mut handles = scratch.handles;
    handles.clear();
    handles.resize(pages as usize, None);
    let clean_copies = match scratch.clean_copies.take() {
        Some(mut s) => {
            s.reset(pages);
            s
        }
        None => GfnSet::new(pages),
    };
    let on_device = match scratch.on_device.take() {
        Some(mut s) => {
            s.reset(pages);
            s
        }
        None => GfnSet::new(pages),
    };
    let mut access_buf = scratch.accesses;
    let mut engine = Engine {
        cfg: *cfg,
        backing,
        gpt,
        frames,
        list,
        handles,
        clean_copies,
        on_device,
        stats: RunStats::default(),
        wss: WssEstimator::new(512, cfg.seed ^ 0x5735),
        wss_round_open: false,
        accesses_since_clear: 0,
        // Amortized O(1) per access: one global clear per local-size
        // worth of accesses (the paper's "periodically cleared").
        clear_interval: local_pages.count().max(1024),
        demand_batch: DemandFetchBatch::new(),
        fault_ns_pending: Vec::new(),
        obs_metrics: zombieland_obs::sink::metrics_enabled(),
    };
    drop(setup);
    {
        let _span = zombieland_obs::profile::span(zombieland_obs::profile::Phase::FaultBatch);
        if batched {
            // base_op_cost is constant per workload instance (trait
            // contract), so one sample covers the whole run.
            let base = workload.base_op_cost();
            access_buf.resize(
                ACCESS_BATCH,
                Access {
                    page: 0,
                    write: false,
                },
            );
            let mut remaining = ops;
            while remaining > 0 {
                let n = remaining.min(ACCESS_BATCH as u64) as usize;
                workload.fill(&mut access_buf[..n]);
                engine.run_batch(&access_buf[..n], base)?;
                remaining -= n as u64;
            }
        } else {
            for _ in 0..ops {
                let access = workload.next_access();
                engine.step(access.page, access.write, workload.base_op_cost())?;
            }
        }
    }
    engine.stats.ops = ops;
    if engine.wss_round_open {
        engine.wss.end_round(&engine.gpt);
    }
    engine.stats.wss_estimate = engine.wss.estimate().count();
    if zombieland_obs::sink::metrics_enabled() {
        // Swap-in = remote fault (page promoted back), swap-out =
        // demotion; counters roll up once per run so the hot loop pays
        // nothing beyond the per-fault histogram sample.
        let s = &engine.stats;
        zombieland_obs::sink::counter_add("hv.ops", s.ops);
        zombieland_obs::sink::counter_add("hv.minor_faults", s.minor_faults);
        zombieland_obs::sink::counter_add("hv.remote_faults", s.remote_faults);
        zombieland_obs::sink::counter_add("hv.demotions", s.demotions);
        zombieland_obs::sink::counter_add("hv.clean_demotions", s.clean_demotions);
        zombieland_obs::sink::counter_add("hv.prefetched", s.prefetched);
        zombieland_obs::sink::gauge_set("hv.wss_pages", s.wss_estimate);
        zombieland_obs::trace_event!(
            zombieland_simcore::SimTime::ZERO + s.exec_time,
            "hypervisor", "run_done",
            "ops" => s.ops,
            "remote_faults" => s.remote_faults,
            "demotions" => s.demotions,
            "wss_pages" => s.wss_estimate);
    }
    // Teardown: release every remote page the VM still holds, then park
    // the dense tables in the per-thread scratch pool for the next run.
    let _teardown = zombieland_obs::profile::span(zombieland_obs::profile::Phase::HvSetup);
    let Engine {
        backing,
        gpt,
        frames,
        list,
        mut handles,
        clean_copies,
        on_device,
        stats,
        ..
    } = engine;
    if let Backing::Rack { rack, user, .. } = backing {
        for slot in handles.iter_mut() {
            if let Some(handle) = slot.take() {
                // Pages may have fallen back to local backup; both are fine.
                let _ = rack.free_page(user, handle);
            }
        }
    }
    SCRATCH.with(|s| {
        *s.borrow_mut() = Scratch {
            gpt: Some(gpt),
            frames: Some(frames),
            list: Some(list),
            handles,
            clean_copies: Some(clean_copies),
            on_device: Some(on_device),
            accesses: access_buf,
        };
    });
    Ok(stats)
}

impl Engine<'_> {
    fn step(&mut self, page: u64, write: bool, base: SimDuration) -> Result<(), EngineError> {
        self.stats.exec_time += base;
        let gfn = Gfn::new(page);
        match self.gpt.locate(gfn).expect("workload stays in bounds") {
            PageLocation::Local(_) => {
                if write && !self.gpt.dirty(gfn).expect("located local") {
                    self.stats.pages_dirtied += 1;
                    // A dirtied page invalidates its clean remote copy.
                    self.clean_copies.remove(gfn);
                    self.on_device.remove(gfn);
                }
                self.gpt.touch(gfn, write).expect("located local");
            }
            PageLocation::NotAllocated => {
                self.stats.minor_faults += 1;
                self.stats.exec_time += MINOR_FAULT;
                let frame = self.take_frame()?;
                self.gpt.map_local(gfn, frame).expect("was unallocated");
                self.gpt.touch(gfn, write).expect("just mapped");
                if write {
                    self.stats.pages_dirtied += 1;
                }
                self.list.push(gfn);
            }
            PageLocation::Remote(_) => {
                self.stats.remote_faults += 1;
                self.stats.exec_time += FAULT_TRAP;
                let frame = self.take_frame()?;
                let io = self.fetch(gfn)?;
                self.stats.io_time += io;
                self.stats.exec_time += io;
                self.stats.fault_latency.record(FAULT_TRAP + io);
                zombieland_obs::sink::hist_record("hv.fault_ns", (FAULT_TRAP + io).as_nanos());
                self.gpt.promote(gfn, frame).expect("was remote");
                self.gpt.touch(gfn, write).expect("just promoted");
                if write {
                    self.stats.pages_dirtied += 1;
                    self.clean_copies.remove(gfn);
                    self.on_device.remove(gfn);
                } else {
                    // Keep the remote/device copy valid: a future clean
                    // demotion is then free.
                    match self.backing {
                        Backing::Rack { .. } => {
                            self.clean_copies.insert(gfn);
                        }
                        Backing::Device { .. } => {
                            self.on_device.insert(gfn);
                        }
                    }
                }
                self.list.push(gfn);
                if self.cfg.readahead > 0 {
                    let io = self.readahead(gfn)?;
                    self.stats.io_time += io;
                    self.stats.exec_time += io;
                }
            }
        }
        self.accesses_since_clear += 1;
        if self.accesses_since_clear >= self.clear_interval {
            self.clear_tick();
        }
        Ok(())
    }

    /// The periodic accessed-bit clear + WSS round boundary, fired every
    /// `clear_interval` accesses.
    fn clear_tick(&mut self) {
        self.accesses_since_clear = 0;
        // The WSS sampler closes its round before anything clears
        // accessed bits, then re-arms for the next interval.
        if self.wss_round_open {
            self.wss.end_round(&self.gpt);
            let est = self.wss.estimate().count();
            zombieland_obs::sink::gauge_set("hv.wss_pages", est);
            zombieland_obs::trace_event!(
                zombieland_simcore::SimTime::ZERO + self.stats.exec_time,
                "hypervisor", "wss_round", "estimate_pages" => est);
        }
        self.wss.begin_round(&mut self.gpt);
        self.wss_round_open = true;
        if matches!(self.cfg.policy, Policy::Clock | Policy::Mixed { .. }) {
            self.gpt.clear_all_accessed();
            // Background kthread work, charged to wall time.
            self.stats.exec_time += SimDuration::from_nanos(2) * self.gpt.size().count();
        }
    }

    /// Consumes one batch of accesses with chunked accounting: the per-op
    /// base cost is pre-added per chunk, chunks never straddle the
    /// periodic accessed-bit clear (so every mid-run observer fires at
    /// exactly the per-access state), and accumulated `hv.fault_ns`
    /// samples flush once at batch end. Byte-identical to issuing every
    /// access through [`Engine::step`]: integer-nanosecond adds commute,
    /// and nothing between an access and its chunk boundary reads
    /// `exec_time`.
    fn run_batch(&mut self, accesses: &[Access], base: SimDuration) -> Result<(), EngineError> {
        let mut i = 0;
        while i < accesses.len() {
            let until_clear = (self.clear_interval - self.accesses_since_clear) as usize;
            let n = (accesses.len() - i).min(until_clear);
            self.stats.exec_time += base * n as u64;
            self.run_chunk(&accesses[i..i + n])?;
            self.accesses_since_clear += n as u64;
            if self.accesses_since_clear >= self.clear_interval {
                self.clear_tick();
            }
            i += n;
        }
        self.flush_fault_hist();
        Ok(())
    }

    /// Classifies and executes every access of one clear-bounded chunk.
    fn run_chunk(&mut self, chunk: &[Access]) -> Result<(), EngineError> {
        // Remote-fault runs ride one posted fabric batch only where the
        // per-page path would not interleave readahead (which already
        // posts its own batches) and the backing has a fabric.
        let coalesce = self.cfg.readahead == 0 && matches!(self.backing, Backing::Rack { .. });
        let mut i = 0;
        while i < chunk.len() {
            let a = chunk[i];
            let gfn = Gfn::new(a.page);
            match self
                .gpt
                .access(gfn, a.write)
                .expect("workload stays in bounds")
            {
                AccessOutcome::Local { newly_dirtied } => {
                    if newly_dirtied {
                        self.stats.pages_dirtied += 1;
                        // A dirtied page invalidates its clean remote copy.
                        self.clean_copies.remove(gfn);
                        self.on_device.remove(gfn);
                    }
                    i += 1;
                }
                AccessOutcome::NotAllocated => {
                    self.minor_fault(gfn, a.write)?;
                    i += 1;
                }
                AccessOutcome::Remote(_) => {
                    if coalesce {
                        i += self.remote_fault_run(&chunk[i..])?;
                    } else {
                        self.remote_fault(gfn, a.write)?;
                        i += 1;
                    }
                }
            }
        }
        Ok(())
    }

    /// First-touch minor fault: allocate (possibly evicting) and map.
    fn minor_fault(&mut self, gfn: Gfn, write: bool) -> Result<(), EngineError> {
        self.stats.minor_faults += 1;
        self.stats.exec_time += MINOR_FAULT;
        let frame = self.take_frame()?;
        self.gpt.map_local(gfn, frame).expect("was unallocated");
        self.gpt.touch(gfn, write).expect("just mapped");
        if write {
            self.stats.pages_dirtied += 1;
        }
        self.list.push(gfn);
        Ok(())
    }

    /// One remote fault on the per-page path (device backing, or rack
    /// backing with readahead). Identical accounting to [`Engine::step`]'s
    /// remote arm, with the obs sample deferred to the batch flush.
    fn remote_fault(&mut self, gfn: Gfn, write: bool) -> Result<(), EngineError> {
        self.stats.remote_faults += 1;
        self.stats.exec_time += FAULT_TRAP;
        let frame = self.take_frame()?;
        let io = self.fetch(gfn)?;
        self.finish_remote_fault(gfn, frame, write, io);
        if self.cfg.readahead > 0 {
            let io = self.readahead(gfn)?;
            self.stats.io_time += io;
            self.stats.exec_time += io;
        }
        Ok(())
    }

    /// Handles a run of consecutive remote faults to distinct pages as
    /// one pipelined posted batch, consuming and returning the run's
    /// length. Every fault is charged and recorded exactly as the
    /// per-page path would — trap, eviction, per-page fetch cost, fault
    /// latency sample, PTE flip — in the same order; only the fabric
    /// *transport* is deferred into a single posted batch at the end
    /// ([`Rack::issue_demand_batch`]). Evictions interleave per fault, so
    /// victim selection sees the same list and accessed bits the
    /// reference would.
    fn remote_fault_run(&mut self, chunk: &[Access]) -> Result<usize, EngineError> {
        debug_assert!(self.demand_batch.is_empty());
        // The maximal coalescable prefix: consecutive accesses to
        // *distinct* pages that are remote right now. A repeated page
        // ends the run — its second access would be a local hit after
        // the first fault services it.
        let mut len = 1;
        while len < chunk.len() && len < DEMAND_RUN_CAP {
            let next = chunk[len].page;
            if chunk[..len].iter().any(|a| a.page == next) {
                break;
            }
            if !matches!(self.gpt.locate(Gfn::new(next)), Ok(PageLocation::Remote(_))) {
                break;
            }
            len += 1;
        }
        for &a in &chunk[..len] {
            let gfn = Gfn::new(a.page);
            self.stats.remote_faults += 1;
            self.stats.exec_time += FAULT_TRAP;
            let frame = self.take_frame()?;
            let io = self.stage_fetch(gfn)?;
            self.finish_remote_fault(gfn, frame, a.write, io);
        }
        let Backing::Rack { rack, user, .. } = &mut self.backing else {
            unreachable!("coalescing is only enabled for rack backing");
        };
        // One posted batch moves the data. Each page's synchronous cost
        // was already charged at stage time, so the transport-level
        // completion time is not re-accounted.
        rack.issue_demand_batch(*user, &mut self.demand_batch)?;
        Ok(len)
    }

    /// The post-fetch half of a remote fault: accounting, PTE flip,
    /// clean-copy bookkeeping, fault-list push.
    fn finish_remote_fault(
        &mut self,
        gfn: Gfn,
        frame: zombieland_mem::FrameId,
        write: bool,
        io: SimDuration,
    ) {
        self.stats.io_time += io;
        self.stats.exec_time += io;
        self.stats.fault_latency.record(FAULT_TRAP + io);
        if self.obs_metrics {
            self.note_fault_ns((FAULT_TRAP + io).as_nanos());
        }
        self.gpt.promote(gfn, frame).expect("was remote");
        self.gpt.touch(gfn, write).expect("just promoted");
        if write {
            self.stats.pages_dirtied += 1;
            self.clean_copies.remove(gfn);
            self.on_device.remove(gfn);
        } else {
            // Keep the remote/device copy valid: a future clean demotion
            // is then free.
            match self.backing {
                Backing::Rack { .. } => {
                    self.clean_copies.insert(gfn);
                }
                Backing::Device { .. } => {
                    self.on_device.insert(gfn);
                }
            }
        }
        self.list.push(gfn);
    }

    /// Stages one demand fetch into the pending posted batch, returning
    /// the page's synchronous cost (what [`Engine::fetch`] would charge).
    fn stage_fetch(&mut self, gfn: Gfn) -> Result<SimDuration, EngineError> {
        let guest_io = match self.cfg.mode {
            Mode::ExplicitSd(_) => GUEST_IO_PATH,
            Mode::RamExt => SimDuration::ZERO,
        };
        let Backing::Rack { rack, user, .. } = &mut self.backing else {
            unreachable!("coalescing is only enabled for rack backing");
        };
        let h = self.handles[gfn.get() as usize].expect("remote pages have handles");
        Ok(rack.stage_demand_fetch(*user, h, &mut self.demand_batch)? + guest_io)
    }

    /// Accumulates one `hv.fault_ns` sample for the per-batch flush.
    fn note_fault_ns(&mut self, ns: u64) {
        for e in self.fault_ns_pending.iter_mut() {
            if e.0 == ns {
                e.1 += 1;
                return;
            }
        }
        self.fault_ns_pending.push((ns, 1));
    }

    /// Flushes accumulated fault-latency samples to the obs histogram —
    /// bit-identical to having recorded each sample at its fault.
    fn flush_fault_hist(&mut self) {
        for (v, n) in self.fault_ns_pending.drain(..) {
            zombieland_obs::sink::hist_record_n("hv.fault_ns", v, n);
        }
    }

    /// Prefetches up to `readahead` pages adjacent to a faulting one,
    /// using only *free* frames (never evicting) and one pipelined batch.
    fn readahead(&mut self, gfn: Gfn) -> Result<SimDuration, EngineError> {
        let Backing::Rack { .. } = self.backing else {
            // Device readahead would model the disk elevator; the paper's
            // comparison doesn't need it.
            return Ok(SimDuration::ZERO);
        };
        let mut picked = Vec::new();
        let mut frames = Vec::new();
        let size = self.gpt.size().count();
        for i in 1..=self.cfg.readahead as u64 {
            let next = gfn.get() + i;
            if next >= size {
                break;
            }
            let g = Gfn::new(next);
            if !matches!(self.gpt.locate(g), Ok(PageLocation::Remote(_))) {
                continue;
            }
            // Like the kernel's swap readahead, prefetch may reclaim cold
            // frames to make room — bounded by the window size.
            let frame = match self.frames.alloc() {
                Ok(f) => f,
                Err(_) => match self.take_frame() {
                    Ok(f) => f,
                    Err(_) => break,
                },
            };
            picked.push(g);
            frames.push(frame);
        }
        if picked.is_empty() {
            return Ok(SimDuration::ZERO);
        }
        let Backing::Rack { rack, user, .. } = &mut self.backing else {
            unreachable!("checked above");
        };
        let handles: Vec<_> = picked
            .iter()
            .map(|g| self.handles[g.get() as usize].expect("remote pages have handles"))
            .collect();
        let io = rack.fetch_pages_batch(*user, &handles)?;
        for (g, frame) in picked.into_iter().zip(frames) {
            self.gpt.promote(g, frame).expect("was remote");
            // Prefetched pages were not demanded: leave accessed clear so
            // the policy can reclaim them if the guess was wrong.
            self.gpt.clear_accessed(g).expect("in range");
            self.clean_copies.insert(g);
            self.list.push(g);
            self.stats.prefetched += 1;
        }
        Ok(io)
    }

    /// Gets a free machine frame, evicting a victim if necessary.
    fn take_frame(&mut self) -> Result<zombieland_mem::FrameId, EngineError> {
        if let Ok(f) = self.frames.alloc() {
            return Ok(f);
        }
        // Eviction path: run the policy, demote the victim.
        let (victim, cycles) = self
            .list
            .select_victim(self.cfg.policy, &mut self.gpt)
            .expect("frames exhausted implies a non-empty fault list");
        self.stats.policy_cycles += cycles;
        self.stats.policy_invocations += 1;
        self.stats.exec_time += cycles.at_ghz(self.cfg.cpu_ghz);
        self.stats.demotions += 1;

        let dirty = self.gpt.dirty(victim).expect("victim is local");
        let io = self.demote_io(victim, dirty)?;
        self.stats.io_time += io;
        self.stats.exec_time += io;

        let slot = self.victim_slot(victim);
        let frame = self.gpt.demote(victim, slot).expect("victim is local");
        self.frames.free(frame).expect("frame was allocated");
        self.frames.alloc().map_err(|_| EngineError::NoLocalMemory)
    }

    /// The PTE token recording where the victim went.
    fn victim_slot(&self, victim: Gfn) -> RemoteSlot {
        match &self.backing {
            Backing::Rack { rack, user, .. } => {
                let handle =
                    self.handles[victim.get() as usize].expect("demoted pages have handles");
                match rack.manager(*user).locate(handle) {
                    Ok(zombieland_core::manager::PageLoc::Remote(slot)) => slot,
                    // Fallback pages live in the local backup; the PTE
                    // token is synthetic.
                    _ => RemoteSlot {
                        buffer: DEVICE_BUFFER,
                        slot: 0,
                    },
                }
            }
            Backing::Device { .. } => RemoteSlot {
                buffer: DEVICE_BUFFER,
                slot: (victim.get() & 0xFFFF_FFFF) as u32,
            },
        }
    }

    /// Writes the victim out (or skips the write when a clean copy is
    /// still valid). Returns the synchronous I/O cost.
    fn demote_io(&mut self, victim: Gfn, dirty: bool) -> Result<SimDuration, EngineError> {
        let guest_io = match self.cfg.mode {
            Mode::ExplicitSd(_) => GUEST_IO_PATH,
            Mode::RamExt => SimDuration::ZERO,
        };
        match &mut self.backing {
            Backing::Rack { rack, user, pool } => {
                match self.handles[victim.get() as usize] {
                    Some(h) => {
                        if dirty {
                            Ok(rack.rewrite_page(*user, h)? + guest_io)
                        } else {
                            // Clean copy still valid: free demotion.
                            self.stats.clean_demotions += 1;
                            self.clean_copies.remove(victim);
                            Ok(SimDuration::ZERO)
                        }
                    }
                    None => {
                        // First demotion of this page: place it, evicting
                        // stale clean copies if the pool is full.
                        let (h, cost) = loop {
                            match rack.place_page(*user, *pool) {
                                Ok(ok) => break ok,
                                Err(RackError::Manager(
                                    zombieland_core::manager::ManagerError::NoRemoteCapacity(_),
                                )) => {
                                    let Some(stale) = self.clean_copies.min() else {
                                        return Err(EngineError::Rack(RackError::Manager(
                                            zombieland_core::manager::ManagerError::NoRemoteCapacity(
                                                *pool,
                                            ),
                                        )));
                                    };
                                    self.clean_copies.remove(stale);
                                    let old = self.handles[stale.get() as usize]
                                        .take()
                                        .expect("clean copies have handles");
                                    rack.free_page(*user, old)?;
                                }
                                Err(e) => return Err(e.into()),
                            }
                        };
                        self.handles[victim.get() as usize] = Some(h);
                        Ok(cost + guest_io)
                    }
                }
            }
            Backing::Device { write, .. } => {
                if !dirty && self.on_device.contains(victim) {
                    self.stats.clean_demotions += 1;
                    self.on_device.remove(victim);
                    Ok(SimDuration::ZERO)
                } else {
                    Ok(*write + guest_io)
                }
            }
        }
    }

    /// Reads a remote page back in. Returns the synchronous I/O cost.
    fn fetch(&mut self, gfn: Gfn) -> Result<SimDuration, EngineError> {
        let guest_io = match self.cfg.mode {
            Mode::ExplicitSd(_) => GUEST_IO_PATH,
            Mode::RamExt => SimDuration::ZERO,
        };
        match &mut self.backing {
            Backing::Rack { rack, user, .. } => {
                let h = self.handles[gfn.get() as usize].expect("remote pages have handles");
                // Keep the remote slot: the copy stays valid until the
                // page is dirtied (tracked by the caller).
                Ok(rack.fetch_page(*user, h, false)? + guest_io)
            }
            Backing::Device { read, .. } => Ok(*read + guest_io),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zombieland_core::RackConfig;
    use zombieland_simcore::Pages;
    use zombieland_workloads::MicroBench;

    /// A rack with one user and one zombie, with `ext`/`swap` pools
    /// provisioned for the user.
    fn rack_with_pools(ext: Bytes, swap: Bytes) -> (Rack, ServerId) {
        let mut rack = Rack::new(RackConfig::default());
        let ids = rack.server_ids();
        let (user, zombie) = (ids[0], ids[1]);
        rack.goto_zombie(zombie).unwrap();
        if ext > Bytes::ZERO {
            rack.alloc_ext(user, ext).unwrap();
        }
        if swap > Bytes::ZERO {
            rack.alloc_swap(user, swap).unwrap();
        }
        (rack, user)
    }

    fn wss() -> Pages {
        Pages::new(2_048) // 8 MiB working set: fast tests.
    }

    fn reserved() -> Bytes {
        Bytes::mib(10)
    }

    fn run_micro(local: Bytes, policy: Policy) -> RunStats {
        let (mut rack, user) = rack_with_pools(Bytes::mib(64), Bytes::ZERO);
        let mut w = MicroBench::new(wss(), 7);
        let cfg = EngineConfig {
            policy,
            ..EngineConfig::ram_ext(reserved(), local)
        };
        run(
            &mut w,
            &cfg,
            Backing::Rack {
                rack: &mut rack,
                user,
                pool: PoolKind::Ext,
            },
        )
        .unwrap()
    }

    #[test]
    fn all_local_has_no_remote_faults() {
        let stats = run_micro(reserved(), Policy::MIXED_DEFAULT);
        assert_eq!(stats.remote_faults, 0);
        assert_eq!(stats.demotions, 0);
        // Every touched page minor-faulted exactly once: at least the hot
        // region, at most the whole working set.
        let hot = (wss().count() as f64 * MicroBench::HOT_FRACTION) as u64;
        assert!(stats.minor_faults >= hot);
        assert!(stats.minor_faults <= wss().count());
    }

    #[test]
    fn scarce_local_forces_paging() {
        let stats = run_micro(Bytes::mib(3), Policy::MIXED_DEFAULT);
        assert!(stats.remote_faults > 0);
        assert!(stats.demotions > 0);
        assert!(stats.io_time > SimDuration::ZERO);
    }

    #[test]
    fn penalty_monotone_in_local_share() {
        let base = run_micro(reserved(), Policy::MIXED_DEFAULT);
        let p20 = run_micro(Bytes::mib(2), Policy::MIXED_DEFAULT).penalty_pct(&base);
        let p50 = run_micro(Bytes::mib(5), Policy::MIXED_DEFAULT).penalty_pct(&base);
        let p80 = run_micro(Bytes::mib(8), Policy::MIXED_DEFAULT).penalty_pct(&base);
        assert!(p20 > p50, "{p20} > {p50}");
        assert!(p50 >= p80, "{p50} >= {p80}");
        // The micro-benchmark cliff: brutal below the hot region, mild at
        // 50 % (hot region = 48 % of WSS < 5 MiB local).
        assert!(p20 > 1_000.0, "worst case is thousands of percent: {p20}");
        assert!(p50 < 100.0, "50% local is acceptable: {p50}");
    }

    #[test]
    fn clock_faults_less_fifo_costs_less() {
        // Fig. 8's trade-off, on a Zipfian (recency-friendly) workload.
        let run_dc = |policy| {
            let (mut rack, user) = rack_with_pools(Bytes::mib(64), Bytes::ZERO);
            let mut w = zombieland_workloads::DataCaching::new(wss(), 3);
            let cfg = EngineConfig {
                policy,
                ..EngineConfig::ram_ext(reserved(), Bytes::mib(4))
            };
            run_ops(
                &mut w,
                &cfg,
                Backing::Rack {
                    rack: &mut rack,
                    user,
                    pool: PoolKind::Ext,
                },
                60_000,
            )
            .unwrap()
        };
        let fifo = run_dc(Policy::Fifo);
        let clock = run_dc(Policy::Clock);
        let mixed = run_dc(Policy::MIXED_DEFAULT);
        assert!(
            clock.remote_faults < fifo.remote_faults,
            "clock {} < fifo {}",
            clock.remote_faults,
            fifo.remote_faults
        );
        assert!(
            fifo.cycles_per_eviction() < mixed.cycles_per_eviction()
                && mixed.cycles_per_eviction() < clock.cycles_per_eviction(),
            "fifo {} < mixed {} < clock {}",
            fifo.cycles_per_eviction(),
            mixed.cycles_per_eviction(),
            clock.cycles_per_eviction()
        );
    }

    #[test]
    fn explicit_sd_worse_than_ram_ext_at_same_split() {
        // Table 2's observation (1): v1 (RAM Ext) outperforms v2 (ESD).
        // 4 MiB local fits the hot region for the hypervisor (1024 frames
        // ≥ 983 hot pages) but not for the guest, which loses 20 % of its
        // RAM to kernel overheads — exactly the paper's effect.
        let local = Bytes::mib(4);
        let re = run_micro(local, Policy::MIXED_DEFAULT);

        let (mut rack, user) = rack_with_pools(Bytes::ZERO, Bytes::mib(64));
        let mut w = MicroBench::new(wss(), 7);
        let cfg = EngineConfig::explicit_sd(reserved(), local, SwapBackend::RemoteRam);
        let esd = run(
            &mut w,
            &cfg,
            Backing::Rack {
                rack: &mut rack,
                user,
                pool: PoolKind::Swap,
            },
        )
        .unwrap();
        assert!(
            esd.exec_time > re.exec_time,
            "esd {} > re {}",
            esd.exec_time,
            re.exec_time
        );
        // The guest generates more swap traffic than the hypervisor
        // (the paper measured +122 % for Elasticsearch).
        assert!(esd.remote_faults > re.remote_faults);
    }

    #[test]
    fn device_backends_order_correctly() {
        // RDMA < SSD < HDD for the same workload and split.
        let local = Bytes::mib(4);
        let run_dev = |backend: SwapBackend| {
            let mut w = MicroBench::new(wss(), 7);
            let cfg = EngineConfig::explicit_sd(reserved(), local, backend);
            run(
                &mut w,
                &cfg,
                Backing::Device {
                    read: backend.read_4k().unwrap(),
                    write: backend.write_4k().unwrap(),
                },
            )
            .unwrap()
        };
        let ssd = run_dev(SwapBackend::LocalSsd);
        let hdd = run_dev(SwapBackend::LocalHdd);
        assert!(hdd.exec_time > ssd.exec_time * 10.0 as u64);

        let (mut rack, user) = rack_with_pools(Bytes::ZERO, Bytes::mib(64));
        let mut w = MicroBench::new(wss(), 7);
        let cfg = EngineConfig::explicit_sd(reserved(), local, SwapBackend::RemoteRam);
        let rdma = run(
            &mut w,
            &cfg,
            Backing::Rack {
                rack: &mut rack,
                user,
                pool: PoolKind::Swap,
            },
        )
        .unwrap();
        assert!(ssd.exec_time > rdma.exec_time);
    }

    #[test]
    fn readahead_helps_sequential_workloads() {
        // Spark-style scans fault page-after-page: a readahead window
        // turns eight trap+fetch round trips into one batch.
        let run_spark = |readahead: u32| {
            let (mut rack, user) = rack_with_pools(Bytes::mib(64), Bytes::ZERO);
            let mut w = zombieland_workloads::SparkSql::new(wss(), 11);
            let cfg = EngineConfig {
                readahead,
                ..EngineConfig::ram_ext(reserved(), Bytes::mib(4))
            };
            run(
                &mut w,
                &cfg,
                Backing::Rack {
                    rack: &mut rack,
                    user,
                    pool: PoolKind::Ext,
                },
            )
            .unwrap()
        };
        let off = run_spark(0);
        let on = run_spark(8);
        assert_eq!(off.prefetched, 0);
        assert!(on.prefetched > 0, "readahead fired");
        assert!(
            on.remote_faults < off.remote_faults,
            "prefetched pages never trap: {} < {}",
            on.remote_faults,
            off.remote_faults
        );
        assert!(
            on.exec_time < off.exec_time,
            "batching wins: {} < {}",
            on.exec_time,
            off.exec_time
        );
    }

    #[test]
    fn engine_reports_a_wss_estimate() {
        // At 100 % local the only signal is the accessed bits; the
        // estimate should land near the micro-benchmark's hot region.
        let stats = run_micro(reserved(), Policy::MIXED_DEFAULT);
        let hot = (wss().count() as f64 * MicroBench::HOT_FRACTION) as u64;
        let est = stats.wss_estimate;
        assert!(
            est > hot / 3 && est < wss().count() * 2,
            "estimate {est} vs hot {hot}"
        );
    }

    #[test]
    fn dirty_rate_tracks_writes() {
        // The micro-benchmark writes every other sweep page: a healthy
        // dirtying rate, strictly positive and below the access rate.
        let stats = run_micro(reserved(), Policy::MIXED_DEFAULT);
        assert!(stats.pages_dirtied > 0);
        assert!(stats.pages_dirtied <= stats.ops);
        assert!(stats.dirty_rate_pps() > 0.0);
    }

    #[test]
    fn clean_demotions_skip_io() {
        // Read-heavy thrash: re-demoting clean pages must be free.
        let stats = run_micro(Bytes::mib(3), Policy::Fifo);
        assert!(stats.clean_demotions > 0);
    }

    #[test]
    fn zero_local_memory_rejected() {
        let (mut rack, user) = rack_with_pools(Bytes::mib(64), Bytes::ZERO);
        let mut w = MicroBench::new(wss(), 7);
        let cfg = EngineConfig::ram_ext(reserved(), Bytes::ZERO);
        assert!(matches!(
            run(
                &mut w,
                &cfg,
                Backing::Rack {
                    rack: &mut rack,
                    user,
                    pool: PoolKind::Ext
                }
            ),
            Err(EngineError::NoLocalMemory)
        ));
    }

    #[test]
    fn run_releases_remote_pages() {
        let (mut rack, user) = rack_with_pools(Bytes::mib(64), Bytes::ZERO);
        {
            let mut w = MicroBench::new(wss(), 7);
            let cfg = EngineConfig::ram_ext(reserved(), Bytes::mib(3));
            run(
                &mut w,
                &cfg,
                Backing::Rack {
                    rack: &mut rack,
                    user,
                    pool: PoolKind::Ext,
                },
            )
            .unwrap();
        }
        assert_eq!(rack.manager(user).live_pages(), 0);
    }
}
