//! Page replacement policies (§6.2).
//!
//! "The efficiency of RAM Ext depends on the replacement policy which
//! selects the page that should be transferred to a remote memory when
//! the local memory becomes scarce." The paper compares three policies
//! over a FIFO list of faulted pages:
//!
//! - **FIFO** — evict the page with the oldest fault. O(1), but blind to
//!   reuse: it happily evicts hot pages.
//! - **Clock** — walk the list clearing accessed bits, giving accessed
//!   pages a second chance. Fewest faults, but the walk is expensive
//!   (Fig. 8 bottom).
//! - **Mixed** — Clock over the first `x` entries only (x = 5 in the
//!   paper), falling back to FIFO on the rest: most of Clock's fault
//!   avoidance at a fraction of its iteration cost. The paper's winner.
//!
//! [`Policy::Random`] is not one of the paper's hypervisor policies; it
//! approximates the *guest kernel's* active/inactive LRU for the Explicit
//! SD model, whose partial hot-set protection behaves like random
//! eviction under adversarial sweeps.

use std::collections::VecDeque;

use zombieland_mem::{Gfn, GuestPageTable};
use zombieland_simcore::{Cycles, DetRng};

/// A replacement policy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Policy {
    /// Oldest fault first.
    Fifo,
    /// Second-chance walk over the whole list.
    Clock,
    /// Clock over the first `x` entries, FIFO afterwards.
    Mixed {
        /// How many entries the Clock phase examines (paper: 5).
        x: usize,
    },
    /// Uniform random victim (guest-LRU approximation, not a paper
    /// policy).
    Random,
}

impl Policy {
    /// The paper's Mixed configuration (x = 5).
    pub const MIXED_DEFAULT: Policy = Policy::Mixed { x: 5 };

    /// Table/figure label.
    pub fn name(self) -> &'static str {
        match self {
            Policy::Fifo => "FIFO",
            Policy::Clock => "Clock",
            Policy::Mixed { .. } => "Mixed",
            Policy::Random => "Random",
        }
    }
}

/// Cycle costs of the list operations, calibrated so the Fig. 8 (bottom)
/// magnitudes come out: FIFO ~100 cycles, Mixed ~hundreds, Clock up to
/// ~2000 when the walk is long.
mod cost {
    /// Fixed entry/bookkeeping cost of any selection.
    pub const BASE: u64 = 80;
    /// Popping/re-queuing one list entry.
    pub const LIST_OP: u64 = 20;
    /// Examining one entry's accessed bit (EPT/page-table walk).
    pub const EXAMINE: u64 = 130;
}

/// The FIFO list of faulted pages plus the victim-selection logic.
#[derive(Debug)]
pub struct FaultList {
    list: VecDeque<Gfn>,
    rng: DetRng,
}

impl FaultList {
    /// Creates an empty list. `seed` only matters for [`Policy::Random`].
    pub fn new(seed: u64) -> Self {
        FaultList {
            list: VecDeque::new(),
            rng: DetRng::new(seed),
        }
    }

    /// Records a fresh fault (page just became local).
    pub fn push(&mut self, gfn: Gfn) {
        self.list.push_back(gfn);
    }

    /// Number of tracked pages.
    pub fn len(&self) -> usize {
        self.list.len()
    }

    /// Whether no pages are tracked.
    pub fn is_empty(&self) -> bool {
        self.list.is_empty()
    }

    /// Selects and removes a victim according to `policy`, returning the
    /// page and the policy's own cost in CPU cycles (the Fig. 8 bottom
    /// metric). Returns `None` when the list is empty.
    pub fn select_victim(
        &mut self,
        policy: Policy,
        gpt: &mut GuestPageTable,
    ) -> Option<(Gfn, Cycles)> {
        if self.list.is_empty() {
            return None;
        }
        let mut cycles = cost::BASE;
        let victim = match policy {
            Policy::Fifo => {
                cycles += cost::LIST_OP;
                self.list.pop_front()?
            }
            Policy::Clock => {
                // Second chance: accessed pages are cleared and re-queued;
                // the first un-accessed page is the victim. Bounded by one
                // full revolution plus one entry (everything cleared by
                // then).
                let mut victim = None;
                for _ in 0..=self.list.len() {
                    let gfn = self.list.pop_front()?;
                    cycles += cost::EXAMINE;
                    if gpt.accessed(gfn).unwrap_or(false) {
                        let _ = gpt.clear_accessed(gfn);
                        self.list.push_back(gfn);
                        cycles += cost::LIST_OP;
                    } else {
                        victim = Some(gfn);
                        break;
                    }
                }
                victim?
            }
            Policy::Mixed { x } => {
                // Clock over the first x entries (clearing as it goes);
                // if all were accessed, FIFO takes the oldest of the rest
                // — which by now is the front.
                let mut victim = None;
                let probe = x.min(self.list.len());
                for _ in 0..probe {
                    let gfn = self.list.pop_front()?;
                    cycles += cost::EXAMINE;
                    if gpt.accessed(gfn).unwrap_or(false) {
                        let _ = gpt.clear_accessed(gfn);
                        self.list.push_back(gfn);
                        cycles += cost::LIST_OP;
                    } else {
                        victim = Some(gfn);
                        break;
                    }
                }
                match victim {
                    Some(v) => v,
                    None => {
                        cycles += cost::LIST_OP;
                        self.list.pop_front()?
                    }
                }
            }
            Policy::Random => {
                let idx = self.rng.below(self.list.len() as u64) as usize;
                cycles += cost::LIST_OP + cost::EXAMINE;
                self.list.remove(idx)?
            }
        };
        Some((victim, Cycles::new(cycles)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zombieland_mem::FrameId;
    use zombieland_simcore::Pages;

    fn table_with(n: u64) -> (GuestPageTable, FaultList) {
        let mut gpt = GuestPageTable::new(Pages::new(n));
        let mut list = FaultList::new(0);
        for i in 0..n {
            gpt.map_local(Gfn::new(i), FrameId::new(i)).unwrap();
            list.push(Gfn::new(i));
        }
        (gpt, list)
    }

    #[test]
    fn fifo_takes_oldest() {
        let (mut gpt, mut list) = table_with(4);
        let (v, c) = list.select_victim(Policy::Fifo, &mut gpt).unwrap();
        assert_eq!(v, Gfn::new(0));
        assert_eq!(c.get(), 100);
        assert_eq!(list.len(), 3);
    }

    #[test]
    fn clock_gives_second_chances() {
        let (mut gpt, mut list) = table_with(4);
        // All pages were just mapped (accessed = true) except page 2.
        gpt.clear_accessed(Gfn::new(2)).unwrap();
        let (v, c) = list.select_victim(Policy::Clock, &mut gpt).unwrap();
        assert_eq!(v, Gfn::new(2), "first un-accessed page wins");
        // Pages 0 and 1 got their accessed bits cleared and re-queued.
        assert!(!gpt.accessed(Gfn::new(0)).unwrap());
        assert!(!gpt.accessed(Gfn::new(1)).unwrap());
        assert!(gpt.accessed(Gfn::new(3)).unwrap(), "never examined");
        // Cost grew with the 3 examinations.
        assert!(c.get() > 3 * 100);
    }

    #[test]
    fn clock_terminates_when_everything_accessed() {
        let (mut gpt, mut list) = table_with(64);
        // Every page accessed: the first revolution clears, the second
        // finds a victim — bounded, no infinite loop.
        let (v, c) = list.select_victim(Policy::Clock, &mut gpt).unwrap();
        assert_eq!(v, Gfn::new(0));
        assert!(c.get() > 64 * cost::EXAMINE, "walked the whole list: {c:?}");
        assert_eq!(list.len(), 63);
    }

    #[test]
    fn mixed_probes_then_fifo() {
        let (mut gpt, mut list) = table_with(10);
        // All accessed: Mixed examines 5, finds nothing, FIFOs entry 5.
        let (v, c) = list
            .select_victim(Policy::Mixed { x: 5 }, &mut gpt)
            .unwrap();
        assert_eq!(v, Gfn::new(5));
        // Cost is bounded by x examinations regardless of list length.
        assert!(c.get() < 1_000, "{c:?}");
        // But an un-accessed page within the window is preferred.
        let (mut gpt2, mut list2) = table_with(10);
        gpt2.clear_accessed(Gfn::new(1)).unwrap();
        let (v2, _) = list2
            .select_victim(Policy::Mixed { x: 5 }, &mut gpt2)
            .unwrap();
        assert_eq!(v2, Gfn::new(1));
    }

    #[test]
    fn mixed_cost_between_fifo_and_clock() {
        // With everything accessed, FIFO < Mixed < Clock in cycles.
        let run = |p: Policy| {
            let (mut gpt, mut list) = table_with(128);
            list.select_victim(p, &mut gpt).unwrap().1.get()
        };
        let fifo = run(Policy::Fifo);
        let mixed = run(Policy::MIXED_DEFAULT);
        let clock = run(Policy::Clock);
        assert!(fifo < mixed, "{fifo} < {mixed}");
        assert!(mixed < clock, "{mixed} < {clock}");
        assert!(
            clock > 10 * mixed,
            "Clock's walk dominates: {clock} vs {mixed}"
        );
    }

    #[test]
    fn random_is_deterministic_per_seed() {
        let pick = |seed| {
            let mut gpt = GuestPageTable::new(Pages::new(32));
            let mut list = FaultList::new(seed);
            for i in 0..32 {
                gpt.map_local(Gfn::new(i), FrameId::new(i)).unwrap();
                list.push(Gfn::new(i));
            }
            list.select_victim(Policy::Random, &mut gpt).unwrap().0
        };
        assert_eq!(pick(1), pick(1));
    }

    #[test]
    fn empty_list_yields_none() {
        let mut gpt = GuestPageTable::new(Pages::new(1));
        let mut list = FaultList::new(0);
        assert!(list.select_victim(Policy::Fifo, &mut gpt).is_none());
        assert!(list.is_empty());
    }
}
