//! Page replacement policies (§6.2).
//!
//! "The efficiency of RAM Ext depends on the replacement policy which
//! selects the page that should be transferred to a remote memory when
//! the local memory becomes scarce." The paper compares three policies
//! over a FIFO list of faulted pages:
//!
//! - **FIFO** — evict the page with the oldest fault. O(1), but blind to
//!   reuse: it happily evicts hot pages.
//! - **Clock** — walk the list clearing accessed bits, giving accessed
//!   pages a second chance. Fewest faults, but the walk is expensive
//!   (Fig. 8 bottom).
//! - **Mixed** — Clock over the first `x` entries only (x = 5 in the
//!   paper), falling back to FIFO on the rest: most of Clock's fault
//!   avoidance at a fraction of its iteration cost. The paper's winner.
//!
//! [`Policy::Random`] is not one of the paper's hypervisor policies; it
//! approximates the *guest kernel's* active/inactive LRU for the Explicit
//! SD model, whose partial hot-set protection behaves like random
//! eviction under adversarial sweeps.

use zombieland_mem::{Gfn, GuestPageTable};
use zombieland_simcore::{Cycles, DetRng};

/// A replacement policy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Policy {
    /// Oldest fault first.
    Fifo,
    /// Second-chance walk over the whole list.
    Clock,
    /// Clock over the first `x` entries, FIFO afterwards.
    Mixed {
        /// How many entries the Clock phase examines (paper: 5).
        x: usize,
    },
    /// Uniform random victim (guest-LRU approximation, not a paper
    /// policy).
    Random,
}

impl Policy {
    /// The paper's Mixed configuration (x = 5).
    pub const MIXED_DEFAULT: Policy = Policy::Mixed { x: 5 };

    /// Table/figure label.
    pub fn name(self) -> &'static str {
        match self {
            Policy::Fifo => "FIFO",
            Policy::Clock => "Clock",
            Policy::Mixed { .. } => "Mixed",
            Policy::Random => "Random",
        }
    }
}

/// Cycle costs of the list operations, calibrated so the Fig. 8 (bottom)
/// magnitudes come out: FIFO ~100 cycles, Mixed ~hundreds, Clock up to
/// ~2000 when the walk is long.
mod cost {
    /// Fixed entry/bookkeeping cost of any selection.
    pub const BASE: u64 = 80;
    /// Popping/re-queuing one list entry.
    pub const LIST_OP: u64 = 20;
    /// Examining one entry's accessed bit (EPT/page-table walk).
    pub const EXAMINE: u64 = 130;
}

/// Sentinel for "no neighbor" in the intrusive list.
const NIL: u32 = u32::MAX;

/// The FIFO list of faulted pages plus the victim-selection logic.
///
/// The list is *intrusive*: each guest frame number indexes dense
/// `next`/`prev` arrays, so push, pop-front and Clock's re-queue are a
/// handful of array writes with no per-node allocation — the fault path
/// pays the same cost whether the list holds ten pages or ten million.
/// Order semantics are exactly those of the deque it replaces (FIFO
/// insertion order, [`Policy::Random`] removes the i-th entry from the
/// front).
#[derive(Debug)]
pub struct FaultList {
    /// `next[g]`/`prev[g]`: neighbors of page `g` toward the tail/head.
    next: Vec<u32>,
    prev: Vec<u32>,
    /// Whether page `g` is currently on the list (NIL neighbors are
    /// ambiguous at the ends).
    linked: Vec<bool>,
    head: u32,
    tail: u32,
    len: usize,
    rng: DetRng,
}

impl FaultList {
    /// Creates an empty list. `seed` only matters for [`Policy::Random`].
    pub fn new(seed: u64) -> Self {
        Self::with_capacity(seed, 0)
    }

    /// Creates an empty list with node storage for frame numbers
    /// `0..pages` preallocated (it still grows on demand past that).
    pub fn with_capacity(seed: u64, pages: u64) -> Self {
        let n = pages as usize;
        FaultList {
            next: vec![NIL; n],
            prev: vec![NIL; n],
            linked: vec![false; n],
            head: NIL,
            tail: NIL,
            len: 0,
            rng: DetRng::new(seed),
        }
    }

    /// Returns the list to the empty state `with_capacity(seed, pages)`
    /// would produce, reusing the node arrays and re-seeding the RNG —
    /// the scratch-pool recycling path. A reset list is observably
    /// identical to a fresh one, including the [`Policy::Random`] draw
    /// sequence.
    pub fn reset(&mut self, seed: u64, pages: u64) {
        let n = pages as usize;
        self.next.clear();
        self.next.resize(n, NIL);
        self.prev.clear();
        self.prev.resize(n, NIL);
        self.linked.clear();
        self.linked.resize(n, false);
        self.head = NIL;
        self.tail = NIL;
        self.len = 0;
        self.rng = DetRng::new(seed);
    }

    /// Records a fresh fault (page just became local). A page is on the
    /// list at most once — the engine only pushes on the fault that makes
    /// it local, and eviction removes it.
    pub fn push(&mut self, gfn: Gfn) {
        let i = gfn.get() as usize;
        if i >= self.linked.len() {
            self.next.resize(i + 1, NIL);
            self.prev.resize(i + 1, NIL);
            self.linked.resize(i + 1, false);
        }
        debug_assert!(!self.linked[i], "page {gfn:?} pushed while listed");
        let i32b = i as u32;
        self.next[i] = NIL;
        self.prev[i] = self.tail;
        if self.tail == NIL {
            self.head = i32b;
        } else {
            self.next[self.tail as usize] = i32b;
        }
        self.tail = i32b;
        self.linked[i] = true;
        self.len += 1;
    }

    /// Detaches and returns the oldest entry.
    fn pop_front(&mut self) -> Option<Gfn> {
        if self.head == NIL {
            return None;
        }
        let i = self.head;
        self.unlink(i);
        Some(Gfn::new(i as u64))
    }

    /// Detaches node `i`, stitching its neighbors together.
    fn unlink(&mut self, i: u32) {
        let iu = i as usize;
        debug_assert!(self.linked[iu]);
        let (p, n) = (self.prev[iu], self.next[iu]);
        if p == NIL {
            self.head = n;
        } else {
            self.next[p as usize] = n;
        }
        if n == NIL {
            self.tail = p;
        } else {
            self.prev[n as usize] = p;
        }
        self.prev[iu] = NIL;
        self.next[iu] = NIL;
        self.linked[iu] = false;
        self.len -= 1;
    }

    /// Number of tracked pages.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no pages are tracked.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Selects and removes a victim according to `policy`, returning the
    /// page and the policy's own cost in CPU cycles (the Fig. 8 bottom
    /// metric). Returns `None` when the list is empty.
    pub fn select_victim(
        &mut self,
        policy: Policy,
        gpt: &mut GuestPageTable,
    ) -> Option<(Gfn, Cycles)> {
        if self.len == 0 {
            return None;
        }
        let mut cycles = cost::BASE;
        let victim = match policy {
            Policy::Fifo => {
                cycles += cost::LIST_OP;
                self.pop_front()?
            }
            Policy::Clock => {
                // Second chance: accessed pages are cleared and re-queued;
                // the first un-accessed page is the victim. Bounded by one
                // full revolution plus one entry (everything cleared by
                // then).
                let mut victim = None;
                for _ in 0..=self.len {
                    let gfn = self.pop_front()?;
                    cycles += cost::EXAMINE;
                    if gpt.accessed(gfn).unwrap_or(false) {
                        let _ = gpt.clear_accessed(gfn);
                        self.push(gfn);
                        cycles += cost::LIST_OP;
                    } else {
                        victim = Some(gfn);
                        break;
                    }
                }
                victim?
            }
            Policy::Mixed { x } => {
                // Clock over the first x entries (clearing as it goes);
                // if all were accessed, FIFO takes the oldest of the rest
                // — which by now is the front.
                let mut victim = None;
                let probe = x.min(self.len);
                for _ in 0..probe {
                    let gfn = self.pop_front()?;
                    cycles += cost::EXAMINE;
                    if gpt.accessed(gfn).unwrap_or(false) {
                        let _ = gpt.clear_accessed(gfn);
                        self.push(gfn);
                        cycles += cost::LIST_OP;
                    } else {
                        victim = Some(gfn);
                        break;
                    }
                }
                match victim {
                    Some(v) => v,
                    None => {
                        cycles += cost::LIST_OP;
                        self.pop_front()?
                    }
                }
            }
            Policy::Random => {
                // The i-th entry from the head, exactly what the deque's
                // `remove(idx)` returned.
                let idx = self.rng.below(self.len as u64) as usize;
                cycles += cost::LIST_OP + cost::EXAMINE;
                let mut node = self.head;
                for _ in 0..idx {
                    node = self.next[node as usize];
                }
                if node == NIL {
                    return None;
                }
                self.unlink(node);
                Gfn::new(node as u64)
            }
        };
        Some((victim, Cycles::new(cycles)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zombieland_mem::FrameId;
    use zombieland_simcore::Pages;

    fn table_with(n: u64) -> (GuestPageTable, FaultList) {
        let mut gpt = GuestPageTable::new(Pages::new(n));
        let mut list = FaultList::new(0);
        for i in 0..n {
            gpt.map_local(Gfn::new(i), FrameId::new(i)).unwrap();
            list.push(Gfn::new(i));
        }
        (gpt, list)
    }

    #[test]
    fn fifo_takes_oldest() {
        let (mut gpt, mut list) = table_with(4);
        let (v, c) = list.select_victim(Policy::Fifo, &mut gpt).unwrap();
        assert_eq!(v, Gfn::new(0));
        assert_eq!(c.get(), 100);
        assert_eq!(list.len(), 3);
    }

    #[test]
    fn clock_gives_second_chances() {
        let (mut gpt, mut list) = table_with(4);
        // All pages were just mapped (accessed = true) except page 2.
        gpt.clear_accessed(Gfn::new(2)).unwrap();
        let (v, c) = list.select_victim(Policy::Clock, &mut gpt).unwrap();
        assert_eq!(v, Gfn::new(2), "first un-accessed page wins");
        // Pages 0 and 1 got their accessed bits cleared and re-queued.
        assert!(!gpt.accessed(Gfn::new(0)).unwrap());
        assert!(!gpt.accessed(Gfn::new(1)).unwrap());
        assert!(gpt.accessed(Gfn::new(3)).unwrap(), "never examined");
        // Cost grew with the 3 examinations.
        assert!(c.get() > 3 * 100);
    }

    #[test]
    fn clock_terminates_when_everything_accessed() {
        let (mut gpt, mut list) = table_with(64);
        // Every page accessed: the first revolution clears, the second
        // finds a victim — bounded, no infinite loop.
        let (v, c) = list.select_victim(Policy::Clock, &mut gpt).unwrap();
        assert_eq!(v, Gfn::new(0));
        assert!(c.get() > 64 * cost::EXAMINE, "walked the whole list: {c:?}");
        assert_eq!(list.len(), 63);
    }

    #[test]
    fn mixed_probes_then_fifo() {
        let (mut gpt, mut list) = table_with(10);
        // All accessed: Mixed examines 5, finds nothing, FIFOs entry 5.
        let (v, c) = list
            .select_victim(Policy::Mixed { x: 5 }, &mut gpt)
            .unwrap();
        assert_eq!(v, Gfn::new(5));
        // Cost is bounded by x examinations regardless of list length.
        assert!(c.get() < 1_000, "{c:?}");
        // But an un-accessed page within the window is preferred.
        let (mut gpt2, mut list2) = table_with(10);
        gpt2.clear_accessed(Gfn::new(1)).unwrap();
        let (v2, _) = list2
            .select_victim(Policy::Mixed { x: 5 }, &mut gpt2)
            .unwrap();
        assert_eq!(v2, Gfn::new(1));
    }

    #[test]
    fn mixed_cost_between_fifo_and_clock() {
        // With everything accessed, FIFO < Mixed < Clock in cycles.
        let run = |p: Policy| {
            let (mut gpt, mut list) = table_with(128);
            list.select_victim(p, &mut gpt).unwrap().1.get()
        };
        let fifo = run(Policy::Fifo);
        let mixed = run(Policy::MIXED_DEFAULT);
        let clock = run(Policy::Clock);
        assert!(fifo < mixed, "{fifo} < {mixed}");
        assert!(mixed < clock, "{mixed} < {clock}");
        assert!(
            clock > 10 * mixed,
            "Clock's walk dominates: {clock} vs {mixed}"
        );
    }

    #[test]
    fn random_is_deterministic_per_seed() {
        let pick = |seed| {
            let mut gpt = GuestPageTable::new(Pages::new(32));
            let mut list = FaultList::new(seed);
            for i in 0..32 {
                gpt.map_local(Gfn::new(i), FrameId::new(i)).unwrap();
                list.push(Gfn::new(i));
            }
            list.select_victim(Policy::Random, &mut gpt).unwrap().0
        };
        assert_eq!(pick(1), pick(1));
    }

    #[test]
    fn interleaved_evictions_keep_fifo_order() {
        // Exercise middle unlinks + re-push: evict from the middle
        // (Random), re-fault the page, and confirm FIFO order follows
        // insertion order throughout.
        let (mut gpt, mut list) = table_with(8);
        let (victim, _) = list.select_victim(Policy::Random, &mut gpt).unwrap();
        list.push(victim); // Page faults back in: now the newest entry.
        let mut order = Vec::new();
        while let Some((v, _)) = list.select_victim(Policy::Fifo, &mut gpt) {
            order.push(v);
        }
        assert_eq!(order.len(), 8);
        assert_eq!(*order.last().unwrap(), victim, "re-pushed page is newest");
        let mut sorted = order.clone();
        sorted.sort_unstable_by_key(|g| g.get());
        assert_eq!(sorted.len(), 8, "every page came out exactly once");
    }

    #[test]
    fn reset_matches_fresh_construction() {
        let (mut gpt, mut list) = table_with(8);
        list.select_victim(Policy::Random, &mut gpt).unwrap();
        list.select_victim(Policy::Fifo, &mut gpt).unwrap();
        list.reset(3, 16);
        let fresh = FaultList::with_capacity(3, 16);
        assert_eq!(format!("{list:?}"), format!("{fresh:?}"));
        // The RNG is re-seeded, so Random draws repeat from the start.
        let draws = |l: &mut FaultList| {
            let mut gpt = GuestPageTable::new(Pages::new(16));
            for i in 0..16 {
                gpt.map_local(Gfn::new(i), FrameId::new(i)).unwrap();
                l.push(Gfn::new(i));
            }
            l.select_victim(Policy::Random, &mut gpt).unwrap().0
        };
        let mut fresh = fresh;
        assert_eq!(draws(&mut list), draws(&mut fresh));
    }

    #[test]
    fn empty_list_yields_none() {
        let mut gpt = GuestPageTable::new(Pages::new(1));
        let mut list = FaultList::new(0);
        assert!(list.select_victim(Policy::Fifo, &mut gpt).is_none());
        assert!(list.is_empty());
    }
}
