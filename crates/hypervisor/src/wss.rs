//! Working-set-size estimation via accessed-bit sampling.
//!
//! ZombieStack's consolidation rule — "only check if 30 % of the VM's
//! working set size is available on the target server" (§5.2) — needs a
//! WSS number per VM. Hypervisors estimate it the way this module does:
//! periodically clear the accessed bits of a sample of guest pages, wait
//! an interval, and count how many got re-set. Scaling the hit count by
//! the sampling ratio estimates how many pages were touched in the
//! window; an exponentially weighted average smooths the noise.

use zombieland_mem::{Gfn, GuestPageTable};
use zombieland_simcore::{DetRng, Pages};

/// Accessed-bit-sampling WSS estimator for one VM.
#[derive(Debug)]
pub struct WssEstimator {
    /// Pages sampled per round.
    sample_size: u64,
    /// EWMA smoothing factor (weight of the newest observation).
    alpha: f64,
    rng: DetRng,
    /// Pages whose accessed bits were cleared at round start.
    armed: Vec<Gfn>,
    estimate: f64,
    rounds: u64,
}

impl WssEstimator {
    /// Creates an estimator sampling `sample_size` pages per round.
    pub fn new(sample_size: u64, seed: u64) -> Self {
        WssEstimator {
            sample_size: sample_size.max(1),
            alpha: 0.3,
            rng: DetRng::new(seed),
            armed: Vec::new(),
            estimate: 0.0,
            rounds: 0,
        }
    }

    /// Starts a sampling round: picks random guest pages and clears their
    /// accessed bits. Call, run the VM for an interval, then
    /// [`WssEstimator::end_round`].
    pub fn begin_round(&mut self, gpt: &mut GuestPageTable) {
        self.armed.clear();
        let size = gpt.size().count();
        if size == 0 {
            return;
        }
        for _ in 0..self.sample_size.min(size) {
            let gfn = Gfn::new(self.rng.below(size));
            if gpt.clear_accessed(gfn).is_ok() {
                self.armed.push(gfn);
            }
        }
    }

    /// Ends the round: counts re-set accessed bits and folds the scaled
    /// observation into the estimate. Returns this round's raw
    /// observation in pages.
    pub fn end_round(&mut self, gpt: &GuestPageTable) -> Pages {
        if self.armed.is_empty() {
            return Pages::ZERO;
        }
        let hits = self
            .armed
            .iter()
            .filter(|&&g| gpt.accessed(g).unwrap_or(false))
            .count() as f64;
        let ratio = hits / self.armed.len() as f64;
        let observed = ratio * gpt.size().count() as f64;
        self.estimate = if self.rounds == 0 {
            observed
        } else {
            self.alpha * observed + (1.0 - self.alpha) * self.estimate
        };
        self.rounds += 1;
        Pages::new(observed as u64)
    }

    /// The smoothed estimate.
    pub fn estimate(&self) -> Pages {
        Pages::new(self.estimate.round() as u64)
    }

    /// Sampling rounds completed.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zombieland_mem::FrameId;

    /// Builds a table of `size` pages, all mapped, with `hot` of them
    /// "touched" after each clear.
    fn table(size: u64) -> GuestPageTable {
        let mut gpt = GuestPageTable::new(Pages::new(size));
        for i in 0..size {
            gpt.map_local(Gfn::new(i), FrameId::new(i)).unwrap();
        }
        gpt
    }

    fn touch_hot(gpt: &mut GuestPageTable, hot: u64) {
        for i in 0..hot {
            gpt.touch(Gfn::new(i), false).unwrap();
        }
    }

    #[test]
    fn estimates_the_hot_fraction() {
        let size = 10_000u64;
        let hot = 3_000u64;
        let mut gpt = table(size);
        let mut est = WssEstimator::new(512, 7);
        for _ in 0..12 {
            est.begin_round(&mut gpt);
            // The interval: the workload touches its hot set.
            touch_hot(&mut gpt, hot);
            est.end_round(&gpt);
        }
        let e = est.estimate().count() as f64;
        assert!(
            (e - hot as f64).abs() / (hot as f64) < 0.25,
            "estimate {e} vs true {hot}"
        );
        assert_eq!(est.rounds(), 12);
    }

    #[test]
    fn tracks_working_set_changes() {
        let size = 8_192u64;
        let mut gpt = table(size);
        let mut est = WssEstimator::new(512, 8);
        for _ in 0..10 {
            est.begin_round(&mut gpt);
            touch_hot(&mut gpt, 1_000);
            est.end_round(&gpt);
        }
        let small = est.estimate().count();
        for _ in 0..10 {
            est.begin_round(&mut gpt);
            touch_hot(&mut gpt, 6_000);
            est.end_round(&gpt);
        }
        let big = est.estimate().count();
        assert!(big > small * 3, "grew {small} -> {big}");
    }

    #[test]
    fn idle_vm_estimates_near_zero() {
        let mut gpt = table(4_096);
        gpt.clear_all_accessed();
        let mut est = WssEstimator::new(256, 9);
        for _ in 0..5 {
            est.begin_round(&mut gpt);
            // Nothing touches anything.
            est.end_round(&gpt);
        }
        assert_eq!(est.estimate().count(), 0);
    }

    #[test]
    fn empty_table_is_harmless() {
        let mut gpt = GuestPageTable::new(Pages::ZERO);
        let mut est = WssEstimator::new(64, 10);
        est.begin_round(&mut gpt);
        assert_eq!(est.end_round(&gpt), Pages::ZERO);
        assert_eq!(est.estimate(), Pages::ZERO);
    }
}
