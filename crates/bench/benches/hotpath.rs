//! Micro-benchmarks of the three hot paths the incremental-accounting
//! overhaul targets: the event queue, the paging fault path, and the
//! datacenter placement path.
//!
//! These pin the perf trajectory at a finer grain than the end-to-end
//! `zombieland-cli bench` grids — a regression in `pick_host` or the
//! fault list shows up here even when trace generation dominates the
//! wall clock of a full figure.
//!
//! Run: `cargo bench -p zombieland-bench --bench hotpath`.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use zombieland_bench::experiments;
use zombieland_core::manager::PoolKind;
use zombieland_core::{Rack, RackConfig};
use zombieland_energy::MachineProfile;
use zombieland_hypervisor::engine::{self, Backing, EngineConfig};
use zombieland_simcore::{Bytes, EventQueue, Pages, SimTime};
use zombieland_simulator::{simulate, PolicyKind, SimConfig};
use zombieland_workloads::DataCaching;

/// Schedule + drain cost of the simulator's event spine. The scheduled
/// pattern mimics a trace burst: mostly-ascending times with ties, so
/// the sift distance matches what `simulate()` sees, not a sorted or
/// adversarial feed.
fn bench_event_queue(c: &mut Criterion) {
    const N: u64 = 4_096;
    c.bench_function("event_queue_schedule_pop_4k", |b| {
        let mut q = EventQueue::with_capacity(N as usize);
        b.iter(|| {
            for i in 0..N {
                let at = SimTime::from_nanos((i / 3) * 1_000);
                q.schedule(at, i as u32);
            }
            let mut acc = 0u64;
            while let Some((_, e)) = q.pop() {
                acc += e as u64;
            }
            black_box(acc)
        })
    });
}

/// The paging fault path end-to-end: page-table walk, victim selection
/// on the intrusive fault list, and RDMA demote/fetch against a rack
/// pool. Dominated by the dense handle table and `GfnSet` operations.
fn bench_fault_path(c: &mut Criterion) {
    c.bench_function("fault_path_20k_ops_data_caching", |b| {
        b.iter(|| {
            let mut rack = Rack::new(RackConfig::default());
            let ids = rack.server_ids();
            rack.goto_zombie(ids[1]).unwrap();
            let user = ids[0];
            rack.alloc_ext(user, Bytes::mib(64)).unwrap();
            let mut w = DataCaching::new(Pages::new(16_384), 7);
            let cfg = EngineConfig::ram_ext(Bytes::mib(80), Bytes::mib(32));
            black_box(
                engine::run_ops(
                    &mut w,
                    &cfg,
                    Backing::Rack {
                        rack: &mut rack,
                        user,
                        pool: PoolKind::Ext,
                    },
                    20_000,
                )
                .unwrap(),
            )
        })
    });
}

/// The batched fault path against its per-page reference, on the same
/// workload and geometry: the spread between these two is exactly what
/// run coalescing, chunked access pulls and deferred obs flushes buy
/// (`RunStats` are pinned byte-identical by `batching_equivalence`).
fn bench_batched_fault_path(c: &mut Criterion) {
    let run = |batched: bool| {
        let mut rack = Rack::new(RackConfig::default());
        let ids = rack.server_ids();
        rack.goto_zombie(ids[1]).unwrap();
        let user = ids[0];
        rack.alloc_ext(user, Bytes::mib(64)).unwrap();
        let mut w = DataCaching::new(Pages::new(16_384), 7);
        let cfg = EngineConfig::ram_ext(Bytes::mib(80), Bytes::mib(32));
        let backing = Backing::Rack {
            rack: &mut rack,
            user,
            pool: PoolKind::Ext,
        };
        if batched {
            engine::run_ops(&mut w, &cfg, backing, 20_000).unwrap()
        } else {
            engine::run_ops_reference(&mut w, &cfg, backing, 20_000).unwrap()
        }
    };
    c.bench_function("fault_path_batched_20k_ops", |b| {
        b.iter(|| black_box(run(true)))
    });
    c.bench_function("fault_path_reference_20k_ops", |b| {
        b.iter(|| black_box(run(false)))
    });
}

/// One consolidation round in steady state, isolated from arrivals: the
/// incremental path re-keys only dirty hosts and early-exits the
/// used-ordered walk, so a mostly-idle round should cost O(changed),
/// not O(active). A full simulate() call over a consolidation-heavy
/// fleet keeps the measurement honest about the surrounding event loop.
fn bench_incremental_consolidation(c: &mut Criterion) {
    let trace = experiments::fig10_trace(120, 1, 11);
    c.bench_function("consolidation_neat_120_servers_1d", |b| {
        let cfg = SimConfig {
            racks: 6,
            ..SimConfig::new(PolicyKind::Neat, MachineProfile::hp())
        };
        b.iter(|| black_box(simulate(&trace, &cfg)))
    });
    c.bench_function("consolidation_zombiestack_120_servers_1d", |b| {
        let cfg = SimConfig {
            racks: 6,
            ..SimConfig::new(PolicyKind::ZombieStack, MachineProfile::hp())
        };
        b.iter(|| black_box(simulate(&trace, &cfg)))
    });
}

/// The placement path: a small ZombieStack fleet simulation, where the
/// per-event cost is `pick_host`/`wake_one`/`consolidate` over the
/// ordered host indexes rather than full-fleet scans.
fn bench_placement_path(c: &mut Criterion) {
    let trace = experiments::fig10_trace(24, 1, 11);
    c.bench_function("placement_zombiestack_24_servers_1d", |b| {
        let cfg = SimConfig::new(PolicyKind::ZombieStack, MachineProfile::hp());
        b.iter(|| black_box(simulate(&trace, &cfg)))
    });
    c.bench_function("placement_oasis_24_servers_1d", |b| {
        let cfg = SimConfig::new(PolicyKind::Oasis, MachineProfile::hp());
        b.iter(|| black_box(simulate(&trace, &cfg)))
    });
}

criterion_group!(
    benches,
    bench_event_queue,
    bench_fault_path,
    bench_batched_fault_path,
    bench_incremental_consolidation,
    bench_placement_path
);
criterion_main!(benches);
