//! Regenerates the paper's fig02 output. Run:
//! `cargo bench -p zombieland-bench --bench fig02_aws_ratio`.

fn main() {
    zombieland_bench::experiments::print_figure2();
}
