//! Regenerates the paper's fig01 output. Run:
//! `cargo bench -p zombieland-bench --bench fig01_energy_proportionality`.

fn main() {
    zombieland_bench::experiments::print_figure1();
}
