//! Regenerates the paper's table3 output. Run:
//! `cargo bench -p zombieland-bench --bench table3_sz_energy`.

fn main() {
    zombieland_bench::experiments::print_table3();
}
