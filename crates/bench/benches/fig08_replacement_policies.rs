//! Regenerates Fig. 8: FIFO vs Clock vs Mixed over the micro-benchmark
//! (execution time, page faults, policy cycles per eviction).
//!
//! Run: `cargo bench -p zombieland-bench --bench fig08_replacement_policies`
//! (`ZL_SCALE=1.0` for the paper's 7 GiB / 6 GiB geometry).

use zombieland_bench::experiments;

fn main() {
    let scale = experiments::scale_from_env();
    let jobs = experiments::jobs_from_env();
    println!("scale = {scale} (1.0 = paper's 7 GiB VM, 6 GiB WSS), {jobs} worker thread(s)");
    experiments::print_figure8(scale, jobs);
}
