//! Regenerates the paper's fig04 output. Run:
//! `cargo bench -p zombieland-bench --bench fig04_rack_energy`.

fn main() {
    zombieland_bench::experiments::print_figure4();
}
