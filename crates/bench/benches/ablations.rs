//! Ablations on the design choices DESIGN.md calls out:
//!
//! 1. the Mixed policy's `x` parameter (how much of Clock's fault
//!    avoidance it buys and at what cost);
//! 2. striping: how spreading an allocation over more zombies changes
//!    what a single wake-up revokes (the paper's "minimizes the
//!    performance impact caused by a remote server failure");
//! 3. the Sz→S3 demotion threshold and consolidation interval
//!    (§4.4's pool-size policy) against energy and wake churn.
//!
//! Run: `cargo bench -p zombieland-bench --bench ablations`.

use zombieland_bench::experiments::{fig10_trace, jobs_from_env, run_ram_ext, VmGeometry};
use zombieland_core::manager::PoolKind;
use zombieland_core::{Rack, RackConfig};
use zombieland_energy::MachineProfile;
use zombieland_hypervisor::Policy;
use zombieland_simcore::report::Table;
use zombieland_simcore::{run_indexed, Bytes, SimDuration};
use zombieland_simulator::{simulate, PolicyKind, SimConfig};

fn ablate_mixed_x(jobs: usize) {
    let geo = VmGeometry::at_scale(0.25);
    let local = geo.reserved.mul_f64(0.40);
    let mut variants = vec![("FIFO".to_string(), Policy::Fifo)];
    for x in [5usize, 16, 64, 256] {
        variants.push((format!("Mixed x={x}"), Policy::Mixed { x }));
    }
    variants.push(("Clock".to_string(), Policy::Clock));
    let stats = run_indexed(jobs, variants.len(), |i| {
        run_ram_ext("micro-bench", geo, local, variants[i].1)
    });
    let mut t = Table::new(
        "Ablation: Mixed's clock window x (micro-bench, 40% local)",
        &["policy", "exec time", "remote faults", "cycles/eviction"],
    );
    for ((label, _), s) in variants.iter().zip(&stats) {
        t.row(&[
            label.clone(),
            format!("{}", s.exec_time),
            format!("{}", s.remote_faults),
            format!("{:.0}", s.cycles_per_eviction()),
        ]);
    }
    t.print();
}

fn ablate_striping(jobs: usize) {
    const ZOMBIE_COUNTS: [u32; 3] = [1, 2, 3];
    let rows = run_indexed(jobs, ZOMBIE_COUNTS.len(), |i| {
        let zombies = ZOMBIE_COUNTS[i];
        let mut rack = Rack::new(RackConfig {
            servers: zombies + 1,
            ..RackConfig::default()
        });
        let ids = rack.server_ids();
        let user = ids[0];
        for &z in &ids[1..] {
            rack.goto_zombie(z).unwrap();
        }
        rack.alloc_ext(user, Bytes::gib(6)).unwrap();
        for _ in 0..512 {
            rack.place_page(user, PoolKind::Ext).unwrap();
        }
        let woken = rack
            .db()
            .buffers_of_user(user)
            .first()
            .map(|b| b.host)
            .unwrap();
        let out = rack.wake(woken, None).unwrap();
        (zombies, out)
    });
    let mut t = Table::new(
        "Ablation: striping an allocation over N zombies vs one wake-up",
        &[
            "zombies",
            "buffers from woken host",
            "pages relocated",
            "pages to backup",
        ],
    );
    for (zombies, out) in &rows {
        t.row(&[
            format!("{zombies}"),
            format!("{}", out.reclaimed_free + out.revoked),
            format!("{}", out.relocated_pages),
            format!("{}", out.fallback_pages),
        ]);
    }
    t.print();
    println!(
        "More zombies -> the woken host holds a smaller stripe and spare \
         pool capacity absorbs its pages; with one zombie everything falls \
         back to the slow local backup.\n"
    );
}

fn ablate_readahead(jobs: usize) {
    use zombieland_bench::experiments::testbed_rack;
    use zombieland_hypervisor::engine::{self, Backing, EngineConfig};
    use zombieland_workloads::SparkSql;

    let geo = VmGeometry::at_scale(0.25);
    let local = geo.reserved.mul_f64(0.4);
    const WINDOWS: [u32; 5] = [0, 2, 8, 32, 128];
    let stats = run_indexed(jobs, WINDOWS.len(), |i| {
        let (mut rack, user) = testbed_rack();
        rack.alloc_ext(user, geo.reserved - local).unwrap();
        let mut w = SparkSql::new(geo.wss.pages(), 42);
        let cfg = EngineConfig {
            readahead: WINDOWS[i],
            ..EngineConfig::ram_ext(geo.reserved, local)
        };
        engine::run(
            &mut w,
            &cfg,
            Backing::Rack {
                rack: &mut rack,
                user,
                pool: PoolKind::Ext,
            },
        )
        .unwrap()
    });
    let mut t = Table::new(
        "Ablation: swap readahead window (spark-sql, 40% local)",
        &["window", "exec time", "remote faults", "prefetched"],
    );
    for (window, s) in WINDOWS.iter().zip(&stats) {
        t.row(&[
            format!("{window}"),
            format!("{}", s.exec_time),
            format!("{}", s.remote_faults),
            format!("{}", s.prefetched),
        ]);
    }
    t.print();
}

fn ablate_network_generation(jobs: usize) {
    use zombieland_bench::experiments::{baseline, VmGeometry};
    use zombieland_core::manager::PoolKind;
    use zombieland_hypervisor::engine::{self, Backing, EngineConfig};
    use zombieland_rdma::LinkProfile;
    use zombieland_workloads::DataCaching;

    let geo = VmGeometry::at_scale(0.25);
    let local = geo.reserved.mul_f64(0.5);
    let fabrics = [
        ("FDR InfiniBand (paper)", LinkProfile::fdr()),
        ("EDR InfiniBand", LinkProfile::edr()),
        ("RoCE 10 GbE", LinkProfile::roce_10g()),
    ];
    // Slot 0 is the all-local baseline; the fabric runs follow.
    let stats = run_indexed(jobs, 1 + fabrics.len(), |i| {
        if i == 0 {
            return baseline("data-caching", geo);
        }
        let link = fabrics[i - 1].1;
        let mut rack = Rack::new(RackConfig {
            link,
            ..RackConfig::default()
        });
        let ids = rack.server_ids();
        let (user, zombie) = (ids[0], ids[1]);
        rack.goto_zombie(zombie).unwrap();
        rack.alloc_ext(user, geo.reserved - local).unwrap();
        let mut w = DataCaching::new(geo.wss.pages(), 42);
        let cfg = EngineConfig::ram_ext(geo.reserved, local);
        engine::run(
            &mut w,
            &cfg,
            Backing::Rack {
                rack: &mut rack,
                user,
                pool: PoolKind::Ext,
            },
        )
        .unwrap()
    });
    let base = &stats[0];
    let mut t = Table::new(
        "Ablation: interconnect generation (data-caching, 50% local)",
        &[
            "fabric",
            "exec time",
            "penalty vs all-local",
            "4K read latency",
        ],
    );
    for ((name, link), s) in fabrics.iter().zip(&stats[1..]) {
        t.row(&[
            name.to_string(),
            format!("{}", s.exec_time),
            format!("{:.2}%", s.penalty_pct(base)),
            format!("{}", link.read_time(Bytes::kib(4))),
        ]);
    }
    t.print();
    println!(
        "Even 10 GbE RoCE (~12 us/page) stays far below the SSD swap path          (~100 us) — Table 2's conclusion is robust to the fabric generation.
"
    );
}

fn ablate_dc_knobs(jobs: usize) {
    let trace = fig10_trace(200, 1, 7);
    let default = || SimConfig::new(PolicyKind::ZombieStack, MachineProfile::hp());
    // Slot 0 is the always-on baseline the savings are measured against;
    // the knob variants follow. All are independent runs of one trace.
    let variants: Vec<(&str, SimConfig)> = vec![
        (
            "always-on baseline",
            SimConfig::new(PolicyKind::AlwaysOn, MachineProfile::hp()),
        ),
        ("default (demote>1.0, 5 min)", default()),
        (
            "no Sz->S3 demotion",
            SimConfig {
                sz_demote_threshold: None,
                ..default()
            },
        ),
        (
            "eager demotion (>0.25)",
            SimConfig {
                sz_demote_threshold: Some(0.25),
                ..default()
            },
        ),
        (
            "slow consolidation (30 min)",
            SimConfig {
                consolidation_interval: SimDuration::from_mins(30),
                ..default()
            },
        ),
        (
            "fast consolidation (1 min)",
            SimConfig {
                consolidation_interval: SimDuration::from_mins(1),
                ..default()
            },
        ),
        (
            "rack-local pools (10 racks)",
            SimConfig {
                racks: 10,
                ..default()
            },
        ),
        (
            "free transitions",
            SimConfig {
                transition_costs: false,
                ..default()
            },
        ),
    ];
    let reports = run_indexed(jobs, variants.len(), |i| simulate(&trace, &variants[i].1));
    let base = &reports[0];

    let mut t = Table::new(
        "Ablation: ZombieStack pool/consolidation knobs (200 servers x 1 day)",
        &["variant", "saving %", "wakeups", "migrations"],
    );
    for ((label, _), r) in variants.iter().zip(&reports).skip(1) {
        t.row(&[
            label.to_string(),
            format!("{:.1}", r.savings_pct(base)),
            format!("{}", r.wakeups),
            format!("{}", r.migrations),
        ]);
    }
    t.print();
}

fn main() {
    let jobs = jobs_from_env();
    println!("ablations on {jobs} worker thread(s)");
    ablate_mixed_x(jobs);
    ablate_striping(jobs);
    ablate_readahead(jobs);
    ablate_network_generation(jobs);
    ablate_dc_knobs(jobs);
}
