//! Regenerates the paper's fig06 output. Run:
//! `cargo bench -p zombieland-bench --bench fig06_sz_transition`.

fn main() {
    zombieland_bench::experiments::print_figure6();
}
