//! Regenerates Table 1: RAM Ext performance penalty vs % local memory
//! for the four evaluation workloads.
//!
//! Run: `cargo bench -p zombieland-bench --bench table1_ram_ext_penalty`
//! (`ZL_SCALE=1.0` for the paper's geometry).

use zombieland_bench::experiments;

fn main() {
    let scale = experiments::scale_from_env();
    let jobs = experiments::jobs_from_env();
    println!("scale = {scale} (1.0 = paper's 7 GiB VM, 6 GiB WSS), {jobs} worker thread(s)");
    let rows = experiments::table1_jobs(scale, jobs);
    experiments::print_table1(&rows);
}
