//! Regenerates Fig. 10: datacenter energy savings of Neat, Oasis and
//! ZombieStack on original and modified (memory-doubled) Google-style
//! traces, for the HP and Dell machine profiles.
//!
//! Run: `cargo bench -p zombieland-bench --bench fig10_energy_savings`
//! (`ZL_DC_SERVERS=12583 ZL_DC_DAYS=29` for the paper's scale).

use zombieland_bench::experiments;
use zombieland_energy::MachineProfile;

fn main() {
    let (servers, days) = experiments::dc_scale_from_env();
    println!("datacenter: {servers} servers x {days} days (paper: 12583 x 29)");
    let trace = experiments::fig10_trace(servers, days, 11);
    let modified = trace.modified();
    let mut groups = Vec::new();
    for profile in [MachineProfile::hp(), MachineProfile::dell()] {
        groups.push(experiments::figure10_group(&trace, profile.clone(), false));
        groups.push(experiments::figure10_group(&modified, profile, true));
    }
    experiments::print_figure10(&groups);
}
