//! Regenerates Fig. 10: datacenter energy savings of Neat, Oasis and
//! ZombieStack on original and modified (memory-doubled) Google-style
//! traces, for the HP and Dell machine profiles.
//!
//! Run: `cargo bench -p zombieland-bench --bench fig10_energy_savings`
//! (`ZL_DC_SERVERS=12583 ZL_DC_DAYS=29` for the paper's scale).

use zombieland_bench::experiments;

fn main() {
    let (servers, days) = experiments::dc_scale_from_env();
    let jobs = experiments::jobs_from_env();
    println!(
        "datacenter: {servers} servers x {days} days (paper: 12583 x 29), {jobs} worker thread(s)"
    );
    let trace = experiments::fig10_trace(servers, days, 11);
    let modified = trace.modified();
    // The 16-cell grid (2 machines x 2 traces x 4 policies) fans out
    // across the worker threads; outputs are thread-count-invariant.
    let groups = experiments::figure10_grid(&trace, &modified, jobs);
    experiments::print_figure10(&groups);
}
