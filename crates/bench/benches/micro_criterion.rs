//! Criterion micro-benchmarks of the core building blocks: RDMA verbs,
//! controller allocation, replacement-policy selection, paging-engine
//! throughput and trace generation.
//!
//! Run: `cargo bench -p zombieland-bench --bench micro_criterion`.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use zombieland_core::manager::PoolKind;
use zombieland_core::{Rack, RackConfig};
use zombieland_hypervisor::engine::{self, Backing, EngineConfig};
use zombieland_hypervisor::policy::FaultList;
use zombieland_hypervisor::Policy;
use zombieland_mem::{FrameId, Gfn, GuestPageTable};
use zombieland_rdma::Fabric;
use zombieland_simcore::{Bytes, Pages};
use zombieland_trace::{ClusterTrace, TraceConfig};
use zombieland_workloads::{DataCaching, MicroBench, Workload};

fn bench_rdma_verbs(c: &mut Criterion) {
    let mut fabric = Fabric::new();
    let user = fabric.attach();
    let server = fabric.attach();
    let mr = fabric.register(server, Bytes::mib(64)).unwrap();
    c.bench_function("rdma_read_timed_4k", |b| {
        b.iter(|| {
            black_box(
                fabric
                    .read_timed(user, mr, Bytes::ZERO, Bytes::kib(4))
                    .unwrap(),
            )
        })
    });
    let payload = vec![7u8; 4096];
    c.bench_function("rdma_write_with_data_4k", |b| {
        b.iter(|| black_box(fabric.write(user, mr, Bytes::ZERO, &payload).unwrap()))
    });
}

fn bench_controller(c: &mut Criterion) {
    c.bench_function("rack_alloc_release_1gib", |b| {
        let mut rack = Rack::new(RackConfig::default());
        let ids = rack.server_ids();
        rack.goto_zombie(ids[1]).unwrap();
        let user = ids[0];
        b.iter(|| {
            let alloc = rack.alloc_ext(user, Bytes::gib(1)).unwrap();
            rack.release(user, &alloc.buffers).unwrap();
        })
    });
    c.bench_function("rack_page_out_in", |b| {
        let mut rack = Rack::new(RackConfig::default());
        let ids = rack.server_ids();
        rack.goto_zombie(ids[1]).unwrap();
        let user = ids[0];
        rack.alloc_ext(user, Bytes::gib(1)).unwrap();
        b.iter(|| {
            let (h, _) = rack.place_page(user, PoolKind::Ext).unwrap();
            rack.fetch_page(user, h, true).unwrap();
        })
    });
}

fn bench_policies(c: &mut Criterion) {
    for policy in [Policy::Fifo, Policy::Clock, Policy::MIXED_DEFAULT] {
        c.bench_function(&format!("select_victim_{}", policy.name()), |b| {
            let n = 4_096u64;
            let mut gpt = GuestPageTable::new(Pages::new(n));
            let mut list = FaultList::new(0);
            for i in 0..n {
                gpt.map_local(Gfn::new(i), FrameId::new(i)).unwrap();
                list.push(Gfn::new(i));
            }
            b.iter(|| {
                let (victim, _) = list.select_victim(policy, &mut gpt).unwrap();
                // Re-insert so the list never drains.
                gpt.touch(victim, false).unwrap();
                list.push(victim);
            })
        });
    }
}

fn bench_engine(c: &mut Criterion) {
    c.bench_function("engine_100k_accesses_zipf", |b| {
        b.iter(|| {
            let mut rack = Rack::new(RackConfig::default());
            let ids = rack.server_ids();
            rack.goto_zombie(ids[1]).unwrap();
            let user = ids[0];
            rack.alloc_ext(user, Bytes::mib(64)).unwrap();
            let mut w = DataCaching::new(Pages::new(16_384), 3);
            let cfg = EngineConfig::ram_ext(Bytes::mib(80), Bytes::mib(32));
            black_box(
                engine::run_ops(
                    &mut w,
                    &cfg,
                    Backing::Rack {
                        rack: &mut rack,
                        user,
                        pool: PoolKind::Ext,
                    },
                    100_000,
                )
                .unwrap(),
            )
        })
    });
    c.bench_function("workload_next_access", |b| {
        let mut w = MicroBench::new(Pages::new(65_536), 9);
        b.iter(|| black_box(w.next_access()))
    });
}

fn bench_codec(c: &mut Criterion) {
    use zombieland_core::codec::{decode, encode};
    use zombieland_core::protocol::RackOp;
    use zombieland_core::ServerId;
    use zombieland_mem::buffer::BufferId;

    let op = RackOp::UsReclaim {
        user: ServerId::new(3),
        buff_ids: (0..32).map(BufferId::new).collect(),
    };
    c.bench_function("codec_encode_us_reclaim_32", |b| {
        b.iter(|| black_box(encode(black_box(&op))))
    });
    let bytes = encode(&op);
    c.bench_function("codec_decode_us_reclaim_32", |b| {
        b.iter(|| black_box(decode(black_box(&bytes)).unwrap()))
    });
}

fn bench_datastructures(c: &mut Criterion) {
    use zombieland_simcore::stats::LatencyHistogram;
    use zombieland_simcore::SimDuration;

    c.bench_function("gpt_touch", |b| {
        let mut gpt = GuestPageTable::new(Pages::new(4_096));
        for i in 0..4_096 {
            gpt.map_local(Gfn::new(i), FrameId::new(i)).unwrap();
        }
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 1) % 4_096;
            gpt.touch(Gfn::new(i), i.is_multiple_of(2)).unwrap();
        })
    });
    c.bench_function("histogram_record", |b| {
        let mut h = LatencyHistogram::new();
        let d = SimDuration::from_micros(3);
        b.iter(|| h.record(black_box(d)))
    });
}

fn bench_trace(c: &mut Criterion) {
    c.bench_function("trace_generate_20_servers_1d", |b| {
        b.iter(|| {
            let cfg = TraceConfig {
                servers: 20,
                duration: zombieland_simcore::SimDuration::from_days(1),
                seed: 5,
                mem_cpu_ratio: 1.0,
                avg_utilization: 0.3,
            };
            black_box(ClusterTrace::generate(cfg))
        })
    });
}

criterion_group!(
    benches,
    bench_rdma_verbs,
    bench_controller,
    bench_policies,
    bench_engine,
    bench_codec,
    bench_datastructures,
    bench_trace
);
criterion_main!(benches);
