//! Regenerates the paper's fig09 output. Run:
//! `cargo bench -p zombieland-bench --bench fig09_migration`.

fn main() {
    zombieland_bench::experiments::print_figure9();
}
