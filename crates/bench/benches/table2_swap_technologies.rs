//! Regenerates Table 2: RAM Ext vs Explicit SD vs local SSD/HDD swap,
//! one sub-table per workload.
//!
//! Run: `cargo bench -p zombieland-bench --bench table2_swap_technologies`
//! (`ZL_SCALE=1.0` for the paper's geometry).

use zombieland_bench::experiments;

fn main() {
    let scale = experiments::scale_from_env();
    let jobs = experiments::jobs_from_env();
    println!("scale = {scale} (1.0 = paper's 7 GiB VM, 6 GiB WSS), {jobs} worker thread(s)");
    for workload in experiments::WORKLOADS {
        let rows = experiments::table2_jobs(workload, scale, jobs);
        experiments::print_table2(workload, &rows);
    }
}
