//! Regenerates the paper's fig03 output. Run:
//! `cargo bench -p zombieland-bench --bench fig03_server_capacity`.

fn main() {
    zombieland_bench::experiments::print_figure3();
}
