//! Experiment harnesses: one function per table/figure of the paper.
//!
//! Each `cargo bench --bench <name>` target is a thin `main` over a
//! function in [`experiments`], so integration tests can run the same
//! experiments at reduced scale and assert the paper's qualitative
//! results.
//!
//! Scaling: the paper's runs use a 7 GiB VM with a 6 GiB working set and
//! a 12 583-server datacenter. By default the harnesses run a
//! faithfully-shaped but smaller configuration (the reported metrics are
//! ratios, which are size-stable); set `ZL_SCALE=1.0` for the paper-sized
//! memory experiments and `ZL_DC_SERVERS`/`ZL_DC_DAYS` for bigger
//! datacenter sweeps.

pub mod experiments;
