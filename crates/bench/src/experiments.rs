//! The experiment implementations behind every table and figure.

use std::cell::RefCell;
use std::sync::{Arc, Mutex};

use zombieland_core::manager::PoolKind;
use zombieland_core::{Rack, RackConfig, ServerId};
use zombieland_energy::curve;
use zombieland_energy::profile::MeasuredConfig;
use zombieland_energy::rack::{figure4, RackDemand, RackEnergy};
use zombieland_energy::MachineProfile;
use zombieland_hypervisor::engine::{self, Backing, EngineConfig, RunStats};
use zombieland_hypervisor::{Mode, Policy, SwapBackend};
use zombieland_obs::{profile, run_indexed_obs};
use zombieland_simcore::report::{fmt_penalty, Table};
use zombieland_simcore::{derive_seed, Bytes, SimDuration};
use zombieland_simulator::{simulate, PolicyKind, SimConfig, SimReport};
use zombieland_trace::{ClusterTrace, TraceConfig};
use zombieland_workloads::{by_name, Workload};

/// The four workloads of Tables 1–2, in row order.
pub const WORKLOADS: [&str; 4] = ["micro-bench", "data-caching", "elasticsearch", "spark-sql"];

/// The local-memory percentages of Tables 1–2.
pub const LOCAL_PCTS: [u32; 5] = [20, 40, 50, 60, 80];

/// Memory-experiment scale: 1.0 = the paper's 7 GiB VM / 6 GiB WSS.
/// Defaults to 0.25 (1.75 GiB VM) so `cargo bench` finishes in minutes;
/// override with `ZL_SCALE` or a `--scenario` file's `scale` key (the
/// [`scenario`](zombieland_core::scenario) layer resolves precedence).
pub fn scale_from_env() -> f64 {
    zombieland_core::scenario::current().scale
}

/// Repetitions per measurement ("each result presented in this paper is
/// an average of ten executions", §6). Defaults to 1 — the simulation is
/// deterministic, so repetitions only matter when varying seeds;
/// override with `ZL_RUNS` or a scenario file's `runs` key.
pub fn runs_from_env() -> u32 {
    zombieland_core::scenario::current().runs
}

/// Worker threads for experiment fan-out, resolved by the scenario
/// layer (precedence: CLI `--jobs` flag > `ZL_JOBS` > a scenario file's
/// `jobs` key > `available_parallelism`). Every experiment's runs are
/// independent deterministic simulations, so the thread count changes
/// wall-clock time only — never a single output bit (asserted in
/// `tests/parallel_determinism.rs`).
pub fn jobs_from_env() -> usize {
    zombieland_core::scenario::current().jobs()
}

/// VM geometry at a given scale.
#[derive(Clone, Copy, Debug)]
pub struct VmGeometry {
    /// VM reserved memory (paper: 7 GiB).
    pub reserved: Bytes,
    /// Workload working-set size (paper: 6 GiB).
    pub wss: Bytes,
}

impl VmGeometry {
    /// The paper's geometry scaled by `scale`.
    pub fn at_scale(scale: f64) -> Self {
        VmGeometry {
            reserved: Bytes::gib(7).mul_f64(scale),
            wss: Bytes::gib(6).mul_f64(scale),
        }
    }
}

/// Builds the four-server testbed rack (§6.1) with one zombie serving
/// memory, and returns `(rack, user)`.
pub fn testbed_rack() -> (Rack, ServerId) {
    let mut rack = Rack::new(RackConfig::default());
    let ids = rack.server_ids();
    let (user, zombie) = (ids[0], ids[1]);
    rack.goto_zombie(zombie).unwrap();
    (rack, user)
}

/// Builds a workload via a per-thread prototype cache: the first request
/// for a `(name, wss, seed)` triple constructs it, later requests clone
/// the cached prototype. Construction is a pure function of the key
/// (`Workload::clone_box` docs), so a clone replays exactly the stream a
/// fresh build would — and grid sweeps that rebuild the same workload
/// for every cell (e.g. each Table 1 column shares one stream) stop
/// paying Zipf-table and RNG setup per cell. Thread-local, so runner
/// workers never contend on it.
fn cached_workload(name: &str, wss: Bytes, seed: u64) -> Box<dyn Workload> {
    type WorkloadKey = (String, u64, u64);
    thread_local! {
        static PROTOTYPES: RefCell<Vec<(WorkloadKey, Box<dyn Workload>)>> =
            const { RefCell::new(Vec::new()) };
    }
    PROTOTYPES.with(|p| {
        let mut cache = p.borrow_mut();
        let pages = wss.pages();
        if let Some((_, proto)) = cache
            .iter()
            .find(|(k, _)| k.0 == name && k.1 == pages.count() && k.2 == seed)
        {
            return proto.clone_box();
        }
        let _span = profile::span(profile::Phase::TraceGen);
        let proto = by_name(name, pages, seed).expect("known workload");
        let fresh = proto.clone_box();
        cache.push(((name.to_string(), pages.count(), seed), proto));
        fresh
    })
}

/// Runs one workload under RAM Ext at `local` bytes of local memory.
pub fn run_ram_ext(name: &str, geo: VmGeometry, local: Bytes, policy: Policy) -> RunStats {
    run_ram_ext_seeded(name, geo, local, policy, 42)
}

/// [`run_ram_ext`] with an explicit workload/policy seed (repetition
/// support: the paper averages ten executions).
pub fn run_ram_ext_seeded(
    name: &str,
    geo: VmGeometry,
    local: Bytes,
    policy: Policy,
    seed: u64,
) -> RunStats {
    let setup = profile::span(profile::Phase::HvSetup);
    let (mut rack, user) = testbed_rack();
    let remote = geo.reserved.saturating_sub(local);
    if remote > Bytes::ZERO {
        rack.alloc_ext(user, remote).unwrap();
    }
    drop(setup);
    let mut w = cached_workload(name, geo.wss, seed);
    let cfg = EngineConfig {
        policy,
        seed,
        ..EngineConfig::ram_ext(geo.reserved, local)
    };
    engine::run(
        &mut *w,
        &cfg,
        Backing::Rack {
            rack: &mut rack,
            user,
            pool: PoolKind::Ext,
        },
    )
    .expect("run succeeds")
}

/// Runs one workload under Explicit SD on `backend`.
pub fn run_explicit_sd(
    name: &str,
    geo: VmGeometry,
    local: Bytes,
    backend: SwapBackend,
) -> RunStats {
    let mut w = cached_workload(name, geo.wss, 42);
    let cfg = EngineConfig::explicit_sd(geo.reserved, local, backend);
    match backend {
        SwapBackend::RemoteRam => {
            let (mut rack, user) = testbed_rack();
            let swap = geo.reserved.saturating_sub(local);
            rack.alloc_swap(user, swap).unwrap();
            engine::run(
                &mut *w,
                &cfg,
                Backing::Rack {
                    rack: &mut rack,
                    user,
                    pool: PoolKind::Swap,
                },
            )
            .expect("run succeeds")
        }
        dev => engine::run(
            &mut *w,
            &cfg,
            Backing::Device {
                read: dev.read_4k().expect("device backend"),
                write: dev.write_4k().expect("device backend"),
            },
        )
        .expect("run succeeds"),
    }
}

/// Baseline (100 % local) run of a workload.
pub fn baseline(name: &str, geo: VmGeometry) -> RunStats {
    run_ram_ext(name, geo, geo.reserved, Policy::MIXED_DEFAULT)
}

// ---------------------------------------------------------------------
// Fig. 8 — replacement policies.
// ---------------------------------------------------------------------

/// One Fig. 8 sample: policy metrics at a local-memory percentage.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Fig8Point {
    /// Percent of the VM's memory that is local.
    pub local_pct: u32,
    /// Execution time.
    pub exec_time: SimDuration,
    /// Remote page faults.
    pub faults: u64,
    /// Mean policy cycles per eviction.
    pub cycles_per_eviction: f64,
    /// Median remote-fault service time.
    pub fault_p50: Option<SimDuration>,
    /// Tail (p99) remote-fault service time.
    pub fault_p99: Option<SimDuration>,
}

/// Runs the Fig. 8 sweep for one policy over the micro-benchmark.
pub fn figure8(policy: Policy, scale: f64) -> Vec<Fig8Point> {
    figure8_jobs(policy, scale, jobs_from_env())
}

/// [`figure8`] with an explicit worker count: the nine local-percentage
/// points are independent runs and fan out across `jobs` threads.
pub fn figure8_jobs(policy: Policy, scale: f64, jobs: usize) -> Vec<Fig8Point> {
    let geo = VmGeometry::at_scale(scale);
    const PCTS: [u32; 9] = [20, 30, 40, 50, 60, 70, 80, 90, 100];
    run_indexed_obs(jobs, PCTS.len(), |i| {
        let pct = PCTS[i];
        let local = geo.reserved.mul_f64(pct as f64 / 100.0);
        let stats = run_ram_ext("micro-bench", geo, local, policy);
        Fig8Point {
            local_pct: pct,
            exec_time: stats.exec_time,
            faults: stats.remote_faults,
            cycles_per_eviction: stats.cycles_per_eviction(),
            fault_p50: stats.fault_latency.quantile(0.5),
            fault_p99: stats.fault_latency.quantile(0.99),
        }
    })
}

/// Prints the Fig. 8 table for the three paper policies.
pub fn print_figure8(scale: f64, jobs: usize) {
    let fifo = figure8_jobs(Policy::Fifo, scale, jobs);
    let clock = figure8_jobs(Policy::Clock, scale, jobs);
    let mixed = figure8_jobs(Policy::MIXED_DEFAULT, scale, jobs);
    let _span = profile::span(profile::Phase::Render);
    let mut t = Table::new(
        "Fig 8: FIFO vs Clock vs Mixed (micro-benchmark)",
        &[
            "%local",
            "FIFO time",
            "Clock time",
            "Mixed time",
            "FIFO faults",
            "Clock faults",
            "Mixed faults",
            "FIFO cy/evict",
            "Clock cy/evict",
            "Mixed cy/evict",
            "Mixed fault p50/p99",
        ],
    );
    for i in 0..fifo.len() {
        t.row(&[
            format!("{}", fifo[i].local_pct),
            format!("{}", fifo[i].exec_time),
            format!("{}", clock[i].exec_time),
            format!("{}", mixed[i].exec_time),
            format!("{}", fifo[i].faults),
            format!("{}", clock[i].faults),
            format!("{}", mixed[i].faults),
            format!("{:.0}", fifo[i].cycles_per_eviction),
            format!("{:.0}", clock[i].cycles_per_eviction),
            format!("{:.0}", mixed[i].cycles_per_eviction),
            match (mixed[i].fault_p50, mixed[i].fault_p99) {
                (Some(p50), Some(p99)) => format!("{p50} / {p99}"),
                _ => "-".to_string(),
            },
        ]);
    }
    t.print();
}

// ---------------------------------------------------------------------
// Table 1 — RAM Ext penalty per workload.
// ---------------------------------------------------------------------

/// One Table 1 row.
#[derive(Clone, Debug, PartialEq)]
pub struct PenaltyRow {
    /// Workload name.
    pub workload: &'static str,
    /// `(local %, penalty %)` pairs.
    pub penalties: Vec<(u32, f64)>,
}

/// Computes Table 1 (RAM Ext penalties), averaging `ZL_RUNS` seeded
/// executions per cell as the paper does.
pub fn table1(scale: f64) -> Vec<PenaltyRow> {
    table1_jobs(scale, jobs_from_env())
}

/// [`table1`] with an explicit worker count. Every (workload, local %,
/// repetition) cell is an independent run keyed by its grid index —
/// repetition seeds come from [`derive_seed`], never a shared stream —
/// so the whole grid fans out across `jobs` threads with bit-for-bit
/// stable results.
pub fn table1_jobs(scale: f64, jobs: usize) -> Vec<PenaltyRow> {
    let geo = VmGeometry::at_scale(scale);
    let runs = runs_from_env();
    let cells = run_indexed_obs(jobs, WORKLOADS.len() * LOCAL_PCTS.len(), |i| {
        let name = WORKLOADS[i / LOCAL_PCTS.len()];
        let pct = LOCAL_PCTS[i % LOCAL_PCTS.len()];
        let local = geo.reserved.mul_f64(pct as f64 / 100.0);
        let mean: f64 = (0..runs)
            .map(|r| {
                // Repetition 0 keeps the workspace-wide seed 42 (so one
                // run reproduces every other harness exactly);
                // additional repetitions get decorrelated derived seeds.
                let seed = if r == 0 {
                    42
                } else {
                    derive_seed(42, r as u64)
                };
                let base = run_ram_ext_seeded(name, geo, geo.reserved, Policy::MIXED_DEFAULT, seed);
                run_ram_ext_seeded(name, geo, local, Policy::MIXED_DEFAULT, seed).penalty_pct(&base)
            })
            .sum::<f64>()
            / runs as f64;
        (pct, mean)
    });
    WORKLOADS
        .iter()
        .enumerate()
        .map(|(w, &name)| PenaltyRow {
            workload: name,
            penalties: cells[w * LOCAL_PCTS.len()..(w + 1) * LOCAL_PCTS.len()].to_vec(),
        })
        .collect()
}

/// Prints Table 1 in the paper's layout.
pub fn print_table1(rows: &[PenaltyRow]) {
    print!("{}", render_table1(rows));
}

/// Renders the Table 1 report exactly as the CLI prints it (see
/// [`render_figure10`] for why the bytes matter).
pub fn render_table1(rows: &[PenaltyRow]) -> String {
    let mut t = Table::new(
        "Table 1: RAM Ext performance penalty vs % local memory",
        &[
            "% local",
            "micro-bench",
            "data-caching",
            "elasticsearch",
            "spark-sql",
        ],
    );
    for (i, &pct) in LOCAL_PCTS.iter().enumerate() {
        let mut cells = vec![format!("{pct}%")];
        for row in rows {
            cells.push(fmt_penalty(row.penalties[i].1));
        }
        t.row(&cells);
    }
    let mut out = t.render();
    out.push('\n');
    out
}

// ---------------------------------------------------------------------
// Table 2 — RAM Ext vs Explicit SD vs local swap devices.
// ---------------------------------------------------------------------

/// One Table 2 cell set: penalties of the four configurations at one
/// local percentage.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Table2Row {
    /// Percent local.
    pub local_pct: u32,
    /// v1: RAM Extension.
    pub ram_ext: f64,
    /// v2: Explicit SD on remote RAM.
    pub esd: f64,
    /// v2 on a local SSD.
    pub lfsd: f64,
    /// v2 on a local HDD.
    pub lssd: f64,
}

/// Computes one workload's Table 2 sub-table.
pub fn table2(workload: &'static str, scale: f64) -> Vec<Table2Row> {
    table2_jobs(workload, scale, jobs_from_env())
}

/// [`table2`] with an explicit worker count: the all-local baseline and
/// every (local %, swap technology) run fan out as one flat batch.
pub fn table2_jobs(workload: &'static str, scale: f64, jobs: usize) -> Vec<Table2Row> {
    let geo = VmGeometry::at_scale(scale);
    // Index 0 is the all-local baseline; the rest are local-percentage
    // major, technology minor (RAM Ext, ESD, local SSD, local HDD).
    let stats = run_indexed_obs(jobs, 1 + LOCAL_PCTS.len() * 4, |i| {
        if i == 0 {
            return baseline(workload, geo);
        }
        let pct = LOCAL_PCTS[(i - 1) / 4];
        let local = geo.reserved.mul_f64(pct as f64 / 100.0);
        match (i - 1) % 4 {
            0 => run_ram_ext(workload, geo, local, Policy::MIXED_DEFAULT),
            1 => run_explicit_sd(workload, geo, local, SwapBackend::RemoteRam),
            2 => run_explicit_sd(workload, geo, local, SwapBackend::LocalSsd),
            _ => run_explicit_sd(workload, geo, local, SwapBackend::LocalHdd),
        }
    });
    let base = &stats[0];
    LOCAL_PCTS
        .iter()
        .enumerate()
        .map(|(row, &pct)| {
            let s = &stats[1 + row * 4..1 + row * 4 + 4];
            Table2Row {
                local_pct: pct,
                ram_ext: s[0].penalty_pct(base),
                esd: s[1].penalty_pct(base),
                lfsd: s[2].penalty_pct(base),
                lssd: s[3].penalty_pct(base),
            }
        })
        .collect()
}

/// Prints one Table 2 sub-table.
pub fn print_table2(workload: &str, rows: &[Table2Row]) {
    let mut t = Table::new(
        &format!("Table 2 ({workload}): penalty by swap technology"),
        &["% local", "v1-RE", "v2-ESD", "v2-LFSD", "v2-LSSD"],
    );
    for r in rows {
        t.row(&[
            format!("{}%", r.local_pct),
            fmt_penalty(r.ram_ext),
            fmt_penalty(r.esd),
            fmt_penalty(r.lfsd),
            fmt_penalty(r.lssd),
        ]);
    }
    t.print();
}

// ---------------------------------------------------------------------
// Fig. 9 — migration.
// ---------------------------------------------------------------------

/// Fig. 9 series: `(wss ratio %, native seconds, zombiestack seconds)`.
pub fn figure9() -> Vec<(u32, f64, f64)> {
    let vm_mem = Bytes::gib(7);
    [20u32, 30, 40, 50, 60, 70, 80]
        .iter()
        .map(|&pct| {
            let (native, zombie) =
                zombieland_cloud::migration::figure9_point(vm_mem, pct as f64 / 100.0);
            (pct, native.total.as_secs_f64(), zombie.total.as_secs_f64())
        })
        .collect()
}

/// Prints the Fig. 9 table.
pub fn print_figure9() {
    let mut t = Table::new(
        "Fig 9: migration time vs WSS ratio (7 GiB VM)",
        &["WSS %", "Native (s)", "ZombieStack (s)"],
    );
    for (pct, native, zombie) in figure9() {
        t.row(&[
            format!("{pct}%"),
            format!("{native:.1}"),
            format!("{zombie:.1}"),
        ]);
    }
    t.print();
}

// ---------------------------------------------------------------------
// Table 3 — energy configurations + Eq. 1.
// ---------------------------------------------------------------------

/// Prints Table 3 (measured fractions + the derived Sz column).
pub fn print_table3() {
    let mut t = Table::new(
        "Table 3: energy as % of machine maximum (Sz derived via Eq. 1)",
        &[
            "Machine", "S0WOIB", "S0WIBOff", "S0WIBOn", "S3WOIB", "S3WIB", "S4WOIB", "S4WIB", "Sz",
        ],
    );
    for p in [MachineProfile::hp(), MachineProfile::dell()] {
        let mut cells = vec![p.name().to_string()];
        for c in MeasuredConfig::ALL {
            cells.push(format!("{:.2}%", p.fraction(c) * 100.0));
        }
        cells.push(format!("{:.2}%", p.sz_fraction() * 100.0));
        t.row(&cells);
    }
    t.print();
}

// ---------------------------------------------------------------------
// Fig. 10 — datacenter energy savings.
// ---------------------------------------------------------------------

/// Fig. 10 datacenter scale (servers, days): defaults to 600 servers ×
/// 2 days; override with `ZL_DC_SERVERS` / `ZL_DC_DAYS` or a scenario
/// file's `servers` / `days` keys (the paper: 12 583 × 29).
pub fn dc_scale_from_env() -> (u32, u64) {
    let s = zombieland_core::scenario::current();
    (s.servers, s.days)
}

/// Builds the Fig. 10 trace uncached (what [`fig10_trace`] memoizes;
/// the input-caching test compares the two paths byte for byte).
pub fn generate_fig10_trace(servers: u32, days: u64, seed: u64) -> ClusterTrace {
    let _span = profile::span(profile::Phase::TraceGen);
    ClusterTrace::generate(TraceConfig {
        servers,
        duration: SimDuration::from_days(days),
        seed,
        mem_cpu_ratio: 1.0,
        avg_utilization: 0.25,
    })
}

/// The Fig. 10 trace (Google-shaped; booked CPU ≈ 25 % as in the
/// original cluster traces), memoized by its generating parameters.
///
/// Generating a multi-day trace is expensive and every policy×profile
/// cell — and every pass of a bench scaling curve — wants the *same*
/// trace, so all callers of one `(servers, days, seed)` triple share a
/// single immutable `Arc`'d instance (whose sorted event list is itself
/// built once, see [`ClusterTrace::events`]). Generation is a pure
/// function of the key, so sharing is invisible in the reports —
/// `tests/input_caching.rs` holds that door shut.
pub fn fig10_trace(servers: u32, days: u64, seed: u64) -> Arc<ClusterTrace> {
    type TraceKey = (u32, u64, u64);
    static CACHE: Mutex<Vec<(TraceKey, Arc<ClusterTrace>)>> = Mutex::new(Vec::new());
    let key = (servers, days, seed);
    let mut cache = CACHE.lock().expect("trace cache not poisoned");
    if let Some((_, trace)) = cache.iter().find(|(k, _)| *k == key) {
        return Arc::clone(trace);
    }
    let trace = Arc::new(generate_fig10_trace(servers, days, seed));
    cache.push((key, Arc::clone(&trace)));
    trace
}

/// One Fig. 10 group: savings of the three systems on one trace/machine.
#[derive(Clone, Debug, PartialEq)]
pub struct Fig10Group {
    /// Machine profile name.
    pub machine: &'static str,
    /// Whether this is the modified (memory-doubled) trace.
    pub modified: bool,
    /// Neat / Oasis / ZombieStack savings in percent.
    pub savings: [f64; 3],
}

/// The four policies of a Fig. 10 cell group, baseline first.
pub const FIG10_POLICIES: [PolicyKind; 4] = [
    PolicyKind::AlwaysOn,
    PolicyKind::Neat,
    PolicyKind::Oasis,
    PolicyKind::ZombieStack,
];

/// Runs the four Fig. 10 policy simulations for one trace/profile on
/// `jobs` worker threads, returning reports in [`FIG10_POLICIES`] order.
pub fn figure10_reports(
    trace: &ClusterTrace,
    profile: &MachineProfile,
    jobs: usize,
) -> Vec<SimReport> {
    run_indexed_obs(jobs, FIG10_POLICIES.len(), |i| {
        simulate(trace, &SimConfig::new(FIG10_POLICIES[i], profile.clone()))
    })
}

/// Runs Fig. 10 for one machine profile and one trace.
pub fn figure10_group(trace: &ClusterTrace, profile: MachineProfile, modified: bool) -> Fig10Group {
    figure10_group_jobs(trace, profile, modified, jobs_from_env())
}

/// [`figure10_group`] with an explicit worker count.
pub fn figure10_group_jobs(
    trace: &ClusterTrace,
    profile: MachineProfile,
    modified: bool,
    jobs: usize,
) -> Fig10Group {
    let reports = figure10_reports(trace, &profile, jobs);
    let base = &reports[0];
    Fig10Group {
        machine: profile.name(),
        modified,
        savings: [
            reports[1].savings_pct(base),
            reports[2].savings_pct(base),
            reports[3].savings_pct(base),
        ],
    }
}

/// Runs the full Fig. 10 grid — every machine profile × {original,
/// modified} trace × four policies — as one flat fan-out of independent
/// simulations across `jobs` worker threads. This is the experiment the
/// parallel runner exists for: sixteen multi-minute simulations at paper
/// scale, none of which depends on another.
pub fn figure10_grid(
    trace: &ClusterTrace,
    modified: &ClusterTrace,
    jobs: usize,
) -> Vec<Fig10Group> {
    let profiles = [MachineProfile::hp(), MachineProfile::dell()];
    let n = FIG10_POLICIES.len();
    let reports = run_indexed_obs(jobs, profiles.len() * 2 * n, |i| {
        let profile = &profiles[i / (2 * n)];
        let on_modified = (i / n) % 2 == 1;
        let t = if on_modified { modified } else { trace };
        simulate(t, &SimConfig::new(FIG10_POLICIES[i % n], profile.clone()))
    });
    reports
        .chunks(n)
        .enumerate()
        .map(|(g, chunk)| {
            let base = &chunk[0];
            Fig10Group {
                machine: profiles[g / 2].name(),
                modified: g % 2 == 1,
                savings: [
                    chunk[1].savings_pct(base),
                    chunk[2].savings_pct(base),
                    chunk[3].savings_pct(base),
                ],
            }
        })
        .collect()
}

/// Renders the Fig. 10 report (both halves) exactly as the CLI prints
/// it — golden-report tests compare these bytes across optimizations.
pub fn render_figure10(groups: &[Fig10Group]) -> String {
    let mut out = String::new();
    for modified in [false, true] {
        let subset: Vec<&Fig10Group> = groups.iter().filter(|g| g.modified == modified).collect();
        if subset.is_empty() {
            continue;
        }
        let title = if modified {
            "Fig 10 (bottom): % energy saving, modified traces (mem = 2x cpu)"
        } else {
            "Fig 10 (top): % energy saving, original traces"
        };
        let mut t = Table::new(title, &["Machine", "Neat", "Oasis", "ZombieStack"]);
        for g in subset {
            t.row(&[
                g.machine.to_string(),
                format!("{:.0}", g.savings[0]),
                format!("{:.0}", g.savings[1]),
                format!("{:.0}", g.savings[2]),
            ]);
        }
        out.push_str(&t.render());
        out.push('\n');
    }
    out
}

/// Prints one Fig. 10 half (original or modified traces).
pub fn print_figure10(groups: &[Fig10Group]) {
    print!("{}", render_figure10(groups));
}

// ---------------------------------------------------------------------
// Motivation figures (1–4).
// ---------------------------------------------------------------------

/// Prints Fig. 1 (energy vs utilization).
pub fn print_figure1() {
    let hp = MachineProfile::hp();
    let mut t = Table::new(
        "Fig 1: energy vs utilization (HP profile)",
        &["util %", "actual %", "ideal %"],
    );
    for p in curve::figure1(&hp, 10) {
        t.row(&[
            format!("{:.0}", p.utilization_pct),
            format!("{:.1}", p.actual_pct),
            format!("{:.1}", p.ideal_pct),
        ]);
    }
    t.print();
    println!(
        "sleep-state markers: S3 {:.1}%  S4 {:.1}%  Sz {:.1}%  S0idle {:.1}%",
        hp.state_fraction(zombieland_acpi::SleepState::S3) * 100.0,
        hp.state_fraction(zombieland_acpi::SleepState::S4) * 100.0,
        hp.sz_fraction() * 100.0,
        hp.s0_idle_fraction() * 100.0,
    );
}

/// Prints Fig. 2 (AWS memory:CPU demand ratio).
pub fn print_figure2() {
    let mut t = Table::new(
        "Fig 2: AWS m-family memory:CPU ratio by introduction year",
        &["year", "mean GiB/GHz"],
    );
    for (year, ratio) in zombieland_trace::aws::figure2() {
        t.row(&[format!("{year}"), format!("{ratio:.2}")]);
    }
    t.print();
    println!(
        "trend: {:+.3} ratio/year",
        zombieland_trace::aws::trend_slope()
    );
}

/// Prints Fig. 3 (server-generation memory:CPU capacity ratio).
pub fn print_figure3() {
    let mut t = Table::new(
        "Fig 3: normalized memory:CPU capacity per server generation",
        &["year", "normalized ratio"],
    );
    for (year, ratio) in zombieland_trace::generations::figure3() {
        t.row(&[format!("{year}"), format!("{ratio:.2}")]);
    }
    t.print();
}

/// Computes Fig. 4 (rack-level energy of the four architectures).
pub fn figure4_data() -> [RackEnergy; 4] {
    figure4(&MachineProfile::hp(), &RackDemand::figure4())
}

/// Prints Fig. 4.
pub fn print_figure4() {
    let mut t = Table::new(
        "Fig 4: rack energy by architecture (Emax units; paper guidance 2.1/1.15/1.8/1.2)",
        &["architecture", "total Emax", "breakdown"],
    );
    for e in figure4_data() {
        let breakdown = e
            .breakdown
            .iter()
            .map(|(k, v)| format!("{k}={v:.2}"))
            .collect::<Vec<_>>()
            .join(", ");
        t.row(&[
            e.architecture.to_string(),
            format!("{:.2}", e.total_emax),
            breakdown,
        ]);
    }
    t.print();
}

/// Prints Fig. 6 (the suspend-to-Sz call path, traced live).
pub fn print_figure6() {
    let mut platform = zombieland_acpi::Platform::sz_capable();
    let outcome = platform.suspend("zom").expect("Sz-capable board");
    println!("== Fig 6: execution path to the zombie state ==");
    println!("+ echo zom > /sys/power/state");
    for (i, step) in outcome.report.call_trace.iter().enumerate() {
        println!("{}{}", "  ".repeat(i + 1), step);
    }
    println!(
        "kept awake: {:?}; rails switched: {:?}; enter latency: {}",
        outcome.report.kept_awake(),
        outcome
            .transition
            .switches
            .iter()
            .map(|s| format!("{}->{:?}", s.rail, s.to))
            .collect::<Vec<_>>(),
        outcome.latency
    );
}

// Re-export for the ram-ext mode check used by examples/tests.
pub use zombieland_hypervisor::engine::run as engine_run;

/// Sanity helper: make sure a mode value exists for doc purposes.
pub fn default_mode() -> Mode {
    Mode::RamExt
}
