//! The `zombieland` command-line tool: run the paper's experiments and
//! ad-hoc datacenter simulations without writing code.
//!
//! ```text
//! zombieland experiment <name|all> [--scale S] [--jobs N]
//! zombieland bench [--quick|--paper] [--servers N] [--days D] [--scale S] [--jobs N] [--out FILE] [--baseline-ns NS] [--baseline-label STR]
//! zombieland simulate [--servers N] [--days D] [--policy P] [--modified] [--machine hp|dell] [--trace FILE] [--timeline] [--pue X] [--jobs N]
//! zombieland trace [--servers N] [--days D] [--seed S] --out FILE
//! zombieland validate-trace <FILE>
//! zombieland replay --connect ENDPOINT [--requests N] [--clients N] [--seed S] [--window W] [--servers N] [--out FILE]
//! zombieland suspend <mem|disk|zom>
//! zombieland list
//! zombieland --list-policies
//! ```
//!
//! `replay` fires a seeded request stream at a running `zombied` daemon
//! (see `crates/daemon`), reports throughput plus p50/p99 decision
//! latency, and writes a machine-readable `REPLAY_<stamp>.json` (path
//! overridable with `--out`); with `--metrics-out` the deterministic
//! part of the capture (per-op counters, request sizes, decision-latency
//! histogram) exports byte-identically for the same seed.
//!
//! The global `--profile` flag wraps the run's phases — trace
//! generation, simulator event-loop phases (arrivals, departures,
//! consolidation, wake-ups, sampling), hypervisor fault batches, replay
//! send/recv — in wall-time span timers, prints a per-phase breakdown
//! and writes `PROFILE_<stamp>.json`. Profiling defaults `--jobs` to 1
//! (phases are summed across workers) and never touches simulation
//! state: outputs stay byte-identical with and without it.
//!
//! `--jobs N` fans the independent simulation runs of an experiment
//! across N worker threads. Results are bit-for-bit identical at any
//! thread count.
//!
//! `bench --paper` replaces the scaling grids with one full-paper-scale
//! pass (12,583 servers × 29 days, seeded): AlwaysOn and ZombieStack on
//! the rack-sharded event loop, recording `events_per_sec` and
//! `peak_event_queue_len` per run in the `BENCH_<stamp>.json`.
//!
//! Experiment knobs resolve through the typed scenario layer
//! (`zombieland_core::scenario`), highest precedence first: CLI flags
//! (`--shards N` is global), `ZL_*` environment variables, a
//! `--scenario FILE` (`key = value` lines: scale, servers, days, racks,
//! shards, runs, jobs, validate), then the paper's defaults.
//!
//! The global flags work with every subcommand: `--scenario FILE` loads
//! a scenario, `--obs-level off|summary|full` selects what gets
//! recorded (metrics from `summary` up, the full sim-time event trace
//! at `full`), `--trace-out FILE` writes the trace as JSONL,
//! `--metrics-out FILE` writes the metric registry as JSON. Requesting
//! an artifact implies the level that can produce it. Unknown flags are
//! rejected.
//!
//! Run via `cargo run --release -p zombieland-bench --bin zombieland-cli -- <args>`.

use std::process::ExitCode;

use zombieland_bench::experiments;
use zombieland_energy::MachineProfile;
use zombieland_hypervisor::Policy;
use zombieland_obs::profile;
use zombieland_obs::{observe, run_indexed_obs, ObsLevel, ObsRun};
use zombieland_simcore::SimDuration;
use zombieland_simulator::{policy, simulate, PolicyKind, SimConfig};
use zombieland_trace::json::Value;
use zombieland_trace::{ClusterTrace, TraceConfig};

const EXPERIMENTS: [&str; 11] = [
    "fig1", "fig2", "fig3", "fig4", "fig6", "fig8", "fig9", "fig10", "table1", "table2", "table3",
];

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  \
         zombieland experiment <name|all> [--scale S] [--jobs N]\n  \
         zombieland bench [--quick|--paper] [--servers N] [--days D] [--scale S] [--jobs N] \
         [--out FILE] [--baseline-ns NS] [--baseline-label STR]\n  \
         zombieland simulate [--servers N] [--days D] [--policy NAME|all] \
         [--modified] [--machine hp|dell] [--trace FILE] [--timeline] [--pue X] [--jobs N]\n  \
         zombieland trace [--servers N] [--days D] [--seed S] --out FILE\n  \
         zombieland validate-trace <FILE>\n  \
         zombieland replay --connect ENDPOINT [--requests N] [--clients N] \
         [--seed S] [--window W] [--servers N] [--out FILE]\n  \
         zombieland suspend <mem|disk|zom>\n  \
         zombieland list\n  \
         zombieland --list-policies\n  \
         zombieland --list-backends\n\
         global flags: --scenario FILE --shards N --backend KEY \
         --obs-level off|summary|full \
         --trace-out FILE --metrics-out FILE --profile"
    );
    ExitCode::from(2)
}

/// Validates a subcommand's argument list: every `--flag` must be known
/// (`allowed` maps name → takes-a-value) and at most `max_positional`
/// bare arguments may appear.
fn check_args(
    args: &[String],
    max_positional: usize,
    allowed: &[(&str, bool)],
) -> Result<(), String> {
    let mut positional = 0usize;
    let mut i = 0usize;
    while i < args.len() {
        let a = args[i].as_str();
        if a.starts_with("--") {
            match allowed.iter().find(|(name, _)| *name == a) {
                None => return Err(format!("unknown flag {a:?}")),
                Some((_, true)) => {
                    if i + 1 >= args.len() {
                        return Err(format!("flag {a:?} needs a value"));
                    }
                    i += 2;
                }
                Some((_, false)) => i += 1,
            }
        } else {
            positional += 1;
            if positional > max_positional {
                return Err(format!("unexpected argument {a:?}"));
            }
            i += 1;
        }
    }
    Ok(())
}

/// A subcommand wrapper: validate the flags, then run.
fn checked(
    args: &[String],
    max_positional: usize,
    allowed: &[(&str, bool)],
    run: impl FnOnce(&[String]) -> ExitCode,
) -> ExitCode {
    match check_args(args, max_positional, allowed) {
        Ok(()) => run(args),
        Err(e) => {
            eprintln!("error: {e}");
            usage()
        }
    }
}

/// Pulls `--key value` out of `args`, returning the value.
fn flag_value(args: &[String], key: &str) -> Option<String> {
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1).cloned())
}

/// The `--jobs N` worker count. Precedence: `--jobs` flag, then — under
/// `--profile` — one worker, then the scenario layer (`ZL_JOBS`, a
/// scenario file's `jobs` key, available parallelism — see
/// [`experiments::jobs_from_env`]).
fn jobs_flag(args: &[String]) -> usize {
    if let Some(j) = flag_value(args, "--jobs")
        .and_then(|v| v.parse().ok())
        .filter(|&j| j >= 1)
    {
        return j;
    }
    // Phase timers accumulate across every worker thread, so N workers
    // report up to N seconds of phase time per wall second. Profiling
    // defaults to a serial run so the breakdown sums to the run's wall
    // clock; an explicit --jobs wins (the coverage line then says how
    // much parallelism inflated the sum).
    if profile::enabled() {
        return 1;
    }
    experiments::jobs_from_env()
}

fn run_experiment(name: &str, scale: f64, jobs: usize) -> bool {
    match name {
        "fig1" => experiments::print_figure1(),
        "fig2" => experiments::print_figure2(),
        "fig3" => experiments::print_figure3(),
        "fig4" => experiments::print_figure4(),
        "fig6" => experiments::print_figure6(),
        "fig8" => experiments::print_figure8(scale, jobs),
        "fig9" => experiments::print_figure9(),
        "fig10" => {
            let (servers, days) = experiments::dc_scale_from_env();
            let trace = experiments::fig10_trace(servers, days, 11);
            let modified = trace.modified();
            let groups = experiments::figure10_grid(&trace, &modified, jobs);
            experiments::print_figure10(&groups);
        }
        "table1" => {
            let rows = experiments::table1_jobs(scale, jobs);
            experiments::print_table1(&rows);
        }
        "table2" => {
            for w in experiments::WORKLOADS {
                let rows = experiments::table2_jobs(w, scale, jobs);
                experiments::print_table2(w, &rows);
            }
        }
        "table3" => experiments::print_table3(),
        _ => return false,
    }
    true
}

fn cmd_experiment(args: &[String]) -> ExitCode {
    let Some(name) = args.first() else {
        return usage();
    };
    let scale = flag_value(args, "--scale")
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(experiments::scale_from_env);
    let jobs = jobs_flag(args);
    if name == "all" {
        for e in EXPERIMENTS {
            run_experiment(e, scale, jobs);
        }
        return ExitCode::SUCCESS;
    }
    if run_experiment(name, scale, jobs) {
        ExitCode::SUCCESS
    } else {
        eprintln!("unknown experiment {name:?}; try `zombieland list`");
        ExitCode::from(2)
    }
}

/// One timed pass over a benchmark grid.
struct BenchTiming {
    jobs: usize,
    wall_ns: u128,
    runs: usize,
    /// Trace events replayed across the pass's runs (`0` when the grid
    /// is not a trace replay, e.g. fig8).
    events: u64,
}

impl BenchTiming {
    fn runs_per_sec(&self) -> f64 {
        self.runs as f64 * 1e9 / self.wall_ns as f64
    }

    fn to_json(&self, jobs1_wall_ns: Option<u128>, host_parallelism: usize) -> Value {
        let mut fields = vec![
            ("jobs".into(), Value::UInt(self.jobs as u64)),
            ("wall_ns".into(), Value::UInt(self.wall_ns as u64)),
            ("runs_per_sec".into(), Value::Float(self.runs_per_sec())),
        ];
        if self.events > 0 {
            fields.push((
                "events_per_sec".into(),
                Value::Float(self.events as f64 * 1e9 / self.wall_ns as f64),
            ));
        }
        if let Some(base) = jobs1_wall_ns.filter(|_| self.jobs > 1) {
            let speedup = base as f64 / self.wall_ns as f64;
            fields.push(("speedup_vs_jobs1".into(), Value::Float(speedup)));
            // Sub-1.0 scaling is only the harness's fault when the host
            // could actually have run the workers concurrently.
            fields.push((
                "regression".into(),
                Value::Bool(speedup < 1.0 && host_parallelism > 1),
            ));
        }
        Value::Object(fields)
    }
}

/// Times `grid` across the scaling curve — every worker count in
/// `{1, 2, 4, jobs}` that does not exceed `jobs` — and prints a human
/// line per pass, with its speedup over the `jobs = 1` pass. A parallel
/// pass slower than serial is called out as a `REGRESSION` — but only
/// when `host_parallelism > 1`: on a single-core host the curve is
/// hardware-capped and a sub-1.0 "speedup" says nothing about the
/// harness.
fn time_grid(
    name: &str,
    runs: usize,
    events: u64,
    jobs: usize,
    host_parallelism: usize,
    mut grid: impl FnMut(usize),
) -> Vec<BenchTiming> {
    let mut counts: Vec<usize> = [1, 2, 4, jobs].into_iter().filter(|&j| j <= jobs).collect();
    counts.sort_unstable();
    counts.dedup();
    let mut jobs1_wall: Option<u128> = None;
    counts
        .into_iter()
        .map(|j| {
            let start = std::time::Instant::now();
            grid(j);
            let t = BenchTiming {
                jobs: j,
                wall_ns: start.elapsed().as_nanos(),
                runs,
                events,
            };
            if j == 1 {
                jobs1_wall = Some(t.wall_ns);
            }
            let scaling = match jobs1_wall {
                Some(base) if j > 1 => {
                    let speedup = base as f64 / t.wall_ns as f64;
                    let flag = if speedup < 1.0 && host_parallelism > 1 {
                        "  REGRESSION"
                    } else {
                        ""
                    };
                    format!("  {speedup:.2}x vs jobs=1{flag}")
                }
                _ => String::new(),
            };
            println!(
                "{name:<6} jobs={:<2} {:>10.3} s  ({} runs, {:.2} runs/s){scaling}",
                t.jobs,
                t.wall_ns as f64 / 1e9,
                t.runs,
                t.runs_per_sec()
            );
            t
        })
        .collect()
}

/// Newest committed bench record in the working directory: the
/// `BENCH_<stamp>.json` with the largest numeric stamp. Non-numeric
/// stamps (e.g. `BENCH_paper_full.json`) are curated snapshots, not
/// trajectory points, and are skipped.
fn newest_bench_record() -> Option<String> {
    let mut best: Option<(u64, String)> = None;
    for entry in std::fs::read_dir(".").ok()?.flatten() {
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(stamp) = name
            .strip_prefix("BENCH_")
            .and_then(|r| r.strip_suffix(".json"))
            .and_then(|s| s.parse::<u64>().ok())
        else {
            continue;
        };
        if best.as_ref().is_none_or(|(b, _)| stamp > *b) {
            best = Some((stamp, name.to_string()));
        }
    }
    best.map(|(_, name)| name)
}

/// Default `--baseline-ns`: the fig10 `jobs = 1` wall time from the
/// newest committed `BENCH_<stamp>.json`, provided that grid was
/// measured at the same `servers x days` as this run (a --quick smoke
/// must not "compare" itself against a full-scale record).
fn auto_baseline(servers: u64, days: u64) -> Option<(String, u64)> {
    let name = newest_bench_record()?;
    let text = std::fs::read_to_string(&name).ok()?;
    let grid = text.find("\"name\": \"fig10\"")?;
    let rest = &text[grid..];
    // Stop at the next grid header so fig8 numbers can't bleed in.
    let end = rest[1..].find("\"name\": ").map_or(rest.len(), |i| i + 1);
    let rest = &rest[..end];
    if json_field_u64(rest, "\"servers\": ")? != servers
        || json_field_u64(rest, "\"days\": ")? != days
    {
        return None;
    }
    // The first timing entry is always the jobs=1 pass.
    json_field_u64(rest, "\"wall_ns\": ").map(|ns| (name, ns))
}

/// Reads the unsigned integer following `key` in a JSON fragment the
/// bench writer itself produced (fixed `"key": value` formatting).
fn json_field_u64(text: &str, key: &str) -> Option<u64> {
    let i = text.find(key)? + key.len();
    let digits = text[i..]
        .split(|c: char| !c.is_ascii_digit())
        .next()
        .unwrap_or("");
    digits.parse().ok()
}

/// `zombieland bench`: times the Fig. 10 and Fig. 8 grids end-to-end
/// across the jobs scaling curve (`{1, 2, 4, --jobs}`) and writes a
/// `BENCH_<stamp>.json` record pinning the perf trajectory, including
/// `speedup_vs_jobs1` per parallel pass.
///
/// Simulation outputs are discarded — the subject here is the harness's
/// wall time, on exactly the code paths `experiment fig10`/`fig8` run.
/// `--baseline-ns` (with an optional `--baseline-label`) embeds a prior
/// measurement of the Fig. 10 `jobs = 1` pass so the JSON carries its own
/// before/after comparison. Without the flag, the newest committed
/// `BENCH_<stamp>.json` in the working directory whose fig10 grid ran at
/// the same `servers x days` is auto-loaded as the baseline, so repeated
/// `zombieland bench` runs compare against the last recorded trajectory
/// by default.
fn cmd_bench(args: &[String]) -> ExitCode {
    let quick = args.iter().any(|a| a == "--quick");
    let paper = args.iter().any(|a| a == "--paper");
    let (def_servers, def_days, def_scale) = if paper {
        (12_583, 29, 0.25)
    } else if quick {
        (48, 1, 0.04)
    } else {
        (600, 2, 0.25)
    };
    let servers = flag_value(args, "--servers")
        .and_then(|v| v.parse().ok())
        .unwrap_or(def_servers);
    let days = flag_value(args, "--days")
        .and_then(|v| v.parse().ok())
        .unwrap_or(def_days);
    let scale = flag_value(args, "--scale")
        .and_then(|v| v.parse().ok())
        .unwrap_or(def_scale);
    let jobs = jobs_flag(args);
    let mut baseline_ns: Option<u64> =
        flag_value(args, "--baseline-ns").and_then(|v| v.parse().ok());
    let mut baseline_label = flag_value(args, "--baseline-label");
    if baseline_ns.is_none() && !paper {
        if let Some((name, ns)) = auto_baseline(servers as u64, days) {
            println!("baseline: {name} fig10 jobs=1 (auto-loaded; override with --baseline-ns)");
            baseline_ns = Some(ns);
            if baseline_label.is_none() {
                baseline_label = Some(format!("auto {name} fig10 jobs=1"));
            }
        }
    }

    let stamp = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let out = flag_value(args, "--out").unwrap_or_else(|| format!("BENCH_{stamp}.json"));

    let host = std::thread::available_parallelism().map_or(1, |n| n.get());
    if paper {
        return bench_paper(servers, days, jobs, &out, stamp, host);
    }
    println!("bench: fig10 {servers} servers x {days} day(s), fig8 scale {scale}, jobs {jobs}");
    if host < jobs {
        println!(
            "note: host exposes {host} core(s) for {jobs} jobs — the scaling \
             curve is capped by hardware, not the harness"
        );
    }

    let trace = experiments::fig10_trace(servers, days, 11);
    let modified = trace.modified();
    let fig10_runs = 2 * 2 * experiments::FIG10_POLICIES.len();
    // Every grid run replays the full event stream (the modified trace
    // keeps the task count), so the pass's event total is exact.
    let fig10_events = fig10_runs as u64 * trace.events_len() as u64;
    let fig10 = time_grid("fig10", fig10_runs, fig10_events, jobs, host, |j| {
        std::hint::black_box(experiments::figure10_grid(&trace, &modified, j));
    });

    let fig8_policies = [Policy::Fifo, Policy::Clock, Policy::MIXED_DEFAULT];
    let fig8_runs = fig8_policies.len() * 9;
    let fig8 = time_grid("fig8", fig8_runs, 0, jobs, host, |j| {
        for p in fig8_policies {
            std::hint::black_box(experiments::figure8_jobs(p, scale, j));
        }
    });

    let grid_json = |name: &str, params: Vec<(String, Value)>, timings: &[BenchTiming]| {
        let jobs1 = timings.first().map(|t| t.wall_ns);
        let mut fields = vec![("name".into(), Value::Str(name.into()))];
        fields.extend(params);
        fields.push(("runs".into(), Value::UInt(timings[0].runs as u64)));
        fields.push((
            "timings".into(),
            Value::Array(timings.iter().map(|t| t.to_json(jobs1, host)).collect()),
        ));
        fields
    };

    let mut fig10_fields = grid_json(
        "fig10",
        vec![
            ("servers".into(), Value::UInt(servers as u64)),
            ("days".into(), Value::UInt(days)),
            ("seed".into(), Value::UInt(11)),
        ],
        &fig10,
    );
    if let Some(base) = baseline_ns {
        let speedup = base as f64 / fig10[0].wall_ns as f64;
        let mut b = vec![("wall_ns".into(), Value::UInt(base))];
        if let Some(label) = &baseline_label {
            b.insert(0, ("label".into(), Value::Str(label.clone())));
        }
        b.push(("speedup_at_jobs1".into(), Value::Float(speedup)));
        fig10_fields.push(("baseline".into(), Value::Object(b)));
        println!("fig10 jobs=1 speedup vs baseline: {speedup:.2}x");
    }
    let fig8_fields = grid_json("fig8", vec![("scale".into(), Value::Float(scale))], &fig8);

    let doc = Value::Object(vec![
        ("schema".into(), Value::Str("zombieland-bench-v1".into())),
        ("created_unix".into(), Value::UInt(stamp)),
        ("jobs".into(), Value::UInt(jobs as u64)),
        ("host_parallelism".into(), Value::UInt(host as u64)),
        (
            "grids".into(),
            Value::Array(vec![
                Value::Object(fig10_fields),
                Value::Object(fig8_fields),
            ]),
        ),
    ]);
    let mut body = doc.pretty();
    body.push('\n');
    match std::fs::write(&out, body) {
        Ok(()) => {
            println!("wrote {out}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("cannot write {out:?}: {e}");
            ExitCode::FAILURE
        }
    }
}

/// `zombieland bench --paper`: one full-paper-scale pass — the Fig. 10
/// trace family at the paper's fleet (12,583 servers × 29 days by
/// default, seeded), AlwaysOn baseline plus ZombieStack on the
/// rack-sharded event loop. Racks follow the paper's ~40-host geometry
/// (`servers / 40`, rounded up); shards resolve through the scenario
/// layer (`--shards` / `ZL_SHARDS` / file, default racks-proportional).
/// The run itself is the subject here, so reports are kept: the JSON's
/// `paper` grid records `events_per_sec`, `peak_event_queue_len` (the
/// streaming-memory guard) and the energy outcome per policy.
fn bench_paper(
    servers: u32,
    days: u64,
    jobs: usize,
    out: &str,
    stamp: u64,
    host: usize,
) -> ExitCode {
    let racks = servers.div_ceil(40).max(1);
    let shards = zombieland_core::scenario::current().shards_for(racks);
    println!("bench --paper: {servers} servers x {days} day(s), {racks} racks, {shards} shard(s), jobs {jobs}");
    let t0 = std::time::Instant::now();
    let trace = experiments::fig10_trace(servers, days, 11);
    let trace_gen_ns = t0.elapsed().as_nanos() as u64;
    println!(
        "trace: {} tasks, {} events  (generated in {:.1} s)",
        trace.tasks().len(),
        trace.events_len(),
        trace_gen_ns as f64 / 1e9
    );

    let specs = [PolicyKind::AlwaysOn.spec(), PolicyKind::ZombieStack.spec()];
    let mut baseline: Option<zombieland_simulator::SimReport> = None;
    let mut runs = Vec::new();
    for spec in specs {
        let cfg = SimConfig {
            racks,
            shards,
            ..SimConfig::with_spec(spec, MachineProfile::hp())
        };
        let start = std::time::Instant::now();
        let report = zombieland_simcore::with_thread_budget(jobs, || simulate(&trace, &cfg));
        let wall_ns = start.elapsed().as_nanos().max(1) as u64;
        let eps = report.events as f64 * 1e9 / wall_ns as f64;
        let saving = baseline.as_ref().map(|b| report.savings_pct(b));
        println!(
            "{:<12} {:>8.1} s  {:>9.0} events/s  {:>10.1} kWh{}  \
             (peak queue {}, {} migrations, {} wakeups)",
            report.policy,
            wall_ns as f64 / 1e9,
            eps,
            report.energy.as_kwh(),
            saving
                .map(|s| format!("  saving {s:.1}%"))
                .unwrap_or_default(),
            report.peak_queue,
            report.migrations,
            report.wakeups
        );
        let mut fields = vec![
            ("policy".into(), Value::Str(report.policy.into())),
            ("wall_ns".into(), Value::UInt(wall_ns)),
            ("events".into(), Value::UInt(report.events)),
            ("events_per_sec".into(), Value::Float(eps)),
            (
                "peak_event_queue_len".into(),
                Value::UInt(report.peak_queue),
            ),
            ("energy_kwh".into(), Value::Float(report.energy.as_kwh())),
            ("migrations".into(), Value::UInt(report.migrations)),
            ("wakeups".into(), Value::UInt(report.wakeups)),
        ];
        if let Some(s) = saving {
            fields.push(("savings_pct".into(), Value::Float(s)));
        }
        runs.push(Value::Object(fields));
        if baseline.is_none() {
            baseline = Some(report);
        }
    }

    let grid = Value::Object(vec![
        ("name".into(), Value::Str("paper".into())),
        ("servers".into(), Value::UInt(servers as u64)),
        ("days".into(), Value::UInt(days)),
        ("seed".into(), Value::UInt(11)),
        ("racks".into(), Value::UInt(racks as u64)),
        ("shards".into(), Value::UInt(shards as u64)),
        ("trace_gen_ns".into(), Value::UInt(trace_gen_ns)),
        ("runs".into(), Value::Array(runs)),
    ]);
    let doc = Value::Object(vec![
        ("schema".into(), Value::Str("zombieland-bench-v1".into())),
        ("created_unix".into(), Value::UInt(stamp)),
        ("jobs".into(), Value::UInt(jobs as u64)),
        ("host_parallelism".into(), Value::UInt(host as u64)),
        ("grids".into(), Value::Array(vec![grid])),
    ]);
    let mut body = doc.pretty();
    body.push('\n');
    match std::fs::write(out, body) {
        Ok(()) => {
            println!("wrote {out}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("cannot write {out:?}: {e}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_simulate(args: &[String]) -> ExitCode {
    // `--servers`/`--days` beat the loaded scenario, which beats the
    // ad-hoc default of 300 × 1 (DC-scale experiments use `fig10`).
    let scenario = zombieland_core::scenario::installed();
    let servers = flag_value(args, "--servers")
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| scenario.map_or(300, |s| s.servers));
    let days = flag_value(args, "--days")
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| scenario.map_or(1, |s| s.days));
    let machine = match flag_value(args, "--machine").as_deref() {
        Some("dell") => MachineProfile::dell(),
        _ => MachineProfile::hp(),
    };
    let policy_arg = flag_value(args, "--policy").unwrap_or_else(|| "all".into());
    let policies: Vec<&'static policy::PolicySpec> = if policy_arg == "all" {
        vec![
            PolicyKind::Neat.spec(),
            PolicyKind::Oasis.spec(),
            PolicyKind::ZombieStack.spec(),
        ]
    } else {
        match policy::lookup(&policy_arg) {
            Some(spec) => vec![spec],
            None => {
                eprintln!(
                    "unknown policy {policy_arg:?}; run `zombieland --list-policies` \
                     for the registry"
                );
                return ExitCode::from(2);
            }
        }
    };

    let mut trace = match flag_value(args, "--trace") {
        Some(path) => match std::fs::read_to_string(&path)
            .map_err(|e| e.to_string())
            .and_then(|s| ClusterTrace::from_json(&s).map_err(|e| e.to_string()))
        {
            Ok(t) => t,
            Err(e) => {
                eprintln!("cannot load trace {path:?}: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => ClusterTrace::generate(TraceConfig {
            servers,
            duration: SimDuration::from_days(days),
            seed: 11,
            mem_cpu_ratio: 1.0,
            avg_utilization: 0.25,
        }),
    };
    if args.iter().any(|a| a == "--modified") {
        trace = trace.modified();
    }
    println!(
        "trace: {} servers x {} day(s), {} tasks, machine {}",
        trace.config().servers,
        trace.config().duration.as_nanos() / 86_400_000_000_000,
        trace.tasks().len(),
        machine.name()
    );
    let timeline = args.iter().any(|a| a == "--timeline");
    let pue = flag_value(args, "--pue").and_then(|v| v.parse::<f64>().ok());
    let cfg_for = |p: &'static policy::PolicySpec| SimConfig {
        sample_interval: timeline.then(|| SimDuration::from_hours(1)),
        ..SimConfig::with_spec(p, machine.clone())
    };
    // The baseline and every requested policy are independent runs of
    // the same trace: fan them out, then print in order. The baseline
    // always leads, so asking for it explicitly is not a second run.
    let jobs = jobs_flag(args);
    let baseline_spec = PolicyKind::AlwaysOn.spec();
    let mut specs = vec![baseline_spec];
    specs.extend(
        policies
            .iter()
            .copied()
            .filter(|s| !std::ptr::eq(*s, baseline_spec)),
    );
    let reports = run_indexed_obs(jobs, specs.len(), |i| simulate(&trace, &cfg_for(specs[i])));
    let base = &reports[0];
    println!("baseline (always-on): {:.1} kWh", base.energy.as_kwh());
    let cooling = pue.map(zombieland_energy::cooling::CoolingModel::with_pue);
    if let Some(c) = &cooling {
        println!(
            "  at the facility meter (PUE {:.2}): {:.1} kWh",
            c.pue,
            c.facility_energy(base.energy).as_kwh()
        );
    }
    for r in &reports[1..] {
        let total: f64 = r.state_seconds.iter().sum();
        println!(
            "{:<12} {:.1} kWh  saving {:>5.1}%  (active {:.0}%, zombie {:.0}%, \
             asleep {:.0}%; {} migrations, {} wakeups)",
            r.policy,
            r.energy.as_kwh(),
            r.savings_pct(base),
            100.0 * r.state_seconds[0] / total,
            100.0 * r.state_seconds[1] / total,
            100.0 * r.state_seconds[2] / total,
            r.migrations,
            r.wakeups,
        );
        if let Some(c) = &cooling {
            println!(
                "             facility: {:.1} kWh ({:.1} kWh saved vs baseline, footnote-1 amplification)",
                c.facility_energy(r.energy).as_kwh(),
                c.amplified_saving(base.energy, r.energy).as_kwh()
            );
        }
        if timeline {
            for s in &r.timeline {
                println!(
                    "  t+{:>3.0}h  active {:>4}  zombie {:>4}  asleep {:>4}  {:>8.1} kW",
                    s.at.as_secs_f64() / 3_600.0,
                    s.counts[0],
                    s.counts[1],
                    s.counts[2],
                    s.power.get() / 1_000.0
                );
            }
        }
    }
    ExitCode::SUCCESS
}

fn cmd_trace(args: &[String]) -> ExitCode {
    let Some(out) = flag_value(args, "--out") else {
        eprintln!("trace: --out FILE is required");
        return ExitCode::from(2);
    };
    let cfg = TraceConfig {
        servers: flag_value(args, "--servers")
            .and_then(|v| v.parse().ok())
            .unwrap_or(300),
        duration: SimDuration::from_days(
            flag_value(args, "--days")
                .and_then(|v| v.parse().ok())
                .unwrap_or(1),
        ),
        seed: flag_value(args, "--seed")
            .and_then(|v| v.parse().ok())
            .unwrap_or(11),
        mem_cpu_ratio: 1.0,
        avg_utilization: 0.25,
    };
    let trace = ClusterTrace::generate(cfg);
    match std::fs::write(&out, trace.to_json()) {
        Ok(()) => {
            println!("wrote {} tasks to {out}", trace.tasks().len());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("cannot write {out:?}: {e}");
            ExitCode::FAILURE
        }
    }
}

/// `zombieland replay`: the daemon load harness. Deterministic metrics
/// land in the current observe scope (exported via the global
/// `--metrics-out`); wall-clock throughput and the interleaving-dependent
/// error count go to stdout only.
fn cmd_replay(args: &[String]) -> ExitCode {
    let Some(connect) = flag_value(args, "--connect") else {
        eprintln!("replay: --connect ENDPOINT is required (tcp:HOST:PORT or unix:PATH)");
        return ExitCode::from(2);
    };
    let endpoint = match zombieland_daemon::Endpoint::parse(&connect) {
        Ok(ep) => ep,
        Err(e) => {
            eprintln!("replay: {e}");
            return ExitCode::from(2);
        }
    };
    let defaults = zombieland_daemon::replay::ReplayConfig::default();
    let cfg = zombieland_daemon::replay::ReplayConfig {
        endpoint,
        requests: flag_value(args, "--requests")
            .and_then(|v| v.parse().ok())
            .unwrap_or(defaults.requests),
        clients: flag_value(args, "--clients")
            .and_then(|v| v.parse().ok())
            .unwrap_or(defaults.clients),
        seed: flag_value(args, "--seed")
            .and_then(|v| v.parse().ok())
            .unwrap_or(defaults.seed),
        window: flag_value(args, "--window")
            .and_then(|v| v.parse().ok())
            .unwrap_or(defaults.window),
        servers: flag_value(args, "--servers")
            .and_then(|v| v.parse().ok())
            .unwrap_or(defaults.servers),
    };
    println!(
        "replay: {} requests, {} client(s), window {}, seed {} -> {}",
        cfg.requests, cfg.clients, cfg.window, cfg.seed, cfg.endpoint
    );
    match zombieland_daemon::replay::run_replay(&cfg) {
        Ok((summary, run)) => {
            // Hand the deterministic capture to the CLI's observe scope
            // (no-op when no --metrics-out/--obs-level was given).
            zombieland_obs::sink::absorb_current(run);
            println!(
                "replay: {} requests in {:.2} s  ({:.0} req/s, {} typed errors)",
                summary.requests,
                summary.wall_secs,
                summary.throughput(),
                summary.errors,
            );
            match (summary.p50_decision_ns, summary.p99_decision_ns) {
                (Some(p50), Some(p99)) => println!(
                    "replay: decision latency p50 <= {:.1} us, p99 <= {:.1} us (modeled)",
                    p50 as f64 / 1_000.0,
                    p99 as f64 / 1_000.0
                ),
                _ => println!("replay: no decision latency recorded"),
            }
            match write_replay_json(args, &cfg, &summary) {
                Ok(out) => {
                    println!("wrote {out}");
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("replay: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        Err(e) => {
            eprintln!("replay: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Writes the machine-readable replay artifact (`REPLAY_<stamp>.json`,
/// or `--out FILE`) so throughput is not stdout-only. Returns the path.
fn write_replay_json(
    args: &[String],
    cfg: &zombieland_daemon::replay::ReplayConfig,
    summary: &zombieland_daemon::replay::ReplaySummary,
) -> Result<String, String> {
    let stamp = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let out = flag_value(args, "--out").unwrap_or_else(|| format!("REPLAY_{stamp}.json"));
    let host = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut fields = vec![
        ("schema".into(), Value::Str("zombieland-replay-v1".into())),
        ("created_unix".into(), Value::UInt(stamp)),
        ("endpoint".into(), Value::Str(cfg.endpoint.to_string())),
        ("requests".into(), Value::UInt(summary.requests)),
        ("clients".into(), Value::UInt(cfg.clients as u64)),
        ("window".into(), Value::UInt(cfg.window as u64)),
        ("seed".into(), Value::UInt(cfg.seed)),
        ("servers".into(), Value::UInt(cfg.servers as u64)),
        ("host_parallelism".into(), Value::UInt(host as u64)),
        ("wall_secs".into(), Value::Float(summary.wall_secs)),
        ("throughput_rps".into(), Value::Float(summary.throughput())),
        ("errors".into(), Value::UInt(summary.errors)),
    ];
    if let Some(p50) = summary.p50_decision_ns {
        fields.push(("p50_decision_ns".into(), Value::UInt(p50)));
    }
    if let Some(p99) = summary.p99_decision_ns {
        fields.push(("p99_decision_ns".into(), Value::UInt(p99)));
    }
    let mut body = Value::Object(fields).pretty();
    body.push('\n');
    std::fs::write(&out, body).map_err(|e| format!("cannot write {out:?}: {e}"))?;
    Ok(out)
}

fn cmd_suspend(args: &[String]) -> ExitCode {
    let Some(kw) = args.first() else {
        return usage();
    };
    let mut platform = zombieland_acpi::Platform::sz_capable();
    match platform.suspend(kw) {
        Ok(outcome) => {
            println!("state: {}", platform.state());
            println!(
                "memory remotely accessible: {}",
                platform.memory_remotely_accessible()
            );
            println!("kept awake: {:?}", outcome.report.kept_awake());
            println!("enter latency: {}", outcome.latency);
            for s in &outcome.transition.switches {
                println!("  rail {} -> {:?}", s.rail, s.to);
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("suspend failed: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Checks that `path` holds a non-empty, line-by-line parseable JSONL
/// trace (the artifact `--trace-out` writes).
fn cmd_validate_trace(args: &[String]) -> ExitCode {
    let Some(path) = args.first() else {
        return usage();
    };
    let content = match std::fs::read_to_string(path) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("cannot read {path:?}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut events = 0usize;
    for (n, line) in content.lines().enumerate() {
        if line.is_empty() {
            continue;
        }
        if let Err(e) = zombieland_trace::json::parse(line) {
            eprintln!("{path}:{}: invalid trace line: {e}", n + 1);
            return ExitCode::FAILURE;
        }
        events += 1;
    }
    if events == 0 {
        eprintln!("{path}: no trace events");
        return ExitCode::FAILURE;
    }
    println!("{path}: {events} valid trace events");
    ExitCode::SUCCESS
}

/// The global options, stripped from the raw argument list before
/// subcommand dispatch.
struct GlobalOpts {
    level: ObsLevel,
    trace_out: Option<String>,
    metrics_out: Option<String>,
    /// `--scenario FILE`, loaded and validated but not yet installed.
    scenario: Option<zombieland_core::scenario::Scenario>,
    /// `--shards N`: event-loop shard count, overriding `ZL_SHARDS` and
    /// any scenario file (CLI > env > file, like the other knobs).
    shards: Option<u32>,
    /// `--backend KEY`: remote-memory backend, overriding `ZL_BACKEND`
    /// and any scenario file (same precedence as `--shards`).
    backend: Option<String>,
    /// `--list-policies`: print the registry and exit.
    list_policies: bool,
    /// `--list-backends`: print the backend registry and exit.
    list_backends: bool,
    /// `--profile`: wall-time phase breakdown + `PROFILE_<stamp>.json`.
    profile: bool,
}

/// Splits the global flags (valid anywhere on the command line) out of
/// `args`: `--scenario`, `--list-policies`, and the observability trio
/// `--obs-level`/`--trace-out`/`--metrics-out`. Requesting an obs
/// artifact implies the lowest level that can produce it.
fn split_global_flags(args: Vec<String>) -> Result<(Vec<String>, GlobalOpts), String> {
    let mut rest = Vec::new();
    let mut level = None;
    let mut trace_out = None;
    let mut metrics_out = None;
    let mut scenario = None;
    let mut shards = None;
    let mut backend = None;
    let mut list_policies = false;
    let mut list_backends = false;
    let mut profile = false;
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--shards" => {
                let v = it.next().ok_or("flag \"--shards\" needs a value")?;
                shards = Some(
                    v.parse::<u32>()
                        .map_err(|_| format!("--shards needs a positive integer, got {v:?}"))?,
                );
            }
            "--backend" => backend = Some(it.next().ok_or("flag \"--backend\" needs a value")?),
            "--obs-level" => {
                let v = it.next().ok_or("flag \"--obs-level\" needs a value")?;
                level = Some(
                    ObsLevel::parse(&v)
                        .ok_or_else(|| format!("unknown obs level {v:?} (off|summary|full)"))?,
                );
            }
            "--trace-out" => {
                trace_out = Some(it.next().ok_or("flag \"--trace-out\" needs a value")?)
            }
            "--metrics-out" => {
                metrics_out = Some(it.next().ok_or("flag \"--metrics-out\" needs a value")?)
            }
            "--scenario" => {
                let path = it.next().ok_or("flag \"--scenario\" needs a value")?;
                scenario = Some(zombieland_core::scenario::Scenario::load(&path)?);
            }
            "--list-policies" => list_policies = true,
            "--list-backends" => list_backends = true,
            "--profile" => profile = true,
            _ => rest.push(a),
        }
    }
    let level = level.unwrap_or(match (&trace_out, &metrics_out) {
        (Some(_), _) => ObsLevel::Full,
        (None, Some(_)) => ObsLevel::Summary,
        (None, None) => ObsLevel::Off,
    });
    Ok((
        rest,
        GlobalOpts {
            level,
            trace_out,
            metrics_out,
            scenario,
            shards,
            backend,
            list_policies,
            list_backends,
            profile,
        },
    ))
}

/// Prints the policy registry (`--list-policies`).
fn list_policies() -> ExitCode {
    println!("registered policies (--policy KEY; case-insensitive):");
    for spec in policy::REGISTRY {
        println!("  {:<14} {:<13} {}", spec.key, spec.label, spec.summary);
    }
    ExitCode::SUCCESS
}

/// Prints the backend registry (`--list-backends`).
fn list_backends() -> ExitCode {
    println!("registered backends (--backend KEY; case-insensitive):");
    for spec in zombieland_core::backend::REGISTRY {
        println!("  {:<14} {:<13} {}", spec.key, spec.label, spec.summary);
    }
    ExitCode::SUCCESS
}

/// Writes the requested observability artifacts and prints the metrics
/// table.
fn export_obs(opts: &GlobalOpts, run: &ObsRun) -> Result<(), String> {
    if let Some(path) = &opts.trace_out {
        std::fs::write(path, run.events_jsonl())
            .map_err(|e| format!("cannot write trace {path:?}: {e}"))?;
        eprintln!("trace: {} events -> {path}", run.events.len());
    }
    if let Some(path) = &opts.metrics_out {
        let mut doc = run.metrics.to_json().pretty();
        doc.push('\n');
        std::fs::write(path, doc).map_err(|e| format!("cannot write metrics {path:?}: {e}"))?;
    }
    if !run.metrics.is_empty() {
        run.metrics.table().print();
    }
    Ok(())
}

fn dispatch(args: &[String]) -> ExitCode {
    match args.first().map(String::as_str) {
        Some("experiment") => checked(
            &args[1..],
            1,
            &[("--scale", true), ("--jobs", true)],
            cmd_experiment,
        ),
        Some("bench") => checked(
            &args[1..],
            0,
            &[
                ("--quick", false),
                ("--paper", false),
                ("--servers", true),
                ("--days", true),
                ("--scale", true),
                ("--jobs", true),
                ("--out", true),
                ("--baseline-ns", true),
                ("--baseline-label", true),
            ],
            cmd_bench,
        ),
        Some("simulate") => checked(
            &args[1..],
            0,
            &[
                ("--servers", true),
                ("--days", true),
                ("--policy", true),
                ("--machine", true),
                ("--trace", true),
                ("--pue", true),
                ("--jobs", true),
                ("--modified", false),
                ("--timeline", false),
            ],
            cmd_simulate,
        ),
        Some("trace") => checked(
            &args[1..],
            0,
            &[
                ("--servers", true),
                ("--days", true),
                ("--seed", true),
                ("--out", true),
            ],
            cmd_trace,
        ),
        Some("validate-trace") => checked(&args[1..], 1, &[], cmd_validate_trace),
        Some("replay") => checked(
            &args[1..],
            0,
            &[
                ("--connect", true),
                ("--requests", true),
                ("--clients", true),
                ("--seed", true),
                ("--window", true),
                ("--servers", true),
                ("--out", true),
            ],
            cmd_replay,
        ),
        Some("suspend") => checked(&args[1..], 1, &[], cmd_suspend),
        Some("list") => checked(&args[1..], 0, &[], |_| {
            println!("experiments: {}", EXPERIMENTS.join(" "));
            ExitCode::SUCCESS
        }),
        _ => usage(),
    }
}

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let (args, opts) = match split_global_flags(raw) {
        Ok(split) => split,
        Err(e) => {
            eprintln!("error: {e}");
            return usage();
        }
    };
    // `--shards` / `--backend` override whatever the scenario resolved (a
    // `--scenario` file or, failing that, the env-layered defaults — so
    // the flags beat `ZL_SHARDS` / `ZL_BACKEND` too). Installing the
    // patched scenario makes each knob reach every
    // `SimConfig::with_spec` without threading a parameter.
    let mut scenario = opts.scenario.clone();
    if opts.shards.is_some() || opts.backend.is_some() {
        let mut s =
            scenario.unwrap_or_else(|| zombieland_core::scenario::Scenario::default().apply_env());
        if let Some(n) = opts.shards {
            s.shards = Some(n);
        }
        if let Some(b) = &opts.backend {
            s.backend = b.clone();
        }
        if let Err(e) = s.ensure_valid() {
            eprintln!("error: {e}");
            return usage();
        }
        scenario = Some(s);
    }
    if let Some(s) = scenario {
        zombieland_core::scenario::install(s);
    }
    if opts.list_policies {
        return list_policies();
    }
    if opts.list_backends {
        return list_backends();
    }
    let profile_started = opts.profile.then(|| {
        profile::set_enabled(true);
        profile::reset();
        std::time::Instant::now()
    });
    let code = if opts.level == ObsLevel::Off {
        dispatch(&args)
    } else {
        let (code, run) = observe(opts.level, || dispatch(&args));
        if let Err(e) = export_obs(&opts, &run) {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
        code
    };
    if let Some(started) = profile_started {
        if let Err(e) = report_profile(started.elapsed(), &args) {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    }
    code
}

/// Prints the `--profile` phase breakdown and writes `PROFILE_<stamp>.json`.
fn report_profile(total: std::time::Duration, args: &[String]) -> Result<(), String> {
    let total_ns = (total.as_nanos() as u64).max(1);
    let stats = profile::snapshot();
    let covered_ns: u64 = stats.iter().map(|s| s.wall_ns).sum();
    let coverage_pct = 100.0 * covered_ns as f64 / total_ns as f64;

    let mut t = zombieland_simcore::report::Table::new(
        "Profile: wall time by phase (self time)",
        &["phase", "wall ms", "spans", "% of run"],
    );
    for s in &stats {
        t.row(&[
            s.phase.name().to_string(),
            format!("{:.2}", s.wall_ns as f64 / 1e6),
            s.spans.to_string(),
            format!("{:.1}", 100.0 * s.wall_ns as f64 / total_ns as f64),
        ]);
    }
    t.row(&[
        "(total run)".to_string(),
        format!("{:.2}", total_ns as f64 / 1e6),
        "-".to_string(),
        format!("{coverage_pct:.1} covered"),
    ]);
    t.print();

    let stamp = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let out = format!("PROFILE_{stamp}.json");
    let phases = stats
        .iter()
        .map(|s| {
            Value::Object(vec![
                ("phase".into(), Value::Str(s.phase.name().into())),
                ("wall_ns".into(), Value::UInt(s.wall_ns)),
                ("spans".into(), Value::UInt(s.spans)),
                (
                    "pct_of_total".into(),
                    Value::Float(100.0 * s.wall_ns as f64 / total_ns as f64),
                ),
            ])
        })
        .collect();
    let doc = Value::Object(vec![
        ("schema".into(), Value::Str("zombieland-profile-v1".into())),
        ("created_unix".into(), Value::UInt(stamp)),
        ("command".into(), Value::Str(args.join(" "))),
        ("total_ns".into(), Value::UInt(total_ns)),
        ("covered_ns".into(), Value::UInt(covered_ns)),
        ("coverage_pct".into(), Value::Float(coverage_pct)),
        ("phases".into(), Value::Array(phases)),
    ]);
    let mut body = doc.pretty();
    body.push('\n');
    std::fs::write(&out, body).map_err(|e| format!("cannot write profile {out:?}: {e}"))?;
    println!("wrote {out}");
    Ok(())
}
