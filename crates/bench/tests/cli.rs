//! End-to-end tests of the `zombieland` CLI binary: strict flag
//! rejection and the observability export surface, driven through
//! `std::process::Command` against the real executable.

use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_zombieland-cli"))
}

#[test]
fn unknown_flags_are_rejected_with_usage() {
    for args in [
        vec!["experiment", "fig9", "--bogus"],
        vec!["simulate", "--serverz", "10"],
        vec!["trace", "--out", "/dev/null", "--fast"],
        vec!["list", "--verbose"],
    ] {
        let out = bin().args(&args).output().expect("spawns");
        assert_eq!(out.status.code(), Some(2), "{args:?} must exit 2");
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(err.contains("unknown flag"), "{args:?}: {err}");
        assert!(err.contains("usage:"), "{args:?}: {err}");
    }
}

#[test]
fn trailing_positionals_and_bad_obs_levels_are_rejected() {
    let out = bin().args(["list", "everything"]).output().expect("spawns");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("unexpected argument"));

    let out = bin()
        .args(["--obs-level", "loud", "list"])
        .output()
        .expect("spawns");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown obs level"));

    let out = bin()
        .args(["list", "--obs-level"])
        .output()
        .expect("spawns");
    assert_eq!(out.status.code(), Some(2), "dangling value flag");
}

#[test]
fn obs_artifacts_written_and_validated() {
    let dir = std::env::temp_dir().join(format!("zl-cli-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let trace = dir.join("trace.jsonl");
    let metrics = dir.join("metrics.json");

    // fig9 is the fastest traced experiment: pure migration arithmetic.
    let out = bin()
        .args(["--obs-level", "full", "experiment", "fig9", "--trace-out"])
        .arg(&trace)
        .arg("--metrics-out")
        .arg(&metrics)
        .output()
        .expect("spawns");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("== Metrics =="), "metrics table: {stdout}");

    let body = std::fs::read_to_string(&trace).expect("trace written");
    assert!(!body.is_empty(), "trace has events");
    for line in body.lines() {
        let v = zombieland_trace::json::parse(line).expect("every line parses");
        assert!(v.get("at").and_then(|a| a.as_u64()).is_some());
    }
    let doc = std::fs::read_to_string(&metrics).expect("metrics written");
    zombieland_trace::json::parse(doc.trim()).expect("metrics parse");

    // The CLI's own validator accepts the artifact...
    let v = bin()
        .arg("validate-trace")
        .arg(&trace)
        .output()
        .expect("spawns");
    assert!(v.status.success());
    // ...and rejects an empty file.
    let empty = dir.join("empty.jsonl");
    std::fs::write(&empty, "").expect("write empty");
    let v = bin()
        .arg("validate-trace")
        .arg(&empty)
        .output()
        .expect("spawns");
    assert_eq!(v.status.code(), Some(1));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn default_obs_level_prints_no_observability_output() {
    let out = bin().args(["experiment", "fig9"]).output().expect("spawns");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        !stdout.contains("== Metrics =="),
        "off by default: {stdout}"
    );
}
