//! The `zombied` server: thread-per-connection over TCP or Unix sockets.
//!
//! Each connection is a sequence of framed requests ([`crate::framing`]);
//! each request frame holds one encoded [`RackOp`] and is answered with
//! one encoded [`RackResponse`] frame, in order — so clients may pipeline
//! a window of requests and read answers back positionally. A frame whose
//! payload fails to decode is answered with a typed
//! [`ErrorFrame::BadRequest`] frame (the connection survives; framing
//! kept us in sync). The one-byte admin payload [`framing::SHUTDOWN`] is
//! acknowledged with the same byte and stops the whole daemon once every
//! in-flight request has been answered.
//!
//! All state lives in one [`ClusterModel`] behind a mutex: the controller
//! is intentionally a single serialization point (the paper's GS is one
//! process too), and each op holds the lock only for its in-memory
//! database work.

use std::io::{self, BufReader, BufWriter, Read, Write};
use std::net::{TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

use zombieland_core::codec::{decode, encode_response, ErrorFrame, RackResponse, ResponseBody};
use zombieland_simcore::SimDuration;

use crate::framing::{read_frame, write_frame, SHUTDOWN};
use crate::model::ClusterModel;
use crate::Endpoint;

enum Listener {
    Tcp(TcpListener),
    #[cfg(unix)]
    Unix(UnixListener),
}

enum Stream {
    Tcp(TcpStream),
    #[cfg(unix)]
    Unix(UnixStream),
}

impl Stream {
    fn try_clone(&self) -> io::Result<Stream> {
        match self {
            Stream::Tcp(s) => s.try_clone().map(Stream::Tcp),
            #[cfg(unix)]
            Stream::Unix(s) => s.try_clone().map(Stream::Unix),
        }
    }
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            Stream::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            Stream::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Stream::Tcp(s) => s.flush(),
            #[cfg(unix)]
            Stream::Unix(s) => s.flush(),
        }
    }
}

/// A bound daemon, ready to serve.
pub struct Daemon {
    listener: Listener,
    local: Endpoint,
    model: Arc<Mutex<ClusterModel>>,
    stop: Arc<AtomicBool>,
}

impl Daemon {
    /// Binds to `endpoint`. For `tcp:HOST:0` the kernel picks the port;
    /// [`Daemon::local_endpoint`] reports the resolved address. A Unix
    /// socket path must not already exist.
    pub fn bind(endpoint: &Endpoint, model: ClusterModel) -> io::Result<Daemon> {
        let (listener, local) = match endpoint {
            Endpoint::Tcp(addr) => {
                let l = TcpListener::bind(addr.as_str())?;
                let local = Endpoint::Tcp(l.local_addr()?.to_string());
                (Listener::Tcp(l), local)
            }
            #[cfg(unix)]
            Endpoint::Unix(path) => {
                let l = UnixListener::bind(path)?;
                (Listener::Unix(l), Endpoint::Unix(path.clone()))
            }
        };
        Ok(Daemon {
            listener,
            local,
            model: Arc::new(Mutex::new(model)),
            stop: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The resolved listen endpoint (port filled in for `tcp:…:0`).
    pub fn local_endpoint(&self) -> Endpoint {
        self.local.clone()
    }

    /// Serves until a client sends the admin shutdown frame. Removes a
    /// Unix socket file on the way out.
    pub fn run(self) -> io::Result<()> {
        loop {
            let stream = match &self.listener {
                Listener::Tcp(l) => l.accept().map(|(s, _)| {
                    let _ = s.set_nodelay(true);
                    Stream::Tcp(s)
                }),
                #[cfg(unix)]
                Listener::Unix(l) => l.accept().map(|(s, _)| Stream::Unix(s)),
            };
            if self.stop.load(Ordering::SeqCst) {
                break;
            }
            let stream = match stream {
                Ok(s) => s,
                // A failed accept is not fatal to the daemon.
                Err(_) => continue,
            };
            let model = Arc::clone(&self.model);
            let stop = Arc::clone(&self.stop);
            let local = self.local.clone();
            std::thread::spawn(move || {
                let _ = serve_conn(stream, &model, &stop, &local);
            });
        }
        #[cfg(unix)]
        if let Endpoint::Unix(path) = &self.local {
            let _ = std::fs::remove_file(path);
        }
        Ok(())
    }
}

/// Wakes a daemon blocked in `accept` so it can observe its stop flag.
fn poke(endpoint: &Endpoint) {
    match endpoint {
        Endpoint::Tcp(addr) => {
            let _ = TcpStream::connect(addr.as_str());
        }
        #[cfg(unix)]
        Endpoint::Unix(path) => {
            let _ = UnixStream::connect(path);
        }
    }
}

fn serve_conn(
    stream: Stream,
    model: &Mutex<ClusterModel>,
    stop: &AtomicBool,
    local: &Endpoint,
) -> io::Result<()> {
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    while let Some(payload) = read_frame(&mut reader)? {
        if payload == [SHUTDOWN] {
            write_frame(&mut writer, &[SHUTDOWN])?;
            writer.flush()?;
            stop.store(true, Ordering::SeqCst);
            poke(local);
            return Ok(());
        }
        let response = match decode(&payload) {
            Ok(op) => model.lock().expect("model lock").apply(&op),
            Err(e) => RackResponse {
                decision: SimDuration::ZERO,
                body: ResponseBody::Error(ErrorFrame::bad_request(e)),
            },
        };
        write_frame(&mut writer, &encode_response(&response))?;
        writer.flush()?;
    }
    Ok(())
}
