//! The `zombied` server: thread-per-connection over TCP or Unix sockets.
//!
//! Each connection is a sequence of framed requests ([`crate::framing`]);
//! each request frame holds one encoded [`RackOp`] and is answered with
//! one encoded [`RackResponse`] frame, in order — so clients may pipeline
//! a window of requests and read answers back positionally. A frame whose
//! payload fails to decode is answered with a typed
//! [`ErrorFrame::BadRequest`] frame (the connection survives; framing
//! kept us in sync). The one-byte admin payload [`framing::SHUTDOWN`] is
//! acknowledged with the same byte and stops the whole daemon once every
//! in-flight request has been answered; the one-byte [`framing::STATS`]
//! payload is answered with one frame of Prometheus-style exposition
//! text (merged from the per-connection telemetry shards, with the
//! model's live gauges overlaid).
//!
//! All state lives in one [`ClusterModel`] behind a mutex: the controller
//! is intentionally a single serialization point (the paper's GS is one
//! process too), and each op holds the lock only for its in-memory
//! database work.

use std::io::{self, BufReader, BufWriter, Read, Write};
use std::net::{TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

use zombieland_core::codec::{decode, encode_response, ErrorFrame, RackResponse, ResponseBody};
use zombieland_core::protocol::RackOp;
use zombieland_obs::telemetry::{self, Telemetry, TelemetryHandle};
use zombieland_simcore::SimDuration;

use crate::framing::{read_frame, write_frame, SHUTDOWN, STATS};
use crate::model::ClusterModel;
use crate::Endpoint;

enum Listener {
    Tcp(TcpListener),
    #[cfg(unix)]
    Unix(UnixListener),
}

enum Stream {
    Tcp(TcpStream),
    #[cfg(unix)]
    Unix(UnixStream),
}

impl Stream {
    fn try_clone(&self) -> io::Result<Stream> {
        match self {
            Stream::Tcp(s) => s.try_clone().map(Stream::Tcp),
            #[cfg(unix)]
            Stream::Unix(s) => s.try_clone().map(Stream::Unix),
        }
    }
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            Stream::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            Stream::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Stream::Tcp(s) => s.flush(),
            #[cfg(unix)]
            Stream::Unix(s) => s.flush(),
        }
    }
}

/// A bound daemon, ready to serve.
pub struct Daemon {
    listener: Listener,
    local: Endpoint,
    model: Arc<Mutex<ClusterModel>>,
    stop: Arc<AtomicBool>,
    telemetry: Arc<Telemetry>,
}

impl Daemon {
    /// Binds to `endpoint`. For `tcp:HOST:0` the kernel picks the port;
    /// [`Daemon::local_endpoint`] reports the resolved address. A Unix
    /// socket path must not already exist.
    pub fn bind(endpoint: &Endpoint, model: ClusterModel) -> io::Result<Daemon> {
        let (listener, local) = match endpoint {
            Endpoint::Tcp(addr) => {
                let l = TcpListener::bind(addr.as_str())?;
                let local = Endpoint::Tcp(l.local_addr()?.to_string());
                (Listener::Tcp(l), local)
            }
            #[cfg(unix)]
            Endpoint::Unix(path) => {
                let l = UnixListener::bind(path)?;
                (Listener::Unix(l), Endpoint::Unix(path.clone()))
            }
        };
        Ok(Daemon {
            listener,
            local,
            model: Arc::new(Mutex::new(model)),
            stop: Arc::new(AtomicBool::new(false)),
            telemetry: Arc::new(Telemetry::new(telemetry::DEFAULT_SHARDS)),
        })
    }

    /// The resolved listen endpoint (port filled in for `tcp:…:0`).
    pub fn local_endpoint(&self) -> Endpoint {
        self.local.clone()
    }

    /// Serves until a client sends the admin shutdown frame. Removes a
    /// Unix socket file on the way out.
    pub fn run(self) -> io::Result<()> {
        loop {
            let stream = match &self.listener {
                Listener::Tcp(l) => l.accept().map(|(s, _)| {
                    let _ = s.set_nodelay(true);
                    Stream::Tcp(s)
                }),
                #[cfg(unix)]
                Listener::Unix(l) => l.accept().map(|(s, _)| Stream::Unix(s)),
            };
            if self.stop.load(Ordering::SeqCst) {
                break;
            }
            let stream = match stream {
                Ok(s) => s,
                // A failed accept is not fatal to the daemon.
                Err(_) => continue,
            };
            let model = Arc::clone(&self.model);
            let stop = Arc::clone(&self.stop);
            let local = self.local.clone();
            let telemetry = self.telemetry.handle();
            std::thread::spawn(move || {
                let _ = serve_conn(stream, &model, &stop, &local, &telemetry);
            });
        }
        #[cfg(unix)]
        if let Endpoint::Unix(path) = &self.local {
            let _ = std::fs::remove_file(path);
        }
        Ok(())
    }
}

/// Wakes a daemon blocked in `accept` so it can observe its stop flag.
fn poke(endpoint: &Endpoint) {
    match endpoint {
        Endpoint::Tcp(addr) => {
            let _ = TcpStream::connect(addr.as_str());
        }
        #[cfg(unix)]
        Endpoint::Unix(path) => {
            let _ = UnixStream::connect(path);
        }
    }
}

/// The telemetry counter for one request op. Static names keep the
/// registry allocation-free; the spellings mirror
/// [`RackOp::wire_name`] in lower-case.
fn op_counter(op: &RackOp) -> &'static str {
    match op {
        RackOp::GotoZombie { .. } => "zombied.op.gs_goto_zombie",
        RackOp::Reclaim { .. } => "zombied.op.gs_reclaim",
        RackOp::UsReclaim { .. } => "zombied.op.us_reclaim",
        RackOp::AllocExt { .. } => "zombied.op.gs_alloc_ext",
        RackOp::AllocSwap { .. } => "zombied.op.gs_alloc_swap",
        RackOp::AsGetFreeMem { .. } => "zombied.op.as_get_free_mem",
        RackOp::GetLruZombie => "zombied.op.gs_get_lru_zombie",
    }
}

/// The telemetry counter for one response tag.
fn resp_counter(body: &ResponseBody) -> &'static str {
    match body {
        ResponseBody::Lent { .. } => "zombied.resp.lent",
        ResponseBody::Reclaimed { .. } => "zombied.resp.reclaimed",
        ResponseBody::Revoked { .. } => "zombied.resp.revoked",
        ResponseBody::Granted { .. } => "zombied.resp.granted",
        ResponseBody::LruZombie { .. } => "zombied.resp.lru_zombie",
        ResponseBody::Error(_) => "zombied.resp.error",
    }
}

/// The telemetry counter for one typed error class.
fn err_counter(e: &ErrorFrame) -> &'static str {
    match e {
        ErrorFrame::UnknownHost(_) => "zombied.err.unknown_host",
        ErrorFrame::UnknownBuffer(_) => "zombied.err.unknown_buffer",
        ErrorFrame::AdmissionDenied { .. } => "zombied.err.admission_denied",
        ErrorFrame::NotTheUser { .. } => "zombied.err.not_the_user",
        ErrorFrame::NoCapacity => "zombied.err.no_capacity",
        ErrorFrame::BadRequest { .. } => "zombied.err.bad_request",
    }
}

/// Answers a `[STATS]` admin frame: merge the telemetry shards, overlay
/// the model's live state (under the model lock, briefly), render.
fn scrape_exposition(model: &Mutex<ClusterModel>, telemetry: &Arc<Telemetry>) -> String {
    let mut merged = telemetry.scrape();
    model.lock().expect("model lock").observe_into(&mut merged);
    telemetry::expose(&merged)
}

fn serve_conn(
    stream: Stream,
    model: &Mutex<ClusterModel>,
    stop: &AtomicBool,
    local: &Endpoint,
    telemetry: &TelemetryHandle,
) -> io::Result<()> {
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    telemetry.counter_add("zombied.connections", 1);
    while let Some(payload) = read_frame(&mut reader)? {
        if payload == [SHUTDOWN] {
            write_frame(&mut writer, &[SHUTDOWN])?;
            writer.flush()?;
            stop.store(true, Ordering::SeqCst);
            poke(local);
            return Ok(());
        }
        if payload == [STATS] {
            telemetry.counter_add("zombied.stats_scrapes", 1);
            let text = scrape_exposition(model, telemetry.telemetry());
            write_frame(&mut writer, text.as_bytes())?;
            writer.flush()?;
            continue;
        }
        let (op, response) = match decode(&payload) {
            Ok(op) => {
                let response = model.lock().expect("model lock").apply(&op);
                (Some(op), response)
            }
            Err(e) => (
                None,
                RackResponse {
                    decision: SimDuration::ZERO,
                    body: ResponseBody::Error(ErrorFrame::bad_request(e)),
                },
            ),
        };
        // One shard lock for the whole request's worth of samples; the
        // model lock is already released.
        telemetry.with(|reg| {
            match &op {
                Some(op) => reg.counter_add(op_counter(op), 1),
                None => reg.counter_add("zombied.bad_frames", 1),
            }
            reg.counter_add(resp_counter(&response.body), 1);
            if let ResponseBody::Error(e) = &response.body {
                reg.counter_add(err_counter(e), 1);
            }
            reg.hist_record("zombied.decision_ns", response.decision.as_nanos());
        });
        write_frame(&mut writer, &encode_response(&response))?;
        writer.flush()?;
    }
    Ok(())
}
