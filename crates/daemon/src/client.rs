//! The thin client: one framed request out, one framed response back.
//!
//! [`ZlClient::call`] is the simple path (`zlctl` uses it). The replay
//! harness uses the split [`ZlClient::send`] / [`ZlClient::recv`] pair to
//! keep a window of requests in flight — the server answers in order, so
//! positional matching is enough.

use std::fmt;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::net::TcpStream;
#[cfg(unix)]
use std::os::unix::net::UnixStream;

use zombieland_core::codec::{decode_response, encode, CodecError, RackResponse};
use zombieland_core::protocol::RackOp;

use crate::framing::{read_frame, write_frame, SHUTDOWN, STATS};
use crate::Endpoint;

/// Client-side failures. A typed [`ErrorFrame`] answer from the server
/// is *not* an error here — it is a well-formed [`RackResponse`].
///
/// [`ErrorFrame`]: zombieland_core::codec::ErrorFrame
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure.
    Io(io::Error),
    /// The server's bytes did not decode as a response.
    Codec(CodecError),
    /// The server closed the connection with a response still owed.
    Closed,
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport: {e}"),
            ClientError::Codec(e) => write!(f, "malformed response: {e}"),
            ClientError::Closed => write!(f, "server closed mid-conversation"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

enum Stream {
    Tcp(TcpStream),
    #[cfg(unix)]
    Unix(UnixStream),
}

impl Stream {
    fn try_clone(&self) -> io::Result<Stream> {
        match self {
            Stream::Tcp(s) => s.try_clone().map(Stream::Tcp),
            #[cfg(unix)]
            Stream::Unix(s) => s.try_clone().map(Stream::Unix),
        }
    }
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            Stream::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            Stream::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Stream::Tcp(s) => s.flush(),
            #[cfg(unix)]
            Stream::Unix(s) => s.flush(),
        }
    }
}

/// A connected control-plane client.
pub struct ZlClient {
    reader: BufReader<Stream>,
    writer: BufWriter<Stream>,
}

impl ZlClient {
    /// Connects to a daemon.
    pub fn connect(endpoint: &Endpoint) -> io::Result<ZlClient> {
        let stream = match endpoint {
            Endpoint::Tcp(addr) => {
                let s = TcpStream::connect(addr.as_str())?;
                s.set_nodelay(true)?;
                Stream::Tcp(s)
            }
            #[cfg(unix)]
            Endpoint::Unix(path) => Stream::Unix(UnixStream::connect(path)?),
        };
        Ok(ZlClient {
            reader: BufReader::new(stream.try_clone()?),
            writer: BufWriter::new(stream),
        })
    }

    /// Queues one request. Buffered — pair with [`ZlClient::flush`] (or
    /// just use [`ZlClient::call`]).
    pub fn send(&mut self, op: &RackOp) -> Result<(), ClientError> {
        write_frame(&mut self.writer, &encode(op))?;
        Ok(())
    }

    /// Pushes queued requests onto the wire.
    pub fn flush(&mut self) -> Result<(), ClientError> {
        self.writer.flush()?;
        Ok(())
    }

    /// Reads the next in-order response.
    pub fn recv(&mut self) -> Result<RackResponse, ClientError> {
        let payload = read_frame(&mut self.reader)?.ok_or(ClientError::Closed)?;
        decode_response(&payload).map_err(ClientError::Codec)
    }

    /// One request, one response.
    pub fn call(&mut self, op: &RackOp) -> Result<RackResponse, ClientError> {
        self.send(op)?;
        self.flush()?;
        self.recv()
    }

    /// Scrapes the daemon's telemetry: one `[STATS]` admin frame out,
    /// one frame of Prometheus-style exposition text back.
    pub fn stats(&mut self) -> Result<String, ClientError> {
        write_frame(&mut self.writer, &[STATS])?;
        self.flush()?;
        let payload = read_frame(&mut self.reader)?.ok_or(ClientError::Closed)?;
        String::from_utf8(payload).map_err(|_| {
            ClientError::Io(io::Error::new(
                io::ErrorKind::InvalidData,
                "stats payload is not UTF-8",
            ))
        })
    }

    /// Asks the daemon to shut down; resolves once it acknowledges.
    pub fn shutdown_server(&mut self) -> Result<(), ClientError> {
        write_frame(&mut self.writer, &[SHUTDOWN])?;
        self.flush()?;
        let ack = read_frame(&mut self.reader)?.ok_or(ClientError::Closed)?;
        if ack == [SHUTDOWN] {
            Ok(())
        } else {
            Err(ClientError::Closed)
        }
    }
}
