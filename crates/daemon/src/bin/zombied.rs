//! `zombied` — the control-plane daemon.
//!
//! ```text
//! zombied [--listen tcp:HOST:PORT|unix:PATH] [--servers N] [--seed S]
//!         [--lendable-mib M] [--fail-primary-after N]
//! ```
//!
//! Boots a deterministic [`ClusterModel`] and serves the seven §4.3–4.4
//! wire functions until a client sends the admin shutdown frame (see
//! `zlctl shutdown`). The resolved listen endpoint is printed on stdout
//! (and flushed) before the first accept, so scripts can wait for it.

use std::process::ExitCode;

use zombieland_daemon::model::{ClusterModel, ModelConfig};
use zombieland_daemon::server::Daemon;
use zombieland_daemon::Endpoint;
use zombieland_simcore::Bytes;

fn flag_value(args: &[String], key: &str) -> Option<String> {
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1).cloned())
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: zombied [--listen tcp:HOST:PORT|unix:PATH] [--servers N] \
         [--seed S] [--lendable-mib M] [--fail-primary-after N]"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    const FLAGS: [&str; 5] = [
        "--listen",
        "--servers",
        "--seed",
        "--lendable-mib",
        "--fail-primary-after",
    ];
    let mut i = 0;
    while i < args.len() {
        if !FLAGS.contains(&args[i].as_str()) {
            eprintln!("error: unknown argument {:?}", args[i]);
            return usage();
        }
        if i + 1 >= args.len() {
            eprintln!("error: flag {:?} needs a value", args[i]);
            return usage();
        }
        i += 2;
    }

    let listen = flag_value(&args, "--listen").unwrap_or_else(|| "tcp:127.0.0.1:0".into());
    let endpoint = match Endpoint::parse(&listen) {
        Ok(ep) => ep,
        Err(e) => {
            eprintln!("error: {e}");
            return usage();
        }
    };
    let servers: u32 = flag_value(&args, "--servers")
        .and_then(|v| v.parse().ok())
        .unwrap_or(24);
    let seed: u64 = flag_value(&args, "--seed")
        .and_then(|v| v.parse().ok())
        .unwrap_or(11);
    let lendable_mib: u64 = flag_value(&args, "--lendable-mib")
        .and_then(|v| v.parse().ok())
        .unwrap_or(1024);
    let fail_primary_after: Option<u64> =
        flag_value(&args, "--fail-primary-after").and_then(|v| v.parse().ok());

    let model = ClusterModel::boot(ModelConfig {
        servers: servers.max(2),
        seed,
        lendable: Bytes::mib(lendable_mib),
        fail_primary_after,
    });
    println!(
        "zombied: {} servers, {} booted as zombies, {} buffers in the pool (seed {seed})",
        servers.max(2),
        model.initial_zombies(),
        model.free_buffers()
    );

    let daemon = match Daemon::bind(&endpoint, model) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("error: cannot bind {endpoint}: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("zombied: listening on {}", daemon.local_endpoint());
    use std::io::Write;
    let _ = std::io::stdout().flush();

    match daemon.run() {
        Ok(()) => {
            println!("zombied: shutdown");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
