//! `zlctl` — one control-plane request per invocation.
//!
//! ```text
//! zlctl --connect ENDPOINT goto-zombie HOST NB
//! zlctl --connect ENDPOINT reclaim HOST NB
//! zlctl --connect ENDPOINT us-reclaim USER [ID ...]
//! zlctl --connect ENDPOINT alloc-ext USER MIB
//! zlctl --connect ENDPOINT alloc-swap USER MIB
//! zlctl --connect ENDPOINT free-mem HOST
//! zlctl --connect ENDPOINT lru-zombie
//! zlctl --connect ENDPOINT shutdown
//! ```
//!
//! Exit status: 0 for any well-formed server answer — *including* a typed
//! error frame (the request was served; the answer happens to be "no").
//! 1 for transport or codec failures, 2 for usage errors.

use std::process::ExitCode;

use zombieland_core::codec::ResponseBody;
use zombieland_core::protocol::RackOp;
use zombieland_core::ServerId;
use zombieland_daemon::client::ZlClient;
use zombieland_daemon::Endpoint;
use zombieland_mem::buffer::BufferId;
use zombieland_simcore::Bytes;

fn usage() -> ExitCode {
    eprintln!(
        "usage: zlctl --connect ENDPOINT <command>\n  \
         goto-zombie HOST NB | reclaim HOST NB | us-reclaim USER [ID ...]\n  \
         alloc-ext USER MIB | alloc-swap USER MIB | free-mem HOST\n  \
         lru-zombie | shutdown\n\
         ENDPOINT: tcp:HOST:PORT or unix:PATH"
    );
    ExitCode::from(2)
}

fn parse_op(cmd: &str, rest: &[String]) -> Result<RackOp, String> {
    let id = |s: &String| -> Result<ServerId, String> {
        s.parse::<u32>()
            .map(ServerId::new)
            .map_err(|_| format!("bad server id {s:?}"))
    };
    let num = |s: &String| -> Result<u64, String> {
        s.parse::<u64>().map_err(|_| format!("bad number {s:?}"))
    };
    match (cmd, rest) {
        ("goto-zombie", [host, nb]) => Ok(RackOp::GotoZombie {
            host: id(host)?,
            buffers: num(nb)?,
        }),
        ("reclaim", [host, nb]) => Ok(RackOp::Reclaim {
            host: id(host)?,
            nb_buffers: num(nb)?,
        }),
        ("us-reclaim", [user, ids @ ..]) => Ok(RackOp::UsReclaim {
            user: id(user)?,
            buff_ids: ids
                .iter()
                .map(|s| num(s).map(BufferId::new))
                .collect::<Result<_, _>>()?,
        }),
        ("alloc-ext", [user, mib]) => Ok(RackOp::AllocExt {
            user: id(user)?,
            mem_size: Bytes::mib(num(mib)?),
        }),
        ("alloc-swap", [user, mib]) => Ok(RackOp::AllocSwap {
            user: id(user)?,
            mem_size: Bytes::mib(num(mib)?),
        }),
        ("free-mem", [host]) => Ok(RackOp::AsGetFreeMem { host: id(host)? }),
        ("lru-zombie", []) => Ok(RackOp::GetLruZombie),
        _ => Err(format!("bad arguments for {cmd:?}")),
    }
}

fn print_response(decision_ns: u64, body: &ResponseBody) {
    print!("decision {:.1} us  ", decision_ns as f64 / 1_000.0);
    match body {
        ResponseBody::Lent { buffers } => {
            println!(
                "lent {} buffer(s): {:?}",
                buffers.len(),
                buffers.iter().map(|b| b.get()).collect::<Vec<_>>()
            );
        }
        ResponseBody::Reclaimed {
            returned_free,
            revoked,
        } => {
            println!(
                "reclaimed {} free + {} revoked",
                returned_free.len(),
                revoked.len()
            );
        }
        ResponseBody::Revoked {
            relocated,
            fell_back,
        } => {
            println!("revoked: {relocated} page(s) relocated, {fell_back} fell back to backup");
        }
        ResponseBody::Granted { buffers } => {
            println!("granted {} buffer(s):", buffers.len());
            for d in buffers {
                println!(
                    "  buffer {} on srv:{} (mr {}, {} MiB, {})",
                    d.id.get(),
                    d.host.get(),
                    d.mr_key,
                    d.size.get() >> 20,
                    if d.zombie { "zombie" } else { "active" }
                );
            }
        }
        ResponseBody::LruZombie { host } => match host {
            Some(h) => println!("lru zombie: srv:{}", h.get()),
            None => println!("lru zombie: none"),
        },
        ResponseBody::Error(e) => println!("error: {e}"),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(pos) = args.iter().position(|a| a == "--connect") else {
        return usage();
    };
    let Some(endpoint) = args.get(pos + 1) else {
        eprintln!("error: --connect needs a value");
        return usage();
    };
    let endpoint = match Endpoint::parse(endpoint) {
        Ok(ep) => ep,
        Err(e) => {
            eprintln!("error: {e}");
            return usage();
        }
    };
    let mut rest: Vec<String> = args;
    rest.drain(pos..=pos + 1);
    let Some(cmd) = rest.first().cloned() else {
        return usage();
    };

    let mut client = match ZlClient::connect(&endpoint) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: cannot connect to {endpoint}: {e}");
            return ExitCode::FAILURE;
        }
    };

    if cmd == "shutdown" {
        return match client.shutdown_server() {
            Ok(()) => {
                println!("daemon acknowledged shutdown");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        };
    }

    let op = match parse_op(&cmd, &rest[1..]) {
        Ok(op) => op,
        Err(e) => {
            eprintln!("error: {e}");
            return usage();
        }
    };
    match client.call(&op) {
        Ok(resp) => {
            print_response(resp.decision.as_nanos(), &resp.body);
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
