//! `zlctl` — one control-plane request per invocation.
//!
//! ```text
//! zlctl --connect ENDPOINT goto-zombie HOST NB
//! zlctl --connect ENDPOINT reclaim HOST NB
//! zlctl --connect ENDPOINT us-reclaim USER [ID ...]
//! zlctl --connect ENDPOINT alloc-ext USER MIB
//! zlctl --connect ENDPOINT alloc-swap USER MIB
//! zlctl --connect ENDPOINT free-mem HOST
//! zlctl --connect ENDPOINT lru-zombie
//! zlctl --connect ENDPOINT stats
//! zlctl --connect ENDPOINT top [--interval-ms N] [--frames N]
//! zlctl --connect ENDPOINT shutdown
//! ```
//!
//! `stats` prints one raw exposition scrape. `top` re-scrapes on an
//! interval and prints one *delta* row per frame — req/s, error rate and
//! latency quantiles over the window, not since daemon start.
//!
//! Exit status: 0 for any well-formed server answer — *including* a typed
//! error frame (the request was served; the answer happens to be "no").
//! 1 for transport or codec failures, 2 for usage errors.

use std::process::ExitCode;
use std::time::{Duration, Instant};

use zombieland_core::codec::ResponseBody;
use zombieland_core::protocol::RackOp;
use zombieland_core::ServerId;
use zombieland_daemon::client::ZlClient;
use zombieland_daemon::Endpoint;
use zombieland_mem::buffer::BufferId;
use zombieland_obs::telemetry::{parse_exposition, Snapshot};
use zombieland_simcore::Bytes;

fn usage() -> ExitCode {
    eprintln!(
        "usage: zlctl --connect ENDPOINT <command>\n  \
         goto-zombie HOST NB | reclaim HOST NB | us-reclaim USER [ID ...]\n  \
         alloc-ext USER MIB | alloc-swap USER MIB | free-mem HOST\n  \
         lru-zombie | stats | top [--interval-ms N] [--frames N] | shutdown\n\
         ENDPOINT: tcp:HOST:PORT or unix:PATH"
    );
    ExitCode::from(2)
}

fn parse_op(cmd: &str, rest: &[String]) -> Result<RackOp, String> {
    let id = |s: &String| -> Result<ServerId, String> {
        s.parse::<u32>()
            .map(ServerId::new)
            .map_err(|_| format!("bad server id {s:?}"))
    };
    let num = |s: &String| -> Result<u64, String> {
        s.parse::<u64>().map_err(|_| format!("bad number {s:?}"))
    };
    match (cmd, rest) {
        ("goto-zombie", [host, nb]) => Ok(RackOp::GotoZombie {
            host: id(host)?,
            buffers: num(nb)?,
        }),
        ("reclaim", [host, nb]) => Ok(RackOp::Reclaim {
            host: id(host)?,
            nb_buffers: num(nb)?,
        }),
        ("us-reclaim", [user, ids @ ..]) => Ok(RackOp::UsReclaim {
            user: id(user)?,
            buff_ids: ids
                .iter()
                .map(|s| num(s).map(BufferId::new))
                .collect::<Result<_, _>>()?,
        }),
        ("alloc-ext", [user, mib]) => Ok(RackOp::AllocExt {
            user: id(user)?,
            mem_size: Bytes::mib(num(mib)?),
        }),
        ("alloc-swap", [user, mib]) => Ok(RackOp::AllocSwap {
            user: id(user)?,
            mem_size: Bytes::mib(num(mib)?),
        }),
        ("free-mem", [host]) => Ok(RackOp::AsGetFreeMem { host: id(host)? }),
        ("lru-zombie", []) => Ok(RackOp::GetLruZombie),
        _ => Err(format!("bad arguments for {cmd:?}")),
    }
}

fn print_response(decision_ns: u64, body: &ResponseBody) {
    print!("decision {:.1} us  ", decision_ns as f64 / 1_000.0);
    match body {
        ResponseBody::Lent { buffers } => {
            println!(
                "lent {} buffer(s): {:?}",
                buffers.len(),
                buffers.iter().map(|b| b.get()).collect::<Vec<_>>()
            );
        }
        ResponseBody::Reclaimed {
            returned_free,
            revoked,
        } => {
            println!(
                "reclaimed {} free + {} revoked",
                returned_free.len(),
                revoked.len()
            );
        }
        ResponseBody::Revoked {
            relocated,
            fell_back,
        } => {
            println!("revoked: {relocated} page(s) relocated, {fell_back} fell back to backup");
        }
        ResponseBody::Granted { buffers } => {
            println!("granted {} buffer(s):", buffers.len());
            for d in buffers {
                println!(
                    "  buffer {} on srv:{} (mr {}, {} MiB, {})",
                    d.id.get(),
                    d.host.get(),
                    d.mr_key,
                    d.size.get() >> 20,
                    if d.zombie { "zombie" } else { "active" }
                );
            }
        }
        ResponseBody::LruZombie { host } => match host {
            Some(h) => println!("lru zombie: srv:{}", h.get()),
            None => println!("lru zombie: none"),
        },
        ResponseBody::Error(e) => println!("error: {e}"),
    }
}

/// One `top` delta row computed from two consecutive scrapes.
fn top_row(elapsed: Duration, prev: &Snapshot, cur: &Snapshot) -> String {
    let secs = elapsed.as_secs_f64().max(1e-9);
    let ops = cur.counter_sum("zombied_op_") - prev.counter_sum("zombied_op_");
    let errs = cur.counters.get("zombied_resp_error").copied().unwrap_or(0)
        - prev
            .counters
            .get("zombied_resp_error")
            .copied()
            .unwrap_or(0);
    let err_pct = if ops == 0 {
        0.0
    } else {
        100.0 * errs as f64 / ops as f64
    };
    let (p50, p99) = match (cur.histograms.get("zombied_decision_ns"), {
        prev.histograms.get("zombied_decision_ns")
    }) {
        (Some(now), Some(before)) => {
            let d = now.since(before);
            (d.quantile(0.5), d.quantile(0.99))
        }
        (Some(now), None) => (now.quantile(0.5), now.quantile(0.99)),
        _ => (None, None),
    };
    let us = |q: Option<u64>| q.map_or("-".to_string(), |ns| format!("{:.1}", ns as f64 / 1e3));
    let gauge = |name: &str| {
        cur.gauges
            .get(name)
            .map_or("-".to_string(), |v| format!("{v:.0}"))
    };
    format!(
        "{:>8.1} {:>9.0} {:>7.2} {:>9} {:>9} {:>8} {:>8}",
        secs,
        ops as f64 / secs,
        err_pct,
        us(p50),
        us(p99),
        gauge("zombied_pool_zombies"),
        gauge("zombied_pool_free_buffers"),
    )
}

/// `zlctl top`: re-scrape every `interval` and print a delta row per
/// window. `frames == 0` runs until the connection drops (or ^C).
fn run_top(client: &mut ZlClient, interval: Duration, frames: u64) -> Result<(), String> {
    let scrape = |client: &mut ZlClient| -> Result<Snapshot, String> {
        let text = client.stats().map_err(|e| e.to_string())?;
        parse_exposition(&text).map_err(|e| format!("bad exposition: {e}"))
    };
    println!(
        "{:>8} {:>9} {:>7} {:>9} {:>9} {:>8} {:>8}",
        "window_s", "req/s", "err%", "p50_us", "p99_us", "zombies", "free"
    );
    let mut prev = scrape(client)?;
    let mut last = Instant::now();
    let mut printed = 0u64;
    while frames == 0 || printed < frames {
        std::thread::sleep(interval);
        let cur = scrape(client)?;
        let now = Instant::now();
        println!("{}", top_row(now.duration_since(last), &prev, &cur));
        (prev, last) = (cur, now);
        printed += 1;
    }
    Ok(())
}

/// Parses `top`'s optional flags.
fn top_flags(rest: &[String]) -> Result<(Duration, u64), String> {
    let mut interval = Duration::from_millis(1_000);
    let mut frames = 0u64;
    let mut it = rest.iter();
    while let Some(flag) = it.next() {
        let value = it
            .next()
            .ok_or_else(|| format!("{flag} needs a value"))?
            .parse::<u64>()
            .map_err(|_| format!("bad value for {flag}"))?;
        match flag.as_str() {
            "--interval-ms" => interval = Duration::from_millis(value.max(1)),
            "--frames" => frames = value,
            _ => return Err(format!("unknown top flag {flag:?}")),
        }
    }
    Ok((interval, frames))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(pos) = args.iter().position(|a| a == "--connect") else {
        return usage();
    };
    let Some(endpoint) = args.get(pos + 1) else {
        eprintln!("error: --connect needs a value");
        return usage();
    };
    let endpoint = match Endpoint::parse(endpoint) {
        Ok(ep) => ep,
        Err(e) => {
            eprintln!("error: {e}");
            return usage();
        }
    };
    let mut rest: Vec<String> = args;
    rest.drain(pos..=pos + 1);
    let Some(cmd) = rest.first().cloned() else {
        return usage();
    };

    let mut client = match ZlClient::connect(&endpoint) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: cannot connect to {endpoint}: {e}");
            return ExitCode::FAILURE;
        }
    };

    if cmd == "stats" {
        return match client.stats() {
            Ok(text) => {
                print!("{text}");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        };
    }

    if cmd == "top" {
        let (interval, frames) = match top_flags(&rest[1..]) {
            Ok(f) => f,
            Err(e) => {
                eprintln!("error: {e}");
                return usage();
            }
        };
        return match run_top(&mut client, interval, frames) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        };
    }

    if cmd == "shutdown" {
        return match client.shutdown_server() {
            Ok(()) => {
                println!("daemon acknowledged shutdown");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        };
    }

    let op = match parse_op(&cmd, &rest[1..]) {
        Ok(op) => op,
        Err(e) => {
            eprintln!("error: {e}");
            return usage();
        }
    };
    match client.call(&op) {
        Ok(resp) => {
            print_response(resp.decision.as_nanos(), &resp.body);
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
