//! `zombied`: serving the §4.3–4.4 control plane over a real socket.
//!
//! Everything below `crates/daemon` existed as libraries — the wire
//! functions ([`zombieland_core::protocol::RackOp`]), their encoding
//! ([`zombieland_core::codec`]), the controller database and its HA
//! mirror — but nothing listened. This crate is the serving layer:
//!
//! - [`framing`] — length-prefixed frames over any byte stream.
//! - [`model`] — [`model::ClusterModel`], the daemon's world: a rack of
//!   servers on a simulated RDMA fabric, the HA controller pair, and the
//!   per-user remote-memory-manager agents. Booted deterministically
//!   from a seed via a short simulator run.
//! - [`server`] — [`server::Daemon`], a thread-per-connection server
//!   over TCP or (on Unix) a Unix-domain socket.
//! - [`client`] — [`client::ZlClient`], the thin client library behind
//!   the `zlctl` binary and the replay harness.
//! - [`replay`] — the seeded load harness behind `zombieland replay`:
//!   N client threads fire a deterministic request stream and aggregate
//!   decision latency into the [`zombieland_obs`] metric registry.
//!
//! Binaries: `zombied` (the daemon) and `zlctl` (one request per
//! invocation, human-readable answer).

use std::fmt;

pub mod client;
pub mod framing;
pub mod model;
pub mod replay;
pub mod server;

/// Where a daemon listens / a client connects.
///
/// Parsed from `tcp:HOST:PORT` (port 0 = ephemeral) or `unix:PATH`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Endpoint {
    /// A TCP socket address, e.g. `127.0.0.1:7070`.
    Tcp(String),
    /// A Unix-domain socket path.
    #[cfg(unix)]
    Unix(std::path::PathBuf),
}

impl Endpoint {
    /// Parses an endpoint string.
    pub fn parse(s: &str) -> Result<Endpoint, String> {
        if let Some(addr) = s.strip_prefix("tcp:") {
            if addr.is_empty() {
                return Err("tcp endpoint needs HOST:PORT".into());
            }
            return Ok(Endpoint::Tcp(addr.to_string()));
        }
        if let Some(path) = s.strip_prefix("unix:") {
            #[cfg(unix)]
            {
                if path.is_empty() {
                    return Err("unix endpoint needs a path".into());
                }
                return Ok(Endpoint::Unix(path.into()));
            }
            #[cfg(not(unix))]
            {
                let _ = path;
                return Err("unix sockets unavailable on this platform".into());
            }
        }
        Err(format!(
            "endpoint {s:?} must start with \"tcp:\" or \"unix:\""
        ))
    }
}

impl fmt::Display for Endpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Endpoint::Tcp(addr) => write!(f, "tcp:{addr}"),
            #[cfg(unix)]
            Endpoint::Unix(path) => write!(f, "unix:{}", path.display()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoint_parsing() {
        assert_eq!(
            Endpoint::parse("tcp:127.0.0.1:0"),
            Ok(Endpoint::Tcp("127.0.0.1:0".into()))
        );
        assert!(Endpoint::parse("tcp:").is_err());
        assert!(Endpoint::parse("127.0.0.1:0").is_err());
        #[cfg(unix)]
        {
            let ep = Endpoint::parse("unix:/tmp/z.sock").unwrap();
            assert_eq!(ep.to_string(), "unix:/tmp/z.sock");
        }
    }
}
