//! The replay load harness behind `zombieland replay`.
//!
//! N client threads each fire a seeded, deterministic stream of
//! control-plane requests at a running daemon, keeping a window of
//! requests pipelined per connection. Two kinds of numbers come out:
//!
//! - **Deterministic metrics**, recorded through the [`zombieland_obs`]
//!   registry and byte-stable across runs of the same seed: per-op
//!   counters, request sizes, and the decision-latency histogram. The
//!   `decision` a response carries is the controller's *modeled* server
//!   time — a pure function of the request — so aggregating it is
//!   scheduling-independent even with many concurrent clients.
//! - **Wall-clock throughput** and the interleaving-dependent error
//!   count, reported in the [`ReplaySummary`] only (never exported):
//!   whether an allocation hits admission control depends on what other
//!   clients did first.
//!
//! Per-client streams are seeded with `derive_seed(seed, client_index)`
//! and captures are merged in client-index order, so the merged registry
//! is independent of thread scheduling *and* of the client count only in
//! timing — changing `--clients` redistributes the same request budget
//! across differently-seeded streams and is a different workload.

use std::time::Instant;

use zombieland_core::codec::{encode, ResponseBody};
use zombieland_core::protocol::RackOp;
use zombieland_core::ServerId;
use zombieland_mem::buffer::BufferId;
use zombieland_obs::profile;
use zombieland_obs::sink::{counter_add, hist_record};
use zombieland_obs::{observe, ObsRun};
use zombieland_simcore::{derive_seed, Bytes, DetRng};

use crate::client::{ClientError, ZlClient};
use crate::Endpoint;

/// What to fire, where, and how hard.
#[derive(Clone, Debug)]
pub struct ReplayConfig {
    /// The daemon to load.
    pub endpoint: Endpoint,
    /// Total requests across all clients.
    pub requests: u64,
    /// Concurrent client connections (threads).
    pub clients: u32,
    /// Base seed for the request streams.
    pub seed: u64,
    /// Requests kept in flight per connection.
    pub window: usize,
    /// Host-id space the generated ops target (should match the
    /// daemon's `--servers`).
    pub servers: u32,
}

impl Default for ReplayConfig {
    fn default() -> Self {
        ReplayConfig {
            endpoint: Endpoint::Tcp("127.0.0.1:7070".into()),
            requests: 100_000,
            clients: 4,
            seed: 11,
            window: 32,
            servers: 24,
        }
    }
}

/// What a replay run measured.
#[derive(Clone, Debug)]
pub struct ReplaySummary {
    /// Requests answered.
    pub requests: u64,
    /// Answers that were typed error frames (interleaving-dependent —
    /// reported here, never exported as a metric).
    pub errors: u64,
    /// Wall-clock time for the whole run.
    pub wall_secs: f64,
    /// Decision-latency quantiles from the merged histogram (log₂
    /// bucket upper edges), absent when nothing was recorded.
    pub p50_decision_ns: Option<u64>,
    /// See [`ReplaySummary::p50_decision_ns`].
    pub p99_decision_ns: Option<u64>,
}

impl ReplaySummary {
    /// Requests per wall-clock second.
    pub fn throughput(&self) -> f64 {
        if self.wall_secs > 0.0 {
            self.requests as f64 / self.wall_secs
        } else {
            0.0
        }
    }
}

/// Deterministically generates the `i`-th request of one client stream.
fn gen_op(rng: &mut DetRng, servers: u32) -> RackOp {
    let host = ServerId::new(rng.below(servers as u64) as u32);
    match rng.below(100) {
        0..=24 => RackOp::AllocSwap {
            user: host,
            mem_size: Bytes::mib(rng.range(64, 512)),
        },
        25..=44 => RackOp::AllocExt {
            user: host,
            mem_size: Bytes::mib(rng.range(64, 256)),
        },
        45..=59 => RackOp::GotoZombie {
            host,
            buffers: rng.range(1, 8),
        },
        60..=74 => RackOp::Reclaim {
            host,
            nb_buffers: rng.range(1, 8),
        },
        75..=84 => RackOp::AsGetFreeMem { host },
        85..=92 => RackOp::GetLruZombie,
        _ => RackOp::UsReclaim {
            user: host,
            buff_ids: (0..rng.below(4))
                .map(|_| BufferId::new(rng.below(4096)))
                .collect(),
        },
    }
}

/// Metric name for an op's per-kind counter (static, as the registry
/// requires).
fn op_counter(op: &RackOp) -> &'static str {
    match op {
        RackOp::GotoZombie { .. } => "replay.op.gs_goto_zombie",
        RackOp::Reclaim { .. } => "replay.op.gs_reclaim",
        RackOp::UsReclaim { .. } => "replay.op.us_reclaim",
        RackOp::AllocExt { .. } => "replay.op.gs_alloc_ext",
        RackOp::AllocSwap { .. } => "replay.op.gs_alloc_swap",
        RackOp::AsGetFreeMem { .. } => "replay.op.as_get_free_mem",
        RackOp::GetLruZombie => "replay.op.gs_get_lru_zombie",
    }
}

/// One client thread's share of the run.
fn client_stream(
    endpoint: &Endpoint,
    requests: u64,
    stream_seed: u64,
    window: usize,
    servers: u32,
) -> Result<u64, ClientError> {
    let mut client = ZlClient::connect(endpoint)?;
    let mut rng = DetRng::new(stream_seed);
    let window = window.max(1) as u64;
    let mut errors = 0u64;
    let mut sent = 0u64;
    let mut received = 0u64;
    while received < requests {
        {
            let _span = profile::span(profile::Phase::ReplaySend);
            while sent < requests && sent - received < window {
                let op = gen_op(&mut rng, servers);
                counter_add("replay.requests", 1);
                counter_add(op_counter(&op), 1);
                hist_record("replay.request_bytes", encode(&op).len() as u64);
                client.send(&op)?;
                sent += 1;
            }
            client.flush()?;
        }
        let _span = profile::span(profile::Phase::ReplayRecv);
        let resp = client.recv()?;
        received += 1;
        hist_record("replay.decision_ns", resp.decision.as_nanos());
        if matches!(resp.body, ResponseBody::Error(_)) {
            errors += 1;
        }
    }
    Ok(errors)
}

/// Runs a replay. Returns the summary plus the merged deterministic
/// capture (callers hand the capture to their own `observe` scope via
/// [`zombieland_obs::sink::absorb_current`], or export it directly).
pub fn run_replay(cfg: &ReplayConfig) -> Result<(ReplaySummary, ObsRun), ClientError> {
    let clients = cfg.clients.max(1) as u64;
    let started = Instant::now();
    let mut handles = Vec::new();
    for idx in 0..clients {
        // Spread the budget: the first `requests % clients` streams take
        // one extra.
        let share = cfg.requests / clients + u64::from(idx < cfg.requests % clients);
        let endpoint = cfg.endpoint.clone();
        let stream_seed = derive_seed(cfg.seed, idx);
        let (window, servers) = (cfg.window, cfg.servers);
        handles.push(std::thread::spawn(move || {
            observe(zombieland_obs::ObsLevel::Summary, || {
                client_stream(&endpoint, share, stream_seed, window, servers)
            })
        }));
    }

    let mut merged = ObsRun::new(zombieland_obs::ObsLevel::Summary);
    let mut errors = 0u64;
    let mut first_err: Option<ClientError> = None;
    for h in handles {
        let (result, run) = h.join().expect("replay client panicked");
        // Merge in client-index order: counter/histogram merges commute,
        // so the registry is scheduling-independent either way.
        merged.absorb(run);
        match result {
            Ok(e) => errors += e,
            Err(e) => first_err = first_err.or(Some(e)),
        }
    }
    if let Some(e) = first_err {
        return Err(e);
    }
    let wall_secs = started.elapsed().as_secs_f64();
    let hist = merged.metrics.histogram("replay.decision_ns");
    let summary = ReplaySummary {
        requests: cfg.requests,
        errors,
        wall_secs,
        p50_decision_ns: hist.and_then(|h| h.quantile(0.5)),
        p99_decision_ns: hist.and_then(|h| h.quantile(0.99)),
    };
    Ok((summary, merged))
}
