//! Length-prefixed framing over any byte stream.
//!
//! One frame = a little-endian `u32` payload length followed by that many
//! payload bytes. The length is capped at [`MAX_FRAME`]: a peer declaring
//! more is a protocol error, surfaced before any allocation. Frames carry
//! either a codec message ([`zombieland_core::codec`]) or the one-byte
//! admin payload [`SHUTDOWN`].

use std::io::{self, Read, Write};

/// Largest payload a frame may carry. Generous against the codec's own
/// list limits (a maximal response is well under 2 MiB), tight against a
/// hostile 4 GiB declaration.
pub const MAX_FRAME: usize = 4 << 20;

/// The admin shutdown payload: one byte no codec message starts with
/// (request opcodes are 1–7, response tags 0x81–0x86).
pub const SHUTDOWN: u8 = 0xFF;

/// The admin stats payload: the daemon answers a one-byte `[STATS]`
/// frame with one frame of Prometheus-style exposition text (UTF-8).
pub const STATS: u8 = 0xFE;

/// Writes one frame. Does not flush — callers batch then flush.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    debug_assert!(payload.len() <= MAX_FRAME);
    let len = u32::try_from(payload.len())
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "frame too large"))?;
    w.write_all(&len.to_le_bytes())?;
    w.write_all(payload)
}

/// Reads one frame. `Ok(None)` on a clean end-of-stream (the peer closed
/// between frames); an EOF mid-frame is an error.
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<Vec<u8>>> {
    let mut header = [0u8; 4];
    let mut filled = 0;
    while filled < header.len() {
        match r.read(&mut header[filled..])? {
            0 if filled == 0 => return Ok(None),
            0 => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "eof inside frame header",
                ))
            }
            n => filled += n,
        }
    }
    let len = u32::from_le_bytes(header) as usize;
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds cap {MAX_FRAME}"),
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some(&b"hello"[..]));
        assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some(&b""[..]));
        assert_eq!(read_frame(&mut r).unwrap(), None);
    }

    #[test]
    fn oversized_declaration_rejected_before_allocation() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        let err = read_frame(&mut &buf[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn eof_inside_header_or_payload_is_an_error() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"abcdef").unwrap();
        for cut in 1..buf.len() {
            assert!(read_frame(&mut &buf[..cut]).is_err(), "cut at {cut}");
        }
    }
}
