//! The daemon's cluster model: what `zombied` answers requests *about*.
//!
//! A [`ClusterModel`] is a rack of `servers` hosts on a simulated RDMA
//! fabric, fronted by the HA controller pair ([`HaPair`]) and one
//! remote-memory-manager agent per user. It is booted deterministically
//! from a seed: a short [`zombieland_simulator`] run under the
//! ZombieStack policy decides how many hosts start as zombies (so the
//! daemon comes up with a realistic lending pool instead of an empty
//! database), and every MR registration / buffer id flows through the
//! same code paths the in-process experiments use.
//!
//! Every applied operation advances the model's sim-clock by the op's
//! [`RackOp::server_time`], heartbeats the primary controller, and runs
//! the secondary's monitor — so a crashed primary (`--fail-primary-after`)
//! is detected and failed over *between* requests, mid-stream, exactly
//! the transparent-HA story §4.1–4.2 tells.

use std::collections::BTreeMap;

use zombieland_core::codec::{BufferDesc, ErrorFrame, RackResponse, ResponseBody};
use zombieland_core::db::{BufferKind, BufferRecord, DbError};
use zombieland_core::ha::HaPair;
use zombieland_core::manager::{ManagerError, PoolKind, RemoteMemManager};
use zombieland_core::protocol::RackOp;
use zombieland_core::ServerId;
use zombieland_energy::MachineProfile;
use zombieland_mem::buffer::{buffers_for, buffers_within, BufferId, BUFF_SIZE};
use zombieland_rdma::{Fabric, MrKey, NodeId};
use zombieland_simcore::{Bytes, SimDuration, SimTime};
use zombieland_simulator::{simulate, PolicyKind, SimConfig};
use zombieland_trace::{ClusterTrace, TraceConfig};

/// How a [`ClusterModel`] boots.
#[derive(Clone, Copy, Debug)]
pub struct ModelConfig {
    /// Hosts in the rack.
    pub servers: u32,
    /// Boot seed: same seed, same model, same responses.
    pub seed: u64,
    /// Lendable memory per host (free RAM it can serve remotely).
    pub lendable: Bytes,
    /// Crash the primary controller after this many applied ops (the
    /// secondary takes over via heartbeat timeout).
    pub fail_primary_after: Option<u64>,
}

impl ModelConfig {
    /// A rack of `servers` hosts seeded with `seed`, 1 GiB lendable
    /// each, no injected crash.
    pub fn new(servers: u32, seed: u64) -> Self {
        ModelConfig {
            servers: servers.max(2),
            seed,
            lendable: Bytes::gib(1),
            fail_primary_after: None,
        }
    }
}

/// Heartbeat timeout: ops advance the clock by tens of microseconds, so
/// a crashed primary is declared dead within a handful of requests.
const HEARTBEAT_TIMEOUT: SimDuration = SimDuration::from_micros(100);

/// The daemon's world.
pub struct ClusterModel {
    fabric: Fabric,
    nodes: Vec<NodeId>,
    ha: HaPair,
    managers: BTreeMap<ServerId, RemoteMemManager>,
    /// Per-host memory not yet lent into the pool.
    unlent: Vec<Bytes>,
    clock: SimTime,
    ops_applied: u64,
    heartbeats: u64,
    fail_primary_after: Option<u64>,
    primary_crashed: bool,
    initial_zombies: u64,
    /// Remote-memory backend the boot simulation priced the rack under
    /// (the installed scenario's `backend` key; surfaced in STATS).
    backend: &'static zombieland_core::backend::BackendSpec,
    /// Bytes currently lent into the pooled tier across all hosts.
    lent_bytes: Bytes,
}

impl ClusterModel {
    /// Boots a model: runs a short deterministic simulation to pick the
    /// initial zombie population, then registers hosts and lends the
    /// zombies' memory into the pool.
    pub fn boot(cfg: ModelConfig) -> ClusterModel {
        let trace = ClusterTrace::generate(TraceConfig {
            servers: cfg.servers,
            duration: SimDuration::from_hours(6),
            seed: cfg.seed,
            mem_cpu_ratio: 1.0,
            avg_utilization: 0.25,
        });
        let sim_cfg = SimConfig {
            sample_interval: Some(SimDuration::from_hours(1)),
            ..SimConfig::new(PolicyKind::ZombieStack, MachineProfile::hp())
        };
        let backend = sim_cfg.backend;
        let report = simulate(&trace, &sim_cfg);
        let zombies = report
            .timeline
            .last()
            .map(|s| s.counts[1])
            .unwrap_or(0)
            .clamp(1, cfg.servers as u64 - 1);

        let mut fabric = Fabric::new();
        let nodes: Vec<NodeId> = (0..cfg.servers).map(|_| fabric.attach()).collect();
        let mut ha = HaPair::new(SimTime::ZERO, HEARTBEAT_TIMEOUT);
        for i in 0..cfg.servers {
            ha.apply(|db| db.register_host(ServerId::new(i)));
        }
        let mut model = ClusterModel {
            fabric,
            nodes,
            ha,
            managers: BTreeMap::new(),
            unlent: vec![cfg.lendable; cfg.servers as usize],
            clock: SimTime::ZERO,
            ops_applied: 0,
            heartbeats: 0,
            fail_primary_after: cfg.fail_primary_after,
            primary_crashed: false,
            initial_zombies: zombies,
            backend,
            lent_bytes: Bytes::ZERO,
        };
        // Seed the pool: the simulated zombie count, spread evenly over
        // the rack, each lending everything it has.
        let stride = (cfg.servers as u64 / zombies).max(1);
        for z in 0..zombies {
            let host = ServerId::new(((z * stride) % cfg.servers as u64) as u32);
            let _ = model.lend_host(host, u64::MAX, true);
        }
        model
    }

    /// Hosts that booted as zombies (decided by the boot simulation).
    pub fn initial_zombies(&self) -> u64 {
        self.initial_zombies
    }

    /// Free buffers currently in the controller database.
    pub fn free_buffers(&self) -> u64 {
        self.ha.db().free_buffers()
    }

    /// Operations applied so far.
    pub fn ops_applied(&self) -> u64 {
        self.ops_applied
    }

    /// Controller failovers so far.
    pub fn failovers(&self) -> u32 {
        self.ha.failovers()
    }

    /// Writes the model's current state into a scrape registry: lifetime
    /// counters (ops, heartbeats, failovers) and point-in-time gauges
    /// (pool pressure, zombie population, HA liveness, the model clock).
    /// Called with the model lock held, on the merged scrape copy — the
    /// per-connection telemetry shards never see these names, so gauges
    /// reflect *now* rather than an average of past scrapes.
    pub fn observe_into(&self, reg: &mut zombieland_obs::MetricRegistry) {
        reg.counter_add("zombied.ops_applied", self.ops_applied);
        reg.counter_add("zombied.ha.heartbeats", self.heartbeats);
        reg.counter_add("zombied.ha.failovers", self.ha.failovers() as u64);
        reg.gauge_set(
            "zombied.ha.primary_alive",
            u64::from(self.ha.primary_alive()),
        );
        reg.gauge_set("zombied.pool.free_buffers", self.ha.db().free_buffers());
        reg.gauge_set("zombied.pool.zombies", self.ha.db().zombie_count());
        reg.gauge_set("zombied.pool.lent_bytes", self.lent_bytes.get());
        // One flag gauge per registered backend (the registry is static,
        // and `gauge_set` needs `&'static str` names): exactly one is 1.
        reg.gauge_set(
            "zombied.backend.rdma",
            u64::from(self.backend.key == "rdma"),
        );
        reg.gauge_set("zombied.backend.cxl", u64::from(self.backend.key == "cxl"));
        reg.gauge_set("zombied.managers", self.managers.len() as u64);
        reg.gauge_set("zombied.clock_ns", self.clock.as_nanos());
    }

    /// Registers `n ≤ max_buffers` MRs on `host` (bounded by its unlent
    /// memory) and lends them into the pool.
    fn lend_host(
        &mut self,
        host: ServerId,
        max_buffers: u64,
        zombie: bool,
    ) -> Result<Vec<BufferId>, ErrorFrame> {
        let idx = host.get() as usize;
        if idx >= self.nodes.len() {
            return Err(ErrorFrame::UnknownHost(host));
        }
        let n = max_buffers.min(buffers_within(self.unlent[idx]));
        let node = self.nodes[idx];
        let mrs: Vec<MrKey> = (0..n)
            .map(|_| {
                self.fabric
                    .register(node, BUFF_SIZE)
                    .expect("node attached at boot")
            })
            .collect();
        let ids = self
            .ha
            .apply(|db| db.lend(host, &mrs, zombie))
            .map_err(db_error_frame)?;
        self.unlent[idx] -= BUFF_SIZE * n;
        self.lent_bytes += BUFF_SIZE * n;
        Ok(ids)
    }

    /// Allocates `mem_size` for `user` and grants the buffers to the
    /// user's manager agent.
    fn alloc(
        &mut self,
        user: ServerId,
        mem_size: Bytes,
        guaranteed: bool,
    ) -> Result<Vec<BufferDesc>, ErrorFrame> {
        let nb = buffers_for(mem_size);
        let records = self
            .ha
            .apply(|db| db.allocate(user, nb, guaranteed))
            .map_err(db_error_frame)?;
        let pool = if guaranteed {
            PoolKind::Ext
        } else {
            PoolKind::Swap
        };
        let manager = self
            .managers
            .entry(user)
            .or_insert_with(|| RemoteMemManager::new(user));
        let descs = records
            .iter()
            .map(|r| {
                manager.grant(*r, pool);
                desc_of(r)
            })
            .collect();
        Ok(descs)
    }

    /// Applies one control-plane operation, advancing the model clock and
    /// the HA machinery, and returns the wire response.
    pub fn apply(&mut self, op: &RackOp) -> RackResponse {
        self.ops_applied += 1;
        if self.fail_primary_after == Some(self.ops_applied) {
            self.ha.kill_primary();
            self.primary_crashed = true;
        }
        let decision = op.server_time();
        self.clock += decision;
        if !self.primary_crashed {
            self.ha.heartbeat(self.clock);
            self.heartbeats += 1;
        }
        self.ha.check(self.clock);

        let body = match self.dispatch(op) {
            Ok(body) => body,
            Err(e) => ResponseBody::Error(e),
        };
        RackResponse { decision, body }
    }

    fn dispatch(&mut self, op: &RackOp) -> Result<ResponseBody, ErrorFrame> {
        match op {
            RackOp::GotoZombie { host, buffers } => {
                let ids = self.lend_host(*host, *buffers, true)?;
                Ok(ResponseBody::Lent { buffers: ids })
            }
            RackOp::AsGetFreeMem { host } => {
                let ids = self.lend_host(*host, u64::MAX, false)?;
                Ok(ResponseBody::Lent { buffers: ids })
            }
            RackOp::Reclaim { host, nb_buffers } => {
                let idx = host.get() as usize;
                if idx >= self.nodes.len() {
                    return Err(ErrorFrame::UnknownHost(*host));
                }
                let plan = self
                    .ha
                    .apply(|db| db.reclaim(*host, *nb_buffers))
                    .map_err(db_error_frame)?;
                // Revoke allocated buffers from their users' agents (the
                // US_reclaim leg of the reclaim protocol).
                for &(user, buffer) in &plan.revoked {
                    if let Some(m) = self.managers.get_mut(&user) {
                        let _ = m.revoke_many(&[buffer]);
                    }
                }
                let reclaimed = plan.returned_free.len() + plan.revoked.len();
                self.unlent[idx] += BUFF_SIZE * reclaimed as u64;
                self.lent_bytes -= BUFF_SIZE * reclaimed as u64;
                Ok(ResponseBody::Reclaimed {
                    returned_free: plan.returned_free,
                    revoked: plan.revoked,
                })
            }
            RackOp::UsReclaim { user, buff_ids } => {
                let manager = self
                    .managers
                    .get_mut(user)
                    .ok_or(ErrorFrame::UnknownHost(*user))?;
                let rev = manager.revoke_many(buff_ids).map_err(manager_error_frame)?;
                // The controller's database drops the user's claim.
                let _ = self.ha.apply(|db| db.release(*user, buff_ids));
                Ok(ResponseBody::Revoked {
                    relocated: rev.relocated.len() as u64,
                    fell_back: rev.fell_back.len() as u64,
                })
            }
            RackOp::AllocExt { user, mem_size } => {
                let buffers = self.alloc(*user, *mem_size, true)?;
                Ok(ResponseBody::Granted { buffers })
            }
            RackOp::AllocSwap { user, mem_size } => {
                let buffers = self.alloc(*user, *mem_size, false)?;
                Ok(ResponseBody::Granted { buffers })
            }
            RackOp::GetLruZombie => Ok(ResponseBody::LruZombie {
                host: self.ha.apply(|db| db.get_lru_zombie()),
            }),
        }
    }
}

fn desc_of(r: &BufferRecord) -> BufferDesc {
    BufferDesc {
        id: r.id,
        host: r.host,
        mr_key: r.mr.get(),
        size: r.size,
        zombie: r.kind == BufferKind::Zombie,
    }
}

fn db_error_frame(e: DbError) -> ErrorFrame {
    match e {
        DbError::UnknownHost(h) => ErrorFrame::UnknownHost(h),
        DbError::UnknownBuffer(b) => ErrorFrame::UnknownBuffer(b),
        DbError::AdmissionDenied {
            requested,
            available,
        } => ErrorFrame::AdmissionDenied {
            requested,
            available,
        },
        DbError::NotTheUser(buffer, user) => ErrorFrame::NotTheUser { buffer, user },
    }
}

fn manager_error_frame(e: ManagerError) -> ErrorFrame {
    match e {
        ManagerError::UnknownBuffer(b) => ErrorFrame::UnknownBuffer(b),
        ManagerError::NoRemoteCapacity(_) => ErrorFrame::NoCapacity,
        // Handle-level errors cannot arise from a wire request; classify
        // them as capacity trouble rather than invent a wire variant.
        ManagerError::UnknownHandle(_) | ManagerError::BufferBusy(_) => ErrorFrame::NoCapacity,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> ClusterModel {
        ClusterModel::boot(ModelConfig::new(8, 11))
    }

    #[test]
    fn boot_is_deterministic_and_seeds_zombies() {
        let a = model();
        let b = model();
        assert_eq!(a.initial_zombies(), b.initial_zombies());
        assert_eq!(a.free_buffers(), b.free_buffers());
        assert!(a.initial_zombies() >= 1);
        assert!(a.free_buffers() > 0, "boot must lend something");
    }

    #[test]
    fn seven_ops_answer_with_matching_bodies() {
        let mut m = model();
        let free_before = m.free_buffers();

        let r = m.apply(&RackOp::AllocExt {
            user: ServerId::new(1),
            mem_size: Bytes::mib(128),
        });
        let ResponseBody::Granted { buffers } = &r.body else {
            panic!("alloc_ext answered {r:?}");
        };
        assert_eq!(buffers.len(), 2);
        assert!(buffers.iter().all(|d| d.zombie));
        assert_eq!(m.free_buffers(), free_before - 2);
        let granted: Vec<BufferId> = buffers.iter().map(|d| d.id).collect();

        let r = m.apply(&RackOp::AllocSwap {
            user: ServerId::new(1),
            mem_size: Bytes::mib(64),
        });
        assert!(matches!(&r.body, ResponseBody::Granted { buffers } if buffers.len() == 1));

        let r = m.apply(&RackOp::GetLruZombie);
        let ResponseBody::LruZombie { host: Some(_) } = r.body else {
            panic!("no zombie in a freshly booted rack: {r:?}");
        };

        let r = m.apply(&RackOp::UsReclaim {
            user: ServerId::new(1),
            buff_ids: granted,
        });
        assert!(matches!(r.body, ResponseBody::Revoked { .. }), "{r:?}");

        // Host 7 is never an initial zombie under the even-spread boot
        // (the spread never reaches the last host), so it still has its
        // full lendable budget.
        let r = m.apply(&RackOp::GotoZombie {
            host: ServerId::new(7),
            buffers: 4,
        });
        assert!(matches!(&r.body, ResponseBody::Lent { buffers } if buffers.len() == 4));

        let r = m.apply(&RackOp::AsGetFreeMem {
            host: ServerId::new(7),
        });
        assert!(matches!(r.body, ResponseBody::Lent { .. }), "{r:?}");

        let r = m.apply(&RackOp::Reclaim {
            host: ServerId::new(7),
            nb_buffers: 2,
        });
        let ResponseBody::Reclaimed {
            returned_free,
            revoked,
        } = &r.body
        else {
            panic!("reclaim answered {r:?}");
        };
        assert_eq!(returned_free.len() + revoked.len(), 2);

        // Decision latency is the op's modeled server time, always.
        let op = RackOp::GetLruZombie;
        assert_eq!(m.apply(&op).decision, op.server_time());
    }

    #[test]
    fn stats_overlay_reports_backend_and_lent_bytes() {
        let m = model();
        let mut reg = zombieland_obs::MetricRegistry::default();
        m.observe_into(&mut reg);
        // The default scenario runs the paper's rdma backend.
        assert_eq!(reg.gauge("zombied.backend.rdma").map(|g| g.max), Some(1));
        assert_eq!(reg.gauge("zombied.backend.cxl").map(|g| g.max), Some(0));
        let lent = reg.gauge("zombied.pool.lent_bytes").map(|g| g.max);
        assert!(
            lent.unwrap() > 0,
            "boot lends the zombies' memory: {lent:?}"
        );
        // Reclaiming shrinks the lent-bytes gauge.
        let mut m = model();
        m.apply(&RackOp::Reclaim {
            host: ServerId::new(0),
            nb_buffers: 1,
        });
        let mut after = zombieland_obs::MetricRegistry::default();
        m.observe_into(&mut after);
        assert!(after.gauge("zombied.pool.lent_bytes").unwrap().max < lent.unwrap());
    }

    #[test]
    fn unknown_host_and_admission_errors_are_typed() {
        let mut m = model();
        let r = m.apply(&RackOp::GotoZombie {
            host: ServerId::new(999),
            buffers: 1,
        });
        assert_eq!(
            r.body,
            ResponseBody::Error(ErrorFrame::UnknownHost(ServerId::new(999)))
        );
        let r = m.apply(&RackOp::AllocExt {
            user: ServerId::new(0),
            mem_size: Bytes::gib(100),
        });
        assert!(
            matches!(
                r.body,
                ResponseBody::Error(ErrorFrame::AdmissionDenied { .. })
            ),
            "{r:?}"
        );
    }

    #[test]
    fn primary_crash_fails_over_mid_stream_and_service_continues() {
        let mut m = ClusterModel::boot(ModelConfig {
            fail_primary_after: Some(3),
            ..ModelConfig::new(8, 11)
        });
        let mut bodies = Vec::new();
        for _ in 0..16 {
            bodies.push(m.apply(&RackOp::GetLruZombie).body);
        }
        assert_eq!(m.failovers(), 1, "secondary must have taken over");
        // Every answer, before and after the failover, is well-formed and
        // identical (reads of mirrored state).
        assert!(bodies.iter().all(|b| *b == bodies[0]));

        // Mutations keep working against the promoted secondary.
        let r = m.apply(&RackOp::AllocSwap {
            user: ServerId::new(2),
            mem_size: Bytes::mib(64),
        });
        assert!(matches!(r.body, ResponseBody::Granted { .. }), "{r:?}");
    }
}
