//! End-to-end tests over real sockets: a `Daemon` serving a booted
//! `ClusterModel`, driven by `ZlClient` and the replay harness.

use std::thread::JoinHandle;

use zombieland_core::codec::{ErrorFrame, ResponseBody};
use zombieland_core::protocol::RackOp;
use zombieland_core::ServerId;
use zombieland_daemon::client::ZlClient;
use zombieland_daemon::framing::{read_frame, write_frame};
use zombieland_daemon::model::{ClusterModel, ModelConfig};
use zombieland_daemon::replay::{run_replay, ReplayConfig};
use zombieland_daemon::server::Daemon;
use zombieland_daemon::Endpoint;
use zombieland_mem::buffer::BufferId;
use zombieland_simcore::Bytes;

/// Boots a small daemon on an ephemeral TCP port; returns its endpoint
/// and the serving thread (joined after `zlctl shutdown`).
fn spawn_daemon(cfg: ModelConfig) -> (Endpoint, JoinHandle<()>) {
    let daemon = Daemon::bind(
        &Endpoint::Tcp("127.0.0.1:0".into()),
        ClusterModel::boot(cfg),
    )
    .expect("bind ephemeral port");
    let endpoint = daemon.local_endpoint();
    let handle = std::thread::spawn(move || daemon.run().expect("daemon run"));
    (endpoint, handle)
}

fn shutdown(endpoint: &Endpoint, handle: JoinHandle<()>) {
    let mut c = ZlClient::connect(endpoint).expect("connect for shutdown");
    c.shutdown_server().expect("shutdown ack");
    handle.join().expect("daemon thread");
}

#[test]
fn all_seven_ops_round_trip_over_tcp() {
    let (endpoint, handle) = spawn_daemon(ModelConfig::new(8, 11));
    let mut c = ZlClient::connect(&endpoint).expect("connect");

    let alloc = RackOp::AllocExt {
        user: ServerId::new(1),
        mem_size: Bytes::mib(128),
    };
    let r = c.call(&alloc).expect("alloc_ext");
    assert_eq!(r.decision, alloc.server_time(), "decision is modeled time");
    let ResponseBody::Granted { buffers } = r.body else {
        panic!("alloc_ext answered {:?}", r.body);
    };
    assert_eq!(buffers.len(), 2);
    let ids: Vec<BufferId> = buffers.iter().map(|d| d.id).collect();

    let r = c
        .call(&RackOp::AllocSwap {
            user: ServerId::new(1),
            mem_size: Bytes::mib(64),
        })
        .expect("alloc_swap");
    assert!(matches!(r.body, ResponseBody::Granted { .. }));

    let r = c.call(&RackOp::GetLruZombie).expect("lru");
    assert!(matches!(r.body, ResponseBody::LruZombie { host: Some(_) }));

    let r = c
        .call(&RackOp::UsReclaim {
            user: ServerId::new(1),
            buff_ids: ids,
        })
        .expect("us_reclaim");
    assert!(matches!(r.body, ResponseBody::Revoked { .. }));

    let r = c
        .call(&RackOp::GotoZombie {
            host: ServerId::new(7),
            buffers: 2,
        })
        .expect("goto_zombie");
    assert!(matches!(r.body, ResponseBody::Lent { .. }));

    let r = c
        .call(&RackOp::AsGetFreeMem {
            host: ServerId::new(7),
        })
        .expect("as_get_free_mem");
    assert!(matches!(r.body, ResponseBody::Lent { .. }));

    let r = c
        .call(&RackOp::Reclaim {
            host: ServerId::new(7),
            nb_buffers: 1,
        })
        .expect("gs_reclaim");
    assert!(matches!(r.body, ResponseBody::Reclaimed { .. }));

    shutdown(&endpoint, handle);
}

#[cfg(unix)]
#[test]
fn unix_socket_serves_and_cleans_up() {
    let path = std::env::temp_dir().join(format!("zombied-test-{}.sock", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let daemon = Daemon::bind(
        &Endpoint::Unix(path.clone()),
        ClusterModel::boot(ModelConfig::new(4, 7)),
    )
    .expect("bind unix socket");
    let endpoint = daemon.local_endpoint();
    let handle = std::thread::spawn(move || daemon.run().expect("daemon run"));

    let mut c = ZlClient::connect(&endpoint).expect("connect over unix socket");
    let r = c.call(&RackOp::GetLruZombie).expect("lru over unix");
    assert!(matches!(r.body, ResponseBody::LruZombie { .. }));

    shutdown(&endpoint, handle);
    assert!(!path.exists(), "socket file removed on shutdown");
}

#[test]
fn malformed_frame_gets_a_typed_bad_request_and_connection_survives() {
    let (endpoint, handle) = spawn_daemon(ModelConfig::new(4, 3));
    let mut c = ZlClient::connect(&endpoint).expect("connect");

    // Raw garbage payload in a well-formed frame: the server answers
    // with a BadRequest error frame instead of dropping the connection.
    let Endpoint::Tcp(addr) = &endpoint else {
        unreachable!()
    };
    let mut raw = std::net::TcpStream::connect(addr.as_str()).expect("raw connect");
    write_frame(&mut raw, &[0xEE, 0xEE, 0xEE]).expect("send garbage");
    let payload = read_frame(&mut raw).expect("read answer").expect("frame");
    let resp = zombieland_core::codec::decode_response(&payload).expect("typed answer");
    assert_eq!(
        resp.body,
        ResponseBody::Error(ErrorFrame::BadRequest { code: 2 }),
        "unknown opcode class"
    );
    // The same connection still serves well-formed requests.
    write_frame(
        &mut raw,
        &zombieland_core::codec::encode(&RackOp::GetLruZombie),
    )
    .expect("send valid");
    let payload = read_frame(&mut raw).expect("read answer").expect("frame");
    let resp = zombieland_core::codec::decode_response(&payload).expect("decode");
    assert!(matches!(resp.body, ResponseBody::LruZombie { .. }));
    drop(raw);

    // Typed state errors come back over the socket too.
    let r = c
        .call(&RackOp::GotoZombie {
            host: ServerId::new(999),
            buffers: 1,
        })
        .expect("unknown host call");
    assert_eq!(
        r.body,
        ResponseBody::Error(ErrorFrame::UnknownHost(ServerId::new(999)))
    );

    shutdown(&endpoint, handle);
}

#[test]
fn failover_mid_stream_is_invisible_to_the_client() {
    let (endpoint, handle) = spawn_daemon(ModelConfig {
        fail_primary_after: Some(5),
        ..ModelConfig::new(8, 11)
    });
    let mut c = ZlClient::connect(&endpoint).expect("connect");
    // Drive well past the injected crash: every answer stays well-formed.
    for _ in 0..32 {
        let r = c.call(&RackOp::GetLruZombie).expect("call across failover");
        assert!(matches!(r.body, ResponseBody::LruZombie { .. }));
    }
    shutdown(&endpoint, handle);
}

/// The STATS admin frame: per-op counters account for exactly the ops
/// served, gauges reflect the model, and consecutive scrapes are
/// monotone on every counter.
#[test]
fn stats_scrape_counts_ops_exactly_and_is_monotone() {
    use zombieland_obs::telemetry::parse_exposition;

    let (endpoint, handle) = spawn_daemon(ModelConfig::new(8, 11));
    let mut c = ZlClient::connect(&endpoint).expect("connect");

    // A scrape before any op: valid exposition, zero op counters, live
    // model gauges already present.
    let first = parse_exposition(&c.stats().expect("first scrape")).expect("valid exposition");
    assert_eq!(first.counter_sum("zombied_op_"), 0);
    assert_eq!(first.counters["zombied_ops_applied"], 0);
    assert!(first.gauges["zombied_pool_free_buffers"] > 0.0);
    assert!(first.gauges["zombied_pool_zombies"] >= 1.0);
    assert_eq!(first.gauges["zombied_ha_primary_alive"], 1.0);

    for _ in 0..5 {
        let r = c.call(&RackOp::GetLruZombie).expect("op");
        assert!(matches!(r.body, ResponseBody::LruZombie { .. }));
    }
    let r = c.call(&RackOp::GotoZombie {
        host: ServerId::new(999),
        buffers: 1,
    });
    assert!(matches!(
        r.expect("op").body,
        ResponseBody::Error(ErrorFrame::UnknownHost(_))
    ));

    let second = parse_exposition(&c.stats().expect("second scrape")).expect("valid exposition");
    assert_eq!(second.counter_sum("zombied_op_"), 6, "5 reads + 1 error op");
    assert_eq!(second.counters["zombied_op_gs_get_lru_zombie"], 5);
    assert_eq!(second.counters["zombied_op_gs_goto_zombie"], 1);
    assert_eq!(second.counters["zombied_resp_lru_zombie"], 5);
    assert_eq!(second.counters["zombied_resp_error"], 1);
    assert_eq!(second.counters["zombied_err_unknown_host"], 1);
    assert_eq!(second.counters["zombied_ops_applied"], 6);
    assert_eq!(second.histograms["zombied_decision_ns"].count, 6);
    assert!(second.histograms["zombied_decision_ns"]
        .quantile(0.5)
        .is_some());

    // Stats frames are admin, not ops: a third scrape moves only the
    // scrape counter, and every counter is monotone across scrapes.
    let third = parse_exposition(&c.stats().expect("third scrape")).expect("valid exposition");
    assert_eq!(third.counter_sum("zombied_op_"), 6);
    assert_eq!(third.counters["zombied_stats_scrapes"], 3);
    for (name, &v) in &second.counters {
        assert!(
            third.counters.get(name).copied().unwrap_or(0) >= v,
            "counter {name} went backwards"
        );
    }

    shutdown(&endpoint, handle);
}

/// Two fresh same-seed daemons, two same-seed replays: the deterministic
/// metric registries must serialize identically, byte for byte.
#[test]
fn replay_metrics_are_byte_identical_across_daemons() {
    let mut exports = Vec::new();
    for _ in 0..2 {
        let (endpoint, handle) = spawn_daemon(ModelConfig::new(8, 11));
        let cfg = ReplayConfig {
            endpoint: endpoint.clone(),
            requests: 2_000,
            clients: 3,
            seed: 42,
            window: 16,
            servers: 8,
        };
        let (summary, run) = run_replay(&cfg).expect("replay");
        assert_eq!(summary.requests, 2_000);
        assert!(summary.p50_decision_ns.is_some());
        assert!(summary.p99_decision_ns.unwrap() >= summary.p50_decision_ns.unwrap());
        assert_eq!(run.metrics.counter("replay.requests"), 2_000);
        exports.push(run.metrics.to_json().pretty());
        shutdown(&endpoint, handle);
    }
    assert_eq!(exports[0], exports[1], "same seed, same bytes");
}
