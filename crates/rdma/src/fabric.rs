//! The fabric: nodes, registered regions and verb execution.

use core::fmt;

use zombieland_simcore::{Bytes, FastMap, SimDuration};

use crate::mr::{MemoryRegion, MrAccess, MrKey};
use crate::node::{Availability, NodeId, TrafficStats};

/// Timing profile of one fabric hop.
///
/// Defaults are calibrated to the paper's testbed: Mellanox ConnectX-3
/// HCAs on an FDR (56 Gb/s) InfiniBand switch. One-sided verbs on that
/// hardware complete in 1–2 µs for small payloads and stream large ones at
/// roughly 6 GB/s; CPU-mediated SEND/RECV costs more because the remote
/// side must post receives and get scheduled.
#[derive(Clone, Copy, Debug)]
pub struct LinkProfile {
    /// Base latency of a one-sided READ (includes the response flight).
    pub read_base: SimDuration,
    /// Base latency of a one-sided WRITE.
    pub write_base: SimDuration,
    /// Base latency of a two-sided SEND (remote CPU involvement).
    pub send_base: SimDuration,
    /// Streaming throughput in bytes per second.
    pub bandwidth_bps: f64,
}

impl Default for LinkProfile {
    fn default() -> Self {
        LinkProfile {
            read_base: SimDuration::from_nanos(1_600),
            write_base: SimDuration::from_nanos(1_100),
            send_base: SimDuration::from_nanos(3_500),
            bandwidth_bps: 6.0e9,
        }
    }
}

impl LinkProfile {
    /// The paper's testbed: ConnectX-3 on FDR (56 Gb/s) InfiniBand.
    pub fn fdr() -> Self {
        LinkProfile::default()
    }

    /// A newer EDR (100 Gb/s) InfiniBand generation: slightly lower base
    /// latency, ~11 GB/s streaming.
    pub fn edr() -> Self {
        LinkProfile {
            read_base: SimDuration::from_nanos(1_300),
            write_base: SimDuration::from_nanos(900),
            send_base: SimDuration::from_nanos(3_000),
            bandwidth_bps: 11.0e9,
        }
    }

    /// RoCE over commodity 10 GbE: microseconds more base latency and an
    /// order of magnitude less bandwidth — the "what if the rack had no
    /// InfiniBand" question Table 2's conclusions depend on.
    pub fn roce_10g() -> Self {
        LinkProfile {
            read_base: SimDuration::from_micros(8),
            write_base: SimDuration::from_micros(6),
            send_base: SimDuration::from_micros(15),
            bandwidth_bps: 1.1e9,
        }
    }

    /// Time to move `len` payload bytes once the verb is on the wire.
    fn serialize(&self, len: Bytes) -> SimDuration {
        SimDuration::from_secs_f64(len.get() as f64 / self.bandwidth_bps)
    }

    /// Completion time of a one-sided READ of `len` bytes.
    pub fn read_time(&self, len: Bytes) -> SimDuration {
        self.read_base + self.serialize(len)
    }

    /// Completion time of a one-sided WRITE of `len` bytes.
    pub fn write_time(&self, len: Bytes) -> SimDuration {
        self.write_base + self.serialize(len)
    }

    /// Completion time of a two-sided SEND of `len` bytes.
    pub fn send_time(&self, len: Bytes) -> SimDuration {
        self.send_base + self.serialize(len)
    }
}

/// Errors surfaced by fabric verbs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FabricError {
    /// The node id is not attached to this fabric.
    UnknownNode(NodeId),
    /// The memory-region key is not registered.
    UnknownMr(MrKey),
    /// The target cannot serve this verb in its current availability —
    /// e.g. SEND to a zombie, or any verb to a node that is down.
    Unreachable {
        /// The unreachable target.
        node: NodeId,
        /// Whether the verb needed the remote CPU (two-sided).
        needs_cpu: bool,
    },
    /// The access fell outside the registered region.
    OutOfBounds(MrKey),
    /// A remote write to a read-only registration (rkey permission
    /// violation).
    AccessDenied(MrKey),
    /// The initiating node is itself not in a state that can issue verbs.
    InitiatorSuspended(NodeId),
}

impl fmt::Display for FabricError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FabricError::UnknownNode(n) => write!(f, "{n:?} not attached to fabric"),
            FabricError::UnknownMr(k) => write!(f, "{k:?} not registered"),
            FabricError::Unreachable { node, needs_cpu } => {
                if *needs_cpu {
                    write!(f, "{node:?} cannot serve CPU-mediated verbs")
                } else {
                    write!(f, "{node:?} memory unreachable")
                }
            }
            FabricError::OutOfBounds(k) => write!(f, "access outside {k:?}"),
            FabricError::AccessDenied(k) => write!(f, "remote write denied on {k:?}"),
            FabricError::InitiatorSuspended(n) => {
                write!(f, "{n:?} is suspended and cannot initiate verbs")
            }
        }
    }
}

impl std::error::Error for FabricError {}

struct NodeState {
    availability: Availability,
    stats: TrafficStats,
}

/// The simulated RDMA interconnect of one rack.
///
/// # Examples
///
/// ```
/// use zombieland_rdma::{Availability, Fabric};
/// use zombieland_simcore::Bytes;
///
/// let mut fabric = Fabric::new();
/// let user = fabric.attach();
/// let zombie = fabric.attach();
/// let mr = fabric.register(zombie, Bytes::mib(64)).unwrap();
///
/// // The zombie suspends but keeps serving memory.
/// fabric.set_availability(zombie, Availability::MemoryOnly);
/// let took = fabric.write(user, mr, Bytes::ZERO, b"hot page").unwrap();
/// assert!(took.as_nanos() > 0);
///
/// let mut buf = [0u8; 8];
/// fabric.read(user, mr, Bytes::ZERO, &mut buf).unwrap();
/// assert_eq!(&buf, b"hot page");
/// ```
pub struct Fabric {
    nodes: Vec<NodeState>,
    // Hit on every verb (several times per page fault); deterministic
    // fast hash, never iterated.
    regions: FastMap<MrKey, MemoryRegion>,
    next_mr: u64,
    profile: LinkProfile,
}

impl Default for Fabric {
    fn default() -> Self {
        Self::new()
    }
}

impl Fabric {
    /// Creates an empty fabric with the default FDR-calibrated profile.
    pub fn new() -> Self {
        Fabric::with_profile(LinkProfile::default())
    }

    /// Creates an empty fabric with a custom timing profile.
    pub fn with_profile(profile: LinkProfile) -> Self {
        Fabric {
            nodes: Vec::new(),
            regions: FastMap::default(),
            next_mr: 0,
            profile,
        }
    }

    /// The timing profile in force.
    pub fn profile(&self) -> &LinkProfile {
        &self.profile
    }

    /// Attaches a new node, fully available.
    pub fn attach(&mut self) -> NodeId {
        let id = NodeId::new(self.nodes.len() as u32);
        self.nodes.push(NodeState {
            availability: Availability::Full,
            stats: TrafficStats::default(),
        });
        id
    }

    /// Number of attached nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    fn state(&self, node: NodeId) -> Result<&NodeState, FabricError> {
        self.nodes
            .get(node.get() as usize)
            .ok_or(FabricError::UnknownNode(node))
    }

    fn state_mut(&mut self, node: NodeId) -> Result<&mut NodeState, FabricError> {
        self.nodes
            .get_mut(node.get() as usize)
            .ok_or(FabricError::UnknownNode(node))
    }

    /// Updates a node's availability (called by the platform layer on
    /// every ACPI transition).
    pub fn set_availability(&mut self, node: NodeId, availability: Availability) {
        if let Ok(s) = self.state_mut(node) {
            s.availability = availability;
        }
    }

    /// Reads a node's availability.
    pub fn availability(&self, node: NodeId) -> Result<Availability, FabricError> {
        Ok(self.state(node)?.availability)
    }

    /// Traffic counters of a node.
    pub fn stats(&self, node: NodeId) -> Result<TrafficStats, FabricError> {
        Ok(self.state(node)?.stats)
    }

    /// Registers `len` bytes of `owner`'s memory (remote read+write) and
    /// returns its key.
    ///
    /// Registration requires the owner's CPU (it pins pages and programs
    /// the NIC), so the owner must be `Full`.
    pub fn register(&mut self, owner: NodeId, len: Bytes) -> Result<MrKey, FabricError> {
        self.register_with_access(owner, len, MrAccess::ReadWrite)
    }

    /// Registers with explicit remote-access rights (the rkey permission
    /// bits): lend a buffer read-only and no peer can scribble on it.
    pub fn register_with_access(
        &mut self,
        owner: NodeId,
        len: Bytes,
        access: MrAccess,
    ) -> Result<MrKey, FabricError> {
        let st = self.state(owner)?;
        if !st.availability.serves_cpu() {
            return Err(FabricError::Unreachable {
                node: owner,
                needs_cpu: true,
            });
        }
        let key = MrKey::new(self.next_mr);
        self.next_mr += 1;
        self.regions
            .insert(key, MemoryRegion::with_access(owner, len, access));
        Ok(key)
    }

    /// Deregisters a region. The owner must be `Full` (deregistration is a
    /// local CPU operation); keys of vanished regions simply error.
    pub fn deregister(&mut self, key: MrKey) -> Result<(), FabricError> {
        let owner = self
            .regions
            .get(&key)
            .ok_or(FabricError::UnknownMr(key))?
            .node();
        if !self.state(owner)?.availability.serves_cpu() {
            return Err(FabricError::Unreachable {
                node: owner,
                needs_cpu: true,
            });
        }
        self.regions.remove(&key);
        Ok(())
    }

    /// Looks up the node owning a region.
    pub fn mr_owner(&self, key: MrKey) -> Result<NodeId, FabricError> {
        Ok(self
            .regions
            .get(&key)
            .ok_or(FabricError::UnknownMr(key))?
            .node())
    }

    /// Whether one-sided verbs can currently reach the region — its
    /// owner's memory is served (`Full` or zombie `MemoryOnly`). A pure
    /// probe: no accounting, no observability. Batching layers use it to
    /// decide upfront whether a staged read can ride a posted batch or
    /// must take the per-page fallback path.
    pub fn mr_reachable(&self, key: MrKey) -> Result<bool, FabricError> {
        let region = self.regions.get(&key).ok_or(FabricError::UnknownMr(key))?;
        Ok(self.state(region.node())?.availability.serves_memory())
    }

    fn checked_target(
        &self,
        initiator: NodeId,
        key: MrKey,
        offset: Bytes,
        len: Bytes,
        needs_cpu: bool,
    ) -> Result<NodeId, FabricError> {
        self.checked_access(initiator, key, offset, len, needs_cpu, false)
    }

    fn checked_write_target(
        &self,
        initiator: NodeId,
        key: MrKey,
        offset: Bytes,
        len: Bytes,
    ) -> Result<NodeId, FabricError> {
        self.checked_access(initiator, key, offset, len, false, true)
    }

    #[allow(clippy::too_many_arguments)]
    fn checked_access(
        &self,
        initiator: NodeId,
        key: MrKey,
        offset: Bytes,
        len: Bytes,
        needs_cpu: bool,
        write: bool,
    ) -> Result<NodeId, FabricError> {
        if !self.state(initiator)?.availability.serves_cpu() {
            return Err(FabricError::InitiatorSuspended(initiator));
        }
        let region = self.regions.get(&key).ok_or(FabricError::UnknownMr(key))?;
        let target = region.node();
        let avail = self.state(target)?.availability;
        let ok = if needs_cpu {
            avail.serves_cpu()
        } else {
            avail.serves_memory()
        };
        if !ok {
            return Err(FabricError::Unreachable {
                node: target,
                needs_cpu,
            });
        }
        if !region.in_bounds(offset, len) {
            return Err(FabricError::OutOfBounds(key));
        }
        if write && !region.access().allows_write() {
            return Err(FabricError::AccessDenied(key));
        }
        Ok(target)
    }

    /// Records one completed verb on the current observability
    /// collector (no-op when none is installed).
    fn observe_verb(kind: &'static str, t: SimDuration) -> SimDuration {
        zombieland_obs::sink::counter_add(kind, 1);
        zombieland_obs::sink::hist_record("rdma.fabric_ns", t.as_nanos());
        t
    }

    fn account(&mut self, initiator: NodeId, target: NodeId, len: Bytes, read: bool) {
        let t = &mut self.nodes[target.get() as usize].stats;
        if read {
            t.inbound_reads += 1;
        } else {
            t.inbound_writes += 1;
        }
        t.inbound_bytes += len;
        let i = &mut self.nodes[initiator.get() as usize].stats;
        i.outbound_ops += 1;
        i.outbound_bytes += len;
    }

    /// One-sided RDMA READ: pulls `dst.len()` bytes from `(key, offset)`
    /// into `dst`. Works against `Full` and `MemoryOnly` (zombie) targets.
    pub fn read(
        &mut self,
        initiator: NodeId,
        key: MrKey,
        offset: Bytes,
        dst: &mut [u8],
    ) -> Result<SimDuration, FabricError> {
        let len = Bytes::new(dst.len() as u64);
        let target = self.checked_target(initiator, key, offset, len, false)?;
        self.regions[&key].read_bytes(offset, dst);
        self.account(initiator, target, len, true);
        Ok(Self::observe_verb(
            "rdma.reads",
            self.profile.read_time(len),
        ))
    }

    /// One-sided READ that only models timing (no data movement). Used by
    /// large-scale simulations where page contents are irrelevant.
    pub fn read_timed(
        &mut self,
        initiator: NodeId,
        key: MrKey,
        offset: Bytes,
        len: Bytes,
    ) -> Result<SimDuration, FabricError> {
        let target = self.checked_target(initiator, key, offset, len, false)?;
        self.account(initiator, target, len, true);
        Ok(Self::observe_verb(
            "rdma.reads",
            self.profile.read_time(len),
        ))
    }

    /// A batch of one-sided READs posted back-to-back on one queue pair:
    /// the NIC pipelines them, so the batch completes in one base latency
    /// plus the serialized payload time — much cheaper than issuing the
    /// reads one by one (the basis of swap readahead).
    ///
    /// Timing only; availability and bounds are checked per element, and
    /// the whole batch fails if any element would.
    pub fn read_batch_timed(
        &mut self,
        initiator: NodeId,
        reads: &[(MrKey, Bytes, Bytes)],
    ) -> Result<SimDuration, FabricError> {
        let mut payload = Bytes::ZERO;
        for &(key, offset, len) in reads {
            let target = self.checked_target(initiator, key, offset, len, false)?;
            self.account(initiator, target, len, true);
            payload += len;
        }
        if reads.is_empty() {
            return Ok(SimDuration::ZERO);
        }
        zombieland_obs::sink::counter_add("rdma.reads", reads.len() as u64);
        Ok(Self::observe_verb(
            "rdma.read_batches",
            self.profile.read_time(payload),
        ))
    }

    /// One-sided RDMA WRITE: pushes `src` to `(key, offset)`. Works against
    /// `Full` and `MemoryOnly` (zombie) targets.
    pub fn write(
        &mut self,
        initiator: NodeId,
        key: MrKey,
        offset: Bytes,
        src: &[u8],
    ) -> Result<SimDuration, FabricError> {
        let len = Bytes::new(src.len() as u64);
        let target = self.checked_write_target(initiator, key, offset, len)?;
        self.regions
            .get_mut(&key)
            .expect("checked above")
            .write_bytes(offset, src);
        self.account(initiator, target, len, false);
        Ok(Self::observe_verb(
            "rdma.writes",
            self.profile.write_time(len),
        ))
    }

    /// One-sided WRITE that only models timing.
    pub fn write_timed(
        &mut self,
        initiator: NodeId,
        key: MrKey,
        offset: Bytes,
        len: Bytes,
    ) -> Result<SimDuration, FabricError> {
        let target = self.checked_write_target(initiator, key, offset, len)?;
        self.account(initiator, target, len, false);
        Ok(Self::observe_verb(
            "rdma.writes",
            self.profile.write_time(len),
        ))
    }

    /// Two-sided SEND: requires the *target's CPU*. This is what makes a
    /// zombie "brain-dead": the data in its RAM is reachable, the node
    /// itself is not.
    pub fn send(
        &mut self,
        initiator: NodeId,
        target: NodeId,
        len: Bytes,
    ) -> Result<SimDuration, FabricError> {
        if !self.state(initiator)?.availability.serves_cpu() {
            return Err(FabricError::InitiatorSuspended(initiator));
        }
        let avail = self.state(target)?.availability;
        if !avail.serves_cpu() {
            return Err(FabricError::Unreachable {
                node: target,
                needs_cpu: true,
            });
        }
        self.account(initiator, target, len, false);
        Ok(Self::observe_verb(
            "rdma.sends",
            self.profile.send_time(len),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn three_nodes() -> (Fabric, NodeId, NodeId, NodeId) {
        let mut f = Fabric::new();
        let a = f.attach();
        let b = f.attach();
        let c = f.attach();
        (f, a, b, c)
    }

    #[test]
    fn one_sided_works_against_zombie() {
        let (mut f, user, zombie, _) = three_nodes();
        let mr = f.register(zombie, Bytes::mib(1)).unwrap();
        f.set_availability(zombie, Availability::MemoryOnly);

        f.write(user, mr, Bytes::new(8), b"zombie").unwrap();
        let mut out = [0u8; 6];
        f.read(user, mr, Bytes::new(8), &mut out).unwrap();
        assert_eq!(&out, b"zombie");
    }

    #[test]
    fn two_sided_fails_against_zombie() {
        let (mut f, user, zombie, _) = three_nodes();
        f.set_availability(zombie, Availability::MemoryOnly);
        assert_eq!(
            f.send(user, zombie, Bytes::kib(1)),
            Err(FabricError::Unreachable {
                node: zombie,
                needs_cpu: true
            })
        );
    }

    #[test]
    fn nothing_works_against_down_node() {
        let (mut f, user, down, _) = three_nodes();
        let mr = f.register(down, Bytes::mib(1)).unwrap();
        f.set_availability(down, Availability::Down);
        let mut buf = [0u8; 4];
        assert!(matches!(
            f.read(user, mr, Bytes::ZERO, &mut buf),
            Err(FabricError::Unreachable {
                needs_cpu: false,
                ..
            })
        ));
        assert!(f.send(user, down, Bytes::new(1)).is_err());
    }

    #[test]
    fn suspended_initiator_cannot_issue() {
        let (mut f, user, server, _) = three_nodes();
        let mr = f.register(server, Bytes::mib(1)).unwrap();
        f.set_availability(user, Availability::MemoryOnly);
        assert_eq!(
            f.write_timed(user, mr, Bytes::ZERO, Bytes::kib(4)),
            Err(FabricError::InitiatorSuspended(user))
        );
    }

    #[test]
    fn registration_needs_cpu() {
        let (mut f, _, zombie, _) = three_nodes();
        f.set_availability(zombie, Availability::MemoryOnly);
        assert!(f.register(zombie, Bytes::mib(1)).is_err());
    }

    #[test]
    fn bounds_enforced() {
        let (mut f, user, server, _) = three_nodes();
        let mr = f.register(server, Bytes::new(16)).unwrap();
        let mut buf = [0u8; 32];
        assert_eq!(
            f.read(user, mr, Bytes::ZERO, &mut buf),
            Err(FabricError::OutOfBounds(mr))
        );
    }

    #[test]
    fn read_only_regions_reject_remote_writes() {
        let (mut f, user, server, _) = three_nodes();
        let mr = f
            .register_with_access(server, Bytes::mib(1), MrAccess::ReadOnly)
            .unwrap();
        assert_eq!(
            f.write(user, mr, Bytes::ZERO, b"nope"),
            Err(FabricError::AccessDenied(mr))
        );
        assert_eq!(
            f.write_timed(user, mr, Bytes::ZERO, Bytes::kib(4)),
            Err(FabricError::AccessDenied(mr))
        );
        // Reads still work.
        let mut buf = [0u8; 4];
        assert!(f.read(user, mr, Bytes::ZERO, &mut buf).is_ok());
    }

    #[test]
    fn unknown_handles() {
        let (mut f, user, _, _) = three_nodes();
        let bogus_mr = MrKey::new(999);
        assert_eq!(
            f.read_timed(user, bogus_mr, Bytes::ZERO, Bytes::new(1)),
            Err(FabricError::UnknownMr(bogus_mr))
        );
        assert!(f.availability(NodeId::new(42)).is_err());
    }

    #[test]
    fn timing_scales_with_size() {
        let (mut f, user, server, _) = three_nodes();
        let mr = f.register(server, Bytes::mib(64)).unwrap();
        let small = f.read_timed(user, mr, Bytes::ZERO, Bytes::kib(4)).unwrap();
        let large = f.read_timed(user, mr, Bytes::ZERO, Bytes::mib(4)).unwrap();
        assert!(large > small * 100, "large {large}, small {small}");
        // A 4 KiB page read lands in the low-microsecond range.
        assert!(small.as_micros() >= 1 && small.as_micros() < 10, "{small}");
    }

    #[test]
    fn batched_reads_pipeline() {
        let (mut f, user, server, _) = three_nodes();
        let mr = f.register(server, Bytes::mib(64)).unwrap();
        let page = Bytes::kib(4);
        let batch: Vec<(MrKey, Bytes, Bytes)> =
            (0..8).map(|i| (mr, Bytes::new(i * 4096), page)).collect();
        let batched = f.read_batch_timed(user, &batch).unwrap();
        let mut serial = SimDuration::ZERO;
        for _ in 0..8 {
            serial += f.read_timed(user, mr, Bytes::ZERO, page).unwrap();
        }
        // One base latency instead of eight.
        assert!(batched < serial / 2, "{batched} vs {serial}");
        assert!(batched > f.profile().read_time(page));
        // Empty batch is free.
        assert_eq!(f.read_batch_timed(user, &[]).unwrap(), SimDuration::ZERO);
    }

    #[test]
    fn batch_fails_atomically_on_bad_element() {
        let (mut f, user, server, _) = three_nodes();
        let mr = f.register(server, Bytes::new(4096)).unwrap();
        let batch = [
            (mr, Bytes::ZERO, Bytes::kib(4)),
            (mr, Bytes::kib(4), Bytes::kib(4)), // Out of bounds.
        ];
        assert_eq!(
            f.read_batch_timed(user, &batch),
            Err(FabricError::OutOfBounds(mr))
        );
    }

    #[test]
    fn write_cheaper_than_read_cheaper_than_send() {
        let p = LinkProfile::default();
        let len = Bytes::kib(4);
        assert!(p.write_time(len) < p.read_time(len));
        assert!(p.read_time(len) < p.send_time(len));
    }

    #[test]
    fn traffic_accounting() {
        let (mut f, user, server, _) = three_nodes();
        let mr = f.register(server, Bytes::mib(1)).unwrap();
        f.write_timed(user, mr, Bytes::ZERO, Bytes::kib(4)).unwrap();
        f.read_timed(user, mr, Bytes::ZERO, Bytes::kib(4)).unwrap();
        let s = f.stats(server).unwrap();
        assert_eq!(s.inbound_writes, 1);
        assert_eq!(s.inbound_reads, 1);
        assert_eq!(s.inbound_bytes, Bytes::kib(8));
        let u = f.stats(user).unwrap();
        assert_eq!(u.outbound_ops, 2);
        assert_eq!(u.outbound_bytes, Bytes::kib(8));
    }

    #[test]
    fn deregister_frees_key() {
        let (mut f, user, server, _) = three_nodes();
        let mr = f.register(server, Bytes::mib(1)).unwrap();
        f.deregister(mr).unwrap();
        assert_eq!(
            f.read_timed(user, mr, Bytes::ZERO, Bytes::new(1)),
            Err(FabricError::UnknownMr(mr))
        );
    }
}
