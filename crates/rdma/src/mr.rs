//! Registered memory regions.

use core::fmt;

use zombieland_simcore::{Bytes, PAGE_SIZE};

use crate::node::NodeId;

/// Key identifying a registered memory region on the fabric (the analogue
/// of an `rkey`).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MrKey(u64);

impl MrKey {
    pub(crate) const fn new(id: u64) -> Self {
        MrKey(id)
    }

    /// The raw key.
    pub const fn get(self) -> u64 {
        self.0
    }
}

impl fmt::Debug for MrKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "mr:{}", self.0)
    }
}

/// Access rights a registration grants to remote peers (the rkey's
/// permission bits).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MrAccess {
    /// Remote READ only.
    ReadOnly,
    /// Remote READ and WRITE.
    ReadWrite,
}

impl MrAccess {
    /// Whether remote writes are permitted.
    pub fn allows_write(self) -> bool {
        matches!(self, MrAccess::ReadWrite)
    }
}

/// Sentinel in the page index for "never written".
const EMPTY: u32 = u32::MAX;

/// A registered region of a node's physical memory.
///
/// Backing bytes are stored sparsely per page: registering a 64 MiB buffer
/// costs nothing until someone writes to it, which lets large-scale
/// simulations register thousands of buffers while correctness tests can
/// still round-trip real data.
///
/// Materialized pages live in one growing arena (page-sized slots carved
/// off its tail) addressed through a flat page→slot index, so the write
/// path never boxes a fresh 4 KiB allocation per touched page and reads
/// walk no hash buckets. The index itself is allocated lazily on the
/// first write — an untouched registration still costs nothing.
#[derive(Debug)]
pub struct MemoryRegion {
    node: NodeId,
    len: Bytes,
    access: MrAccess,
    /// Page number → slot number in `arena`, `EMPTY` when unwritten.
    /// Empty vec until the first write materializes a page.
    index: Vec<u32>,
    /// Page-sized slots, slot `s` at byte range `[s * PAGE_SIZE, ..)`.
    arena: Vec<u8>,
}

impl MemoryRegion {
    /// Creates a read-write region of `len` bytes on `node`, zero-filled.
    pub fn new(node: NodeId, len: Bytes) -> Self {
        Self::with_access(node, len, MrAccess::ReadWrite)
    }

    /// Creates a region with explicit remote-access rights.
    pub fn with_access(node: NodeId, len: Bytes, access: MrAccess) -> Self {
        MemoryRegion {
            node,
            len,
            access,
            index: Vec::new(),
            arena: Vec::new(),
        }
    }

    /// The remote-access rights of this registration.
    pub fn access(&self) -> MrAccess {
        self.access
    }

    /// The node whose memory backs this region.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Region length.
    pub fn len(&self) -> Bytes {
        self.len
    }

    /// Whether the region is zero-length.
    pub fn is_empty(&self) -> bool {
        self.len == Bytes::ZERO
    }

    /// Whether `[offset, offset + len)` is inside the region.
    pub fn in_bounds(&self, offset: Bytes, len: Bytes) -> bool {
        offset
            .get()
            .checked_add(len.get())
            .is_some_and(|end| end <= self.len.get())
    }

    /// Copies `src` into the region at `offset`. Bounds must have been
    /// checked by the caller (the fabric does).
    pub(crate) fn write_bytes(&mut self, offset: Bytes, src: &[u8]) {
        let mut pos = offset.get();
        let mut remaining = src;
        while !remaining.is_empty() {
            let page = pos / PAGE_SIZE;
            let in_page = (pos % PAGE_SIZE) as usize;
            let take = remaining.len().min(PAGE_SIZE as usize - in_page);
            let start = self.slot_base(page) + in_page;
            self.arena[start..start + take].copy_from_slice(&remaining[..take]);
            remaining = &remaining[take..];
            pos += take as u64;
        }
    }

    /// The arena byte offset of `page`'s slot, materializing it (and the
    /// index, on the very first write) as needed.
    fn slot_base(&mut self, page: u64) -> usize {
        if self.index.is_empty() {
            self.index = vec![EMPTY; self.len.get().div_ceil(PAGE_SIZE) as usize];
        }
        let entry = &mut self.index[page as usize];
        if *entry == EMPTY {
            *entry = (self.arena.len() / PAGE_SIZE as usize) as u32;
            self.arena.resize(self.arena.len() + PAGE_SIZE as usize, 0);
        }
        *entry as usize * PAGE_SIZE as usize
    }

    /// Copies `dst.len()` bytes out of the region at `offset`. Unwritten
    /// pages read as zeros.
    pub(crate) fn read_bytes(&self, offset: Bytes, dst: &mut [u8]) {
        let mut pos = offset.get();
        let mut written = 0usize;
        while written < dst.len() {
            let page = pos / PAGE_SIZE;
            let in_page = (pos % PAGE_SIZE) as usize;
            let take = (dst.len() - written).min(PAGE_SIZE as usize - in_page);
            match self.index.get(page as usize).copied() {
                Some(slot) if slot != EMPTY => {
                    let start = slot as usize * PAGE_SIZE as usize + in_page;
                    dst[written..written + take].copy_from_slice(&self.arena[start..start + take])
                }
                _ => dst[written..written + take].fill(0),
            }
            written += take;
            pos += take as u64;
        }
    }

    /// Number of pages that have been materialized by writes (test/debug
    /// aid).
    pub fn resident_pages(&self) -> usize {
        self.arena.len() / PAGE_SIZE as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparse_backing_round_trip() {
        let mut mr = MemoryRegion::new(NodeId::new(0), Bytes::mib(64));
        assert_eq!(mr.resident_pages(), 0);

        // Write spanning a page boundary.
        let data: Vec<u8> = (0..8192).map(|i| (i % 251) as u8).collect();
        mr.write_bytes(Bytes::new(4000), &data);
        assert_eq!(mr.resident_pages(), 3);

        let mut out = vec![0u8; 8192];
        mr.read_bytes(Bytes::new(4000), &mut out);
        assert_eq!(out, data);
    }

    #[test]
    fn unwritten_reads_as_zero() {
        let mr = MemoryRegion::new(NodeId::new(0), Bytes::mib(1));
        let mut out = vec![0xAAu8; 100];
        mr.read_bytes(Bytes::kib(512), &mut out);
        assert!(out.iter().all(|&b| b == 0));
    }

    #[test]
    fn rewrites_reuse_their_slot() {
        let mut mr = MemoryRegion::new(NodeId::new(0), Bytes::mib(1));
        mr.write_bytes(Bytes::new(0), &[1u8; 4096]);
        mr.write_bytes(Bytes::new(8192), &[2u8; 4096]);
        assert_eq!(mr.resident_pages(), 2);
        // Overwriting a materialized page must not grow the arena.
        mr.write_bytes(Bytes::new(0), &[3u8; 4096]);
        assert_eq!(mr.resident_pages(), 2);
        let mut out = [0u8; 1];
        mr.read_bytes(Bytes::new(10), &mut out);
        assert_eq!(out[0], 3);
        mr.read_bytes(Bytes::new(8192), &mut out);
        assert_eq!(out[0], 2);
    }

    #[test]
    fn bounds_checking() {
        let mr = MemoryRegion::new(NodeId::new(0), Bytes::new(100));
        assert!(mr.in_bounds(Bytes::new(0), Bytes::new(100)));
        assert!(mr.in_bounds(Bytes::new(99), Bytes::new(1)));
        assert!(!mr.in_bounds(Bytes::new(99), Bytes::new(2)));
        assert!(!mr.in_bounds(Bytes::new(u64::MAX), Bytes::new(2)));
    }
}
