//! A simulated RDMA fabric with the semantics Zombieland depends on.
//!
//! The paper's central mechanism is that a server suspended in the zombie
//! (Sz) state still serves its memory: *one-sided* RDMA READ/WRITE verbs
//! complete purely in the NIC/memory path and need no remote CPU, while
//! *two-sided* SEND/RECV (and anything RPC-like) needs the remote CPU
//! running. This crate makes that distinction executable:
//!
//! - A node advertises an [`Availability`]: `Full` (S0), `MemoryOnly` (Sz)
//!   or `Down` (S3/S4/S5).
//! - [`Fabric::read`]/[`Fabric::write`] succeed against `Full` and
//!   `MemoryOnly` targets; [`Fabric::send`] only against `Full` ones.
//! - Every verb returns the simulated time it took, computed from a
//!   [`LinkProfile`] calibrated to the paper's testbed (Mellanox
//!   ConnectX-3 on an FDR InfiniBand switch).
//!
//! [`rpc`] builds the paper's RPC-over-RDMA layer on top: requests are
//! RDMA-written into a server ring, responses are *polled* by the client
//! ("clients poll for the RPC results as RDMA inbound operations are
//! cheaper than outbound operations", §4.1).

pub mod fabric;
pub mod mr;
pub mod node;
pub mod qp;
pub mod rpc;

pub use fabric::{Fabric, FabricError, LinkProfile};
pub use mr::{MemoryRegion, MrKey};
pub use node::{Availability, NodeId, TrafficStats};
