//! Queue pairs and completion queues: the posted-verb programming model.
//!
//! [`crate::Fabric`]'s direct methods are convenient for single verbs; real
//! RDMA code posts batches of work requests on a queue pair and polls a
//! completion queue. This module models that discipline, including the
//! property batch users rely on — *pipelining* (one wire latency for the
//! whole batch) — and the one they fear: after a failed work request the
//! QP enters the error state and flushes everything behind it.

use std::collections::VecDeque;

use zombieland_simcore::{Bytes, SimDuration};

use crate::fabric::{Fabric, FabricError};
use crate::mr::MrKey;
use crate::node::NodeId;

/// A posted (not yet executed) one-sided work request.
#[derive(Clone, Copy, Debug)]
pub struct WorkRequest {
    /// Caller-chosen id, echoed in the completion.
    pub wr_id: u64,
    /// Verb direction.
    pub kind: WrKind,
    /// Target region.
    pub mr: MrKey,
    /// Offset within the region.
    pub offset: Bytes,
    /// Payload length.
    pub len: Bytes,
}

/// One-sided verb kinds a QP posts.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WrKind {
    /// RDMA READ.
    Read,
    /// RDMA WRITE (timing only; use the fabric directly for payloads).
    Write,
}

/// Completion status.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WcStatus {
    /// Completed successfully.
    Success,
    /// This work request failed.
    Error(FabricError),
    /// Flushed: an earlier request failed and the QP entered the error
    /// state before this one executed.
    WrFlushErr,
}

/// A completion-queue entry.
#[derive(Clone, Copy, Debug)]
pub struct Completion {
    /// The posted id.
    pub wr_id: u64,
    /// Status.
    pub status: WcStatus,
    /// Time from flush start until this request's completion (pipelined;
    /// zero for flushed entries).
    pub completed_at: SimDuration,
}

/// Errors of the posting interface itself.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QpError {
    /// The send queue is full; poll completions first.
    QueueFull,
    /// The QP is in the error state and must be re-created.
    ErrorState,
}

impl core::fmt::Display for QpError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            QpError::QueueFull => write!(f, "send queue full"),
            QpError::ErrorState => write!(f, "queue pair in error state"),
        }
    }
}

impl std::error::Error for QpError {}

/// A (simulated) reliable-connected queue pair.
pub struct QueuePair {
    initiator: NodeId,
    depth: usize,
    posted: VecDeque<WorkRequest>,
    cq: VecDeque<Completion>,
    errored: bool,
    /// Cumulative flush time — the QP's virtual clock for observability.
    clock: SimDuration,
}

impl QueuePair {
    /// Creates a QP for `initiator` with the given send-queue depth.
    pub fn new(initiator: NodeId, depth: usize) -> Self {
        QueuePair {
            initiator,
            depth: depth.max(1),
            posted: VecDeque::new(),
            cq: VecDeque::new(),
            errored: false,
            clock: SimDuration::ZERO,
        }
    }

    /// The initiating node.
    pub fn initiator(&self) -> NodeId {
        self.initiator
    }

    /// Whether the QP is unusable until re-created.
    pub fn in_error_state(&self) -> bool {
        self.errored
    }

    /// Posts a work request.
    pub fn post(&mut self, wr: WorkRequest) -> Result<(), QpError> {
        if self.errored {
            return Err(QpError::ErrorState);
        }
        if self.posted.len() >= self.depth {
            return Err(QpError::QueueFull);
        }
        self.posted.push_back(wr);
        Ok(())
    }

    /// Executes every posted request against the fabric, pipelined:
    /// completion `i` lands at `base_latency + Σ serialize(len_0..=i)`.
    /// On the first failure the QP enters the error state and the rest
    /// flush with [`WcStatus::WrFlushErr`]. Returns the wall time until
    /// the last successful completion.
    pub fn flush(&mut self, fabric: &mut Fabric) -> SimDuration {
        let batch = self.posted.len();
        let mut elapsed = SimDuration::ZERO;
        let mut base_paid = false;
        while let Some(wr) = self.posted.pop_front() {
            if self.errored {
                self.cq.push_back(Completion {
                    wr_id: wr.wr_id,
                    status: WcStatus::WrFlushErr,
                    completed_at: SimDuration::ZERO,
                });
                continue;
            }
            let result = match wr.kind {
                WrKind::Read => fabric.read_timed(self.initiator, wr.mr, wr.offset, wr.len),
                WrKind::Write => fabric.write_timed(self.initiator, wr.mr, wr.offset, wr.len),
            };
            match result {
                Ok(cost) => {
                    // Pipelining: the base latency is paid once; each
                    // request then adds only its serialization time.
                    let serialize = cost.saturating_sub(match wr.kind {
                        WrKind::Read => fabric.profile().read_time(Bytes::ZERO),
                        WrKind::Write => fabric.profile().write_time(Bytes::ZERO),
                    });
                    if !base_paid {
                        elapsed += cost;
                        base_paid = true;
                    } else {
                        elapsed += serialize;
                    }
                    self.cq.push_back(Completion {
                        wr_id: wr.wr_id,
                        status: WcStatus::Success,
                        completed_at: elapsed,
                    });
                }
                Err(e) => {
                    self.errored = true;
                    self.cq.push_back(Completion {
                        wr_id: wr.wr_id,
                        status: WcStatus::Error(e),
                        completed_at: elapsed,
                    });
                }
            }
        }
        self.clock += elapsed;
        zombieland_obs::sink::counter_add("rdma.qp_flushes", 1);
        zombieland_obs::sink::counter_add("rdma.qp_wrs", batch as u64);
        zombieland_obs::sink::hist_record("rdma.qp_flush_ns", elapsed.as_nanos());
        zombieland_obs::trace_event!(
            zombieland_simcore::SimTime::ZERO + self.clock, "rdma", "qp_flush",
            "node" => self.initiator.get(),
            "wrs" => batch,
            "elapsed_ns" => elapsed.as_nanos(),
            "errored" => self.errored);
        elapsed
    }

    /// Polls up to `max` completions, oldest first.
    pub fn poll_cq(&mut self, max: usize) -> Vec<Completion> {
        let n = max.min(self.cq.len());
        self.cq.drain(..n).collect()
    }

    /// Pending (posted, unflushed) requests.
    pub fn posted(&self) -> usize {
        self.posted.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::Availability;

    fn setup() -> (Fabric, NodeId, MrKey) {
        let mut f = Fabric::new();
        let user = f.attach();
        let server = f.attach();
        let mr = f.register(server, Bytes::mib(4)).unwrap();
        (f, user, mr)
    }

    fn read_wr(id: u64, mr: MrKey, off: u64) -> WorkRequest {
        WorkRequest {
            wr_id: id,
            kind: WrKind::Read,
            mr,
            offset: Bytes::new(off),
            len: Bytes::kib(4),
        }
    }

    #[test]
    fn batch_pipelines_and_completes_in_order() {
        let (mut f, user, mr) = setup();
        let mut qp = QueuePair::new(user, 32);
        for i in 0..8 {
            qp.post(read_wr(i, mr, i * 4096)).unwrap();
        }
        let elapsed = qp.flush(&mut f);
        let serial = f.profile().read_time(Bytes::kib(4)) * 8;
        assert!(elapsed < serial / 2, "{elapsed} vs serial {serial}");
        let wc = qp.poll_cq(100);
        assert_eq!(wc.len(), 8);
        let ids: Vec<u64> = wc.iter().map(|c| c.wr_id).collect();
        assert_eq!(ids, (0..8).collect::<Vec<_>>());
        assert!(wc
            .windows(2)
            .all(|w| w[0].completed_at <= w[1].completed_at));
        assert!(wc.iter().all(|c| c.status == WcStatus::Success));
    }

    #[test]
    fn queue_depth_enforced() {
        let (_, user, mr) = setup();
        let mut qp = QueuePair::new(user, 2);
        qp.post(read_wr(0, mr, 0)).unwrap();
        qp.post(read_wr(1, mr, 0)).unwrap();
        assert_eq!(qp.post(read_wr(2, mr, 0)), Err(QpError::QueueFull));
    }

    #[test]
    fn failure_flushes_the_rest() {
        let (mut f, user, mr) = setup();
        let mut qp = QueuePair::new(user, 8);
        qp.post(read_wr(0, mr, 0)).unwrap();
        // Out of bounds: fails.
        qp.post(WorkRequest {
            wr_id: 1,
            kind: WrKind::Read,
            mr,
            offset: Bytes::mib(4),
            len: Bytes::kib(4),
        })
        .unwrap();
        qp.post(read_wr(2, mr, 0)).unwrap();
        qp.flush(&mut f);
        let wc = qp.poll_cq(10);
        assert_eq!(wc[0].status, WcStatus::Success);
        assert!(matches!(wc[1].status, WcStatus::Error(_)));
        assert_eq!(wc[2].status, WcStatus::WrFlushErr);
        assert!(qp.in_error_state());
        assert_eq!(qp.post(read_wr(3, mr, 0)), Err(QpError::ErrorState));
    }

    #[test]
    fn reads_from_a_zombie_work_on_qps_too() {
        let (mut f, user, mr) = setup();
        f.set_availability(NodeId::new(1), Availability::MemoryOnly);
        let mut qp = QueuePair::new(user, 4);
        qp.post(read_wr(0, mr, 0)).unwrap();
        qp.flush(&mut f);
        assert_eq!(qp.poll_cq(1)[0].status, WcStatus::Success);
    }

    #[test]
    fn poll_respects_max() {
        let (mut f, user, mr) = setup();
        let mut qp = QueuePair::new(user, 8);
        for i in 0..5 {
            qp.post(read_wr(i, mr, 0)).unwrap();
        }
        qp.flush(&mut f);
        assert_eq!(qp.poll_cq(2).len(), 2);
        assert_eq!(qp.poll_cq(10).len(), 3);
        assert!(qp.poll_cq(10).is_empty());
    }
}
