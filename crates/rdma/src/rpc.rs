//! RPC over RDMA, the control-plane transport of the rack (§4.1).
//!
//! Following the paper (which cites RFP \[48\]), both directions of an RPC
//! are *server-inbound* RDMA operations, because an RDMA NIC serves
//! inbound operations more cheaply than it can initiate outbound ones:
//!
//! 1. the client RDMA-WRITEs the request into the server's request ring;
//! 2. the server's daemon (CPU required — this is why RPC cannot target a
//!    zombie) processes it and deposits the response in its response
//!    buffer;
//! 3. the client *polls* the response slot with small RDMA READs until the
//!    response appears, then READs the full payload.

use zombieland_simcore::{Bytes, SimDuration};

use crate::fabric::{Fabric, FabricError};
use crate::mr::MrKey;
use crate::node::NodeId;

/// Size of the polled completion flag.
const POLL_PROBE: Bytes = Bytes::new(8);

/// An established RPC channel between one client and one server.
#[derive(Debug)]
pub struct RpcLink {
    client: NodeId,
    server: NodeId,
    request_ring: MrKey,
    response_buf: MrKey,
    /// How often the client re-polls while the server is processing.
    poll_interval: SimDuration,
}

/// Timing breakdown of one RPC call, so experiments can attribute costs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RpcTiming {
    /// Request transfer (client → server ring).
    pub request: SimDuration,
    /// Server-side processing time (supplied by the caller).
    pub processing: SimDuration,
    /// Total time spent polling, including the final payload READ.
    pub response: SimDuration,
    /// Number of poll probes issued.
    pub polls: u64,
}

impl RpcTiming {
    /// End-to-end latency of the call.
    pub fn total(&self) -> SimDuration {
        self.request + self.processing + self.response
    }
}

impl RpcLink {
    /// Establishes a channel: registers the server-side request ring and
    /// response buffer. Both ends must be fully available.
    pub fn establish(
        fabric: &mut Fabric,
        client: NodeId,
        server: NodeId,
    ) -> Result<Self, FabricError> {
        let request_ring = fabric.register(server, Bytes::mib(1))?;
        let response_buf = fabric.register(server, Bytes::mib(1))?;
        // Make sure the *client* is alive too; registering 0 bytes would be
        // silly, so probe via availability.
        if !fabric.availability(client)?.serves_cpu() {
            return Err(FabricError::InitiatorSuspended(client));
        }
        Ok(RpcLink {
            client,
            server,
            request_ring,
            response_buf,
            poll_interval: SimDuration::from_nanos(800),
        })
    }

    /// The client end.
    pub fn client(&self) -> NodeId {
        self.client
    }

    /// The server end.
    pub fn server(&self) -> NodeId {
        self.server
    }

    /// Performs one call, returning its timing breakdown.
    ///
    /// `server_time` is how long the server daemon takes to execute the
    /// operation (the caller models that; controller operations are
    /// in-memory-database lookups in the tens of microseconds).
    ///
    /// Fails with [`FabricError::Unreachable`] (`needs_cpu: true`) when the
    /// server is a zombie or down — the paper's reason why controllers and
    /// managers must live on active servers.
    pub fn call(
        &self,
        fabric: &mut Fabric,
        request_len: Bytes,
        response_len: Bytes,
        server_time: SimDuration,
    ) -> Result<RpcTiming, FabricError> {
        // The RPC daemon needs the server CPU: enforce before any verbs.
        if !fabric.availability(self.server)?.serves_cpu() {
            return Err(FabricError::Unreachable {
                node: self.server,
                needs_cpu: true,
            });
        }
        let request =
            fabric.write_timed(self.client, self.request_ring, Bytes::ZERO, request_len)?;

        // Client polls while the server processes. The first probe happens
        // immediately after the request lands; one extra probe observes the
        // completed flag.
        let probe_cost = fabric.profile().read_time(POLL_PROBE);
        let cycle = self.poll_interval.max(probe_cost);
        let polls = server_time.as_nanos().div_ceil(cycle.as_nanos().max(1)) + 1;
        let mut response = SimDuration::ZERO;
        for _ in 0..polls {
            response +=
                fabric.read_timed(self.client, self.response_buf, Bytes::ZERO, POLL_PROBE)?;
        }
        response += fabric.read_timed(self.client, self.response_buf, Bytes::ZERO, response_len)?;

        Ok(RpcTiming {
            request,
            processing: server_time,
            response,
            polls,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::Availability;

    fn setup() -> (Fabric, RpcLink) {
        let mut f = Fabric::new();
        let client = f.attach();
        let server = f.attach();
        let link = RpcLink::establish(&mut f, client, server).unwrap();
        (f, link)
    }

    #[test]
    fn call_produces_sane_timing() {
        let (mut f, link) = setup();
        let t = link
            .call(
                &mut f,
                Bytes::new(256),
                Bytes::new(512),
                SimDuration::from_micros(20),
            )
            .unwrap();
        assert_eq!(t.processing, SimDuration::from_micros(20));
        assert!(t.polls >= 2, "at least an initial and a final poll");
        assert!(t.total() > SimDuration::from_micros(20));
        // Control-plane calls stay well under a millisecond.
        assert!(t.total() < SimDuration::from_millis(1));
    }

    #[test]
    fn longer_processing_means_more_polls() {
        let (mut f, link) = setup();
        let short = link
            .call(
                &mut f,
                Bytes::new(64),
                Bytes::new(64),
                SimDuration::from_micros(5),
            )
            .unwrap();
        let long = link
            .call(
                &mut f,
                Bytes::new(64),
                Bytes::new(64),
                SimDuration::from_micros(100),
            )
            .unwrap();
        assert!(long.polls > short.polls);
    }

    #[test]
    fn rpc_needs_server_cpu() {
        let (mut f, link) = setup();
        f.set_availability(link.server(), Availability::MemoryOnly);
        let err = link
            .call(&mut f, Bytes::new(64), Bytes::new(64), SimDuration::ZERO)
            .unwrap_err();
        assert_eq!(
            err,
            FabricError::Unreachable {
                node: link.server(),
                needs_cpu: true
            }
        );
    }

    #[test]
    fn establish_needs_both_ends_alive() {
        let mut f = Fabric::new();
        let client = f.attach();
        let server = f.attach();
        f.set_availability(server, Availability::Down);
        assert!(RpcLink::establish(&mut f, client, server).is_err());
        f.set_availability(server, Availability::Full);
        f.set_availability(client, Availability::Down);
        assert!(RpcLink::establish(&mut f, client, server).is_err());
    }

    #[test]
    fn polling_is_server_inbound() {
        let (mut f, link) = setup();
        link.call(
            &mut f,
            Bytes::new(64),
            Bytes::new(64),
            SimDuration::from_micros(10),
        )
        .unwrap();
        let s = f.stats(link.server()).unwrap();
        // One inbound write (the request) and several inbound reads (the
        // polls + payload): the server NIC serves everything.
        assert_eq!(s.inbound_writes, 1);
        assert!(s.inbound_reads >= 3);
        assert_eq!(s.outbound_ops, 0, "server initiates nothing");
    }
}
