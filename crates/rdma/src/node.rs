//! Fabric node identity, availability and traffic accounting.

use core::fmt;

use zombieland_simcore::Bytes;

/// Identifier of a node (server) attached to the fabric.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(u32);

impl NodeId {
    /// Builds from a raw id.
    pub const fn new(id: u32) -> Self {
        NodeId(id)
    }

    /// The raw id.
    pub const fn get(self) -> u32 {
        self.0
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node:{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node:{}", self.0)
    }
}

/// What the node's power state lets the fabric do with it.
///
/// This is the RDMA-visible projection of the ACPI state: the platform
/// layer maps S0 to `Full`, Sz to `MemoryOnly`, and S3/S4/S5 to `Down`.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Availability {
    /// CPU running (S0): all verbs work, RPC servers respond.
    #[default]
    Full,
    /// Zombie (Sz): memory and the NIC-to-memory path are powered, the CPU
    /// is not. One-sided READ/WRITE work; SEND/RECV and RPC do not.
    MemoryOnly,
    /// Suspended or off (S3/S4/S5): only Wake-on-LAN reaches the node.
    Down,
}

impl Availability {
    /// Whether one-sided verbs (READ/WRITE) can target this node.
    pub fn serves_memory(self) -> bool {
        matches!(self, Availability::Full | Availability::MemoryOnly)
    }

    /// Whether two-sided verbs (SEND/RECV) and RPC can target this node.
    pub fn serves_cpu(self) -> bool {
        matches!(self, Availability::Full)
    }
}

/// Per-node byte/operation counters, split by direction.
///
/// "Inbound" means operations *initiated elsewhere* that target this node's
/// memory; "outbound" means operations this node initiated.
#[derive(Clone, Copy, Debug, Default)]
pub struct TrafficStats {
    /// One-sided reads served from this node's memory.
    pub inbound_reads: u64,
    /// One-sided writes landed into this node's memory.
    pub inbound_writes: u64,
    /// Bytes served/absorbed by this node's memory.
    pub inbound_bytes: Bytes,
    /// Verbs this node initiated.
    pub outbound_ops: u64,
    /// Bytes this node pushed/pulled over the fabric.
    pub outbound_bytes: Bytes,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn availability_semantics() {
        assert!(Availability::Full.serves_memory());
        assert!(Availability::Full.serves_cpu());
        assert!(Availability::MemoryOnly.serves_memory());
        assert!(!Availability::MemoryOnly.serves_cpu());
        assert!(!Availability::Down.serves_memory());
        assert!(!Availability::Down.serves_cpu());
    }
}
