//! Guest page tables: the pseudo-physical → machine mapping.
//!
//! §4.5 of the paper: "VMs are given pseudo-physical frames and the
//! hypervisor manages their association with host-physical (machine)
//! frames. [...] In our solution, we provision both local and remote page
//! frames to a VM." This module keeps that association and the
//! accessed/dirty bits the replacement policies consume.

use core::fmt;

use zombieland_simcore::Pages;

use crate::buffer::RemoteSlot;
use crate::frame::FrameId;

/// A guest (pseudo-physical) frame number.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Gfn(u64);

impl Gfn {
    /// Builds from a raw guest frame number.
    pub const fn new(g: u64) -> Self {
        Gfn(g)
    }

    /// The raw guest frame number.
    pub const fn get(self) -> u64 {
        self.0
    }
}

impl fmt::Debug for Gfn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "gfn:{}", self.0)
    }
}

/// Where a guest page currently lives.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PageLocation {
    /// Never touched: KVM allocates machine frames on demand.
    NotAllocated,
    /// Present in a local machine frame.
    Local(FrameId),
    /// Demoted to a remote buffer slot (present bit cleared).
    Remote(RemoteSlot),
}

/// One page-table entry: location plus the accessed/dirty bits that the
/// Clock and Mixed policies read.
#[derive(Clone, Copy, Debug)]
struct Pte {
    loc: PageLocation,
    accessed: bool,
    dirty: bool,
}

/// Errors from page-table operations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GptError {
    /// The guest frame number is outside the VM's pseudo-physical space.
    OutOfRange(Gfn),
    /// The entry was not in the state the operation requires.
    WrongState(Gfn),
}

impl fmt::Display for GptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GptError::OutOfRange(g) => write!(f, "{g:?} outside guest memory"),
            GptError::WrongState(g) => write!(f, "{g:?} in wrong state for operation"),
        }
    }
}

impl std::error::Error for GptError {}

/// The pseudo-physical → machine mapping for one VM.
///
/// # Examples
///
/// ```
/// use zombieland_mem::{Gfn, GuestPageTable, PageLocation, FrameId};
/// use zombieland_simcore::Pages;
///
/// let mut gpt = GuestPageTable::new(Pages::new(4));
/// gpt.map_local(Gfn::new(0), FrameId::new(7)).unwrap();
/// assert_eq!(gpt.locate(Gfn::new(0)), Ok(PageLocation::Local(FrameId::new(7))));
/// ```
#[derive(Debug)]
pub struct GuestPageTable {
    ptes: Vec<Pte>,
    local: u64,
    remote: u64,
}

impl GuestPageTable {
    /// Creates an all-unallocated table covering `size` guest pages.
    pub fn new(size: Pages) -> Self {
        GuestPageTable {
            ptes: vec![
                Pte {
                    loc: PageLocation::NotAllocated,
                    accessed: false,
                    dirty: false,
                };
                size.count() as usize
            ],
            local: 0,
            remote: 0,
        }
    }

    /// Returns the table to the all-unallocated state `new(size)` would
    /// produce, reusing the entry storage. Per-thread scratch pools use
    /// this to recycle multi-megabyte tables between runs; a reset table
    /// is observably identical to a fresh one.
    pub fn reset(&mut self, size: Pages) {
        self.ptes.clear();
        self.ptes.resize(
            size.count() as usize,
            Pte {
                loc: PageLocation::NotAllocated,
                accessed: false,
                dirty: false,
            },
        );
        self.local = 0;
        self.remote = 0;
    }

    /// The VM's pseudo-physical size in pages.
    pub fn size(&self) -> Pages {
        Pages::new(self.ptes.len() as u64)
    }

    /// Number of pages currently in local frames.
    pub fn local_pages(&self) -> Pages {
        Pages::new(self.local)
    }

    /// Number of pages currently demoted to remote slots.
    pub fn remote_pages(&self) -> Pages {
        Pages::new(self.remote)
    }

    fn pte(&self, gfn: Gfn) -> Result<&Pte, GptError> {
        self.ptes
            .get(gfn.0 as usize)
            .ok_or(GptError::OutOfRange(gfn))
    }

    fn pte_mut(&mut self, gfn: Gfn) -> Result<&mut Pte, GptError> {
        self.ptes
            .get_mut(gfn.0 as usize)
            .ok_or(GptError::OutOfRange(gfn))
    }

    /// Where `gfn` currently lives.
    pub fn locate(&self, gfn: Gfn) -> Result<PageLocation, GptError> {
        Ok(self.pte(gfn)?.loc)
    }

    /// Installs a fresh local mapping for a page that was `NotAllocated`
    /// (first touch) — the traditional KVM demand-allocation path.
    pub fn map_local(&mut self, gfn: Gfn, frame: FrameId) -> Result<(), GptError> {
        let pte = self.pte_mut(gfn)?;
        if !matches!(pte.loc, PageLocation::NotAllocated) {
            return Err(GptError::WrongState(gfn));
        }
        pte.loc = PageLocation::Local(frame);
        pte.accessed = true;
        pte.dirty = false;
        self.local += 1;
        Ok(())
    }

    /// Demotes a local page to a remote slot: clears the present bit and
    /// records where the content went. Returns the machine frame that was
    /// freed.
    pub fn demote(&mut self, gfn: Gfn, slot: RemoteSlot) -> Result<FrameId, GptError> {
        let pte = self.pte_mut(gfn)?;
        let PageLocation::Local(frame) = pte.loc else {
            return Err(GptError::WrongState(gfn));
        };
        pte.loc = PageLocation::Remote(slot);
        pte.accessed = false;
        pte.dirty = false;
        self.local -= 1;
        self.remote += 1;
        Ok(frame)
    }

    /// Promotes a remote page back into a local frame (remote fault path).
    /// Returns the slot that can now be released.
    pub fn promote(&mut self, gfn: Gfn, frame: FrameId) -> Result<RemoteSlot, GptError> {
        let pte = self.pte_mut(gfn)?;
        let PageLocation::Remote(slot) = pte.loc else {
            return Err(GptError::WrongState(gfn));
        };
        pte.loc = PageLocation::Local(frame);
        pte.accessed = true;
        self.local += 1;
        self.remote -= 1;
        Ok(slot)
    }

    /// Marks an access to a local page, setting the accessed (and
    /// optionally dirty) bit.
    pub fn touch(&mut self, gfn: Gfn, write: bool) -> Result<(), GptError> {
        let pte = self.pte_mut(gfn)?;
        if !matches!(pte.loc, PageLocation::Local(_)) {
            return Err(GptError::WrongState(gfn));
        }
        pte.accessed = true;
        if write {
            pte.dirty = true;
        }
        Ok(())
    }

    /// Reads the accessed bit.
    pub fn accessed(&self, gfn: Gfn) -> Result<bool, GptError> {
        Ok(self.pte(gfn)?.accessed)
    }

    /// Reads the dirty bit.
    pub fn dirty(&self, gfn: Gfn) -> Result<bool, GptError> {
        Ok(self.pte(gfn)?.dirty)
    }

    /// Clears the accessed bit of one entry (Clock hand sweep).
    pub fn clear_accessed(&mut self, gfn: Gfn) -> Result<(), GptError> {
        self.pte_mut(gfn)?.accessed = false;
        Ok(())
    }

    /// Clears every accessed bit — the periodic reset the Clock policy
    /// relies on ("the accessed bit of all pages is periodically cleared").
    pub fn clear_all_accessed(&mut self) {
        for pte in &mut self.ptes {
            pte.accessed = false;
        }
    }

    /// Iterates over guest pages currently held in local frames.
    pub fn iter_local(&self) -> impl Iterator<Item = (Gfn, FrameId)> + '_ {
        self.ptes.iter().enumerate().filter_map(|(i, pte)| {
            if let PageLocation::Local(f) = pte.loc {
                Some((Gfn(i as u64), f))
            } else {
                None
            }
        })
    }

    /// Iterates over guest pages currently demoted to remote slots.
    pub fn iter_remote(&self) -> impl Iterator<Item = (Gfn, RemoteSlot)> + '_ {
        self.ptes.iter().enumerate().filter_map(|(i, pte)| {
            if let PageLocation::Remote(s) = pte.loc {
                Some((Gfn(i as u64), s))
            } else {
                None
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::BufferId;

    fn slot(n: u32) -> RemoteSlot {
        RemoteSlot {
            buffer: BufferId::new(0),
            slot: n,
        }
    }

    #[test]
    fn lifecycle_local_remote_local() {
        let mut gpt = GuestPageTable::new(Pages::new(2));
        let g = Gfn::new(0);
        assert_eq!(gpt.locate(g), Ok(PageLocation::NotAllocated));

        gpt.map_local(g, FrameId::new(1)).unwrap();
        assert_eq!(gpt.local_pages().count(), 1);
        assert!(gpt.accessed(g).unwrap());

        let freed = gpt.demote(g, slot(9)).unwrap();
        assert_eq!(freed, FrameId::new(1));
        assert_eq!(gpt.locate(g), Ok(PageLocation::Remote(slot(9))));
        assert_eq!(gpt.remote_pages().count(), 1);
        assert!(!gpt.accessed(g).unwrap());

        let back = gpt.promote(g, FrameId::new(2)).unwrap();
        assert_eq!(back, slot(9));
        assert_eq!(gpt.locate(g), Ok(PageLocation::Local(FrameId::new(2))));
        assert_eq!(gpt.remote_pages().count(), 0);
    }

    #[test]
    fn state_transitions_enforced() {
        let mut gpt = GuestPageTable::new(Pages::new(1));
        let g = Gfn::new(0);
        // Cannot demote or promote an unallocated page.
        assert_eq!(gpt.demote(g, slot(0)), Err(GptError::WrongState(g)));
        assert_eq!(
            gpt.promote(g, FrameId::new(0)),
            Err(GptError::WrongState(g))
        );
        gpt.map_local(g, FrameId::new(0)).unwrap();
        // Cannot map twice.
        assert_eq!(
            gpt.map_local(g, FrameId::new(1)),
            Err(GptError::WrongState(g))
        );
    }

    #[test]
    fn out_of_range_detected() {
        let mut gpt = GuestPageTable::new(Pages::new(1));
        let g = Gfn::new(5);
        assert_eq!(gpt.locate(g), Err(GptError::OutOfRange(g)));
        assert_eq!(
            gpt.map_local(g, FrameId::new(0)),
            Err(GptError::OutOfRange(g))
        );
    }

    #[test]
    fn accessed_dirty_bits() {
        let mut gpt = GuestPageTable::new(Pages::new(1));
        let g = Gfn::new(0);
        gpt.map_local(g, FrameId::new(0)).unwrap();
        gpt.clear_all_accessed();
        assert!(!gpt.accessed(g).unwrap());
        gpt.touch(g, false).unwrap();
        assert!(gpt.accessed(g).unwrap());
        assert!(!gpt.dirty(g).unwrap());
        gpt.touch(g, true).unwrap();
        assert!(gpt.dirty(g).unwrap());
        gpt.clear_accessed(g).unwrap();
        assert!(!gpt.accessed(g).unwrap());
    }

    #[test]
    fn reset_matches_fresh_construction() {
        let mut gpt = GuestPageTable::new(Pages::new(3));
        gpt.map_local(Gfn::new(0), FrameId::new(0)).unwrap();
        gpt.map_local(Gfn::new(2), FrameId::new(1)).unwrap();
        gpt.demote(Gfn::new(2), slot(1)).unwrap();
        gpt.touch(Gfn::new(0), true).unwrap();
        gpt.reset(Pages::new(5));
        let fresh = GuestPageTable::new(Pages::new(5));
        assert_eq!(format!("{gpt:?}"), format!("{fresh:?}"));
        // Shrinking works too: no stale entries survive past the new size.
        gpt.reset(Pages::new(2));
        assert_eq!(
            format!("{gpt:?}"),
            format!("{:?}", GuestPageTable::new(Pages::new(2)))
        );
    }

    #[test]
    fn iterators_partition_pages() {
        let mut gpt = GuestPageTable::new(Pages::new(3));
        gpt.map_local(Gfn::new(0), FrameId::new(0)).unwrap();
        gpt.map_local(Gfn::new(1), FrameId::new(1)).unwrap();
        gpt.demote(Gfn::new(1), slot(4)).unwrap();
        let local: Vec<_> = gpt.iter_local().collect();
        let remote: Vec<_> = gpt.iter_remote().collect();
        assert_eq!(local, vec![(Gfn::new(0), FrameId::new(0))]);
        assert_eq!(remote, vec![(Gfn::new(1), slot(4))]);
    }
}
