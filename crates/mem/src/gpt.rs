//! Guest page tables: the pseudo-physical → machine mapping.
//!
//! §4.5 of the paper: "VMs are given pseudo-physical frames and the
//! hypervisor manages their association with host-physical (machine)
//! frames. [...] In our solution, we provision both local and remote page
//! frames to a VM." This module keeps that association and the
//! accessed/dirty bits the replacement policies consume.
//!
//! The accessed/dirty bits live in word-packed bitsets beside the dense
//! location array rather than inside each entry. The replacement
//! policies' Clock walks and the periodic "clear every accessed bit"
//! sweep then touch 1 bit per page instead of striding over 24-byte
//! entries, and the sweep itself is a word-fill over `size/64` words.

use core::fmt;

use zombieland_simcore::Pages;

use crate::buffer::RemoteSlot;
use crate::frame::FrameId;

/// A guest (pseudo-physical) frame number.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Gfn(u64);

impl Gfn {
    /// Builds from a raw guest frame number.
    pub const fn new(g: u64) -> Self {
        Gfn(g)
    }

    /// The raw guest frame number.
    pub const fn get(self) -> u64 {
        self.0
    }
}

impl fmt::Debug for Gfn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "gfn:{}", self.0)
    }
}

/// Where a guest page currently lives.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PageLocation {
    /// Never touched: KVM allocates machine frames on demand.
    NotAllocated,
    /// Present in a local machine frame.
    Local(FrameId),
    /// Demoted to a remote buffer slot (present bit cleared).
    Remote(RemoteSlot),
}

/// The outcome of [`GuestPageTable::access`]: one classified guest
/// access, with the hit path's bit updates already applied.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AccessOutcome {
    /// The page was already local; its accessed (and, for writes, dirty)
    /// bit has been set. `newly_dirtied` is true when this write set the
    /// dirty bit for the first time since the page became local — the
    /// moment a clean remote/device copy stops being valid.
    Local {
        /// Whether this write flipped the page from clean to dirty.
        newly_dirtied: bool,
    },
    /// First touch: the caller must allocate a frame and `map_local`.
    NotAllocated,
    /// Remote fault: the caller must fetch and `promote`. No bits were
    /// modified.
    Remote(RemoteSlot),
}

/// Errors from page-table operations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GptError {
    /// The guest frame number is outside the VM's pseudo-physical space.
    OutOfRange(Gfn),
    /// The entry was not in the state the operation requires.
    WrongState(Gfn),
}

impl fmt::Display for GptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GptError::OutOfRange(g) => write!(f, "{g:?} outside guest memory"),
            GptError::WrongState(g) => write!(f, "{g:?} in wrong state for operation"),
        }
    }
}

impl std::error::Error for GptError {}

/// The pseudo-physical → machine mapping for one VM.
///
/// # Examples
///
/// ```
/// use zombieland_mem::{Gfn, GuestPageTable, PageLocation, FrameId};
/// use zombieland_simcore::Pages;
///
/// let mut gpt = GuestPageTable::new(Pages::new(4));
/// gpt.map_local(Gfn::new(0), FrameId::new(7)).unwrap();
/// assert_eq!(gpt.locate(Gfn::new(0)), Ok(PageLocation::Local(FrameId::new(7))));
/// ```
#[derive(Debug)]
pub struct GuestPageTable {
    ptes: Vec<PageLocation>,
    /// Word-packed accessed bits, one per guest page.
    accessed: Vec<u64>,
    /// Word-packed dirty bits, one per guest page.
    dirty: Vec<u64>,
    local: u64,
    remote: u64,
}

#[inline]
fn bit_split(gfn: Gfn) -> (usize, u32) {
    ((gfn.0 / 64) as usize, (gfn.0 % 64) as u32)
}

#[inline]
fn bit_get(words: &[u64], gfn: Gfn) -> bool {
    let (w, b) = bit_split(gfn);
    words[w] >> b & 1 != 0
}

#[inline]
fn bit_set(words: &mut [u64], gfn: Gfn) {
    let (w, b) = bit_split(gfn);
    words[w] |= 1 << b;
}

#[inline]
fn bit_clear(words: &mut [u64], gfn: Gfn) {
    let (w, b) = bit_split(gfn);
    words[w] &= !(1 << b);
}

impl GuestPageTable {
    /// Creates an all-unallocated table covering `size` guest pages.
    pub fn new(size: Pages) -> Self {
        let n = size.count() as usize;
        let words = size.count().div_ceil(64) as usize;
        GuestPageTable {
            ptes: vec![PageLocation::NotAllocated; n],
            accessed: vec![0; words],
            dirty: vec![0; words],
            local: 0,
            remote: 0,
        }
    }

    /// Returns the table to the all-unallocated state `new(size)` would
    /// produce, reusing the entry storage. Per-thread scratch pools use
    /// this to recycle multi-megabyte tables between runs; a reset table
    /// is observably identical to a fresh one.
    pub fn reset(&mut self, size: Pages) {
        let n = size.count() as usize;
        let words = size.count().div_ceil(64) as usize;
        self.ptes.clear();
        self.ptes.resize(n, PageLocation::NotAllocated);
        self.accessed.clear();
        self.accessed.resize(words, 0);
        self.dirty.clear();
        self.dirty.resize(words, 0);
        self.local = 0;
        self.remote = 0;
    }

    /// The VM's pseudo-physical size in pages.
    pub fn size(&self) -> Pages {
        Pages::new(self.ptes.len() as u64)
    }

    /// Number of pages currently in local frames.
    pub fn local_pages(&self) -> Pages {
        Pages::new(self.local)
    }

    /// Number of pages currently demoted to remote slots.
    pub fn remote_pages(&self) -> Pages {
        Pages::new(self.remote)
    }

    fn check(&self, gfn: Gfn) -> Result<(), GptError> {
        if (gfn.0 as usize) < self.ptes.len() {
            Ok(())
        } else {
            Err(GptError::OutOfRange(gfn))
        }
    }

    /// Where `gfn` currently lives.
    pub fn locate(&self, gfn: Gfn) -> Result<PageLocation, GptError> {
        self.ptes
            .get(gfn.0 as usize)
            .copied()
            .ok_or(GptError::OutOfRange(gfn))
    }

    /// Classifies one guest access and, on a local hit, applies the
    /// accessed/dirty bit updates in the same page-table lookup — the
    /// fused fast path of the fault handler. Equivalent to `locate` +
    /// `dirty` + `touch` but with a single bounds check.
    ///
    /// Faulting outcomes (`NotAllocated`, `Remote`) modify nothing; the
    /// caller drives the fault path and finishes with `map_local` /
    /// `promote` + `touch` as usual.
    pub fn access(&mut self, gfn: Gfn, write: bool) -> Result<AccessOutcome, GptError> {
        let loc = *self
            .ptes
            .get(gfn.0 as usize)
            .ok_or(GptError::OutOfRange(gfn))?;
        Ok(match loc {
            PageLocation::Local(_) => {
                bit_set(&mut self.accessed, gfn);
                let newly_dirtied = if write {
                    let was = bit_get(&self.dirty, gfn);
                    bit_set(&mut self.dirty, gfn);
                    !was
                } else {
                    false
                };
                AccessOutcome::Local { newly_dirtied }
            }
            PageLocation::NotAllocated => AccessOutcome::NotAllocated,
            PageLocation::Remote(slot) => AccessOutcome::Remote(slot),
        })
    }

    /// Installs a fresh local mapping for a page that was `NotAllocated`
    /// (first touch) — the traditional KVM demand-allocation path.
    pub fn map_local(&mut self, gfn: Gfn, frame: FrameId) -> Result<(), GptError> {
        self.check(gfn)?;
        let pte = &mut self.ptes[gfn.0 as usize];
        if !matches!(*pte, PageLocation::NotAllocated) {
            return Err(GptError::WrongState(gfn));
        }
        *pte = PageLocation::Local(frame);
        bit_set(&mut self.accessed, gfn);
        bit_clear(&mut self.dirty, gfn);
        self.local += 1;
        Ok(())
    }

    /// Demotes a local page to a remote slot: clears the present bit and
    /// records where the content went. Returns the machine frame that was
    /// freed.
    pub fn demote(&mut self, gfn: Gfn, slot: RemoteSlot) -> Result<FrameId, GptError> {
        self.check(gfn)?;
        let pte = &mut self.ptes[gfn.0 as usize];
        let PageLocation::Local(frame) = *pte else {
            return Err(GptError::WrongState(gfn));
        };
        *pte = PageLocation::Remote(slot);
        bit_clear(&mut self.accessed, gfn);
        bit_clear(&mut self.dirty, gfn);
        self.local -= 1;
        self.remote += 1;
        Ok(frame)
    }

    /// Promotes a remote page back into a local frame (remote fault path).
    /// Returns the slot that can now be released.
    pub fn promote(&mut self, gfn: Gfn, frame: FrameId) -> Result<RemoteSlot, GptError> {
        self.check(gfn)?;
        let pte = &mut self.ptes[gfn.0 as usize];
        let PageLocation::Remote(slot) = *pte else {
            return Err(GptError::WrongState(gfn));
        };
        *pte = PageLocation::Local(frame);
        bit_set(&mut self.accessed, gfn);
        self.local += 1;
        self.remote -= 1;
        Ok(slot)
    }

    /// Marks an access to a local page, setting the accessed (and
    /// optionally dirty) bit.
    pub fn touch(&mut self, gfn: Gfn, write: bool) -> Result<(), GptError> {
        self.check(gfn)?;
        if !matches!(self.ptes[gfn.0 as usize], PageLocation::Local(_)) {
            return Err(GptError::WrongState(gfn));
        }
        bit_set(&mut self.accessed, gfn);
        if write {
            bit_set(&mut self.dirty, gfn);
        }
        Ok(())
    }

    /// Reads the accessed bit.
    pub fn accessed(&self, gfn: Gfn) -> Result<bool, GptError> {
        self.check(gfn)?;
        Ok(bit_get(&self.accessed, gfn))
    }

    /// Reads the dirty bit.
    pub fn dirty(&self, gfn: Gfn) -> Result<bool, GptError> {
        self.check(gfn)?;
        Ok(bit_get(&self.dirty, gfn))
    }

    /// Clears the accessed bit of one entry (Clock hand sweep).
    pub fn clear_accessed(&mut self, gfn: Gfn) -> Result<(), GptError> {
        self.check(gfn)?;
        bit_clear(&mut self.accessed, gfn);
        Ok(())
    }

    /// Clears every accessed bit — the periodic reset the Clock policy
    /// relies on ("the accessed bit of all pages is periodically
    /// cleared"). One word-fill over the packed bitset, not a walk over
    /// the entries.
    pub fn clear_all_accessed(&mut self) {
        self.accessed.fill(0);
    }

    /// Iterates over guest pages currently held in local frames.
    pub fn iter_local(&self) -> impl Iterator<Item = (Gfn, FrameId)> + '_ {
        self.ptes.iter().enumerate().filter_map(|(i, pte)| {
            if let PageLocation::Local(f) = *pte {
                Some((Gfn(i as u64), f))
            } else {
                None
            }
        })
    }

    /// Iterates over guest pages currently demoted to remote slots.
    pub fn iter_remote(&self) -> impl Iterator<Item = (Gfn, RemoteSlot)> + '_ {
        self.ptes.iter().enumerate().filter_map(|(i, pte)| {
            if let PageLocation::Remote(s) = *pte {
                Some((Gfn(i as u64), s))
            } else {
                None
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::BufferId;

    fn slot(n: u32) -> RemoteSlot {
        RemoteSlot {
            buffer: BufferId::new(0),
            slot: n,
        }
    }

    #[test]
    fn lifecycle_local_remote_local() {
        let mut gpt = GuestPageTable::new(Pages::new(2));
        let g = Gfn::new(0);
        assert_eq!(gpt.locate(g), Ok(PageLocation::NotAllocated));

        gpt.map_local(g, FrameId::new(1)).unwrap();
        assert_eq!(gpt.local_pages().count(), 1);
        assert!(gpt.accessed(g).unwrap());

        let freed = gpt.demote(g, slot(9)).unwrap();
        assert_eq!(freed, FrameId::new(1));
        assert_eq!(gpt.locate(g), Ok(PageLocation::Remote(slot(9))));
        assert_eq!(gpt.remote_pages().count(), 1);
        assert!(!gpt.accessed(g).unwrap());

        let back = gpt.promote(g, FrameId::new(2)).unwrap();
        assert_eq!(back, slot(9));
        assert_eq!(gpt.locate(g), Ok(PageLocation::Local(FrameId::new(2))));
        assert_eq!(gpt.remote_pages().count(), 0);
    }

    #[test]
    fn state_transitions_enforced() {
        let mut gpt = GuestPageTable::new(Pages::new(1));
        let g = Gfn::new(0);
        // Cannot demote or promote an unallocated page.
        assert_eq!(gpt.demote(g, slot(0)), Err(GptError::WrongState(g)));
        assert_eq!(
            gpt.promote(g, FrameId::new(0)),
            Err(GptError::WrongState(g))
        );
        gpt.map_local(g, FrameId::new(0)).unwrap();
        // Cannot map twice.
        assert_eq!(
            gpt.map_local(g, FrameId::new(1)),
            Err(GptError::WrongState(g))
        );
    }

    #[test]
    fn out_of_range_detected() {
        let mut gpt = GuestPageTable::new(Pages::new(1));
        let g = Gfn::new(5);
        assert_eq!(gpt.locate(g), Err(GptError::OutOfRange(g)));
        assert_eq!(
            gpt.map_local(g, FrameId::new(0)),
            Err(GptError::OutOfRange(g))
        );
        assert_eq!(gpt.access(g, true), Err(GptError::OutOfRange(g)));
    }

    #[test]
    fn accessed_dirty_bits() {
        let mut gpt = GuestPageTable::new(Pages::new(1));
        let g = Gfn::new(0);
        gpt.map_local(g, FrameId::new(0)).unwrap();
        gpt.clear_all_accessed();
        assert!(!gpt.accessed(g).unwrap());
        gpt.touch(g, false).unwrap();
        assert!(gpt.accessed(g).unwrap());
        assert!(!gpt.dirty(g).unwrap());
        gpt.touch(g, true).unwrap();
        assert!(gpt.dirty(g).unwrap());
        gpt.clear_accessed(g).unwrap();
        assert!(!gpt.accessed(g).unwrap());
    }

    #[test]
    fn access_fuses_locate_and_touch() {
        let mut gpt = GuestPageTable::new(Pages::new(3));
        let g = Gfn::new(0);
        assert_eq!(gpt.access(g, false), Ok(AccessOutcome::NotAllocated));
        gpt.map_local(g, FrameId::new(0)).unwrap();
        gpt.clear_all_accessed();
        // Read hit: accessed set, never newly dirtied.
        assert_eq!(
            gpt.access(g, false),
            Ok(AccessOutcome::Local {
                newly_dirtied: false
            })
        );
        assert!(gpt.accessed(g).unwrap());
        assert!(!gpt.dirty(g).unwrap());
        // First write dirties; the second does not re-report it.
        assert_eq!(
            gpt.access(g, true),
            Ok(AccessOutcome::Local {
                newly_dirtied: true
            })
        );
        assert_eq!(
            gpt.access(g, true),
            Ok(AccessOutcome::Local {
                newly_dirtied: false
            })
        );
        assert!(gpt.dirty(g).unwrap());
        // Remote pages are reported without any bit changes.
        let freed = gpt.demote(g, slot(3)).unwrap();
        let _ = freed;
        assert_eq!(gpt.access(g, true), Ok(AccessOutcome::Remote(slot(3))));
        assert!(!gpt.accessed(g).unwrap());
        assert!(!gpt.dirty(g).unwrap());
    }

    /// `access` must stay step-for-step equivalent to the unfused
    /// `locate`/`dirty`/`touch` sequence the engine used to issue.
    #[test]
    fn access_matches_unfused_sequence() {
        let ops: &[(u64, bool)] = &[
            (0, false),
            (0, true),
            (1, true),
            (0, true),
            (2, false),
            (1, false),
            (2, true),
        ];
        let mut fused = GuestPageTable::new(Pages::new(3));
        let mut unfused = GuestPageTable::new(Pages::new(3));
        for g in 0..3 {
            fused.map_local(Gfn::new(g), FrameId::new(g)).unwrap();
            unfused.map_local(Gfn::new(g), FrameId::new(g)).unwrap();
        }
        fused.clear_all_accessed();
        unfused.clear_all_accessed();
        for &(g, write) in ops {
            let gfn = Gfn::new(g);
            let fused_newly = match fused.access(gfn, write).unwrap() {
                AccessOutcome::Local { newly_dirtied } => newly_dirtied,
                other => panic!("expected local hit, got {other:?}"),
            };
            let unfused_newly = write && !unfused.dirty(gfn).unwrap();
            unfused.touch(gfn, write).unwrap();
            assert_eq!(fused_newly, unfused_newly, "gfn {g} write {write}");
            assert_eq!(fused.accessed(gfn), unfused.accessed(gfn));
            assert_eq!(fused.dirty(gfn), unfused.dirty(gfn));
        }
    }

    #[test]
    fn reset_matches_fresh_construction() {
        let mut gpt = GuestPageTable::new(Pages::new(3));
        gpt.map_local(Gfn::new(0), FrameId::new(0)).unwrap();
        gpt.map_local(Gfn::new(2), FrameId::new(1)).unwrap();
        gpt.demote(Gfn::new(2), slot(1)).unwrap();
        gpt.touch(Gfn::new(0), true).unwrap();
        gpt.reset(Pages::new(5));
        let fresh = GuestPageTable::new(Pages::new(5));
        assert_eq!(format!("{gpt:?}"), format!("{fresh:?}"));
        // Shrinking works too: no stale entries survive past the new size.
        gpt.reset(Pages::new(2));
        assert_eq!(
            format!("{gpt:?}"),
            format!("{:?}", GuestPageTable::new(Pages::new(2)))
        );
    }

    #[test]
    fn iterators_partition_pages() {
        let mut gpt = GuestPageTable::new(Pages::new(3));
        gpt.map_local(Gfn::new(0), FrameId::new(0)).unwrap();
        gpt.map_local(Gfn::new(1), FrameId::new(1)).unwrap();
        gpt.demote(Gfn::new(1), slot(4)).unwrap();
        let local: Vec<_> = gpt.iter_local().collect();
        let remote: Vec<_> = gpt.iter_remote().collect();
        assert_eq!(local, vec![(Gfn::new(0), FrameId::new(0))]);
        assert_eq!(remote, vec![(Gfn::new(1), slot(4))]);
    }
}
