//! Host-physical frame allocation.

use core::fmt;

use zombieland_simcore::{Bytes, Pages};

/// A host-physical (machine) page frame number.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FrameId(u64);

impl FrameId {
    /// Builds a frame id from a raw machine frame number.
    pub const fn new(mfn: u64) -> Self {
        FrameId(mfn)
    }

    /// The raw machine frame number.
    pub const fn get(self) -> u64 {
        self.0
    }
}

impl fmt::Debug for FrameId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "mfn:{}", self.0)
    }
}

/// Errors returned by [`FrameAllocator`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FrameError {
    /// No free frame is available; the caller must evict (the paper's
    /// page-fault handler reacts by demoting a cold page to remote memory).
    OutOfFrames,
    /// The frame is not currently allocated, or is outside the managed
    /// range.
    NotAllocated(FrameId),
    /// The frame was already free.
    DoubleFree(FrameId),
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::OutOfFrames => write!(f, "no free machine frames"),
            FrameError::NotAllocated(id) => write!(f, "{id:?} is not allocated"),
            FrameError::DoubleFree(id) => write!(f, "{id:?} freed twice"),
        }
    }
}

impl std::error::Error for FrameError {}

/// A free-list allocator over a contiguous range of machine frames.
///
/// Frames are recycled LIFO, which keeps allocation O(1) and makes tests
/// deterministic.
///
/// # Examples
///
/// ```
/// use zombieland_mem::FrameAllocator;
/// use zombieland_simcore::Bytes;
///
/// let mut a = FrameAllocator::new(Bytes::mib(1));
/// let f = a.alloc().unwrap();
/// assert_eq!(a.free_frames().count(), 255);
/// a.free(f).unwrap();
/// assert_eq!(a.free_frames().count(), 256);
/// ```
#[derive(Debug)]
pub struct FrameAllocator {
    total: u64,
    free: Vec<u64>,
    allocated: Vec<bool>,
}

impl FrameAllocator {
    /// Creates an allocator managing `capacity` worth of frames
    /// (rounded up to whole pages).
    pub fn new(capacity: Bytes) -> Self {
        let total = capacity.pages().count();
        FrameAllocator {
            total,
            // Reversed so the first alloc returns frame 0.
            free: (0..total).rev().collect(),
            allocated: vec![false; total as usize],
        }
    }

    /// Returns the allocator to the all-free state `new(capacity)` would
    /// produce, reusing the free-list and bitmap storage — the
    /// scratch-pool recycling path. The free list is rebuilt in the same
    /// reversed order, so subsequent allocations hand out identical
    /// frame numbers.
    pub fn reset(&mut self, capacity: Bytes) {
        let total = capacity.pages().count();
        self.total = total;
        self.free.clear();
        self.free.extend((0..total).rev());
        self.allocated.clear();
        self.allocated.resize(total as usize, false);
    }

    /// Total number of managed frames.
    pub fn total_frames(&self) -> Pages {
        Pages::new(self.total)
    }

    /// Number of currently free frames.
    pub fn free_frames(&self) -> Pages {
        Pages::new(self.free.len() as u64)
    }

    /// Number of currently allocated frames.
    pub fn used_frames(&self) -> Pages {
        Pages::new(self.total - self.free.len() as u64)
    }

    /// Allocates one frame.
    pub fn alloc(&mut self) -> Result<FrameId, FrameError> {
        let mfn = self.free.pop().ok_or(FrameError::OutOfFrames)?;
        self.allocated[mfn as usize] = true;
        Ok(FrameId(mfn))
    }

    /// Returns a frame to the free list.
    pub fn free(&mut self, frame: FrameId) -> Result<(), FrameError> {
        let idx = frame.0 as usize;
        if frame.0 >= self.total {
            return Err(FrameError::NotAllocated(frame));
        }
        if !self.allocated[idx] {
            return Err(FrameError::DoubleFree(frame));
        }
        self.allocated[idx] = false;
        self.free.push(frame.0);
        Ok(())
    }

    /// Whether the given frame is currently allocated.
    pub fn is_allocated(&self, frame: FrameId) -> bool {
        (frame.0 < self.total) && self.allocated[frame.0 as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_free_cycle() {
        let mut a = FrameAllocator::new(Bytes::kib(16)); // 4 frames.
        assert_eq!(a.total_frames().count(), 4);
        let f0 = a.alloc().unwrap();
        let f1 = a.alloc().unwrap();
        assert_ne!(f0, f1);
        assert!(a.is_allocated(f0));
        assert_eq!(a.used_frames().count(), 2);
        a.free(f0).unwrap();
        assert!(!a.is_allocated(f0));
        assert_eq!(a.free_frames().count(), 3);
    }

    #[test]
    fn exhaustion() {
        let mut a = FrameAllocator::new(Bytes::kib(8)); // 2 frames.
        a.alloc().unwrap();
        a.alloc().unwrap();
        assert_eq!(a.alloc(), Err(FrameError::OutOfFrames));
    }

    #[test]
    fn double_free_rejected() {
        let mut a = FrameAllocator::new(Bytes::kib(8));
        let f = a.alloc().unwrap();
        a.free(f).unwrap();
        assert_eq!(a.free(f), Err(FrameError::DoubleFree(f)));
    }

    #[test]
    fn out_of_range_free_rejected() {
        let mut a = FrameAllocator::new(Bytes::kib(8));
        let bogus = FrameId::new(99);
        assert_eq!(a.free(bogus), Err(FrameError::NotAllocated(bogus)));
    }

    #[test]
    fn reset_matches_fresh_construction() {
        let mut a = FrameAllocator::new(Bytes::kib(16));
        a.alloc().unwrap();
        a.alloc().unwrap();
        a.reset(Bytes::kib(32));
        assert_eq!(
            format!("{a:?}"),
            format!("{:?}", FrameAllocator::new(Bytes::kib(32)))
        );
        let first = a.alloc().unwrap();
        assert_eq!(first, FrameId::new(0), "allocation order is preserved");
    }

    #[test]
    fn frames_are_unique_until_freed() {
        let mut a = FrameAllocator::new(Bytes::kib(64)); // 16 frames.
        let mut seen = std::collections::HashSet::new();
        for _ in 0..16 {
            assert!(seen.insert(a.alloc().unwrap()));
        }
    }
}
