//! Remote memory buffers: the rack-wide lending unit.
//!
//! §4.3 of the paper: "Remote-mem-mgr computes free memory and organizes it
//! in buffers. Their size (noted BUFF_SIZE) is uniform across the entire
//! rack." A buffer is the granularity at which zombie (or active) servers
//! lend memory to the global controller and at which reclaim happens.

use core::fmt;

use zombieland_simcore::{Bytes, Pages, PAGE_SIZE};

/// The rack-uniform buffer size. 64 MiB balances allocation-table size
/// against reclaim granularity (one buffer = 16 384 pages).
pub const BUFF_SIZE: Bytes = Bytes::mib(64);

/// Number of page slots in one buffer.
pub const SLOTS_PER_BUFFER: u64 = BUFF_SIZE.get() / PAGE_SIZE;

/// Rack-unique identifier of a lent buffer.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BufferId(u64);

impl BufferId {
    /// Builds from a raw id.
    pub const fn new(id: u64) -> Self {
        BufferId(id)
    }

    /// The raw id.
    pub const fn get(self) -> u64 {
        self.0
    }
}

impl fmt::Debug for BufferId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "buf:{}", self.0)
    }
}

/// A page-sized slot inside a remote buffer: where a demoted guest page
/// lives when it is not in local RAM.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct RemoteSlot {
    /// The buffer holding the page.
    pub buffer: BufferId,
    /// Page index within the buffer (`0..SLOTS_PER_BUFFER`).
    pub slot: u32,
}

impl RemoteSlot {
    /// Byte offset of this slot within its buffer.
    pub fn offset(&self) -> Bytes {
        Bytes::new(self.slot as u64 * PAGE_SIZE)
    }
}

/// How many whole buffers are needed to cover `size` (rounding up).
pub fn buffers_for(size: Bytes) -> u64 {
    size.get().div_ceil(BUFF_SIZE.get())
}

/// How many whole buffers fit inside `size` (rounding down) — used when
/// lending free memory, which must never oversubscribe.
pub fn buffers_within(size: Bytes) -> u64 {
    size.get() / BUFF_SIZE.get()
}

/// Tracks free page slots within a single allocated buffer.
///
/// The user-server side (hypervisor paging, Explicit SD backend) uses this
/// to place individual 4 KiB pages into the buffers the controller granted.
#[derive(Debug, Clone)]
pub struct SlotMap {
    buffer: BufferId,
    free: Vec<u32>,
    used: u64,
}

impl SlotMap {
    /// Creates a fully free slot map for `buffer`.
    pub fn new(buffer: BufferId) -> Self {
        SlotMap {
            buffer,
            free: (0..SLOTS_PER_BUFFER as u32).rev().collect(),
            used: 0,
        }
    }

    /// The buffer this map covers.
    pub fn buffer(&self) -> BufferId {
        self.buffer
    }

    /// Takes a free slot, or `None` when the buffer is full.
    pub fn take(&mut self) -> Option<RemoteSlot> {
        let slot = self.free.pop()?;
        self.used += 1;
        Some(RemoteSlot {
            buffer: self.buffer,
            slot,
        })
    }

    /// Releases a previously taken slot.
    ///
    /// # Panics
    ///
    /// Panics if the slot belongs to a different buffer (a logic error in
    /// the caller's bookkeeping).
    pub fn release(&mut self, slot: RemoteSlot) {
        assert_eq!(slot.buffer, self.buffer, "slot returned to wrong buffer");
        self.used -= 1;
        self.free.push(slot.slot);
    }

    /// Number of occupied slots.
    pub fn used_slots(&self) -> u64 {
        self.used
    }

    /// Number of free slots.
    pub fn free_slots(&self) -> u64 {
        self.free.len() as u64
    }

    /// Occupied memory in this buffer.
    pub fn used_bytes(&self) -> Bytes {
        Pages::new(self.used).bytes()
    }

    /// Whether every slot is free.
    pub fn is_empty(&self) -> bool {
        self.used == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffer_math() {
        assert_eq!(SLOTS_PER_BUFFER, 16_384);
        assert_eq!(buffers_for(Bytes::mib(64)), 1);
        assert_eq!(buffers_for(Bytes::mib(65)), 2);
        assert_eq!(buffers_for(Bytes::ZERO), 0);
        assert_eq!(buffers_within(Bytes::mib(130)), 2);
        assert_eq!(buffers_within(Bytes::mib(63)), 0);
    }

    #[test]
    fn slot_offsets() {
        let s = RemoteSlot {
            buffer: BufferId::new(3),
            slot: 5,
        };
        assert_eq!(s.offset(), Bytes::new(5 * 4096));
    }

    #[test]
    fn slotmap_take_release() {
        let mut m = SlotMap::new(BufferId::new(1));
        assert_eq!(m.free_slots(), SLOTS_PER_BUFFER);
        let s = m.take().unwrap();
        assert_eq!(m.used_slots(), 1);
        assert_eq!(m.used_bytes(), Bytes::kib(4));
        m.release(s);
        assert!(m.is_empty());
    }

    #[test]
    fn slotmap_exhausts() {
        let mut m = SlotMap::new(BufferId::new(1));
        for _ in 0..SLOTS_PER_BUFFER {
            assert!(m.take().is_some());
        }
        assert!(m.take().is_none());
        assert_eq!(m.free_slots(), 0);
    }

    #[test]
    #[should_panic(expected = "wrong buffer")]
    fn slotmap_rejects_foreign_slot() {
        let mut m = SlotMap::new(BufferId::new(1));
        m.release(RemoteSlot {
            buffer: BufferId::new(2),
            slot: 0,
        });
    }
}
