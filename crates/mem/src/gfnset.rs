//! A dense set of guest frame numbers.
//!
//! The paging engine tracks per-page facts (clean remote copies, valid
//! device copies) for pages whose numbers are bounded by the guest's
//! page-table size. A word-packed bitset beats a `BTreeSet<Gfn>` on every
//! operation the hot fault path performs: membership and insert/remove
//! are one word op, and the minimum member — the stale-eviction victim —
//! is found by scanning words from a monotonic hint instead of walking
//! tree nodes.

use crate::gpt::Gfn;

/// A fixed-capacity bitset over guest frame numbers `0..capacity`.
///
/// `min()` returns the smallest member, matching the iteration order of
/// the ordered set it replaces. A *min hint* (a word index that is never
/// above the lowest set bit) makes repeated pop-the-minimum loops — the
/// engine's stale-clean-copy eviction — amortized O(1) per pop: removals
/// only move the scan start forward, and inserts lower it directly.
#[derive(Debug, Clone)]
pub struct GfnSet {
    words: Vec<u64>,
    len: usize,
    /// Index of the first word that may contain a set bit.
    hint: usize,
}

impl GfnSet {
    /// Creates an empty set able to hold frame numbers `0..capacity`.
    pub fn new(capacity: u64) -> Self {
        let words = capacity.div_ceil(64) as usize;
        GfnSet {
            words: vec![0; words],
            len: 0,
            hint: 0,
        }
    }

    /// Returns the set to the empty state `new(capacity)` would produce,
    /// reusing the word storage — the scratch-pool recycling path.
    pub fn reset(&mut self, capacity: u64) {
        let words = capacity.div_ceil(64) as usize;
        self.words.clear();
        self.words.resize(words, 0);
        self.len = 0;
        self.hint = 0;
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Adds `gfn`; returns `true` if it was newly inserted.
    ///
    /// # Panics
    ///
    /// Panics if `gfn` is outside the capacity the set was created with.
    pub fn insert(&mut self, gfn: Gfn) -> bool {
        let (w, bit) = Self::split(gfn);
        let mask = 1u64 << bit;
        if self.words[w] & mask != 0 {
            return false;
        }
        self.words[w] |= mask;
        self.len += 1;
        if w < self.hint {
            self.hint = w;
        }
        true
    }

    /// Removes `gfn`; returns `true` if it was present. Out-of-range
    /// frame numbers are simply absent.
    pub fn remove(&mut self, gfn: Gfn) -> bool {
        let (w, bit) = Self::split(gfn);
        if w >= self.words.len() {
            return false;
        }
        let mask = 1u64 << bit;
        if self.words[w] & mask == 0 {
            return false;
        }
        self.words[w] &= !mask;
        self.len -= 1;
        true
    }

    /// Whether `gfn` is a member. Out-of-range frame numbers are absent.
    pub fn contains(&self, gfn: Gfn) -> bool {
        let (w, bit) = Self::split(gfn);
        w < self.words.len() && self.words[w] & (1u64 << bit) != 0
    }

    /// The smallest member, advancing the scan hint past empty words.
    pub fn min(&mut self) -> Option<Gfn> {
        if self.len == 0 {
            // Reset so a future insert at a high frame number doesn't
            // strand the hint below it forever.
            self.hint = 0;
            return None;
        }
        while self.hint < self.words.len() {
            let word = self.words[self.hint];
            if word != 0 {
                let bit = word.trailing_zeros() as u64;
                return Some(Gfn::new(self.hint as u64 * 64 + bit));
            }
            self.hint += 1;
        }
        unreachable!("len > 0 implies a set bit at or after the hint");
    }

    fn split(gfn: Gfn) -> (usize, u32) {
        ((gfn.get() / 64) as usize, (gfn.get() % 64) as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut s = GfnSet::new(256);
        assert!(s.is_empty());
        assert!(s.insert(Gfn::new(7)));
        assert!(!s.insert(Gfn::new(7)), "double insert is a no-op");
        assert!(s.contains(Gfn::new(7)));
        assert!(!s.contains(Gfn::new(8)));
        assert_eq!(s.len(), 1);
        assert!(s.remove(Gfn::new(7)));
        assert!(!s.remove(Gfn::new(7)), "double remove is a no-op");
        assert!(s.is_empty());
    }

    #[test]
    fn min_tracks_smallest_member() {
        let mut s = GfnSet::new(1024);
        assert_eq!(s.min(), None);
        for g in [700, 3, 64, 129] {
            s.insert(Gfn::new(g));
        }
        assert_eq!(s.min(), Some(Gfn::new(3)));
        s.remove(Gfn::new(3));
        assert_eq!(s.min(), Some(Gfn::new(64)));
        // Inserting below the hint lowers it again.
        s.insert(Gfn::new(1));
        assert_eq!(s.min(), Some(Gfn::new(1)));
    }

    #[test]
    fn pop_min_drains_in_ascending_order() {
        let mut s = GfnSet::new(4096);
        let members = [5u64, 4090, 63, 64, 65, 2000, 0];
        for &g in &members {
            s.insert(Gfn::new(g));
        }
        let mut drained = Vec::new();
        while let Some(g) = s.min() {
            s.remove(g);
            drained.push(g.get());
        }
        let mut sorted = members.to_vec();
        sorted.sort_unstable();
        assert_eq!(drained, sorted);
        // Hint resets on empty: a later high insert is still found.
        s.insert(Gfn::new(4000));
        assert_eq!(s.min(), Some(Gfn::new(4000)));
    }

    #[test]
    fn reset_matches_fresh_construction() {
        let mut s = GfnSet::new(256);
        for g in [0, 70, 255] {
            s.insert(Gfn::new(g));
        }
        s.min();
        s.reset(512);
        assert_eq!(format!("{s:?}"), format!("{:?}", GfnSet::new(512)));
        // Shrinking clears high words so no stale bits survive.
        s.insert(Gfn::new(500));
        s.reset(64);
        assert_eq!(format!("{s:?}"), format!("{:?}", GfnSet::new(64)));
    }

    #[test]
    fn out_of_range_queries_are_absent() {
        let mut s = GfnSet::new(64);
        assert!(!s.contains(Gfn::new(1000)));
        assert!(!s.remove(Gfn::new(1000)));
    }
}
