//! Memory substrate: machine frames, guest page tables and remote buffers.
//!
//! This crate models the memory objects the paper's stack manipulates:
//!
//! - **Machine frames** ([`frame`]): host-physical page frames handed out by
//!   a [`frame::FrameAllocator`]. The hypervisor provisions these to VMs on
//!   demand (§4.5 of the paper).
//! - **Guest page tables** ([`gpt`]): the pseudo-physical → machine mapping
//!   KVM maintains. A guest page is in exactly one of three states — not yet
//!   allocated, present in a local frame, or demoted to a *remote* slot on
//!   another server. The paper's modified page-fault handler moves pages
//!   between the last two.
//! - **Remote buffers** ([`buffer`]): the uniform `BUFF_SIZE` lending unit
//!   managed by the global memory controller (§4.3). A buffer is a
//!   contiguous run of page-sized slots served by some host.

pub mod buffer;
pub mod frame;
pub mod gfnset;
pub mod gpt;

pub use buffer::{BufferId, RemoteSlot, BUFF_SIZE};
pub use frame::{FrameAllocator, FrameId};
pub use gfnset::GfnSet;
pub use gpt::{AccessOutcome, Gfn, GuestPageTable, PageLocation};
