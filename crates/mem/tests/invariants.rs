//! Property tests for the memory substrate invariants.

use proptest::prelude::*;
use zombieland_mem::{
    buffer::{BufferId, SlotMap},
    FrameAllocator, Gfn, GuestPageTable, PageLocation,
};
use zombieland_simcore::{Bytes, Pages};

/// One random page-table action; invalid ones must fail cleanly.
#[derive(Clone, Debug)]
enum Action {
    Map(u64),
    Demote(u64),
    Promote(u64),
    Touch(u64, bool),
}

fn actions() -> impl Strategy<Value = Vec<Action>> {
    prop::collection::vec(
        prop_oneof![
            (0u64..40).prop_map(Action::Map),
            (0u64..40).prop_map(Action::Demote),
            (0u64..40).prop_map(Action::Promote),
            ((0u64..40), any::<bool>()).prop_map(|(g, w)| Action::Touch(g, w)),
        ],
        1..200,
    )
}

proptest! {
    /// Driving the page table with arbitrary action sequences never breaks
    /// the accounting: counters equal iterator lengths, local+remote never
    /// exceeds the table size, the frame allocator never leaks or double
    /// allocates, and every guest page is in exactly one state.
    #[test]
    fn page_table_accounting_holds(acts in actions()) {
        let size = Pages::new(32);
        let mut gpt = GuestPageTable::new(size);
        // Enough frames for every page plus slack.
        let mut frames = FrameAllocator::new(Bytes::new(64 * 4096));
        let mut slots = SlotMap::new(BufferId::new(0));

        for act in acts {
            match act {
                Action::Map(g) => {
                    let gfn = Gfn::new(g);
                    if gpt.locate(gfn) == Ok(PageLocation::NotAllocated) {
                        let f = frames.alloc().unwrap();
                        gpt.map_local(gfn, f).unwrap();
                    } else {
                        prop_assert!(gpt.map_local(gfn, zombieland_mem::FrameId::new(0)).is_err());
                    }
                }
                Action::Demote(g) => {
                    let gfn = Gfn::new(g);
                    if matches!(gpt.locate(gfn), Ok(PageLocation::Local(_))) {
                        let slot = slots.take().unwrap();
                        let freed = gpt.demote(gfn, slot).unwrap();
                        frames.free(freed).unwrap();
                    }
                }
                Action::Promote(g) => {
                    let gfn = Gfn::new(g);
                    if matches!(gpt.locate(gfn), Ok(PageLocation::Remote(_))) {
                        let f = frames.alloc().unwrap();
                        let slot = gpt.promote(gfn, f).unwrap();
                        slots.release(slot);
                    }
                }
                Action::Touch(g, w) => {
                    let gfn = Gfn::new(g);
                    let ok = gpt.touch(gfn, w);
                    prop_assert_eq!(
                        ok.is_ok(),
                        g < 32 && matches!(gpt.locate(gfn), Ok(PageLocation::Local(_)))
                    );
                }
            }

            // Invariants after every step.
            let local = gpt.iter_local().count() as u64;
            let remote = gpt.iter_remote().count() as u64;
            prop_assert_eq!(local, gpt.local_pages().count());
            prop_assert_eq!(remote, gpt.remote_pages().count());
            prop_assert!(local + remote <= size.count());
            // Frames used by the table equal frames taken from the allocator.
            prop_assert_eq!(local, frames.used_frames().count());
            // Remote pages equal occupied slots.
            prop_assert_eq!(remote, slots.used_slots());
            // No machine frame is mapped by two guest pages.
            let mut seen = std::collections::HashSet::new();
            for (_, f) in gpt.iter_local() {
                prop_assert!(seen.insert(f), "frame {:?} double-mapped", f);
            }
        }
    }

    /// The frame allocator conserves frames under arbitrary interleavings.
    #[test]
    fn allocator_conserves_frames(ops in prop::collection::vec(any::<bool>(), 1..300)) {
        let mut a = FrameAllocator::new(Bytes::new(16 * 4096));
        let mut held = Vec::new();
        for alloc in ops {
            if alloc {
                if let Ok(f) = a.alloc() {
                    held.push(f);
                }
            } else if let Some(f) = held.pop() {
                a.free(f).unwrap();
            }
            prop_assert_eq!(
                a.used_frames().count() + a.free_frames().count(),
                a.total_frames().count()
            );
            prop_assert_eq!(a.used_frames().count(), held.len() as u64);
        }
    }
}
