//! Typed scenario configuration — the one place `ZL_*` environment
//! variables are read.
//!
//! A [`Scenario`] bundles every knob that used to live in scattered
//! `std::env::var("ZL_…")` calls: experiment scale, fleet size, trace
//! length, rack count, replicate runs, worker count and the release-mode
//! validation switch. Values layer in a documented precedence order,
//! highest wins:
//!
//! 1. **CLI flags** (`--scale`, `--jobs`, …) — applied by the CLI after
//!    loading, never by this module.
//! 2. **Environment** (`ZL_SCALE`, `ZL_DC_SERVERS`, `ZL_DC_DAYS`,
//!    `ZL_RACKS`, `ZL_RUNS`, `ZL_JOBS`, `ZL_VALIDATE`, `ZL_BACKEND`,
//!    `ZL_CXL_CAP`, `ZL_GENERATIONS`) — applied by
//!    [`Scenario::apply_env`]. Malformed or out-of-range values are
//!    ignored (the historical `.ok().and_then(parse)` behavior), so a
//!    stray `ZL_SCALE=abc` cannot abort a batch run.
//! 3. **Scenario file** (`--scenario <file>`) — a minimal `key = value`
//!    format parsed by [`Scenario::parse`]; unknown keys and malformed
//!    lines are hard errors, because a typo in a file the user wrote
//!    deserves a message, not a silent default.
//! 4. **Defaults** ([`Scenario::default`]) — the paper's setup.
//!
//! The loaded scenario installs process-wide via [`install`];
//! [`current`] hands the installed value (or defaults + environment) to
//! every consumer — `zombieland-bench`'s experiment layer and the
//! simulator's validation switch among them. After this module, a
//! `grep` for `env::var("ZL_` across the workspace resolves here and
//! nowhere else.

use std::sync::OnceLock;

/// Every scenario-level knob, typed.
#[derive(Clone, PartialEq, Debug)]
pub struct Scenario {
    /// Fraction of the paper's full datacenter experiment to run
    /// (`ZL_SCALE`; 1.0 = the full Fig. 10 setup).
    pub scale: f64,
    /// Fleet size for DC-scale experiments (`ZL_DC_SERVERS`).
    pub servers: u32,
    /// Trace length in days for DC-scale experiments (`ZL_DC_DAYS`).
    pub days: u64,
    /// Rack count — the remote pool is rack-local (`ZL_RACKS`).
    pub racks: u32,
    /// Event-loop shard count for the simulator (`ZL_SHARDS`); `None` =
    /// racks-proportional (see [`Scenario::shards_for`]).
    pub shards: Option<u32>,
    /// Replicate runs per experiment point (`ZL_RUNS`).
    pub runs: u32,
    /// Worker-thread count (`ZL_JOBS`); `None` = probe the machine.
    pub jobs: Option<usize>,
    /// Release-mode invariant validation (`ZL_VALIDATE`); `None` = the
    /// build default (on for debug, off for release).
    pub validate: Option<bool>,
    /// Remote-memory backend key (`ZL_BACKEND`; see
    /// [`crate::backend::REGISTRY`]). Resolved through
    /// [`crate::backend::lookup`] by [`Scenario::ensure_valid`].
    pub backend: String,
    /// Per-rack capacity of the CXL pooled tier, in server-equivalents
    /// of memory (`ZL_CXL_CAP`); only read under `backend = cxl`.
    pub cxl_cap: f64,
    /// Per-rack server-generation mix, as model years from the
    /// generations table (`ZL_GENERATIONS`, comma-separated). Empty =
    /// uniform fleet of the profile's reference generation.
    pub generations: Vec<u16>,
}

impl Default for Scenario {
    fn default() -> Self {
        Scenario {
            scale: 0.25,
            servers: 600,
            days: 2,
            racks: 1,
            shards: None,
            runs: 1,
            jobs: None,
            validate: None,
            backend: "rdma".to_string(),
            cxl_cap: crate::backend::DEFAULT_CXL_CAPACITY,
            generations: Vec::new(),
        }
    }
}

impl Scenario {
    /// Parses the scenario file format over the defaults: one
    /// `key = value` pair per line, `#` comments, blank lines, and an
    /// optional `[scenario]` section header. Unknown keys, duplicate
    /// keys and unparsable values are errors.
    pub fn parse(text: &str) -> Result<Scenario, String> {
        let mut s = Scenario::default();
        let mut seen: Vec<String> = Vec::new();
        for (ln, raw) in text.lines().enumerate() {
            let line = match raw.find('#') {
                Some(i) => &raw[..i],
                None => raw,
            }
            .trim();
            if line.is_empty() || line == "[scenario]" {
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(format!(
                    "line {}: expected `key = value`, got {raw:?}",
                    ln + 1
                ));
            };
            let (key, value) = (key.trim(), value.trim());
            if seen.iter().any(|k| k == key) {
                return Err(format!("line {}: duplicate key {key:?}", ln + 1));
            }
            fn num<T: std::str::FromStr>(ln: usize, key: &str, v: &str) -> Result<T, String> {
                v.parse()
                    .map_err(|_| format!("line {}: invalid value {v:?} for {key:?}", ln + 1))
            }
            match key {
                "scale" => s.scale = num(ln, key, value)?,
                "servers" => s.servers = num(ln, key, value)?,
                "days" => s.days = num(ln, key, value)?,
                "racks" => s.racks = num(ln, key, value)?,
                "shards" => s.shards = Some(num(ln, key, value)?),
                "runs" => s.runs = num(ln, key, value)?,
                "jobs" => s.jobs = Some(num(ln, key, value)?),
                "validate" => {
                    s.validate = Some(match value {
                        "true" | "1" => true,
                        "false" | "0" => false,
                        _ => {
                            return Err(format!(
                                "line {}: invalid value {value:?} for \"validate\" \
                                 (use true/false)",
                                ln + 1
                            ))
                        }
                    })
                }
                "backend" => {
                    // Allow the TOML-ish quoted form (`backend = "cxl"`).
                    s.backend = value.trim_matches('"').to_string();
                }
                "cxl_cap" => s.cxl_cap = num(ln, key, value)?,
                "generations" => {
                    s.generations = value
                        .split(',')
                        .map(|y| num::<u16>(ln, key, y.trim()))
                        .collect::<Result<_, _>>()?;
                }
                _ => return Err(format!("line {}: unknown key {key:?}", ln + 1)),
            }
            seen.push(key.to_string());
        }
        Ok(s)
    }

    /// Layers the `ZL_*` environment over `self` (env beats file).
    /// Malformed or out-of-range values are silently ignored, matching
    /// the historical per-call-site `.ok().and_then(parse)` idiom.
    pub fn apply_env(mut self) -> Scenario {
        fn env_parse<T: std::str::FromStr>(key: &str) -> Option<T> {
            std::env::var(key).ok().and_then(|v| v.parse().ok())
        }
        if let Some(v) = env_parse::<f64>("ZL_SCALE").filter(|s| s.is_finite() && *s > 0.0) {
            self.scale = v;
        }
        if let Some(v) = env_parse::<u32>("ZL_DC_SERVERS").filter(|&n| n >= 1) {
            self.servers = v;
        }
        if let Some(v) = env_parse::<u64>("ZL_DC_DAYS").filter(|&n| n >= 1) {
            self.days = v;
        }
        if let Some(v) = env_parse::<u32>("ZL_RACKS").filter(|&n| n >= 1) {
            self.racks = v;
        }
        if let Some(v) = env_parse::<u32>("ZL_SHARDS").filter(|&n| n >= 1) {
            self.shards = Some(v);
        }
        if let Some(v) = env_parse::<u32>("ZL_RUNS").filter(|&n| n >= 1) {
            self.runs = v;
        }
        if let Some(v) = env_parse::<usize>("ZL_JOBS").filter(|&n| n >= 1) {
            self.jobs = Some(v);
        }
        match std::env::var_os("ZL_VALIDATE") {
            Some(v) if v == "1" => self.validate = Some(true),
            Some(v) if v == "0" => self.validate = Some(false),
            _ => {}
        }
        if let Some(v) = env_parse::<String>("ZL_BACKEND").filter(|b| !b.is_empty()) {
            self.backend = v;
        }
        if let Some(v) = env_parse::<f64>("ZL_CXL_CAP").filter(|c| c.is_finite() && *c > 0.0) {
            self.cxl_cap = v;
        }
        if let Ok(v) = std::env::var("ZL_GENERATIONS") {
            let years: Option<Vec<u16>> =
                v.split(',').map(|y| y.trim().parse::<u16>().ok()).collect();
            if let Some(years) = years.filter(|ys| !ys.is_empty()) {
                self.generations = years;
            }
        }
        self
    }

    /// Rejects values the experiments cannot run with. (Named to avoid
    /// colliding with the [`Scenario::validate`] *field*.)
    pub fn ensure_valid(&self) -> Result<(), String> {
        if !self.scale.is_finite() || self.scale <= 0.0 {
            return Err(format!("scale must be positive, got {}", self.scale));
        }
        if self.servers == 0 {
            return Err("servers must be >= 1".into());
        }
        if self.days == 0 {
            return Err("days must be >= 1".into());
        }
        if self.racks == 0 {
            return Err("racks must be >= 1 (the remote pool is rack-local)".into());
        }
        if self.shards == Some(0) {
            return Err("shards must be >= 1 (1 = the serial event loop)".into());
        }
        if self.shards.is_some_and(|s| s > MAX_SHARDS) {
            return Err(format!(
                "shards must be <= {MAX_SHARDS} (each shard costs a scan slot \
                 per decision round; thousands would be all overhead)"
            ));
        }
        if self.runs == 0 {
            return Err("runs must be >= 1".into());
        }
        if self.jobs == Some(0) {
            return Err("jobs must be >= 1".into());
        }
        if crate::backend::lookup(&self.backend).is_none() {
            let hint = match crate::backend::suggest(&self.backend) {
                Some(key) => format!(" (did you mean {key:?}?)"),
                None => String::new(),
            };
            return Err(format!(
                "unknown backend {:?}{hint}; run `zombieland --list-backends` for the registry",
                self.backend
            ));
        }
        if !self.cxl_cap.is_finite() || self.cxl_cap <= 0.0 {
            return Err(format!(
                "cxl_cap must be positive (server-equivalents of pooled memory \
                 per rack), got {}",
                self.cxl_cap
            ));
        }
        if let Some(year) = self
            .generations
            .iter()
            .find(|y| !GENERATION_YEARS.contains(y))
        {
            return Err(format!(
                "unknown server generation {year}; the generations table spans \
                 {}..={}",
                GENERATION_YEARS.start(),
                GENERATION_YEARS.end()
            ));
        }
        Ok(())
    }

    /// Loads a scenario file, layers the environment, validates.
    pub fn load(path: &str) -> Result<Scenario, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read scenario file {path:?}: {e}"))?;
        let s = Scenario::parse(&text)
            .map_err(|e| format!("{path}: {e}"))?
            .apply_env();
        s.ensure_valid().map_err(|e| format!("{path}: {e}"))?;
        Ok(s)
    }

    /// The worker count this scenario resolves to: its `jobs` knob, or
    /// the machine's available parallelism.
    pub fn jobs(&self) -> usize {
        self.jobs.unwrap_or_else(zombieland_simcore::available_jobs)
    }

    /// The simulator shard count this scenario resolves to for a fleet
    /// of `racks` racks: the explicit `shards` knob clamped to the rack
    /// count (a shard owns whole racks), or a racks-proportional default
    /// — one shard per ~40 racks, capped at 16 — so small fleets stay on
    /// the serial fast path and the full-scale 315-rack setup lands at 8
    /// without any flag.
    pub fn shards_for(&self, racks: u32) -> u32 {
        let racks = racks.max(1);
        match self.shards {
            Some(s) => s.clamp(1, racks),
            None => racks.div_ceil(40).clamp(1, 16),
        }
    }
}

/// Upper bound on an explicit `shards` value ([`Scenario::ensure_valid`]).
pub const MAX_SHARDS: u32 = 4096;

/// Model years the trace crate's generations table covers. This crate
/// cannot see `zombieland-trace`, so the range is restated here; a
/// simulator test (`generation_years_match_the_table`) pins the two
/// together.
pub const GENERATION_YEARS: std::ops::RangeInclusive<u16> = 2005..=2013;

static INSTALLED: OnceLock<Scenario> = OnceLock::new();

/// Installs `s` as the process-wide scenario (first caller wins; the CLI
/// installs before dispatching subcommands). Returns `false` if a
/// scenario was already installed.
pub fn install(s: Scenario) -> bool {
    INSTALLED.set(s).is_ok()
}

/// The installed scenario, if [`install`] ran.
pub fn installed() -> Option<&'static Scenario> {
    INSTALLED.get()
}

/// The effective scenario: the installed one, or defaults with the
/// environment layered on. The env re-read on the fallback path keeps
/// library consumers (tests, benches) that never touch the CLI seeing
/// `ZL_*` exactly as before this layer existed.
pub fn current() -> Scenario {
    match INSTALLED.get() {
        Some(s) => s.clone(),
        None => Scenario::default().apply_env(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_paper_setup() {
        let s = Scenario::default();
        assert_eq!(s.scale, 0.25);
        assert_eq!(s.servers, 600);
        assert_eq!(s.days, 2);
        assert_eq!(s.racks, 1);
        assert_eq!(s.shards, None);
        assert_eq!(s.runs, 1);
        assert_eq!(s.jobs, None);
        assert_eq!(s.validate, None);
        assert_eq!(s.backend, "rdma");
        assert_eq!(s.cxl_cap, crate::backend::DEFAULT_CXL_CAPACITY);
        assert!(s.generations.is_empty());
        assert!(s.ensure_valid().is_ok());
    }

    #[test]
    fn parse_accepts_the_documented_format() {
        let s = Scenario::parse(
            "# Fig. 10 smoke\n\
             [scenario]\n\
             scale = 0.02  # tiny\n\
             servers= 120\n\
             days =1\n\
             racks = 4\n\
             shards = 2\n\
             runs = 2\n\
             jobs = 3\n\
             validate = true\n\
             backend = \"cxl\"\n\
             cxl_cap = 2.5\n\
             generations = 2008, 2011,2013\n",
        )
        .unwrap();
        assert_eq!(s.scale, 0.02);
        assert_eq!(s.servers, 120);
        assert_eq!(s.days, 1);
        assert_eq!(s.racks, 4);
        assert_eq!(s.shards, Some(2));
        assert_eq!(s.runs, 2);
        assert_eq!(s.jobs, Some(3));
        assert_eq!(s.validate, Some(true));
        assert_eq!(s.backend, "cxl");
        assert_eq!(s.cxl_cap, 2.5);
        assert_eq!(s.generations, vec![2008, 2011, 2013]);
        assert!(s.ensure_valid().is_ok());
        // The unquoted form works too.
        assert_eq!(Scenario::parse("backend = rdma").unwrap().backend, "rdma");
    }

    #[test]
    fn parse_rejects_typos_loudly() {
        assert!(Scenario::parse("scales = 1")
            .unwrap_err()
            .contains("unknown key"));
        assert!(Scenario::parse("scale")
            .unwrap_err()
            .contains("key = value"));
        assert!(Scenario::parse("scale = fast")
            .unwrap_err()
            .contains("invalid value"));
        assert!(Scenario::parse("runs = 1\nruns = 2")
            .unwrap_err()
            .contains("duplicate"));
        assert!(Scenario::parse("validate = maybe")
            .unwrap_err()
            .contains("true/false"));
    }

    #[test]
    fn parse_keeps_defaults_for_unset_keys() {
        let s = Scenario::parse("servers = 50").unwrap();
        assert_eq!(s.servers, 50);
        assert_eq!(s.scale, Scenario::default().scale);
    }

    #[test]
    fn ensure_valid_rejects_zeroes() {
        for text in [
            "servers = 0",
            "days = 0",
            "racks = 0",
            "shards = 0",
            "shards = 99999",
            "runs = 0",
            "jobs = 0",
            "cxl_cap = 0",
            "cxl_cap = -1",
            "generations = 1999",
        ] {
            let s = Scenario::parse(text).unwrap();
            assert!(s.ensure_valid().is_err(), "{text}");
        }
        let mut s = Scenario {
            scale: 0.0,
            ..Scenario::default()
        };
        assert!(s.ensure_valid().is_err());
        s.scale = f64::NAN;
        assert!(s.ensure_valid().is_err());
    }

    #[test]
    fn unknown_backends_error_with_a_hint() {
        let s = Scenario::parse("backend = cx1").unwrap();
        let err = s.ensure_valid().unwrap_err();
        assert!(err.contains("unknown backend"), "{err}");
        assert!(err.contains("did you mean \"cxl\"?"), "{err}");
        assert!(err.contains("--list-backends"), "{err}");
        // No hint when nothing in the registry is close.
        let s = Scenario::parse("backend = infiniband").unwrap();
        let err = s.ensure_valid().unwrap_err();
        assert!(!err.contains("did you mean"), "{err}");
    }

    #[test]
    fn env_layer_beats_file_and_ignores_garbage() {
        // One test mutates every ZL_* variable (serially) so no other
        // test in this crate races the process environment.
        let keys = [
            "ZL_SCALE",
            "ZL_DC_SERVERS",
            "ZL_DC_DAYS",
            "ZL_RACKS",
            "ZL_SHARDS",
            "ZL_RUNS",
            "ZL_JOBS",
            "ZL_VALIDATE",
            "ZL_BACKEND",
            "ZL_CXL_CAP",
            "ZL_GENERATIONS",
        ];
        let saved: Vec<_> = keys.iter().map(|k| std::env::var(k).ok()).collect();

        std::env::set_var("ZL_SCALE", "0.5");
        std::env::set_var("ZL_DC_SERVERS", "90");
        std::env::set_var("ZL_DC_DAYS", "3");
        std::env::set_var("ZL_RACKS", "2");
        std::env::set_var("ZL_SHARDS", "2");
        std::env::set_var("ZL_RUNS", "4");
        std::env::set_var("ZL_JOBS", "5");
        std::env::set_var("ZL_VALIDATE", "1");
        std::env::set_var("ZL_BACKEND", "cxl");
        std::env::set_var("ZL_CXL_CAP", "1.5");
        std::env::set_var("ZL_GENERATIONS", "2005, 2013");
        let s = Scenario::parse("scale = 0.1\nservers = 10")
            .unwrap()
            .apply_env();
        assert_eq!(s.scale, 0.5, "env beats file");
        assert_eq!(s.servers, 90);
        assert_eq!(s.days, 3);
        assert_eq!(s.racks, 2);
        assert_eq!(s.shards, Some(2));
        assert_eq!(s.runs, 4);
        assert_eq!(s.jobs, Some(5));
        assert_eq!(s.validate, Some(true));
        assert_eq!(s.backend, "cxl", "env beats the rdma default");
        assert_eq!(s.cxl_cap, 1.5);
        assert_eq!(s.generations, vec![2005, 2013]);
        assert_eq!(s.jobs(), 5);

        // Garbage and zeroes fall through to the layer below.
        std::env::set_var("ZL_SCALE", "abc");
        std::env::set_var("ZL_DC_SERVERS", "0");
        std::env::set_var("ZL_DC_DAYS", "-1");
        std::env::set_var("ZL_RACKS", "");
        std::env::set_var("ZL_SHARDS", "0");
        std::env::set_var("ZL_RUNS", "not-a-number");
        std::env::set_var("ZL_JOBS", "0");
        std::env::set_var("ZL_VALIDATE", "yes");
        std::env::set_var("ZL_BACKEND", "");
        std::env::set_var("ZL_CXL_CAP", "nan");
        std::env::set_var("ZL_GENERATIONS", "new,old");
        let s = Scenario::parse("scale = 0.1\nservers = 10")
            .unwrap()
            .apply_env();
        assert_eq!(s.scale, 0.1);
        assert_eq!(s.servers, 10);
        assert_eq!(s.days, Scenario::default().days);
        assert_eq!(s.racks, 1);
        assert_eq!(s.shards, None);
        assert_eq!(s.runs, 1);
        assert_eq!(s.jobs, None);
        assert_eq!(s.validate, None);
        assert_eq!(s.backend, "rdma");
        assert_eq!(s.cxl_cap, crate::backend::DEFAULT_CXL_CAPACITY);
        assert!(s.generations.is_empty());

        // ZL_VALIDATE=0 is an explicit "off", not an ignore.
        std::env::set_var("ZL_VALIDATE", "0");
        assert_eq!(Scenario::default().apply_env().validate, Some(false));

        for (k, v) in keys.iter().zip(saved) {
            match v {
                Some(v) => std::env::set_var(k, v),
                None => std::env::remove_var(k),
            }
        }
    }

    #[test]
    fn shards_resolve_racks_proportionally() {
        let s = Scenario::default();
        // Unset: one shard per ~40 racks, capped at 16, never above the
        // rack count.
        assert_eq!(s.shards_for(1), 1);
        assert_eq!(s.shards_for(40), 1);
        assert_eq!(s.shards_for(41), 2);
        assert_eq!(s.shards_for(315), 8);
        assert_eq!(s.shards_for(10_000), 16);
        assert_eq!(s.shards_for(0), 1);
        // Explicit values clamp to the rack count.
        let s = Scenario {
            shards: Some(8),
            ..Scenario::default()
        };
        assert_eq!(s.shards_for(3), 3);
        assert_eq!(s.shards_for(315), 8);
    }

    #[test]
    fn current_falls_back_to_defaults_when_nothing_installed() {
        // `install` is process-global, so this test only checks the
        // uninstalled path (the test binary never installs).
        if installed().is_none() {
            let s = current();
            assert!(s.ensure_valid().is_ok());
        }
    }
}
