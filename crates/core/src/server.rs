//! Server identity and roles.

use core::fmt;

/// Rack-unique server identifier.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ServerId(u32);

impl ServerId {
    /// Builds from a raw id.
    pub const fn new(id: u32) -> Self {
        ServerId(id)
    }

    /// The raw id.
    pub const fn get(self) -> u32 {
        self.0
    }
}

impl fmt::Debug for ServerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "srv:{}", self.0)
    }
}

impl fmt::Display for ServerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "srv:{}", self.0)
    }
}

/// The five roles of Fig. 7. A server's role can change over its life
/// (an active server becomes a zombie, a zombie wakes into a user, ...).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Role {
    /// Hosts the global memory controller.
    GlobalController,
    /// Hosts the secondary (mirror) controller.
    SecondaryController,
    /// Runs VMs; may consume remote memory.
    User,
    /// Suspended in Sz, serving memory.
    Zombie,
    /// Running, serving residual memory.
    Active,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_ordered_values() {
        assert!(ServerId::new(1) < ServerId::new(2));
        assert_eq!(ServerId::new(7).get(), 7);
        assert_eq!(format!("{}", ServerId::new(3)), "srv:3");
    }
}
