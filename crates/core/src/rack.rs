//! The disaggregated rack facade (Fig. 7).
//!
//! [`Rack`] wires together the RDMA fabric, one ACPI platform per server,
//! the HA controller pair and one remote-mem-mgr per server, and exposes
//! the operations the hypervisor and cloud layers consume: zombie
//! transitions, buffer allocation, and the page data path. All operations
//! return the simulated time they took; the rack itself holds no clock
//! (callers accumulate durations into their own timelines, and the
//! heartbeat machinery takes explicit timestamps).

use core::fmt;

use zombieland_acpi::{platform::PlatformError, Platform, SleepState};
use zombieland_mem::buffer::{buffers_for, buffers_within, BufferId, BUFF_SIZE};
use zombieland_rdma::{
    fabric::FabricError, rpc::RpcLink, Availability, Fabric, LinkProfile, MrKey, NodeId,
};
use zombieland_simcore::{Bytes, SimDuration, SimTime, PAGE_SIZE};

use crate::db::{BufferRecord, DbError};
use crate::ha::HaPair;
use crate::manager::{ManagerError, PageHandle, PageLoc, PoolKind, RemoteMemManager};
use crate::protocol::RackOp;
use crate::server::ServerId;

/// Rack construction parameters.
#[derive(Clone, Copy, Debug)]
pub struct RackConfig {
    /// Number of compute servers (the two controller hosts are extra).
    pub servers: u32,
    /// RAM per compute server (the paper's testbed: 16 GiB).
    pub ram_per_server: Bytes,
    /// RAM the host OS + hypervisor keep for themselves (never lent).
    pub system_reserved: Bytes,
    /// Secondary-controller heartbeat timeout.
    pub heartbeat_timeout: SimDuration,
    /// 4 KiB read latency of the local backup device (SSD-class).
    pub backup_read_4k: SimDuration,
    /// 4 KiB write latency of the local backup device.
    pub backup_write_4k: SimDuration,
    /// Fabric timing profile (default: the testbed's FDR InfiniBand).
    pub link: LinkProfile,
    /// Remote-memory backend pricing the page data path (default: the
    /// paper's RDMA-to-zombie design, a strict pass-through over `link`).
    pub backend: &'static crate::backend::BackendSpec,
}

impl Default for RackConfig {
    fn default() -> Self {
        RackConfig {
            servers: 4,
            ram_per_server: Bytes::gib(16),
            system_reserved: Bytes::gib(1),
            heartbeat_timeout: SimDuration::from_secs(3),
            backup_read_4k: SimDuration::from_micros(90),
            backup_write_4k: SimDuration::from_micros(30),
            link: LinkProfile::default(),
            backend: &crate::backend::RDMA_ZOMBIE,
        }
    }
}

/// Demand-fault reads staged by [`Rack::stage_demand_fetch`], awaiting
/// one posted batch ([`Rack::issue_demand_batch`]). Issuing drains the
/// reads in place, so a hot fault loop keeps a single batch object alive
/// across runs instead of allocating per coalesced run.
#[derive(Debug, Default)]
pub struct DemandFetchBatch {
    reads: Vec<(MrKey, Bytes, Bytes)>,
}

impl DemandFetchBatch {
    /// Creates an empty batch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of reads currently staged.
    pub fn len(&self) -> usize {
        self.reads.len()
    }

    /// Whether nothing is staged.
    pub fn is_empty(&self) -> bool {
        self.reads.is_empty()
    }
}

/// Errors from rack operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RackError {
    /// Controller database refused.
    Db(DbError),
    /// Remote-mem-mgr bookkeeping refused.
    Manager(ManagerError),
    /// Fabric verb failed.
    Fabric(FabricError),
    /// Platform power transition failed.
    Platform(PlatformError),
    /// Unknown server id.
    UnknownServer(ServerId),
    /// The server is not in the state the operation requires.
    WrongState {
        /// The server in question.
        server: ServerId,
        /// Its current ACPI state.
        state: SleepState,
    },
}

impl fmt::Display for RackError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RackError::Db(e) => write!(f, "controller: {e}"),
            RackError::Manager(e) => write!(f, "manager: {e}"),
            RackError::Fabric(e) => write!(f, "fabric: {e}"),
            RackError::Platform(e) => write!(f, "platform: {e}"),
            RackError::UnknownServer(s) => write!(f, "{s} unknown"),
            RackError::WrongState { server, state } => {
                write!(f, "{server} is in {state}")
            }
        }
    }
}

impl std::error::Error for RackError {}

impl From<DbError> for RackError {
    fn from(e: DbError) -> Self {
        RackError::Db(e)
    }
}

impl From<ManagerError> for RackError {
    fn from(e: ManagerError) -> Self {
        RackError::Manager(e)
    }
}

impl From<FabricError> for RackError {
    fn from(e: FabricError) -> Self {
        RackError::Fabric(e)
    }
}

impl From<PlatformError> for RackError {
    fn from(e: PlatformError) -> Self {
        RackError::Platform(e)
    }
}

/// Outcome of `goto_zombie`.
#[derive(Debug, Clone)]
pub struct ZombieOutcome {
    /// Buffers lent to the pool.
    pub buffers: Vec<BufferId>,
    /// Control-plane time (RPC round trip).
    pub control: SimDuration,
    /// Platform Sz-enter latency.
    pub suspend_latency: SimDuration,
}

/// Outcome of `wake`.
#[derive(Debug, Clone, Default)]
pub struct WakeOutcome {
    /// Platform exit latency.
    pub wake_latency: SimDuration,
    /// Control-plane time.
    pub control: SimDuration,
    /// Buffers taken back without revocation.
    pub reclaimed_free: u64,
    /// Buffers revoked from users.
    pub revoked: u64,
    /// Pages re-placed to other remote slots (backup read + RDMA write).
    pub relocated_pages: u64,
    /// Pages that fell back to their local backup.
    pub fallback_pages: u64,
    /// Time spent moving revoked data.
    pub relocation_time: SimDuration,
}

/// A point-in-time rack summary.
#[derive(Clone, Copy, Debug)]
pub struct RackStats {
    /// Servers in S0.
    pub active_servers: u32,
    /// Servers in Sz.
    pub zombie_servers: u32,
    /// Servers in S3/S4/S5.
    pub sleeping_servers: u32,
    /// Buffers currently lent to the pool.
    pub lent_buffers: u64,
    /// Lent buffers not allocated to any user.
    pub free_buffers: u64,
    /// Lent buffers in use.
    pub allocated_buffers: u64,
    /// Free pool memory.
    pub pool_memory: Bytes,
    /// Accumulated control-plane time.
    pub control_time: SimDuration,
    /// Whether the primary controller still leads.
    pub primary_alive: bool,
}

/// Outcome of an allocation.
#[derive(Debug, Clone)]
pub struct AllocOutcome {
    /// Buffers granted (possibly fewer than requested for swap).
    pub buffers: Vec<BufferId>,
    /// Control-plane time, including any `AS_get_free_mem` harvest.
    pub control: SimDuration,
}

struct ServerEntry {
    id: ServerId,
    node: NodeId,
    platform: Platform,
    ram: Bytes,
    local_used: Bytes,
    lent: Vec<(BufferId, MrKey)>,
}

/// A disaggregated rack.
///
/// # Examples
///
/// ```
/// use zombieland_core::{Rack, RackConfig, ServerId};
/// use zombieland_simcore::Bytes;
///
/// let mut rack = Rack::new(RackConfig::default());
/// let servers = rack.server_ids();
/// let (user, zombie) = (servers[0], servers[1]);
///
/// // Suspend one server into Sz: its free memory joins the pool.
/// let z = rack.goto_zombie(zombie).unwrap();
/// assert!(!z.buffers.is_empty());
///
/// // The user takes a guaranteed RAM-Extension allocation and pages out.
/// rack.alloc_ext(user, Bytes::gib(2)).unwrap();
/// let (handle, cost) = rack.place_page(user, zombieland_core::manager::PoolKind::Ext).unwrap();
/// assert!(cost.as_micros() > 0);
/// rack.fetch_page(user, handle, true).unwrap();
/// ```
pub struct Rack {
    config: RackConfig,
    fabric: Fabric,
    ha: HaPair,
    primary_node: NodeId,
    secondary_node: NodeId,
    servers: Vec<ServerEntry>,
    managers: Vec<RemoteMemManager>,
    to_primary: Vec<RpcLink>,
    to_secondary: Vec<RpcLink>,
    from_primary: Vec<RpcLink>,
    from_secondary: Vec<RpcLink>,
    control_time: SimDuration,
}

impl Rack {
    /// Builds a rack: `config.servers` compute servers plus the two
    /// controller hosts, all attached to one fabric.
    pub fn new(config: RackConfig) -> Self {
        let mut fabric = Fabric::with_profile(config.link);
        let primary_node = fabric.attach();
        let secondary_node = fabric.attach();
        let mut ha = HaPair::new(SimTime::ZERO, config.heartbeat_timeout);

        let mut servers = Vec::new();
        let mut managers = Vec::new();
        let mut to_primary = Vec::new();
        let mut to_secondary = Vec::new();
        let mut from_primary = Vec::new();
        let mut from_secondary = Vec::new();
        for i in 0..config.servers {
            let id = ServerId::new(i);
            let node = fabric.attach();
            ha.apply(|db| db.register_host(id));
            servers.push(ServerEntry {
                id,
                node,
                platform: Platform::sz_capable(),
                ram: config.ram_per_server,
                local_used: Bytes::ZERO,
                lent: Vec::new(),
            });
            managers.push(RemoteMemManager::new(id));
            // Establishing links cannot fail here: every endpoint was
            // attached to this fabric a few lines up and nothing has
            // detached, so a failure is a construction-time bug, not a
            // runtime condition worth a typed error.
            let link = |fabric: &mut Fabric, a, b| {
                RpcLink::establish(fabric, a, b).expect("freshly attached endpoints always connect")
            };
            to_primary.push(link(&mut fabric, node, primary_node));
            to_secondary.push(link(&mut fabric, node, secondary_node));
            from_primary.push(link(&mut fabric, primary_node, node));
            from_secondary.push(link(&mut fabric, secondary_node, node));
        }
        Rack {
            config,
            fabric,
            ha,
            primary_node,
            secondary_node,
            servers,
            managers,
            to_primary,
            to_secondary,
            from_primary,
            from_secondary,
            control_time: SimDuration::ZERO,
        }
    }

    /// The rack configuration.
    pub fn config(&self) -> &RackConfig {
        &self.config
    }

    /// Compute-server ids.
    pub fn server_ids(&self) -> Vec<ServerId> {
        self.servers.iter().map(|s| s.id).collect()
    }

    /// Validates a server id, returning its vector index. The servers,
    /// managers and per-server RPC link tables are built together in
    /// [`Rack::new`], so one bounds check covers indexing into any of
    /// them; every public protocol entry point funnels through this (or
    /// [`Rack::entry`]) before indexing, turning a bad id into
    /// [`RackError::UnknownServer`] instead of a panic.
    fn server_index(&self, s: ServerId) -> Result<usize, RackError> {
        let i = s.get() as usize;
        if i < self.servers.len() {
            Ok(i)
        } else {
            Err(RackError::UnknownServer(s))
        }
    }

    fn entry(&self, s: ServerId) -> Result<&ServerEntry, RackError> {
        self.servers
            .get(s.get() as usize)
            .ok_or(RackError::UnknownServer(s))
    }

    fn entry_mut(&mut self, s: ServerId) -> Result<&mut ServerEntry, RackError> {
        self.servers
            .get_mut(s.get() as usize)
            .ok_or(RackError::UnknownServer(s))
    }

    /// The remote-mem-mgr of a server (read access, for tests and stats).
    ///
    /// # Panics
    ///
    /// Panics on an id outside this rack; protocol paths validate ids
    /// and return [`RackError::UnknownServer`] instead.
    pub fn manager(&self, s: ServerId) -> &RemoteMemManager {
        &self.managers[s.get() as usize]
    }

    /// The controller database (read access).
    pub fn db(&self) -> &crate::db::CtrlDb {
        self.ha.db()
    }

    /// The fabric (read access, for traffic stats).
    pub fn fabric(&self) -> &Fabric {
        &self.fabric
    }

    /// The active backend's pricing object. Every data-path operation
    /// quotes the RDMA fabric model, then reprices through this; the
    /// default `RdmaZombie` backend returns the quote untouched, so the
    /// default path's timing is bit-for-bit what the fabric charges.
    fn backend(&self) -> &'static dyn crate::backend::FabricBackend {
        self.config.backend.backend
    }

    /// The fabric nodes hosting the primary and secondary controllers.
    pub fn controller_nodes(&self) -> (NodeId, NodeId) {
        (self.primary_node, self.secondary_node)
    }

    /// Total control-plane time accumulated so far.
    pub fn control_time(&self) -> SimDuration {
        self.control_time
    }

    /// A server's ACPI state.
    pub fn state(&self, s: ServerId) -> Result<SleepState, RackError> {
        Ok(self.entry(s)?.platform.state())
    }

    /// Informs the rack how much of a server's RAM its VMs/hypervisor are
    /// using locally (bounds what the server can lend).
    pub fn set_local_usage(&mut self, s: ServerId, used: Bytes) -> Result<(), RackError> {
        let reserved = self.config.system_reserved;
        let entry = self.entry_mut(s)?;
        entry.local_used = used.min(entry.ram.saturating_sub(reserved));
        Ok(())
    }

    /// How much a server could still lend: RAM minus the system reserve,
    /// local usage, and what it already lent.
    pub fn lendable(&self, s: ServerId) -> Result<Bytes, RackError> {
        let entry = self.entry(s)?;
        let lent = BUFF_SIZE * entry.lent.len() as u64;
        Ok(entry
            .ram
            .saturating_sub(self.config.system_reserved)
            .saturating_sub(entry.local_used)
            .saturating_sub(lent))
    }

    /// Sends one control RPC from `s` to the active controller.
    fn rpc_to_ctrl(&mut self, s: ServerId, op: &RackOp) -> Result<SimDuration, RackError> {
        let i = self.server_index(s)?;
        let links = if self.ha.primary_alive() {
            &self.to_primary
        } else {
            &self.to_secondary
        };
        let t = links[i].call(
            &mut self.fabric,
            op.request_len(),
            op.response_len(),
            op.server_time(),
        )?;
        self.control_time += t.total();
        Ok(t.total())
    }

    /// Sends one control RPC from the active controller to `s`
    /// (`US_reclaim` direction).
    fn rpc_from_ctrl(&mut self, s: ServerId, op: &RackOp) -> Result<SimDuration, RackError> {
        let i = self.server_index(s)?;
        let links = if self.ha.primary_alive() {
            &self.from_primary
        } else {
            &self.from_secondary
        };
        let t = links[i].call(
            &mut self.fabric,
            op.request_len(),
            op.response_len(),
            op.server_time(),
        )?;
        self.control_time += t.total();
        Ok(t.total())
    }

    /// `GS_goto_zombie`: the server organizes its free memory into
    /// buffers, lends them, and suspends into Sz (§4.3).
    pub fn goto_zombie(&mut self, s: ServerId) -> Result<ZombieOutcome, RackError> {
        let state = self.state(s)?;
        if state != SleepState::S0 {
            return Err(RackError::WrongState { server: s, state });
        }
        let nb = buffers_within(self.lendable(s)?);
        // Register one MR per buffer while the CPU is still up.
        let node = self.entry(s)?.node;
        let mut mrs = Vec::with_capacity(nb as usize);
        for _ in 0..nb {
            mrs.push(self.fabric.register(node, BUFF_SIZE)?);
        }
        let op = RackOp::GotoZombie {
            host: s,
            buffers: nb,
        };
        let control = self.rpc_to_ctrl(s, &op)?;
        let ids = self.ha.apply(|db| db.lend(s, &mrs, true))?;
        let entry = self.entry_mut(s)?;
        entry
            .lent
            .extend(ids.iter().copied().zip(mrs.iter().copied()));
        let suspend = entry.platform.suspend("zom")?;
        self.fabric.set_availability(node, Availability::MemoryOnly);
        Ok(ZombieOutcome {
            buffers: ids,
            control,
            suspend_latency: suspend.latency,
        })
    }

    /// An *active* server lends `nb` buffers of its residual memory
    /// (the `AS_get_free_mem` response path).
    pub fn lend_active(&mut self, s: ServerId, nb: u64) -> Result<Vec<BufferId>, RackError> {
        let state = self.state(s)?;
        if state != SleepState::S0 {
            return Err(RackError::WrongState { server: s, state });
        }
        let nb = nb.min(buffers_within(self.lendable(s)?));
        let node = self.entry(s)?.node;
        let mut mrs = Vec::with_capacity(nb as usize);
        for _ in 0..nb {
            mrs.push(self.fabric.register(node, BUFF_SIZE)?);
        }
        let ids = self.ha.apply(|db| db.lend(s, &mrs, false))?;
        let entry = self.entry_mut(s)?;
        entry
            .lent
            .extend(ids.iter().copied().zip(mrs.iter().copied()));
        Ok(ids)
    }

    /// Wakes a zombie server and reclaims `reclaim_buffers` of its lent
    /// buffers (`None` = all of them), revoking allocated ones from their
    /// users, who restore data from their local backups (§4.3).
    pub fn wake(
        &mut self,
        s: ServerId,
        reclaim_buffers: Option<u64>,
    ) -> Result<WakeOutcome, RackError> {
        let state = self.state(s)?;
        if state != SleepState::Sz {
            return Err(RackError::WrongState { server: s, state });
        }
        let mut out = WakeOutcome::default();

        // 1. The platform wakes; the node is fully available again.
        let node = self.entry(s)?.node;
        out.wake_latency = self.entry_mut(s)?.platform.wake()?;
        self.fabric.set_availability(node, Availability::Full);

        self.reclaim_into(s, reclaim_buffers, &mut out)?;

        // Any buffers it still lends are now active-type.
        self.ha.apply(|db| db.mark_awake(s))?;
        Ok(out)
    }

    /// An *active* server reclaims `nb` of its lent buffers without any
    /// power transition — §4.3's reclaim applies to any lender whose local
    /// demand grew ("If an active server requires more memory...").
    pub fn reclaim_active(
        &mut self,
        s: ServerId,
        reclaim_buffers: Option<u64>,
    ) -> Result<WakeOutcome, RackError> {
        let state = self.state(s)?;
        if state != SleepState::S0 {
            return Err(RackError::WrongState { server: s, state });
        }
        let mut out = WakeOutcome::default();
        self.reclaim_into(s, reclaim_buffers, &mut out)?;
        Ok(out)
    }

    /// The shared GS_reclaim machinery: plan, revoke, relocate, deregister.
    fn reclaim_into(
        &mut self,
        s: ServerId,
        reclaim_buffers: Option<u64>,
        out: &mut WakeOutcome,
    ) -> Result<(), RackError> {
        // GS_reclaim: the manager asks for its memory back.
        let lent_count = self.entry(s)?.lent.len() as u64;
        let nb = reclaim_buffers.unwrap_or(lent_count).min(lent_count);
        if nb > 0 {
            let op = RackOp::Reclaim {
                host: s,
                nb_buffers: nb,
            };
            out.control += self.rpc_to_ctrl(s, &op)?;
            // The controller plans: free buffers first, then revocations.
            let plan = self.ha.apply(|db| db.reclaim(s, nb))?;
            out.reclaimed_free = plan.returned_free.len() as u64;
            out.revoked = plan.revoked.len() as u64;

            // 3. US_reclaim the allocated buffers from their users (one
            //    call per user, carrying the whole id list as the paper's
            //    `US_reclaim(buff_IDs)` does); each user re-places data
            //    from its local backup.
            let mut by_user: std::collections::BTreeMap<ServerId, Vec<BufferId>> =
                std::collections::BTreeMap::new();
            for (user, buffer) in &plan.revoked {
                by_user.entry(*user).or_default().push(*buffer);
            }
            for (user, buffers) in &by_user {
                let op = RackOp::UsReclaim {
                    user: *user,
                    buff_ids: buffers.clone(),
                };
                out.control += self.rpc_from_ctrl(*user, &op)?;
                let revocation = self.managers[user.get() as usize].revoke_many(buffers)?;
                let user_node = self.entry(*user)?.node;
                for (handle, new_slot) in &revocation.relocated {
                    let mgr = &self.managers[user.get() as usize];
                    let mr = mgr.buffer_record(new_slot.buffer)?.mr;
                    // Restore from the local backup: real bytes when the
                    // page went through the data path, timing otherwise.
                    let backed = mgr.backup_bytes(*handle).map(<[u8]>::to_vec);
                    let write = match backed {
                        Some(bytes) => {
                            self.fabric
                                .write(user_node, mr, new_slot.offset(), &bytes)?
                        }
                        None => self.fabric.write_timed(
                            user_node,
                            mr,
                            new_slot.offset(),
                            Bytes::new(PAGE_SIZE),
                        )?,
                    };
                    let write = self.backend().write_time(write, Bytes::new(PAGE_SIZE));
                    out.relocation_time += self.config.backup_read_4k + write;
                }
                out.relocated_pages += revocation.relocated.len() as u64;
                out.fallback_pages += revocation.fell_back.len() as u64;
            }

            // 4. Destroy the communication channels: deregister the MRs of
            //    every reclaimed buffer and return the memory to the host.
            let reclaimed: Vec<BufferId> = plan.all_buffers().collect();
            let entry = self.entry_mut(s)?;
            let mut kept = Vec::new();
            let mut dropped_mrs = Vec::new();
            for (id, mr) in entry.lent.drain(..) {
                if reclaimed.contains(&id) {
                    dropped_mrs.push(mr);
                } else {
                    kept.push((id, mr));
                }
            }
            entry.lent = kept;
            for mr in dropped_mrs {
                self.fabric.deregister(mr)?;
            }
        }

        Ok(())
    }

    fn try_allocate(
        &mut self,
        user: ServerId,
        nb: u64,
        guaranteed: bool,
    ) -> Result<Vec<BufferRecord>, RackError> {
        Ok(self.ha.apply(|db| db.allocate(user, nb, guaranteed))?)
    }

    /// Harvests residual memory from active servers until `shortfall`
    /// buffers have been gathered or no server can lend more
    /// (`AS_get_free_mem`).
    fn harvest(&mut self, user: ServerId, shortfall: u64) -> Result<SimDuration, RackError> {
        let mut gathered = 0u64;
        let mut control = SimDuration::ZERO;
        let ids = self.server_ids();
        for s in ids {
            if gathered >= shortfall {
                break;
            }
            if s == user || self.state(s)? != SleepState::S0 {
                continue;
            }
            let can = buffers_within(self.lendable(s)?);
            if can == 0 {
                continue;
            }
            let take = can.min(shortfall - gathered);
            let op = RackOp::AsGetFreeMem { host: s };
            control += self.rpc_from_ctrl(s, &op)?;
            let got = self.lend_active(s, take)?;
            gathered += got.len() as u64;
        }
        Ok(control)
    }

    /// `GS_alloc_ext(memSize)`: guaranteed RAM-Extension allocation,
    /// zombie memory first, harvesting active servers if the pool is
    /// short. Called once at VM creation (§4.4).
    pub fn alloc_ext(&mut self, user: ServerId, size: Bytes) -> Result<AllocOutcome, RackError> {
        let nb = buffers_for(size);
        let op = RackOp::AllocExt {
            user,
            mem_size: size,
        };
        let mut control = self.rpc_to_ctrl(user, &op)?;
        let records = match self.try_allocate(user, nb, true) {
            Ok(r) => r,
            Err(RackError::Db(DbError::AdmissionDenied { available, .. })) => {
                control += self.harvest(user, nb - available)?;
                self.try_allocate(user, nb, true)?
            }
            Err(e) => return Err(e),
        };
        let mgr = &mut self.managers[user.get() as usize];
        let buffers = records.iter().map(|r| r.id).collect();
        for r in records {
            mgr.grant(r, PoolKind::Ext);
        }
        Ok(AllocOutcome { buffers, control })
    }

    /// `GS_alloc_swap(memSize)`: best-effort Explicit-SD allocation; may
    /// return fewer buffers than requested (§4.4).
    pub fn alloc_swap(&mut self, user: ServerId, size: Bytes) -> Result<AllocOutcome, RackError> {
        let nb = buffers_for(size);
        let op = RackOp::AllocSwap {
            user,
            mem_size: size,
        };
        let mut control = self.rpc_to_ctrl(user, &op)?;
        let free = self.ha.db().free_buffers();
        if free < nb {
            control += self.harvest(user, nb - free)?;
        }
        let records = self.try_allocate(user, nb, false)?;
        let mgr = &mut self.managers[user.get() as usize];
        let buffers = records.iter().map(|r| r.id).collect();
        for r in records {
            mgr.grant(r, PoolKind::Swap);
        }
        Ok(AllocOutcome { buffers, control })
    }

    /// Transfers ownership of (empty) granted buffers from one user to
    /// another — the migration protocol's ownership-pointer update
    /// (§5.3). The remote data needs no copy; only the controller row and
    /// the two managers' grant tables change.
    pub fn transfer_buffers(
        &mut self,
        from: ServerId,
        to: ServerId,
        buffers: &[BufferId],
    ) -> Result<(), RackError> {
        let from_i = self.server_index(from)?;
        let to_i = self.server_index(to)?;
        let mut records = Vec::with_capacity(buffers.len());
        for b in buffers {
            records.push(self.managers[from_i].buffer_record(*b)?);
        }
        // Ungrant refuses buffers with live pages, keeping the transfer
        // safe; then flip the controller row and re-grant on the target.
        for b in buffers {
            self.managers[from_i].ungrant(*b)?;
        }
        self.ha.apply(|db| db.reassign(from, to, buffers))?;
        for mut rec in records {
            rec.user = Some(to);
            // Transfers happen at the stack layer where buffers back VM
            // RAM extensions.
            self.managers[to_i].grant(rec, PoolKind::Ext);
        }
        Ok(())
    }

    /// Releases empty granted buffers back to the pool.
    pub fn release(&mut self, user: ServerId, buffers: &[BufferId]) -> Result<(), RackError> {
        let user_i = self.server_index(user)?;
        for b in buffers {
            self.managers[user_i].ungrant(*b)?;
        }
        self.ha.apply(|db| db.release(user, buffers))?;
        Ok(())
    }

    /// Places one page into remote memory: picks a slot, performs the
    /// one-sided RDMA write, and mirrors to the local backup
    /// asynchronously. Returns the page handle and the *synchronous* cost.
    pub fn place_page(
        &mut self,
        user: ServerId,
        pool: PoolKind,
    ) -> Result<(PageHandle, SimDuration), RackError> {
        let user_node = self.entry(user)?.node;
        let mgr = &mut self.managers[user.get() as usize];
        let (handle, slot) = mgr.place_page(pool)?;
        let mr = mgr.buffer_record(slot.buffer)?.mr;
        let cost = self
            .fabric
            .write_timed(user_node, mr, slot.offset(), Bytes::new(PAGE_SIZE))?;
        Ok((
            handle,
            self.backend().write_time(cost, Bytes::new(PAGE_SIZE)),
        ))
    }

    /// Places one page *with its contents*: the bytes travel over the
    /// (data-carrying) fabric into the zombie's registered region, and a
    /// copy lands in the local backup so the page survives revocations
    /// and crashes byte-for-byte.
    pub fn place_page_data(
        &mut self,
        user: ServerId,
        pool: PoolKind,
        data: &[u8],
    ) -> Result<(PageHandle, SimDuration), RackError> {
        let user_node = self.entry(user)?.node;
        let mgr = &mut self.managers[user.get() as usize];
        let (handle, slot) = mgr.place_page(pool)?;
        let mr = mgr.buffer_record(slot.buffer)?.mr;
        mgr.store_backup(handle, data)?;
        let cost = self.fabric.write(user_node, mr, slot.offset(), data)?;
        let cost = self
            .backend()
            .write_time(cost, Bytes::new(data.len() as u64));
        Ok((handle, cost))
    }

    /// Fetches a page's *contents* back. Remote pages read through the
    /// fabric; backup-resident pages return the mirrored bytes.
    pub fn fetch_page_data(
        &mut self,
        user: ServerId,
        handle: PageHandle,
        free: bool,
    ) -> Result<(Vec<u8>, SimDuration), RackError> {
        let user_node = self.entry(user)?.node;
        let mgr = &self.managers[user.get() as usize];
        let (data, cost) = match mgr.locate(handle)? {
            PageLoc::Remote(slot) => {
                let mr = mgr.buffer_record(slot.buffer)?.mr;
                let mut buf = vec![0u8; PAGE_SIZE as usize];
                let cost = self.fabric.read(user_node, mr, slot.offset(), &mut buf)?;
                (buf, self.backend().read_time(cost, Bytes::new(PAGE_SIZE)))
            }
            PageLoc::LocalBackup => {
                let data = mgr
                    .backup_bytes(handle)
                    .ok_or(RackError::Manager(ManagerError::UnknownHandle(handle)))?
                    .to_vec();
                (data, self.config.backup_read_4k)
            }
        };
        if free {
            self.managers[user.get() as usize].free_page(handle)?;
        }
        Ok((data, cost))
    }

    /// Rewrites an existing remote page in place (dirty re-demotion).
    pub fn rewrite_page(
        &mut self,
        user: ServerId,
        handle: PageHandle,
    ) -> Result<SimDuration, RackError> {
        let user_node = self.entry(user)?.node;
        let mgr = &mut self.managers[user.get() as usize];
        match mgr.note_rewrite(handle)? {
            PageLoc::Remote(slot) => {
                let mr = mgr.buffer_record(slot.buffer)?.mr;
                let cost =
                    self.fabric
                        .write_timed(user_node, mr, slot.offset(), Bytes::new(PAGE_SIZE))?;
                Ok(self.backend().write_time(cost, Bytes::new(PAGE_SIZE)))
            }
            PageLoc::LocalBackup => Ok(self.config.backup_write_4k),
        }
    }

    /// Fetches one page back (remote fault). `free` releases the remote
    /// slot (clean promotion); keep it for read-only faults.
    ///
    /// If the remote host crashed (unreachable without warning — the
    /// failure §2 says naive remote-memory systems cannot survive), the
    /// page is served from its asynchronous local backup instead, and
    /// the handle is downgraded so later accesses skip the dead host.
    pub fn fetch_page(
        &mut self,
        user: ServerId,
        handle: PageHandle,
        free: bool,
    ) -> Result<SimDuration, RackError> {
        let user_node = self.entry(user)?.node;
        let mgr = &self.managers[user.get() as usize];
        let cost = match mgr.locate(handle)? {
            PageLoc::Remote(slot) => {
                let mr = mgr.buffer_record(slot.buffer)?.mr;
                match self
                    .fabric
                    .read_timed(user_node, mr, slot.offset(), Bytes::new(PAGE_SIZE))
                {
                    Ok(cost) => self.backend().read_time(cost, Bytes::new(PAGE_SIZE)),
                    Err(FabricError::Unreachable { .. }) => {
                        // The serving host died: fall back to the mirror.
                        self.managers[user.get() as usize].downgrade_to_backup(handle)?;
                        self.config.backup_read_4k
                    }
                    Err(e) => return Err(e.into()),
                }
            }
            PageLoc::LocalBackup => self.config.backup_read_4k,
        };
        if free {
            self.managers[user.get() as usize].free_page(handle)?;
        }
        Ok(cost)
    }

    /// Simulates a server crash: the node drops off the fabric without
    /// any protocol goodbye. Every page users had on it survives through
    /// its asynchronous local backup ("each write to a remote buffer is
    /// asynchronously mirrored to the local storage", §4.3), served from
    /// the slower path from now on. Returns how many pages were lost to
    /// backups.
    pub fn crash_server(&mut self, s: ServerId) -> Result<u64, RackError> {
        let node = self.entry(s)?.node;
        self.fabric.set_availability(node, Availability::Down);
        // Purge the controller's rows for the dead host and downgrade the
        // affected users' pages.
        let lent = self.ha.apply(|db| db.buffers_of_host(s));
        let nb = lent.len() as u64;
        let mut lost_pages = 0u64;
        if nb > 0 {
            let plan = self.ha.apply(|db| db.reclaim(s, nb))?;
            for (user, buffer) in &plan.revoked {
                lost_pages += self.managers[user.get() as usize]
                    .lose_buffer(*buffer)?
                    .len() as u64;
            }
        }
        self.entry_mut(s)?.lent.clear();
        Ok(lost_pages)
    }

    /// Fetches several pages in one pipelined batch — the swap-readahead
    /// data path. Remote pages ride a single posted batch (one base
    /// latency total); backup-resident pages pay the device serially.
    /// No slots are freed (prefetched pages keep their clean copies).
    pub fn fetch_pages_batch(
        &mut self,
        user: ServerId,
        handles: &[PageHandle],
    ) -> Result<SimDuration, RackError> {
        let user_node = self.entry(user)?.node;
        let mgr = &self.managers[user.get() as usize];
        let mut reads = Vec::with_capacity(handles.len());
        let mut backup_reads = 0u64;
        for &h in handles {
            match mgr.locate(h)? {
                PageLoc::Remote(slot) => {
                    let mr = mgr.buffer_record(slot.buffer)?.mr;
                    reads.push((mr, slot.offset(), Bytes::new(PAGE_SIZE)));
                }
                PageLoc::LocalBackup => backup_reads += 1,
            }
        }
        let batch = self.fabric.read_batch_timed(user_node, &reads)?;
        let payload = Bytes::new(PAGE_SIZE * reads.len() as u64);
        let batch = self.backend().batch_read_time(batch, reads.len(), payload);
        Ok(batch + self.config.backup_read_4k * backup_reads)
    }

    /// Stages one demand-fault fetch into `batch`, returning the page's
    /// synchronous fetch cost — exactly what `fetch_page(user, handle,
    /// false)` would charge — while deferring the fabric read itself so a
    /// run of adjacent faults rides a single posted batch
    /// ([`Rack::issue_demand_batch`]).
    ///
    /// The fallback semantics match `fetch_page` byte for byte: a page
    /// whose serving host died is downgraded to its local backup *here*
    /// (nothing is staged for it) and pays the backup device cost, and a
    /// backup-resident page pays the device serially. Only reachable
    /// remote pages enter the posted batch, so issuing it cannot fail on
    /// availability.
    pub fn stage_demand_fetch(
        &mut self,
        user: ServerId,
        handle: PageHandle,
        batch: &mut DemandFetchBatch,
    ) -> Result<SimDuration, RackError> {
        let mgr = &self.managers[self.server_index(user)?];
        match mgr.locate(handle)? {
            PageLoc::Remote(slot) => {
                let mr = mgr.buffer_record(slot.buffer)?.mr;
                if self.fabric.mr_reachable(mr)? {
                    batch.reads.push((mr, slot.offset(), Bytes::new(PAGE_SIZE)));
                    let quoted = self.fabric.profile().read_time(Bytes::new(PAGE_SIZE));
                    Ok(self.backend().read_time(quoted, Bytes::new(PAGE_SIZE)))
                } else {
                    // The serving host died: fall back to the mirror,
                    // exactly as the per-page path does on Unreachable.
                    self.managers[user.get() as usize].downgrade_to_backup(handle)?;
                    Ok(self.config.backup_read_4k)
                }
            }
            PageLoc::LocalBackup => Ok(self.config.backup_read_4k),
        }
    }

    /// Posts every staged read of `batch` back-to-back on one queue pair
    /// and drains the batch for reuse. Returns the transport-level batch
    /// completion time (one base latency plus the serialized payload).
    ///
    /// Callers that model synchronous per-fault latency have already
    /// charged each page's cost at stage time; for them the posted batch
    /// is the wire mechanism, not an accounting event, and this return
    /// value is informational.
    pub fn issue_demand_batch(
        &mut self,
        user: ServerId,
        batch: &mut DemandFetchBatch,
    ) -> Result<SimDuration, RackError> {
        if batch.reads.is_empty() {
            return Ok(SimDuration::ZERO);
        }
        let user_node = self.entry(user)?.node;
        let t = self.fabric.read_batch_timed(user_node, &batch.reads)?;
        let payload = Bytes::new(PAGE_SIZE * batch.reads.len() as u64);
        let t = self
            .backend()
            .batch_read_time(t, batch.reads.len(), payload);
        batch.reads.clear();
        Ok(t)
    }

    /// Drops a remote page without reading it back.
    pub fn free_page(&mut self, user: ServerId, handle: PageHandle) -> Result<(), RackError> {
        let user_i = self.server_index(user)?;
        Ok(self.managers[user_i].free_page(handle)?)
    }

    /// `GS_get_lru_zombie()`: the zombie serving the fewest allocated
    /// buffers (cheapest to wake).
    pub fn get_lru_zombie(&mut self, from: ServerId) -> Result<Option<ServerId>, RackError> {
        self.rpc_to_ctrl(from, &RackOp::GetLruZombie)?;
        Ok(self.ha.db().get_lru_zombie())
    }

    /// A point-in-time summary of the rack (observability / dashboards).
    pub fn stats(&self) -> RackStats {
        let db = self.ha.db();
        let mut zombies = 0u32;
        let mut active = 0u32;
        let mut sleeping = 0u32;
        for e in &self.servers {
            match e.platform.state() {
                SleepState::S0 => active += 1,
                SleepState::Sz => zombies += 1,
                _ => sleeping += 1,
            }
        }
        let lent: u64 = self.servers.iter().map(|e| e.lent.len() as u64).sum();
        RackStats {
            active_servers: active,
            zombie_servers: zombies,
            sleeping_servers: sleeping,
            lent_buffers: lent,
            free_buffers: db.free_buffers(),
            allocated_buffers: lent - db.free_buffers(),
            pool_memory: db.free_memory(),
            control_time: self.control_time,
            primary_alive: self.ha.primary_alive(),
        }
    }

    /// Primary controller heartbeat (call periodically with sim time).
    pub fn heartbeat(&mut self, now: SimTime) {
        self.ha.heartbeat(now);
    }

    /// Secondary's monitor check; returns `true` on failover.
    pub fn check_failover(&mut self, now: SimTime) -> bool {
        let failed = self.ha.check(now);
        if failed {
            self.fabric
                .set_availability(self.primary_node, Availability::Down);
        }
        failed
    }

    /// Simulates a primary-controller crash.
    pub fn crash_primary(&mut self) {
        self.ha.kill_primary();
    }

    /// Whether the primary controller still leads.
    pub fn primary_alive(&self) -> bool {
        self.ha.primary_alive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rack4() -> Rack {
        Rack::new(RackConfig::default())
    }

    #[test]
    fn zombie_lends_free_memory() {
        let mut rack = rack4();
        let s = rack.server_ids()[1];
        rack.set_local_usage(s, Bytes::gib(3)).unwrap();
        let out = rack.goto_zombie(s).unwrap();
        // 16 GiB - 1 reserved - 3 used = 12 GiB = 192 buffers of 64 MiB.
        assert_eq!(out.buffers.len(), 192);
        assert_eq!(rack.state(s).unwrap(), SleepState::Sz);
        assert!(rack.db().is_zombie(s));
        assert_eq!(rack.db().free_buffers(), 192);
        assert!(out.suspend_latency > SimDuration::ZERO);
        assert!(out.control > SimDuration::ZERO);
    }

    #[test]
    fn ext_allocation_prefers_zombie_and_pages_flow() {
        let mut rack = rack4();
        let ids = rack.server_ids();
        let (user, zombie) = (ids[0], ids[1]);
        rack.goto_zombie(zombie).unwrap();
        let znode = zombieland_rdma::NodeId::new(2 + zombie.get());
        // Outbound ops so far came from the GS_goto_zombie RPC (sent while
        // the server was still awake). None may be added after suspension.
        let outbound_before = rack.fabric().stats(znode).unwrap().outbound_ops;
        let alloc = rack.alloc_ext(user, Bytes::gib(1)).unwrap();
        assert_eq!(alloc.buffers.len(), 16);

        let (h, w) = rack.place_page(user, PoolKind::Ext).unwrap();
        // A one-sided 4 KiB write to a zombie lands in ~1-3 µs.
        assert!(w.as_micros() >= 1 && w.as_micros() < 10, "{w}");
        let r = rack.fetch_page(user, h, true).unwrap();
        assert!(r >= w, "reads cost at least as much as writes");
        // The zombie's CPU was never involved: it served the page purely
        // with inbound one-sided operations.
        let znode_stats = rack.fabric().stats(znode).unwrap();
        assert!(znode_stats.inbound_writes >= 1);
        assert_eq!(znode_stats.outbound_ops, outbound_before);
    }

    #[test]
    fn admission_control_denies_then_harvest_fills() {
        let mut rack = rack4();
        let ids = rack.server_ids();
        let user = ids[0];
        // No zombie yet: the pool is empty, but servers 1-3 are active
        // and idle, so the harvest path should gather their free memory.
        let alloc = rack.alloc_ext(user, Bytes::gib(4)).unwrap();
        assert_eq!(alloc.buffers.len(), 64);
        // Buffers came from active servers.
        let rec = rack.db().record(alloc.buffers[0]).unwrap();
        assert_eq!(rec.kind, crate::db::BufferKind::Active);
    }

    #[test]
    fn ext_denied_when_rack_is_full() {
        let mut rack = rack4();
        let ids = rack.server_ids();
        let user = ids[0];
        // Make every other server memory-full so nothing is lendable.
        for &s in &ids[1..] {
            rack.set_local_usage(s, Bytes::gib(16)).unwrap();
        }
        let err = rack.alloc_ext(user, Bytes::gib(1)).unwrap_err();
        assert!(matches!(
            err,
            RackError::Db(DbError::AdmissionDenied { .. })
        ));
    }

    #[test]
    fn swap_allocation_is_best_effort() {
        let mut rack = rack4();
        let ids = rack.server_ids();
        let user = ids[0];
        for &s in &ids[1..] {
            rack.set_local_usage(s, Bytes::gib(14)).unwrap(); // 1 GiB lendable each.
        }
        // Ask for far more than exists: get what is there, no error.
        let alloc = rack.alloc_swap(user, Bytes::gib(100)).unwrap();
        assert_eq!(alloc.buffers.len(), 3 * 16);
    }

    #[test]
    fn wake_reclaims_and_relocates() {
        let mut rack = rack4();
        let ids = rack.server_ids();
        let (user, z1, z2) = (ids[0], ids[1], ids[2]);
        rack.goto_zombie(z1).unwrap();
        rack.goto_zombie(z2).unwrap();
        let alloc = rack.alloc_ext(user, Bytes::gib(30)).unwrap();
        assert_eq!(alloc.buffers.len(), 480);
        // Fill some pages (they land on the striped buffers).
        for _ in 0..64 {
            rack.place_page(user, PoolKind::Ext).unwrap();
        }
        let out = rack.wake(z1, None).unwrap();
        assert_eq!(rack.state(z1).unwrap(), SleepState::S0);
        assert!(!rack.db().is_zombie(z1));
        assert_eq!(out.reclaimed_free + out.revoked, 240);
        // Pages that lived on z1 moved (there was spare capacity on z2).
        assert!(out.relocated_pages > 0);
        assert_eq!(out.fallback_pages, 0);
        assert!(out.relocation_time > SimDuration::ZERO);
        // The user's pages are all still reachable.
        assert_eq!(rack.manager(user).live_pages(), 64);
    }

    #[test]
    fn wake_falls_back_to_local_backup_when_pool_exhausted() {
        let mut rack = Rack::new(RackConfig {
            servers: 2,
            ..RackConfig::default()
        });
        let ids = rack.server_ids();
        let (user, zombie) = (ids[0], ids[1]);
        rack.goto_zombie(zombie).unwrap();
        rack.alloc_ext(user, Bytes::mib(128)).unwrap();
        let (h, _) = rack.place_page(user, PoolKind::Ext).unwrap();
        let out = rack.wake(zombie, None).unwrap();
        assert_eq!(out.fallback_pages, 1);
        // Fetching now hits the local backup (slower than RDMA).
        let cost = rack.fetch_page(user, h, false).unwrap();
        assert_eq!(cost, rack.config().backup_read_4k);
    }

    #[test]
    fn lru_zombie_is_cheapest_to_wake() {
        let mut rack = rack4();
        let ids = rack.server_ids();
        let (user, z1, z2) = (ids[0], ids[1], ids[2]);
        rack.goto_zombie(z1).unwrap();
        // Allocate most of z1's memory before z2 enters the pool.
        rack.alloc_ext(user, Bytes::gib(10)).unwrap();
        rack.goto_zombie(z2).unwrap();
        assert_eq!(rack.get_lru_zombie(user).unwrap(), Some(z2));
    }

    #[test]
    fn controller_failover_is_transparent() {
        let mut rack = rack4();
        let ids = rack.server_ids();
        let (user, zombie) = (ids[0], ids[1]);
        rack.goto_zombie(zombie).unwrap();
        rack.heartbeat(SimTime::ZERO + SimDuration::from_secs(1));

        rack.crash_primary();
        assert!(rack.check_failover(SimTime::ZERO + SimDuration::from_secs(10)));
        assert!(!rack.primary_alive());

        // The mirrored state serves allocations as if nothing happened.
        let alloc = rack.alloc_ext(user, Bytes::gib(1)).unwrap();
        assert_eq!(alloc.buffers.len(), 16);
        let (h, _) = rack.place_page(user, PoolKind::Ext).unwrap();
        rack.fetch_page(user, h, true).unwrap();
    }

    #[test]
    fn cannot_zombie_twice_or_wake_running() {
        let mut rack = rack4();
        let s = rack.server_ids()[1];
        rack.goto_zombie(s).unwrap();
        assert!(matches!(
            rack.goto_zombie(s),
            Err(RackError::WrongState { .. })
        ));
        let u = rack.server_ids()[0];
        assert!(matches!(
            rack.wake(u, None),
            Err(RackError::WrongState { .. })
        ));
    }

    #[test]
    fn active_server_reclaims_without_waking() {
        let mut rack = rack4();
        let ids = rack.server_ids();
        let (user, lender) = (ids[0], ids[2]);
        // An active server lends 4 buffers; the user consumes them all.
        rack.lend_active(lender, 4).unwrap();
        rack.alloc_ext(user, Bytes::mib(256)).unwrap();
        for _ in 0..8 {
            rack.place_page(user, PoolKind::Ext).unwrap();
        }
        // Its own memory demand grows: it reclaims two buffers, staying
        // in S0 throughout.
        let out = rack.reclaim_active(lender, Some(2)).unwrap();
        assert_eq!(rack.state(lender).unwrap(), SleepState::S0);
        assert_eq!(out.reclaimed_free + out.revoked, 2);
        assert_eq!(out.wake_latency, SimDuration::ZERO);
        assert_eq!(rack.db().buffers_of_host(lender).len(), 2);
        // The user's pages remain reachable.
        assert_eq!(rack.manager(user).live_pages(), 8);
        // A zombie cannot use this path.
        rack.goto_zombie(ids[1]).unwrap();
        assert!(matches!(
            rack.reclaim_active(ids[1], None),
            Err(RackError::WrongState { .. })
        ));
    }

    #[test]
    fn stats_snapshot_consistent() {
        let mut rack = rack4();
        let ids = rack.server_ids();
        rack.goto_zombie(ids[1]).unwrap();
        rack.alloc_ext(ids[0], Bytes::gib(1)).unwrap();
        let s = rack.stats();
        assert_eq!(s.active_servers, 3);
        assert_eq!(s.zombie_servers, 1);
        assert_eq!(s.sleeping_servers, 0);
        assert_eq!(s.lent_buffers, 240);
        assert_eq!(s.allocated_buffers, 16);
        assert_eq!(s.free_buffers, 224);
        assert_eq!(s.pool_memory, Bytes::gib(14));
        assert!(s.control_time > SimDuration::ZERO);
        assert!(s.primary_alive);
    }

    #[test]
    fn release_returns_capacity() {
        let mut rack = rack4();
        let ids = rack.server_ids();
        let (user, zombie) = (ids[0], ids[1]);
        rack.goto_zombie(zombie).unwrap();
        let before = rack.db().free_buffers();
        let alloc = rack.alloc_ext(user, Bytes::gib(1)).unwrap();
        assert_eq!(rack.db().free_buffers(), before - 16);
        rack.release(user, &alloc.buffers).unwrap();
        assert_eq!(rack.db().free_buffers(), before);
    }

    /// Protocol entry points reject ids outside the rack with a typed
    /// error instead of panicking on an out-of-bounds table index.
    #[test]
    fn unknown_server_ids_are_typed_errors() {
        let mut rack = rack4();
        let ids = rack.server_ids();
        let (user, zombie) = (ids[0], ids[1]);
        rack.goto_zombie(zombie).unwrap();
        let alloc = rack.alloc_ext(user, Bytes::gib(1)).unwrap();
        let bogus = ServerId::new(999);

        let unknown =
            |r: Result<_, RackError>| matches!(r, Err(RackError::UnknownServer(s)) if s == bogus);
        assert!(unknown(rack.alloc_ext(bogus, Bytes::gib(1)).map(|_| ())));
        assert!(unknown(rack.alloc_swap(bogus, Bytes::gib(1)).map(|_| ())));
        assert!(unknown(rack.place_page(bogus, PoolKind::Ext).map(|_| ())));
        assert!(unknown(rack.release(bogus, &alloc.buffers)));
        assert!(unknown(rack.transfer_buffers(bogus, user, &alloc.buffers)));
        assert!(unknown(rack.transfer_buffers(user, bogus, &alloc.buffers)));
        let (handle, _) = rack.place_page(user, PoolKind::Ext).unwrap();
        assert!(unknown(rack.free_page(bogus, handle).map(|_| ())));
        // And the rack still works afterwards: nothing was corrupted.
        rack.fetch_page(user, handle, true).unwrap();
    }
}
