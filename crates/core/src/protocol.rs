//! The control-plane protocol: the paper's wire functions and their RPC
//! cost model.
//!
//! §4.3–4.4 name seven functions. Each variant carries the parameters the
//! paper gives it; [`RackOp::request_len`]/[`RackOp::response_len`] model
//! the serialized sizes and [`RackOp::server_time`] the controller-side
//! processing (in-memory database work), which together drive the
//! [`zombieland_rdma::rpc::RpcLink`] timing.

use zombieland_mem::buffer::BufferId;
use zombieland_simcore::{Bytes, SimDuration};

use crate::server::ServerId;

/// A control-plane operation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RackOp {
    /// `GS_goto_zombie(buffers)` — a suspending server lends its free
    /// memory.
    GotoZombie {
        /// The suspending host.
        host: ServerId,
        /// Number of buffers lent.
        buffers: u64,
    },
    /// `GS_reclaim(nbBuffers)` — a waking server takes its memory back.
    Reclaim {
        /// The waking host.
        host: ServerId,
        /// Buffers to reclaim.
        nb_buffers: u64,
    },
    /// `US_reclaim(buff_IDs)` — controller → user revocation notice.
    UsReclaim {
        /// The user losing buffers.
        user: ServerId,
        /// The revoked buffers.
        buff_ids: Vec<BufferId>,
    },
    /// `GS_alloc_ext(memSize)` — guaranteed RAM-Extension allocation.
    AllocExt {
        /// The requesting user.
        user: ServerId,
        /// Requested size (`nb × BUFF_SIZE == memSize`).
        mem_size: Bytes,
    },
    /// `GS_alloc_swap(memSize)` — best-effort Explicit-SD allocation.
    AllocSwap {
        /// The requesting user.
        user: ServerId,
        /// Requested size (`nb × BUFF_SIZE ≤ memSize`).
        mem_size: Bytes,
    },
    /// `AS_get_free_mem()` — harvest residual memory from an active
    /// server.
    AsGetFreeMem {
        /// The active server asked to lend.
        host: ServerId,
    },
    /// `GS_get_lru_zombie()` — the zombie with the fewest allocated
    /// buffers (consolidation wake-up preference).
    GetLruZombie,
}

impl RackOp {
    /// The paper's name for the function.
    pub fn wire_name(&self) -> &'static str {
        match self {
            RackOp::GotoZombie { .. } => "GS_goto_zombie",
            RackOp::Reclaim { .. } => "GS_reclaim",
            RackOp::UsReclaim { .. } => "US_reclaim",
            RackOp::AllocExt { .. } => "GS_alloc_ext",
            RackOp::AllocSwap { .. } => "GS_alloc_swap",
            RackOp::AsGetFreeMem { .. } => "AS_get_free_mem",
            RackOp::GetLruZombie => "GS_get_lru_zombie",
        }
    }

    /// Serialized request size: the actual wire encoding
    /// ([`crate::codec::encode`]) plus the transport's framing header.
    pub fn request_len(&self) -> Bytes {
        const FRAMING: u64 = 32;
        Bytes::new(FRAMING + crate::codec::encode(self).len() as u64)
    }

    /// Serialized response size: header plus buffer descriptors where the
    /// response carries a list (allocations return up to
    /// `mem_size / BUFF_SIZE` descriptors).
    ///
    /// All arithmetic saturates: operations carrying adversarial sizes
    /// (decoded from the wire, or constructed in-process) model a clamped
    /// response rather than overflowing.
    pub fn response_len(&self) -> Bytes {
        const HDR: u64 = 64;
        let extra = match self {
            RackOp::AllocExt { mem_size, .. } | RackOp::AllocSwap { mem_size, .. } => {
                zombieland_mem::buffer::buffers_for(*mem_size).saturating_mul(32)
            }
            RackOp::Reclaim { nb_buffers, .. } => nb_buffers.saturating_mul(16),
            _ => 0,
        };
        Bytes::new(HDR.saturating_add(extra))
    }

    /// Controller-side processing time: in-memory database operations in
    /// the tens of microseconds, scaling mildly with the touched rows.
    /// Saturates instead of overflowing on absurd row counts (see
    /// [`RackOp::response_len`]); [`crate::codec::decode`] additionally
    /// rejects such sizes at the wire with [`crate::codec::CodecError::Oversized`].
    pub fn server_time(&self) -> SimDuration {
        let rows = match self {
            RackOp::GotoZombie { buffers, .. } => *buffers,
            RackOp::Reclaim { nb_buffers, .. } => *nb_buffers,
            RackOp::UsReclaim { buff_ids, .. } => buff_ids.len() as u64,
            RackOp::AllocExt { mem_size, .. } | RackOp::AllocSwap { mem_size, .. } => {
                zombieland_mem::buffer::buffers_for(*mem_size)
            }
            RackOp::AsGetFreeMem { .. } => 1,
            RackOp::GetLruZombie => 1,
        };
        SimDuration::from_micros(15)
            .saturating_add(SimDuration::from_nanos(200).saturating_mul(rows))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_names_match_paper() {
        let ops = [
            RackOp::GotoZombie {
                host: ServerId::new(0),
                buffers: 4,
            },
            RackOp::Reclaim {
                host: ServerId::new(0),
                nb_buffers: 2,
            },
            RackOp::UsReclaim {
                user: ServerId::new(1),
                buff_ids: vec![BufferId::new(0)],
            },
            RackOp::AllocExt {
                user: ServerId::new(1),
                mem_size: Bytes::mib(128),
            },
            RackOp::AllocSwap {
                user: ServerId::new(1),
                mem_size: Bytes::mib(64),
            },
            RackOp::AsGetFreeMem {
                host: ServerId::new(2),
            },
            RackOp::GetLruZombie,
        ];
        let names: Vec<&str> = ops.iter().map(|o| o.wire_name()).collect();
        assert_eq!(
            names,
            [
                "GS_goto_zombie",
                "GS_reclaim",
                "US_reclaim",
                "GS_alloc_ext",
                "GS_alloc_swap",
                "AS_get_free_mem",
                "GS_get_lru_zombie"
            ]
        );
    }

    #[test]
    fn sizes_scale_with_payload() {
        let small = RackOp::AllocExt {
            user: ServerId::new(0),
            mem_size: Bytes::mib(64),
        };
        let large = RackOp::AllocExt {
            user: ServerId::new(0),
            mem_size: Bytes::gib(4),
        };
        assert!(large.response_len() > small.response_len());
        assert!(large.server_time() > small.server_time());
        assert_eq!(small.request_len(), large.request_len());
    }

    #[test]
    fn adversarial_sizes_saturate_instead_of_overflowing() {
        // `u64::MAX` bytes is reachable by in-process construction (and,
        // before decode-side limits, from the wire). Both cost models
        // must clamp, not wrap or panic.
        let op = RackOp::AllocExt {
            user: ServerId::new(0),
            mem_size: Bytes::new(u64::MAX),
        };
        assert_eq!(op.server_time(), op.server_time());
        assert!(op.server_time() >= SimDuration::from_micros(15));
        assert!(op.response_len() >= Bytes::new(64));
        let op = RackOp::Reclaim {
            host: ServerId::new(0),
            nb_buffers: u64::MAX,
        };
        assert_eq!(op.server_time().as_nanos(), u64::MAX);
        assert_eq!(op.response_len(), Bytes::new(u64::MAX));
    }

    #[test]
    fn control_ops_are_fast() {
        // Control-plane work stays far below data-plane page transfers at
        // scale: everything under a millisecond of server time.
        let op = RackOp::GotoZombie {
            host: ServerId::new(0),
            buffers: 256,
        };
        assert!(op.server_time() < SimDuration::from_millis(1));
    }
}
