//! Pluggable remote-memory fabric backends.
//!
//! The paper's data path is RDMA one-sided verbs against zombie-lent
//! DRAM, but that is one point in the disaggregated-memory design space.
//! A [`FabricBackend`] captures the properties that distinguish the
//! points: how remote-page operations are priced, whether the pooled
//! tier is carved out of suspended hosts' RAM (so reclaiming it means
//! waking the lender) or lives on an always-on shared device, and what
//! the tier itself draws.
//!
//! Two backends register here:
//!
//! - [`RdmaZombie`] — the paper's design. Quoted fabric times pass
//!   through untouched and the pool is host memory, so every committed
//!   golden report stays byte-identical: the backend layer adds no
//!   arithmetic to the default path.
//! - [`CxlPool`] — a CXL-style pooled-memory tier: load/store latencies
//!   an order of magnitude below RDMA verbs, no wake-up cost to reclaim
//!   (the tier never sleeps), but a capacity cap per rack and a static
//!   draw that is paid whether or not the capacity is used.
//!
//! Backends resolve by CLI key through [`lookup`] (`--backend`,
//! `ZL_BACKEND`, a scenario file's `backend` key — same precedence as
//! every scenario knob); [`suggest`] powers the did-you-mean hint on a
//! typo.
//!
//! # Determinism rules
//!
//! A backend prices operations as a *pure function* of the quoted fabric
//! time and the operation's shape (count, payload bytes). No backend may
//! sample wall clocks, RNGs or global state: the simulator's bit-for-bit
//! determinism contract (same trace + config ⇒ identical report at any
//! shards × jobs) extends through this trait.

use core::fmt;

use zombieland_simcore::{Bytes, SimDuration};

/// A remote-memory backend: prices the data path and describes the
/// pooled tier's semantics. See the module docs for the determinism
/// rules implementations must follow.
pub trait FabricBackend: Send + Sync {
    /// Completion time of one remote read of `len` bytes. `quoted` is
    /// what the RDMA fabric model would charge; pass-through backends
    /// return it untouched.
    fn read_time(&self, quoted: SimDuration, len: Bytes) -> SimDuration;

    /// Completion time of one remote write of `len` bytes.
    fn write_time(&self, quoted: SimDuration, len: Bytes) -> SimDuration;

    /// Completion time of `reads` pipelined reads totalling `payload`
    /// bytes posted as one batch (the `read_batch_timed` shape: one base
    /// latency plus the serialized payload).
    fn batch_read_time(&self, quoted: SimDuration, reads: usize, payload: Bytes) -> SimDuration;

    /// Whether the pooled tier is lent by suspended hosts (the zombie
    /// design): reclaiming capacity then requires waking the lender, and
    /// the tier's draw is already priced by the host power model.
    /// `false` means a shared always-on tier with its own draw.
    fn pools_host_memory(&self) -> bool;

    /// Draw of one rack's pooled tier, as a fraction of one host's max
    /// power, given the tier's `capacity` and currently `allocated`
    /// memory (both in server-equivalents). `None` when the tier is host
    /// memory (no separate draw).
    fn pool_power_fraction(&self, capacity: f64, allocated: f64) -> Option<f64>;
}

/// The paper's backend: RDMA one-sided verbs against zombie-lent DRAM.
/// A strict pass-through — the conformance bar is byte-identical golden
/// reports, so this impl performs no arithmetic at all.
#[derive(Debug)]
pub struct RdmaZombie;

impl FabricBackend for RdmaZombie {
    fn read_time(&self, quoted: SimDuration, _len: Bytes) -> SimDuration {
        quoted
    }

    fn write_time(&self, quoted: SimDuration, _len: Bytes) -> SimDuration {
        quoted
    }

    fn batch_read_time(&self, quoted: SimDuration, _reads: usize, _payload: Bytes) -> SimDuration {
        quoted
    }

    fn pools_host_memory(&self) -> bool {
        true
    }

    fn pool_power_fraction(&self, _capacity: f64, _allocated: f64) -> Option<f64> {
        None
    }
}

/// A CXL-style pooled-memory tier: a switch-attached memory appliance
/// every host in the rack reaches with load/store semantics.
///
/// The latency point is calibrated to published CXL 2.0 switch numbers:
/// a few hundred nanoseconds per access versus the fabric's 1.6 µs READ
/// verb, and DDR-class streaming bandwidth. The tier never sleeps, so
/// reclaiming capacity has no wake-up cost — but the appliance draws
/// static power for its full capacity around the clock, which is the
/// trade the CXL-vs-zombie comparison is about.
#[derive(Debug)]
pub struct CxlPool {
    /// Port-to-port load latency of one access.
    read_base: SimDuration,
    /// Write latency (posted; slightly cheaper than a load).
    write_base: SimDuration,
    /// Streaming throughput in bytes per second.
    bandwidth_bps: f64,
    /// Idle draw per server-equivalent of *capacity*, as a fraction of
    /// one host's max power (DRAM refresh + controller + switch port).
    idle_fraction: f64,
    /// Additional draw per server-equivalent of *allocated* memory.
    active_fraction: f64,
}

impl CxlPool {
    /// Time to move `len` payload bytes once the access is in flight.
    fn serialize(&self, len: Bytes) -> SimDuration {
        SimDuration::from_secs_f64(len.get() as f64 / self.bandwidth_bps)
    }
}

impl FabricBackend for CxlPool {
    fn read_time(&self, _quoted: SimDuration, len: Bytes) -> SimDuration {
        self.read_base + self.serialize(len)
    }

    fn write_time(&self, _quoted: SimDuration, len: Bytes) -> SimDuration {
        self.write_base + self.serialize(len)
    }

    fn batch_read_time(&self, _quoted: SimDuration, reads: usize, payload: Bytes) -> SimDuration {
        if reads == 0 {
            return SimDuration::ZERO;
        }
        // Pipelined like the RDMA batch: one base latency, then the
        // serialized payload.
        self.read_base + self.serialize(payload)
    }

    fn pools_host_memory(&self) -> bool {
        false
    }

    fn pool_power_fraction(&self, capacity: f64, allocated: f64) -> Option<f64> {
        Some(self.idle_fraction * capacity + self.active_fraction * allocated)
    }
}

/// Default per-rack capacity of the CXL tier, in server-equivalents of
/// memory (the scenario `cxl_cap` key / `ZL_CXL_CAP` override it).
pub const DEFAULT_CXL_CAPACITY: f64 = 4.0;

/// One registered backend: its CLI key, report label and the pricing
/// object the rack/simulator layers call through.
pub struct BackendSpec {
    /// CLI name (lowercase; `--backend <key>` and [`lookup`]).
    pub key: &'static str,
    /// Report/daemon label.
    pub label: &'static str,
    /// One-line description for `--list-backends`.
    pub summary: &'static str,
    /// The pricing/semantics object.
    pub backend: &'static dyn FabricBackend,
}

impl fmt::Debug for BackendSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BackendSpec")
            .field("key", &self.key)
            .finish()
    }
}

static RDMA_ZOMBIE_IMPL: RdmaZombie = RdmaZombie;
static CXL_POOL_IMPL: CxlPool = CxlPool {
    read_base: SimDuration::from_nanos(350),
    write_base: SimDuration::from_nanos(300),
    bandwidth_bps: 28.0e9,
    idle_fraction: 0.08,
    active_fraction: 0.04,
};

/// The paper's RDMA-to-zombie backend (the default).
pub static RDMA_ZOMBIE: BackendSpec = BackendSpec {
    key: "rdma",
    label: "RdmaZombie",
    summary: "RDMA one-sided verbs against zombie-lent DRAM (the paper's design)",
    backend: &RDMA_ZOMBIE_IMPL,
};

/// The CXL-style pooled tier.
pub static CXL_POOL: BackendSpec = BackendSpec {
    key: "cxl",
    label: "CxlPool",
    summary: "CXL-style shared tier: ~350ns loads, no wake-up cost, capacity-capped, static draw",
    backend: &CXL_POOL_IMPL,
};

/// Every registered backend, in listing order (the paper's design
/// first).
pub static REGISTRY: [&BackendSpec; 2] = [&RDMA_ZOMBIE, &CXL_POOL];

/// Resolves a backend by CLI key or label, case-insensitively.
pub fn lookup(name: &str) -> Option<&'static BackendSpec> {
    REGISTRY
        .iter()
        .copied()
        .find(|s| s.key.eq_ignore_ascii_case(name) || s.label.eq_ignore_ascii_case(name))
}

/// The registry key closest to `name` (edit distance ≤ 2), for
/// did-you-mean hints on unknown-backend errors.
pub fn suggest(name: &str) -> Option<&'static str> {
    REGISTRY
        .iter()
        .map(|s| (edit_distance(&name.to_ascii_lowercase(), s.key), s.key))
        .filter(|&(d, _)| d <= 2)
        .min_by_key(|&(d, _)| d)
        .map(|(_, key)| key)
}

/// Plain Levenshtein distance over bytes — the registry keys are short
/// ASCII, so the O(n·m) table is a few dozen cells.
fn edit_distance(a: &str, b: &str) -> usize {
    let (a, b) = (a.as_bytes(), b.as_bytes());
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0usize; b.len() + 1];
    for (i, &ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, &cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            cur[j + 1] = sub.min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

#[cfg(test)]
mod tests {
    use super::*;
    use zombieland_simcore::PAGE_SIZE;

    #[test]
    fn registry_keys_are_unique_and_lowercase() {
        for (i, s) in REGISTRY.iter().enumerate() {
            assert_eq!(s.key, s.key.to_ascii_lowercase(), "{}", s.key);
            for other in &REGISTRY[i + 1..] {
                assert_ne!(s.key, other.key);
                assert_ne!(s.label, other.label);
            }
        }
    }

    #[test]
    fn lookup_is_case_insensitive_over_key_and_label() {
        assert!(std::ptr::eq(lookup("rdma").unwrap(), &RDMA_ZOMBIE));
        assert!(std::ptr::eq(lookup("RdmaZombie").unwrap(), &RDMA_ZOMBIE));
        assert!(std::ptr::eq(lookup("CXL").unwrap(), &CXL_POOL));
        assert!(lookup("nvlink").is_none());
    }

    #[test]
    fn suggestions_catch_typos_but_not_nonsense() {
        assert_eq!(suggest("cx1"), Some("cxl"));
        assert_eq!(suggest("rmda"), Some("rdma"));
        assert_eq!(suggest("CXL"), Some("cxl"));
        assert_eq!(suggest("infiniband"), None);
    }

    #[test]
    fn rdma_is_a_strict_pass_through() {
        let q = SimDuration::from_nanos(2_282);
        let page = Bytes::new(PAGE_SIZE);
        let b = RDMA_ZOMBIE.backend;
        assert_eq!(b.read_time(q, page), q);
        assert_eq!(b.write_time(q, page), q);
        assert_eq!(b.batch_read_time(q, 8, Bytes::kib(32)), q);
        assert!(b.pools_host_memory());
        assert!(b.pool_power_fraction(4.0, 2.0).is_none());
    }

    #[test]
    fn cxl_is_faster_than_the_quoted_fabric_page_read() {
        let page = Bytes::new(PAGE_SIZE);
        // The FDR fabric's 4 KiB READ quote is ~2.3 µs; a CXL load of the
        // same page must land well under it.
        let quoted = SimDuration::from_nanos(2_282);
        let cxl = CXL_POOL.backend.read_time(quoted, page);
        assert!(cxl < quoted / 2, "{cxl} vs {quoted}");
        assert!(cxl.as_nanos() > 300, "payload time is not free: {cxl}");
        // Batches pipeline: one base latency, not eight.
        let batch = CXL_POOL
            .backend
            .batch_read_time(quoted, 8, Bytes::new(8 * PAGE_SIZE));
        assert!(batch < cxl * 8);
        assert_eq!(
            CXL_POOL.backend.batch_read_time(quoted, 0, Bytes::ZERO),
            SimDuration::ZERO
        );
    }

    #[test]
    fn cxl_tier_draw_scales_with_capacity_and_use() {
        let b = CXL_POOL.backend;
        assert!(!b.pools_host_memory());
        let idle = b.pool_power_fraction(4.0, 0.0).unwrap();
        let busy = b.pool_power_fraction(4.0, 4.0).unwrap();
        assert!(idle > 0.0, "static draw is paid even when unused");
        assert!(busy > idle);
        assert_eq!(b.pool_power_fraction(0.0, 0.0), Some(0.0));
    }

    #[test]
    fn edit_distance_basics() {
        assert_eq!(edit_distance("cxl", "cxl"), 0);
        assert_eq!(edit_distance("cx1", "cxl"), 1);
        assert_eq!(edit_distance("", "ab"), 2);
        assert_eq!(edit_distance("kitten", "sitting"), 3);
    }
}
