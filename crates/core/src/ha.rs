//! High availability of the global memory controller (§4.1–4.2).
//!
//! "Secondary Memory Controller (secondary-ctr) enforces transparent high
//! availability of the global controller. It monitors the main
//! controller's state (periodic heart beat) and synchronously mirrors all
//! operations." [`CtrlDb`] is a deterministic state machine, so mirroring
//! is implemented by replaying every mutating call on the replica; a
//! missed heartbeat promotes the replica.

use zombieland_simcore::{SimDuration, SimTime};

use crate::db::CtrlDb;

/// The primary/secondary controller pair.
#[derive(Clone, Debug)]
pub struct HaPair {
    primary: CtrlDb,
    secondary: CtrlDb,
    primary_alive: bool,
    last_heartbeat: SimTime,
    heartbeat_timeout: SimDuration,
    failovers: u32,
}

impl HaPair {
    /// Creates a fresh pair. `heartbeat_timeout` is how long the secondary
    /// waits before declaring the primary dead.
    pub fn new(now: SimTime, heartbeat_timeout: SimDuration) -> Self {
        HaPair {
            primary: CtrlDb::new(),
            secondary: CtrlDb::new(),
            primary_alive: true,
            last_heartbeat: now,
            heartbeat_timeout,
            failovers: 0,
        }
    }

    /// Applies a mutating operation to the active controller *and* its
    /// mirror (synchronous mirroring), returning the active controller's
    /// result. After a failover only the promoted secondary is updated.
    ///
    /// Determinism of [`CtrlDb`] guarantees the two replicas stay
    /// identical; this is asserted in debug builds.
    pub fn apply<R>(&mut self, op: impl Fn(&mut CtrlDb) -> R) -> R {
        if self.primary_alive {
            let r = op(&mut self.primary);
            let _mirror = op(&mut self.secondary);
            debug_assert_eq!(
                self.primary, self.secondary,
                "mirroring diverged: CtrlDb op was not deterministic"
            );
            r
        } else {
            op(&mut self.secondary)
        }
    }

    /// Read access to the active controller's database.
    pub fn db(&self) -> &CtrlDb {
        if self.primary_alive {
            &self.primary
        } else {
            &self.secondary
        }
    }

    /// The primary sends a heartbeat.
    pub fn heartbeat(&mut self, now: SimTime) {
        if self.primary_alive {
            self.last_heartbeat = now;
        }
    }

    /// The secondary's monitor: promotes itself when the heartbeat is
    /// overdue. Returns `true` if a failover happened on this check.
    pub fn check(&mut self, now: SimTime) -> bool {
        if self.primary_alive && now.saturating_since(self.last_heartbeat) > self.heartbeat_timeout
        {
            self.primary_alive = false;
            self.failovers += 1;
            true
        } else {
            false
        }
    }

    /// Simulates a primary crash (it stops heartbeating; detection happens
    /// on the next overdue [`HaPair::check`]).
    pub fn kill_primary(&mut self) {
        // The crash itself is silent: the monitor notices via timeouts.
        // Freeze the heartbeat clock by doing nothing here.
        self.last_heartbeat = SimTime::ZERO;
    }

    /// Whether the original primary is still in charge.
    pub fn primary_alive(&self) -> bool {
        self.primary_alive
    }

    /// How many failovers occurred.
    pub fn failovers(&self) -> u32 {
        self.failovers
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::ServerId;

    fn t(s: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs(s)
    }

    #[test]
    fn mirror_stays_in_sync() {
        let mut ha = HaPair::new(t(0), SimDuration::from_secs(3));
        ha.apply(|db| db.register_host(ServerId::new(1)));
        assert_eq!(ha.db().len(), 0);
        // Internal replicas are equal (debug_assert in apply verified it).
        assert!(ha.primary_alive());
    }

    #[test]
    fn healthy_heartbeats_prevent_failover() {
        let mut ha = HaPair::new(t(0), SimDuration::from_secs(3));
        for s in 1..10 {
            ha.heartbeat(t(s));
            assert!(!ha.check(t(s)));
        }
        assert_eq!(ha.failovers(), 0);
    }

    #[test]
    fn missed_heartbeat_promotes_secondary() {
        let mut ha = HaPair::new(t(0), SimDuration::from_secs(3));
        ha.apply(|db| db.register_host(ServerId::new(1)));
        ha.heartbeat(t(1));
        ha.kill_primary();
        assert!(!ha.check(t(2)), "not yet overdue");
        assert!(ha.check(t(10)), "overdue now");
        assert!(!ha.primary_alive());
        assert_eq!(ha.failovers(), 1);
        // State survived: the promoted replica knows the host.
        ha.apply(|db| db.register_host(ServerId::new(2)));
        assert!(!ha.check(t(20)), "no second failover");
    }

    #[test]
    fn operations_continue_after_failover() {
        let mut ha = HaPair::new(t(0), SimDuration::from_secs(1));
        ha.apply(|db| db.register_host(ServerId::new(7)));
        ha.kill_primary();
        ha.check(t(5));
        // The controller keeps serving from the mirror.
        let zombie = ha.apply(|db| db.is_zombie(ServerId::new(7)));
        assert!(!zombie);
    }

    #[test]
    fn late_heartbeat_from_dead_primary_ignored() {
        let mut ha = HaPair::new(t(0), SimDuration::from_secs(1));
        ha.kill_primary();
        ha.check(t(5));
        ha.heartbeat(t(6)); // Zombie primary reappears: ignored.
        assert!(!ha.primary_alive());
    }
}
