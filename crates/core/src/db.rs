//! The global memory controller's in-memory buffer database (§4.3–4.4).
//!
//! "Global-mem-ctr uses an in-memory database to manage the allocation
//! state of these buffers. Each remote buffer is characterized by an
//! identifier, offset, size, its type (active/zombie), the host serving
//! the buffer, and the server currently using this buffer (nil if it is
//! not yet allocated to a server)."
//!
//! The database is a pure, deterministic state machine: the same sequence
//! of calls yields the same state. That is what makes the synchronous
//! mirroring in [`crate::ha`] trivial to reason about — the secondary is
//! just a replica that replays the calls.

use core::fmt;
use std::collections::BTreeMap;

use zombieland_mem::buffer::{BufferId, BUFF_SIZE};
use zombieland_rdma::MrKey;
use zombieland_simcore::Bytes;

use crate::server::ServerId;

/// Whether the buffer's host is a zombie or an active server — the
/// "type" column of the paper's database.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BufferKind {
    /// Served by a server in Sz.
    Zombie,
    /// Served by a running server's residual memory.
    Active,
}

/// One row of the buffer database.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BufferRecord {
    /// Rack-unique identifier.
    pub id: BufferId,
    /// Server whose RAM backs the buffer.
    pub host: ServerId,
    /// Registered memory-region key for one-sided access.
    pub mr: MrKey,
    /// Buffer size (uniform, `BUFF_SIZE`).
    pub size: Bytes,
    /// Host type.
    pub kind: BufferKind,
    /// The server currently using this buffer (`None` = free).
    pub user: Option<ServerId>,
}

/// Errors from database operations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DbError {
    /// The host is not registered.
    UnknownHost(ServerId),
    /// The buffer id does not exist.
    UnknownBuffer(BufferId),
    /// A guaranteed (`GS_alloc_ext`) allocation could not be fully
    /// satisfied: admission control rejects it rather than overcommit.
    AdmissionDenied {
        /// Buffers requested.
        requested: u64,
        /// Buffers actually free rack-wide.
        available: u64,
    },
    /// The caller does not use this buffer and cannot release it.
    NotTheUser(BufferId, ServerId),
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::UnknownHost(h) => write!(f, "{h} not registered"),
            DbError::UnknownBuffer(b) => write!(f, "{b:?} not in database"),
            DbError::AdmissionDenied {
                requested,
                available,
            } => write!(
                f,
                "admission control: {requested} buffers requested, {available} available"
            ),
            DbError::NotTheUser(b, s) => write!(f, "{s} does not use {b:?}"),
        }
    }
}

impl std::error::Error for DbError {}

/// What a reclaim decided (§4.3): free buffers are handed straight back;
/// allocated ones must first be revoked from their users via
/// `US_reclaim`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ReclaimPlan {
    /// Buffers returned without bothering anyone.
    pub returned_free: Vec<BufferId>,
    /// `(user, buffer)` pairs that require revocation.
    pub revoked: Vec<(ServerId, BufferId)>,
}

impl ReclaimPlan {
    /// Every buffer leaving the pool.
    pub fn all_buffers(&self) -> impl Iterator<Item = BufferId> + '_ {
        self.returned_free
            .iter()
            .copied()
            .chain(self.revoked.iter().map(|&(_, b)| b))
    }
}

#[derive(Clone, Debug, Default, PartialEq, Eq)]
struct HostInfo {
    is_zombie: bool,
    lent: Vec<BufferId>,
}

/// The controller database.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CtrlDb {
    buffers: BTreeMap<BufferId, BufferRecord>,
    hosts: BTreeMap<ServerId, HostInfo>,
    next_id: u64,
}

impl CtrlDb {
    /// Creates an empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a server (initially active, lending nothing). Idempotent.
    pub fn register_host(&mut self, host: ServerId) {
        self.hosts.entry(host).or_default();
    }

    fn host_mut(&mut self, host: ServerId) -> Result<&mut HostInfo, DbError> {
        self.hosts.get_mut(&host).ok_or(DbError::UnknownHost(host))
    }

    /// Records buffers lent by `host` (one `MrKey` per buffer) and — when
    /// `zombie` — marks the host as transitioning to Sz. This implements
    /// both `GS_goto_zombie(buffers)` and the active-server lending path
    /// behind `AS_get_free_mem()`.
    pub fn lend(
        &mut self,
        host: ServerId,
        mrs: &[MrKey],
        zombie: bool,
    ) -> Result<Vec<BufferId>, DbError> {
        // A host that is already a zombie cannot serve actively (its CPU
        // is off): any lend on its behalf is zombie-kind.
        let zombie = zombie || self.host_mut(host)?.is_zombie;
        let kind = if zombie {
            BufferKind::Zombie
        } else {
            BufferKind::Active
        };
        let mut ids = Vec::with_capacity(mrs.len());
        for &mr in mrs {
            let id = BufferId::new(self.next_id);
            self.next_id += 1;
            self.buffers.insert(
                id,
                BufferRecord {
                    id,
                    host,
                    mr,
                    size: BUFF_SIZE,
                    kind,
                    user: None,
                },
            );
            ids.push(id);
        }
        let info = self.hosts.get_mut(&host).expect("checked above");
        info.lent.extend(&ids);
        if zombie {
            info.is_zombie = true;
            // Existing lent buffers become zombie-type.
            for b in info.lent.clone() {
                self.buffers.get_mut(&b).expect("lent list consistent").kind = BufferKind::Zombie;
            }
        }
        Ok(ids)
    }

    /// Marks a host as awake again (its remaining lent buffers become
    /// active-type).
    pub fn mark_awake(&mut self, host: ServerId) -> Result<(), DbError> {
        let info = self.host_mut(host)?;
        info.is_zombie = false;
        for b in info.lent.clone() {
            self.buffers.get_mut(&b).expect("lent list consistent").kind = BufferKind::Active;
        }
        Ok(())
    }

    /// Whether a host is currently a zombie.
    pub fn is_zombie(&self, host: ServerId) -> bool {
        self.hosts.get(&host).is_some_and(|h| h.is_zombie)
    }

    /// Number of hosts currently in the zombie state.
    pub fn zombie_count(&self) -> u64 {
        self.hosts.values().filter(|h| h.is_zombie).count() as u64
    }

    /// Number of free (unallocated) buffers rack-wide.
    pub fn free_buffers(&self) -> u64 {
        self.buffers.values().filter(|b| b.user.is_none()).count() as u64
    }

    /// Free remote memory rack-wide.
    pub fn free_memory(&self) -> Bytes {
        BUFF_SIZE * self.free_buffers()
    }

    /// Looks up one record.
    pub fn record(&self, id: BufferId) -> Result<&BufferRecord, DbError> {
        self.buffers.get(&id).ok_or(DbError::UnknownBuffer(id))
    }

    /// Allocates up to `nb` buffers for `user`, zombie memory first
    /// ("memory from zombie servers have always higher priority than
    /// memory from active servers"), striped round-robin across hosts so
    /// one failing server costs as little as possible ("the memSize
    /// allocation is backed by memory from multiple remote servers").
    ///
    /// With `guaranteed` (the `GS_alloc_ext` contract) a shortfall is an
    /// [`DbError::AdmissionDenied`] error and nothing is allocated; without
    /// it (`GS_alloc_swap`) the call returns whatever was available.
    pub fn allocate(
        &mut self,
        user: ServerId,
        nb: u64,
        guaranteed: bool,
    ) -> Result<Vec<BufferRecord>, DbError> {
        let available = self.free_buffers();
        if guaranteed && available < nb {
            return Err(DbError::AdmissionDenied {
                requested: nb,
                available,
            });
        }

        // Free buffers grouped per host, zombie hosts first; never from
        // the user's own lent memory (that would be local, not remote).
        let mut zombie_hosts: Vec<(ServerId, Vec<BufferId>)> = Vec::new();
        let mut active_hosts: Vec<(ServerId, Vec<BufferId>)> = Vec::new();
        for (&host, info) in &self.hosts {
            if host == user {
                continue;
            }
            let free: Vec<BufferId> = info
                .lent
                .iter()
                .copied()
                .filter(|b| self.buffers[b].user.is_none())
                .collect();
            if free.is_empty() {
                continue;
            }
            if info.is_zombie {
                zombie_hosts.push((host, free));
            } else {
                active_hosts.push((host, free));
            }
        }

        let mut picked = Vec::with_capacity(nb as usize);
        for group in [&mut zombie_hosts, &mut active_hosts] {
            // Round-robin striping across the hosts of this tier.
            let mut idx = 0usize;
            while picked.len() < nb as usize && !group.is_empty() {
                idx %= group.len();
                let (_, free) = &mut group[idx];
                if let Some(b) = free.pop() {
                    picked.push(b);
                    idx += 1;
                } else {
                    group.remove(idx);
                }
            }
            if picked.len() == nb as usize {
                break;
            }
        }

        if guaranteed && picked.len() < nb as usize {
            // Cannot happen given the availability check, but keep the
            // invariant explicit.
            return Err(DbError::AdmissionDenied {
                requested: nb,
                available: picked.len() as u64,
            });
        }

        let records = picked
            .into_iter()
            .map(|b| {
                let rec = self.buffers.get_mut(&b).expect("picked from live set");
                rec.user = Some(user);
                *rec
            })
            .collect();
        Ok(records)
    }

    /// Releases buffers a user no longer needs.
    pub fn release(&mut self, user: ServerId, ids: &[BufferId]) -> Result<(), DbError> {
        // Validate everything first: release is all-or-nothing.
        for id in ids {
            let rec = self.record(*id)?;
            if rec.user != Some(user) {
                return Err(DbError::NotTheUser(*id, user));
            }
        }
        for id in ids {
            self.buffers.get_mut(id).expect("validated").user = None;
        }
        Ok(())
    }

    /// Reassigns buffers from one user to another — the migration
    /// protocol's "update the ownership pointers for the remote memory
    /// components" (§5.3). All-or-nothing.
    pub fn reassign(
        &mut self,
        from: ServerId,
        to: ServerId,
        ids: &[BufferId],
    ) -> Result<(), DbError> {
        for id in ids {
            let rec = self.record(*id)?;
            if rec.user != Some(from) {
                return Err(DbError::NotTheUser(*id, from));
            }
        }
        for id in ids {
            self.buffers.get_mut(id).expect("validated").user = Some(to);
        }
        Ok(())
    }

    /// Plans a reclaim of `nb` of `host`'s buffers (`GS_reclaim`):
    /// unallocated buffers first, then allocated ones (which the caller
    /// must revoke from their users via `US_reclaim`). The reclaimed
    /// buffers leave the database.
    pub fn reclaim(&mut self, host: ServerId, nb: u64) -> Result<ReclaimPlan, DbError> {
        let info = self.host_mut(host)?;
        let lent = info.lent.clone();
        let mut plan = ReclaimPlan::default();
        // Pass 1: free buffers.
        for &b in &lent {
            if plan.returned_free.len() as u64 == nb {
                break;
            }
            if self.buffers[&b].user.is_none() {
                plan.returned_free.push(b);
            }
        }
        // Pass 2: allocated buffers.
        for &b in &lent {
            if (plan.returned_free.len() + plan.revoked.len()) as u64 == nb {
                break;
            }
            if let Some(user) = self.buffers[&b].user {
                plan.revoked.push((user, b));
            }
        }
        // Apply: remove reclaimed rows.
        for b in plan.all_buffers().collect::<Vec<_>>() {
            self.buffers.remove(&b);
        }
        let info = self.hosts.get_mut(&host).expect("checked above");
        info.lent.retain(|b| self.buffers.contains_key(b));
        Ok(plan)
    }

    /// `GS_get_lru_zombie()`: the zombie host with the fewest *allocated*
    /// buffers — waking it reclaims the least shared memory.
    pub fn get_lru_zombie(&self) -> Option<ServerId> {
        self.hosts
            .iter()
            .filter(|(_, info)| info.is_zombie)
            .map(|(&host, info)| {
                let allocated = info
                    .lent
                    .iter()
                    .filter(|b| self.buffers[b].user.is_some())
                    .count();
                (allocated, host)
            })
            .min()
            .map(|(_, host)| host)
    }

    /// Buffers currently allocated to `user`.
    pub fn buffers_of_user(&self, user: ServerId) -> Vec<BufferRecord> {
        self.buffers
            .values()
            .filter(|b| b.user == Some(user))
            .copied()
            .collect()
    }

    /// Buffers lent by `host` that are still in the pool.
    pub fn buffers_of_host(&self, host: ServerId) -> Vec<BufferRecord> {
        self.hosts
            .get(&host)
            .map(|info| info.lent.iter().map(|b| self.buffers[b]).collect())
            .unwrap_or_default()
    }

    /// Total rows (for invariant checks).
    pub fn len(&self) -> usize {
        self.buffers.len()
    }

    /// Whether the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.buffers.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mr(n: u64) -> MrKey {
        // MrKey construction is crate-private in rdma; fabricate via a
        // fabric in real paths. For DB unit tests we only need distinct
        // keys, which register() would produce; use a tiny helper fabric.
        let mut f = zombieland_rdma::Fabric::new();
        let node = f.attach();
        let mut key = None;
        for _ in 0..=n {
            key = Some(f.register(node, Bytes::mib(64)).unwrap());
        }
        key.unwrap()
    }

    fn srv(n: u32) -> ServerId {
        ServerId::new(n)
    }

    fn db_with_zombie_and_active() -> CtrlDb {
        let mut db = CtrlDb::new();
        for s in 0..4 {
            db.register_host(srv(s));
        }
        // srv1 zombifies with 3 buffers, srv2 lends 2 active buffers.
        db.lend(srv(1), &[mr(0), mr(1), mr(2)], true).unwrap();
        db.lend(srv(2), &[mr(3), mr(4)], false).unwrap();
        db
    }

    #[test]
    fn lend_and_counts() {
        let db = db_with_zombie_and_active();
        assert_eq!(db.free_buffers(), 5);
        assert_eq!(db.free_memory(), Bytes::mib(64 * 5));
        assert!(db.is_zombie(srv(1)));
        assert!(!db.is_zombie(srv(2)));
    }

    #[test]
    fn zombie_memory_has_priority() {
        let mut db = db_with_zombie_and_active();
        let got = db.allocate(srv(0), 3, true).unwrap();
        assert_eq!(got.len(), 3);
        assert!(
            got.iter().all(|b| b.kind == BufferKind::Zombie),
            "zombie buffers must be exhausted before active ones: {got:?}"
        );
        // The next allocation spills to active buffers.
        let more = db.allocate(srv(0), 2, true).unwrap();
        assert!(more.iter().all(|b| b.kind == BufferKind::Active));
    }

    #[test]
    fn striping_spreads_across_hosts() {
        let mut db = CtrlDb::new();
        for s in 0..4 {
            db.register_host(srv(s));
        }
        db.lend(srv(1), &[mr(0), mr(1)], true).unwrap();
        db.lend(srv(2), &[mr(2), mr(3)], true).unwrap();
        db.lend(srv(3), &[mr(4), mr(5)], true).unwrap();
        let got = db.allocate(srv(0), 3, true).unwrap();
        let hosts: std::collections::HashSet<ServerId> = got.iter().map(|b| b.host).collect();
        assert_eq!(hosts.len(), 3, "3 buffers from 3 hosts: {got:?}");
    }

    #[test]
    fn guaranteed_alloc_is_admission_controlled() {
        let mut db = db_with_zombie_and_active();
        let err = db.allocate(srv(0), 6, true).unwrap_err();
        assert_eq!(
            err,
            DbError::AdmissionDenied {
                requested: 6,
                available: 5
            }
        );
        // Nothing was allocated by the failed call.
        assert_eq!(db.free_buffers(), 5);
    }

    #[test]
    fn best_effort_alloc_returns_partial() {
        let mut db = db_with_zombie_and_active();
        let got = db.allocate(srv(0), 100, false).unwrap();
        assert_eq!(got.len(), 5);
        assert_eq!(db.free_buffers(), 0);
    }

    #[test]
    fn never_allocates_own_memory() {
        let mut db = db_with_zombie_and_active();
        // srv1 lent everything zombie; it asks for remote memory itself.
        let got = db.allocate(srv(1), 5, false).unwrap();
        assert!(got.iter().all(|b| b.host != srv(1)), "{got:?}");
        assert_eq!(got.len(), 2, "only srv2's active buffers qualify");
    }

    #[test]
    fn release_returns_buffers_to_pool() {
        let mut db = db_with_zombie_and_active();
        let got = db.allocate(srv(0), 2, true).unwrap();
        let ids: Vec<BufferId> = got.iter().map(|b| b.id).collect();
        db.release(srv(0), &ids).unwrap();
        assert_eq!(db.free_buffers(), 5);
        // Double release fails.
        assert!(matches!(
            db.release(srv(0), &ids),
            Err(DbError::NotTheUser(..))
        ));
    }

    #[test]
    fn release_is_all_or_nothing() {
        let mut db = db_with_zombie_and_active();
        let got = db.allocate(srv(0), 1, true).unwrap();
        let mine = got[0].id;
        let bogus = BufferId::new(999);
        assert!(db.release(srv(0), &[mine, bogus]).is_err());
        // The valid buffer is still allocated.
        assert_eq!(db.buffers_of_user(srv(0)).len(), 1);
    }

    #[test]
    fn reclaim_prefers_free_buffers() {
        let mut db = db_with_zombie_and_active();
        // Allocate one zombie buffer to srv0, leaving 2 free on srv1.
        let got = db.allocate(srv(0), 1, true).unwrap();
        assert_eq!(got[0].host, srv(1));
        let plan = db.reclaim(srv(1), 2).unwrap();
        assert_eq!(plan.returned_free.len(), 2);
        assert!(plan.revoked.is_empty(), "free buffers sufficed");
        assert_eq!(db.buffers_of_host(srv(1)).len(), 1);
    }

    #[test]
    fn reclaim_revokes_when_needed() {
        let mut db = db_with_zombie_and_active();
        db.allocate(srv(0), 3, true).unwrap(); // All zombie buffers used.
        let plan = db.reclaim(srv(1), 3).unwrap();
        assert!(plan.returned_free.is_empty());
        assert_eq!(plan.revoked.len(), 3);
        assert!(plan.revoked.iter().all(|&(u, _)| u == srv(0)));
        // Reclaimed rows are gone.
        assert_eq!(db.buffers_of_host(srv(1)).len(), 0);
        assert_eq!(db.buffers_of_user(srv(0)).len(), 0);
    }

    #[test]
    fn lru_zombie_minimizes_reclaim() {
        let mut db = CtrlDb::new();
        for s in 0..4 {
            db.register_host(srv(s));
        }
        db.lend(srv(1), &[mr(0), mr(1)], true).unwrap();
        db.lend(srv(2), &[mr(2), mr(3)], true).unwrap();
        assert!(db.get_lru_zombie().is_some());
        // Allocate both of srv1's buffers; srv2 becomes the LRU zombie.
        let got = db.allocate(srv(0), 4, false).unwrap();
        let srv1_used = got.iter().filter(|b| b.host == srv(1)).count();
        assert!(srv1_used > 0);
        // Free srv2's buffers again.
        let ids: Vec<BufferId> = got
            .iter()
            .filter(|b| b.host == srv(2))
            .map(|b| b.id)
            .collect();
        db.release(srv(0), &ids).unwrap();
        assert_eq!(db.get_lru_zombie(), Some(srv(2)));
    }

    #[test]
    fn wake_flips_buffer_kind() {
        let mut db = db_with_zombie_and_active();
        db.mark_awake(srv(1)).unwrap();
        assert!(!db.is_zombie(srv(1)));
        assert!(db
            .buffers_of_host(srv(1))
            .iter()
            .all(|b| b.kind == BufferKind::Active));
        assert_eq!(db.get_lru_zombie(), None);
    }

    #[test]
    fn replaying_calls_reproduces_state() {
        // The mirroring precondition: CtrlDb is deterministic.
        let build = || {
            let mut db = CtrlDb::new();
            for s in 0..3 {
                db.register_host(srv(s));
            }
            db.lend(srv(1), &[mr(0), mr(1)], true).unwrap();
            db.allocate(srv(0), 1, true).unwrap();
            db.reclaim(srv(1), 1).unwrap();
            db
        };
        assert_eq!(build(), build());
    }
}
