//! The remote memory manager (remote-mem-mgr) agent bookkeeping.
//!
//! Every server runs one of these (§4.1). On the *user* side it tracks the
//! buffers the controller granted, hands out page-sized slots inside them,
//! and — crucially for the paper's fault-tolerance story — remembers that
//! "each write to a remote buffer (backing either a RAM Extension or an
//! Explicit SD) is asynchronously mirrored to the local storage". That
//! backup is what makes revocation (`US_reclaim`) survivable: revoked
//! pages are re-placed from the local copy, or served from it when no
//! remote capacity remains.

use core::fmt;
use std::collections::{BTreeMap, BTreeSet};

use zombieland_mem::buffer::{BufferId, RemoteSlot, SlotMap};
use zombieland_simcore::{Bytes, FastMap, FastSet, Pages};

use crate::db::BufferRecord;
use crate::server::ServerId;

/// A stable handle to one remotely placed page. The hypervisor stores
/// handles in its page tables; the manager tracks where each handle's
/// bytes physically are (they can move under revocation).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PageHandle(u64);

impl PageHandle {
    /// The raw value.
    pub const fn get(self) -> u64 {
        self.0
    }
}

impl fmt::Debug for PageHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "page:{}", self.0)
    }
}

/// Which allocation pool a buffer belongs to: RAM Extension (guaranteed)
/// or Explicit Swap Device (best-effort).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PoolKind {
    /// `GS_alloc_ext` memory.
    Ext,
    /// `GS_alloc_swap` memory.
    Swap,
}

/// Where a page currently lives.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PageLoc {
    /// In a remote buffer slot.
    Remote(RemoteSlot),
    /// Only in the local backup (its remote buffer was revoked and no
    /// remote capacity was left — the paper's "slower path").
    LocalBackup,
}

/// What happened to each page of a revoked buffer.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Revocation {
    /// Pages re-placed into other remote slots: `(handle, new_slot)`.
    /// The caller must copy the bytes (local backup → new remote slot).
    pub relocated: Vec<(PageHandle, RemoteSlot)>,
    /// Pages now served from the local backup only.
    pub fell_back: Vec<PageHandle>,
}

/// Errors from manager bookkeeping.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ManagerError {
    /// No free slot in any granted buffer of the pool.
    NoRemoteCapacity(PoolKind),
    /// Unknown handle.
    UnknownHandle(PageHandle),
    /// Unknown / already revoked buffer.
    UnknownBuffer(BufferId),
    /// The buffer still holds live pages and cannot be released.
    BufferBusy(BufferId),
}

impl fmt::Display for ManagerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ManagerError::NoRemoteCapacity(p) => write!(f, "no free {p:?} slots"),
            ManagerError::UnknownHandle(h) => write!(f, "{h:?} unknown"),
            ManagerError::UnknownBuffer(b) => write!(f, "{b:?} not granted"),
            ManagerError::BufferBusy(b) => write!(f, "{b:?} still holds pages"),
        }
    }
}

impl std::error::Error for ManagerError {}

struct Granted {
    record: BufferRecord,
    pool: PoolKind,
    slots: SlotMap,
    /// Live handles in this buffer. Unordered — every iteration site
    /// sorts explicitly so revocation and loss outcomes stay
    /// deterministic.
    pages: FastSet<PageHandle>,
}

/// The per-server agent state.
pub struct RemoteMemManager {
    server: ServerId,
    granted: BTreeMap<BufferId, Granted>,
    /// Handle → location. On the page-fault path this is hit several
    /// times per fault (locate, victim lookup, rewrite), so it uses the
    /// deterministic fast-hash map; it is never iterated.
    pages: FastMap<PageHandle, PageLoc>,
    next_handle: u64,
    backup_pages_written: u64,
    /// The asynchronous local-storage mirror's *contents*, kept only for
    /// pages placed through the data-carrying path (timing-only paths
    /// just count `backup_pages_written`).
    backup_store: BTreeMap<PageHandle, Box<[u8]>>,
}

impl RemoteMemManager {
    /// Creates the agent for `server`.
    pub fn new(server: ServerId) -> Self {
        RemoteMemManager {
            server,
            granted: BTreeMap::new(),
            pages: FastMap::default(),
            next_handle: 0,
            backup_pages_written: 0,
            backup_store: BTreeMap::new(),
        }
    }

    /// The server this agent runs on.
    pub fn server(&self) -> ServerId {
        self.server
    }

    /// Registers a buffer the controller granted.
    pub fn grant(&mut self, record: BufferRecord, pool: PoolKind) {
        self.granted.insert(
            record.id,
            Granted {
                record,
                pool,
                slots: SlotMap::new(record.id),
                pages: FastSet::default(),
            },
        );
    }

    /// The granted buffers of a pool.
    pub fn granted_buffers(&self, pool: PoolKind) -> Vec<BufferRecord> {
        self.granted
            .values()
            .filter(|g| g.pool == pool)
            .map(|g| g.record)
            .collect()
    }

    /// The record behind a granted buffer.
    pub fn buffer_record(&self, id: BufferId) -> Result<BufferRecord, ManagerError> {
        self.granted
            .get(&id)
            .map(|g| g.record)
            .ok_or(ManagerError::UnknownBuffer(id))
    }

    /// Free remote page slots available in a pool.
    pub fn free_slots(&self, pool: PoolKind) -> Pages {
        Pages::new(
            self.granted
                .values()
                .filter(|g| g.pool == pool)
                .map(|g| g.slots.free_slots())
                .sum(),
        )
    }

    /// Remote capacity of a pool (free + used).
    pub fn pool_capacity(&self, pool: PoolKind) -> Bytes {
        self.granted
            .values()
            .filter(|g| g.pool == pool)
            .map(|g| g.record.size)
            .sum()
    }

    /// Places a new page: takes a slot from the pool's granted buffers
    /// (filling buffers in id order) and returns its handle and slot.
    /// The caller performs the RDMA write; the manager counts the
    /// asynchronous backup mirror.
    pub fn place_page(&mut self, pool: PoolKind) -> Result<(PageHandle, RemoteSlot), ManagerError> {
        let g = self
            .granted
            .values_mut()
            .find(|g| g.pool == pool && g.slots.free_slots() > 0)
            .ok_or(ManagerError::NoRemoteCapacity(pool))?;
        let slot = g.slots.take().expect("free_slots > 0");
        let handle = PageHandle(self.next_handle);
        self.next_handle += 1;
        g.pages.insert(handle);
        self.pages.insert(handle, PageLoc::Remote(slot));
        self.backup_pages_written += 1; // Async local mirror.
        Ok((handle, slot))
    }

    /// Where a page's bytes currently are.
    pub fn locate(&self, handle: PageHandle) -> Result<PageLoc, ManagerError> {
        self.pages
            .get(&handle)
            .copied()
            .ok_or(ManagerError::UnknownHandle(handle))
    }

    /// Rewrites an existing page in place (the hypervisor re-demoting a
    /// dirty page to the same slot). Counts the backup mirror.
    pub fn note_rewrite(&mut self, handle: PageHandle) -> Result<PageLoc, ManagerError> {
        self.backup_pages_written += 1;
        self.locate(handle)
    }

    /// Records the mirror *contents* for a data-carrying page (the async
    /// local-storage write the paper describes, with the bytes retained).
    pub fn store_backup(&mut self, handle: PageHandle, data: &[u8]) -> Result<(), ManagerError> {
        if !self.pages.contains_key(&handle) {
            return Err(ManagerError::UnknownHandle(handle));
        }
        self.backup_store.insert(handle, data.into());
        Ok(())
    }

    /// The mirrored bytes of a page, if it went through the data path.
    pub fn backup_bytes(&self, handle: PageHandle) -> Option<&[u8]> {
        self.backup_store.get(&handle).map(|b| b.as_ref())
    }

    /// Downgrades a page to its local backup copy (its remote host died
    /// without a reclaim handshake). The slot bookkeeping of the dead
    /// buffer is dropped silently — the buffer itself is gone.
    pub fn downgrade_to_backup(&mut self, handle: PageHandle) -> Result<(), ManagerError> {
        let loc = self
            .pages
            .get_mut(&handle)
            .ok_or(ManagerError::UnknownHandle(handle))?;
        if let PageLoc::Remote(slot) = *loc {
            if let Some(g) = self.granted.get_mut(&slot.buffer) {
                g.slots.release(slot);
                g.pages.remove(&handle);
            }
            *loc = PageLoc::LocalBackup;
        }
        Ok(())
    }

    /// Drops a granted buffer whose host vanished: every page in it
    /// downgrades to its local backup (no relocation — there was no
    /// reclaim handshake to copy anything). Returns the affected pages.
    pub fn lose_buffer(&mut self, buffer: BufferId) -> Result<Vec<PageHandle>, ManagerError> {
        let g = self
            .granted
            .remove(&buffer)
            .ok_or(ManagerError::UnknownBuffer(buffer))?;
        let mut lost: Vec<PageHandle> = g.pages.into_iter().collect();
        // The set is unordered; callers observe this list, so pin the
        // order the old ordered set produced.
        lost.sort_unstable();
        for h in &lost {
            self.pages.insert(*h, PageLoc::LocalBackup);
        }
        Ok(lost)
    }

    /// Frees a page (e.g. after promoting it back to local RAM).
    pub fn free_page(&mut self, handle: PageHandle) -> Result<(), ManagerError> {
        let loc = self
            .pages
            .remove(&handle)
            .ok_or(ManagerError::UnknownHandle(handle))?;
        self.backup_store.remove(&handle);
        if let PageLoc::Remote(slot) = loc {
            if let Some(g) = self.granted.get_mut(&slot.buffer) {
                g.slots.release(slot);
                g.pages.remove(&handle);
            }
        }
        Ok(())
    }

    /// Voluntarily returns an *empty* granted buffer (before the user
    /// releases it to the controller).
    pub fn ungrant(&mut self, buffer: BufferId) -> Result<(), ManagerError> {
        let g = self
            .granted
            .get(&buffer)
            .ok_or(ManagerError::UnknownBuffer(buffer))?;
        if !g.pages.is_empty() {
            return Err(ManagerError::BufferBusy(buffer));
        }
        self.granted.remove(&buffer);
        Ok(())
    }

    /// Handles a `US_reclaim` revocation of one buffer: every page in it
    /// is re-placed into another granted slot if possible (the caller then
    /// copies backup → new slot), otherwise falls back to the local
    /// backup. The buffer leaves the granted set.
    pub fn revoke(&mut self, buffer: BufferId) -> Result<Revocation, ManagerError> {
        self.revoke_many(&[buffer])
    }

    /// Handles a `US_reclaim(buff_IDs)` revoking several buffers at once.
    /// All victims leave the granted set *before* any page is re-placed,
    /// so pages never relocate into a sibling that is itself being
    /// revoked.
    pub fn revoke_many(&mut self, buffers: &[BufferId]) -> Result<Revocation, ManagerError> {
        let mut displaced = BTreeSet::new();
        let mut victims = Vec::with_capacity(buffers.len());
        for b in buffers {
            if !self.granted.contains_key(b) {
                return Err(ManagerError::UnknownBuffer(*b));
            }
        }
        for b in buffers {
            let victim = self.granted.remove(b).expect("validated above");
            displaced.extend(victim.pages.iter().copied());
            victims.push(victim);
        }
        let pool = victims.first().map(|v| v.pool).unwrap_or(PoolKind::Ext);
        let mut outcome = Revocation::default();
        self.replace_pages(displaced, pool, &mut outcome);
        Ok(outcome)
    }

    fn replace_pages(
        &mut self,
        displaced: BTreeSet<PageHandle>,
        pool: PoolKind,
        outcome: &mut Revocation,
    ) {
        for handle in displaced {
            // Try any remaining buffer, preferring the same pool (lowest
            // buffer id first for determinism).
            let key = self
                .granted
                .iter()
                .filter(|(_, g)| g.slots.free_slots() > 0)
                .min_by_key(|(id, g)| (g.pool != pool, **id))
                .map(|(id, _)| *id);
            let new_slot = key.map(|k| {
                let g = self.granted.get_mut(&k).expect("key from live scan");
                let slot = g.slots.take().expect("free_slots > 0");
                g.pages.insert(handle);
                slot
            });
            match new_slot {
                Some(slot) => {
                    self.pages.insert(handle, PageLoc::Remote(slot));
                    outcome.relocated.push((handle, slot));
                }
                None => {
                    self.pages.insert(handle, PageLoc::LocalBackup);
                    outcome.fell_back.push(handle);
                }
            }
        }
    }

    /// Pages mirrored to local storage so far (fault-tolerance traffic).
    pub fn backup_pages_written(&self) -> u64 {
        self.backup_pages_written
    }

    /// Number of live page handles.
    pub fn live_pages(&self) -> u64 {
        self.pages.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::db::CtrlDb;
    use zombieland_rdma::Fabric;

    fn granted_records(n: usize) -> Vec<BufferRecord> {
        // Build real records through the DB so ids/MRs are plausible.
        let mut f = Fabric::new();
        let node = f.attach();
        let mrs: Vec<_> = (0..n)
            .map(|_| f.register(node, Bytes::mib(64)).unwrap())
            .collect();
        let mut db = CtrlDb::new();
        db.register_host(ServerId::new(1));
        db.register_host(ServerId::new(0));
        db.lend(ServerId::new(1), &mrs, true).unwrap();
        db.allocate(ServerId::new(0), n as u64, true).unwrap()
    }

    #[test]
    fn place_locate_free_cycle() {
        let mut m = RemoteMemManager::new(ServerId::new(0));
        let recs = granted_records(1);
        m.grant(recs[0], PoolKind::Ext);
        let (h, slot) = m.place_page(PoolKind::Ext).unwrap();
        assert_eq!(m.locate(h), Ok(PageLoc::Remote(slot)));
        assert_eq!(m.live_pages(), 1);
        assert_eq!(m.backup_pages_written(), 1);
        m.free_page(h).unwrap();
        assert_eq!(m.live_pages(), 0);
        assert_eq!(m.locate(h), Err(ManagerError::UnknownHandle(h)));
    }

    #[test]
    fn pools_are_separate() {
        let mut m = RemoteMemManager::new(ServerId::new(0));
        let recs = granted_records(2);
        m.grant(recs[0], PoolKind::Ext);
        m.grant(recs[1], PoolKind::Swap);
        assert_eq!(m.pool_capacity(PoolKind::Ext), Bytes::mib(64));
        let (_, slot) = m.place_page(PoolKind::Swap).unwrap();
        assert_eq!(slot.buffer, recs[1].id);
        // Exhausting one pool does not touch the other.
        while m.place_page(PoolKind::Swap).is_ok() {}
        assert_eq!(
            m.place_page(PoolKind::Swap),
            Err(ManagerError::NoRemoteCapacity(PoolKind::Swap))
        );
        assert!(m.place_page(PoolKind::Ext).is_ok());
    }

    #[test]
    fn revocation_relocates_into_spare_capacity() {
        let mut m = RemoteMemManager::new(ServerId::new(0));
        let mut recs = granted_records(2);
        recs.sort_by_key(|r| r.id);
        m.grant(recs[0], PoolKind::Ext);
        m.grant(recs[1], PoolKind::Ext);
        // Put 3 pages into the first buffer.
        let mut handles = Vec::new();
        for _ in 0..3 {
            let (h, slot) = m.place_page(PoolKind::Ext).unwrap();
            assert_eq!(slot.buffer, recs[0].id, "fills buffers in id order");
            handles.push(h);
        }
        let out = m.revoke(recs[0].id).unwrap();
        assert_eq!(out.relocated.len(), 3);
        assert!(out.fell_back.is_empty());
        for (h, slot) in &out.relocated {
            assert_eq!(slot.buffer, recs[1].id);
            assert_eq!(m.locate(*h), Ok(PageLoc::Remote(*slot)));
        }
        // The revoked buffer is gone.
        assert_eq!(
            m.revoke(recs[0].id),
            Err(ManagerError::UnknownBuffer(recs[0].id))
        )
    }

    #[test]
    fn revocation_falls_back_to_local_backup() {
        let mut m = RemoteMemManager::new(ServerId::new(0));
        let recs = granted_records(1);
        m.grant(recs[0], PoolKind::Ext);
        let (h, _) = m.place_page(PoolKind::Ext).unwrap();
        let out = m.revoke(recs[0].id).unwrap();
        assert!(out.relocated.is_empty());
        assert_eq!(out.fell_back, vec![h]);
        assert_eq!(m.locate(h), Ok(PageLoc::LocalBackup));
        // Capacity is gone.
        assert_eq!(
            m.place_page(PoolKind::Ext),
            Err(ManagerError::NoRemoteCapacity(PoolKind::Ext))
        );
        // Freeing a fallback page is fine.
        m.free_page(h).unwrap();
    }

    #[test]
    fn rewrite_counts_backup_traffic() {
        let mut m = RemoteMemManager::new(ServerId::new(0));
        let recs = granted_records(1);
        m.grant(recs[0], PoolKind::Ext);
        let (h, _) = m.place_page(PoolKind::Ext).unwrap();
        m.note_rewrite(h).unwrap();
        m.note_rewrite(h).unwrap();
        assert_eq!(m.backup_pages_written(), 3);
    }
}
