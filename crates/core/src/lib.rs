//! Rack-level memory disaggregation with zombie servers — the paper's
//! primary contribution (§4).
//!
//! A rack contains general-purpose servers in one of five roles (Fig. 7):
//! the **global memory controller** (`global-mem-ctr`), its **secondary**
//! mirror, **user servers** that consume remote memory, **zombie servers**
//! that serve memory while suspended in Sz, and **active servers** that
//! serve residual memory while running. Every server runs a **remote
//! memory manager** agent that talks to the controller over RPC-over-RDMA
//! and moves pages with one-sided verbs.
//!
//! Crate layout:
//!
//! - [`server`] — server identity and per-server platform/memory state.
//! - [`db`] — the controller's in-memory buffer database: who lends what,
//!   who uses what, zombie-first allocation, reclaim planning.
//! - [`protocol`] — the paper's wire functions (`GS_goto_zombie`,
//!   `GS_reclaim`, `US_reclaim`, `GS_alloc_ext`, `GS_alloc_swap`,
//!   `AS_get_free_mem`, `GS_get_lru_zombie`) with their RPC cost model.
//! - [`codec`] — the versioned little-endian wire encoding of those
//!   operations and their responses (buffer-descriptor lists, LRU-zombie
//!   answers, typed error frames). Total decoders with sanity limits:
//!   corrupt or absurd input errors, never panics.
//! - [`manager`] — the remote-mem-mgr agent: granted-buffer slot
//!   bookkeeping, page handles, the asynchronous local backup that makes
//!   revocation safe.
//! - [`ha`] — heartbeat monitoring and synchronous mirroring onto the
//!   secondary controller, with failover.
//! - [`rack`] — [`rack::Rack`], the facade wiring fabric + platforms +
//!   controller + managers together; the hypervisor and cloud layers
//!   program against it.
//! - [`backend`] — pluggable remote-memory fabric backends
//!   ([`backend::FabricBackend`]): the paper's RDMA-to-zombie path and a
//!   CXL-style pooled tier, selected per scenario via `--backend`.
//! - [`scenario`] — the typed experiment configuration layer (`ZL_*`
//!   environment, `--scenario` files, documented precedence); the one
//!   module in the workspace that reads `ZL_*` variables.

pub mod backend;
pub mod codec;
pub mod db;
pub mod ha;
pub mod manager;
pub mod protocol;
pub mod rack;
pub mod scenario;
pub mod server;

pub use backend::{BackendSpec, FabricBackend};
pub use manager::PageHandle;
pub use rack::{DemandFetchBatch, Rack, RackConfig, RackError};
pub use server::ServerId;
