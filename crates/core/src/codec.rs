//! Wire encoding of the control-plane protocol.
//!
//! The RPC layer moves bytes; this module defines what those bytes are. A
//! small, versioned, little-endian TLV format — one opcode byte, a u16
//! version, then the operation's fields; variable-length id lists carry a
//! u32 count. Nothing here allocates on the decode hot path beyond the
//! output vectors, and every decoder is total: corrupt input yields
//! [`CodecError`], never a panic.
//!
//! Both directions have wire form: requests are [`RackOp`]s
//! ([`encode`]/[`decode`]), responses are [`RackResponse`]s
//! ([`encode_response`]/[`decode_response`]) — buffer-descriptor lists,
//! LRU-zombie answers, reclaim plans, and typed error frames, each
//! stamped with the controller's modeled decision time so clients can
//! account latency without trusting wall clocks.
//!
//! Decoders enforce sanity limits ([`MAX_MEM_SIZE`], [`MAX_NB_BUFFERS`],
//! [`MAX_LIST_LEN`]): a frame declaring an absurd allocation size or id
//! count is rejected with [`CodecError::Oversized`] before any cost model
//! or allocator sees the value.

use zombieland_mem::buffer::BufferId;
use zombieland_simcore::{Bytes, SimDuration};

use crate::protocol::RackOp;
use crate::server::ServerId;

/// Protocol version carried in every message.
pub const WIRE_VERSION: u16 = 1;

/// Largest allocation size a wire request may carry (64 TiB — far beyond
/// any rack's pool, but finite, so `buffers_for(mem_size)` stays sane).
pub const MAX_MEM_SIZE: Bytes = Bytes::new(64 << 40);

/// Largest buffer count a lend/reclaim request may carry (2^20 buffers of
/// 64 MiB each = 64 TiB, matching [`MAX_MEM_SIZE`]).
pub const MAX_NB_BUFFERS: u64 = 1 << 20;

/// Longest id list any message may carry (keeps a frame under the
/// transport's frame-size cap and bounds decode-side allocation).
pub const MAX_LIST_LEN: u32 = 1 << 16;

/// Opcodes, one per §4.3–4.4 function.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[repr(u8)]
enum Opcode {
    GotoZombie = 1,
    Reclaim = 2,
    UsReclaim = 3,
    AllocExt = 4,
    AllocSwap = 5,
    AsGetFreeMem = 6,
    GetLruZombie = 7,
}

impl Opcode {
    fn from_byte(b: u8) -> Option<Opcode> {
        match b {
            1 => Some(Opcode::GotoZombie),
            2 => Some(Opcode::Reclaim),
            3 => Some(Opcode::UsReclaim),
            4 => Some(Opcode::AllocExt),
            5 => Some(Opcode::AllocSwap),
            6 => Some(Opcode::AsGetFreeMem),
            7 => Some(Opcode::GetLruZombie),
            _ => None,
        }
    }
}

/// Decode failures.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CodecError {
    /// Fewer bytes than the fields require.
    Truncated,
    /// Unknown opcode byte.
    UnknownOpcode(u8),
    /// A protocol version this peer does not speak.
    VersionMismatch(u16),
    /// Bytes left over after the last field.
    TrailingBytes(usize),
    /// A size or count field beyond the protocol's sanity limits.
    Oversized {
        /// Which field tripped the limit.
        field: &'static str,
        /// The declared value.
        got: u64,
        /// The limit it exceeded.
        max: u64,
    },
}

impl core::fmt::Display for CodecError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "message truncated"),
            CodecError::UnknownOpcode(b) => write!(f, "unknown opcode {b:#x}"),
            CodecError::VersionMismatch(v) => write!(f, "wire version {v} unsupported"),
            CodecError::TrailingBytes(n) => write!(f, "{n} trailing bytes"),
            CodecError::Oversized { field, got, max } => {
                write!(f, "{field} = {got} exceeds protocol limit {max}")
            }
        }
    }
}

impl std::error::Error for CodecError {}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        let end = self.pos.checked_add(n).ok_or(CodecError::Truncated)?;
        if end > self.buf.len() {
            return Err(CodecError::Truncated);
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, CodecError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("2")))
    }

    fn u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    fn u64(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    fn finish(self) -> Result<(), CodecError> {
        let rest = self.buf.len() - self.pos;
        if rest == 0 {
            Ok(())
        } else {
            Err(CodecError::TrailingBytes(rest))
        }
    }
}

fn put_header(out: &mut Vec<u8>, op: Opcode) {
    out.push(op as u8);
    out.extend_from_slice(&WIRE_VERSION.to_le_bytes());
}

fn bounded(field: &'static str, got: u64, max: u64) -> Result<u64, CodecError> {
    if got > max {
        Err(CodecError::Oversized { field, got, max })
    } else {
        Ok(got)
    }
}

fn bounded_count(field: &'static str, got: u32) -> Result<usize, CodecError> {
    bounded(field, got as u64, MAX_LIST_LEN as u64).map(|n| n as usize)
}

/// Encodes an operation to its wire bytes.
pub fn encode(op: &RackOp) -> Vec<u8> {
    let mut out = Vec::with_capacity(32);
    match op {
        RackOp::GotoZombie { host, buffers } => {
            put_header(&mut out, Opcode::GotoZombie);
            out.extend_from_slice(&host.get().to_le_bytes());
            out.extend_from_slice(&buffers.to_le_bytes());
        }
        RackOp::Reclaim { host, nb_buffers } => {
            put_header(&mut out, Opcode::Reclaim);
            out.extend_from_slice(&host.get().to_le_bytes());
            out.extend_from_slice(&nb_buffers.to_le_bytes());
        }
        RackOp::UsReclaim { user, buff_ids } => {
            put_header(&mut out, Opcode::UsReclaim);
            out.extend_from_slice(&user.get().to_le_bytes());
            out.extend_from_slice(&(buff_ids.len() as u32).to_le_bytes());
            for b in buff_ids {
                out.extend_from_slice(&b.get().to_le_bytes());
            }
        }
        RackOp::AllocExt { user, mem_size } => {
            put_header(&mut out, Opcode::AllocExt);
            out.extend_from_slice(&user.get().to_le_bytes());
            out.extend_from_slice(&mem_size.get().to_le_bytes());
        }
        RackOp::AllocSwap { user, mem_size } => {
            put_header(&mut out, Opcode::AllocSwap);
            out.extend_from_slice(&user.get().to_le_bytes());
            out.extend_from_slice(&mem_size.get().to_le_bytes());
        }
        RackOp::AsGetFreeMem { host } => {
            put_header(&mut out, Opcode::AsGetFreeMem);
            out.extend_from_slice(&host.get().to_le_bytes());
        }
        RackOp::GetLruZombie => {
            put_header(&mut out, Opcode::GetLruZombie);
        }
    }
    out
}

/// Decodes wire bytes back into an operation.
pub fn decode(bytes: &[u8]) -> Result<RackOp, CodecError> {
    let mut r = Reader::new(bytes);
    let op = r.u8()?;
    let op = Opcode::from_byte(op).ok_or(CodecError::UnknownOpcode(op))?;
    let version = r.u16()?;
    if version != WIRE_VERSION {
        return Err(CodecError::VersionMismatch(version));
    }
    let decoded = match op {
        Opcode::GotoZombie => RackOp::GotoZombie {
            host: ServerId::new(r.u32()?),
            buffers: bounded("buffers", r.u64()?, MAX_NB_BUFFERS)?,
        },
        Opcode::Reclaim => RackOp::Reclaim {
            host: ServerId::new(r.u32()?),
            nb_buffers: bounded("nb_buffers", r.u64()?, MAX_NB_BUFFERS)?,
        },
        Opcode::UsReclaim => {
            let user = ServerId::new(r.u32()?);
            let count = bounded_count("buff_ids", r.u32()?)?;
            // Bound the preallocation by what the buffer can even hold.
            let mut buff_ids = Vec::with_capacity(count.min(bytes.len() / 8 + 1));
            for _ in 0..count {
                buff_ids.push(BufferId::new(r.u64()?));
            }
            RackOp::UsReclaim { user, buff_ids }
        }
        Opcode::AllocExt => RackOp::AllocExt {
            user: ServerId::new(r.u32()?),
            mem_size: Bytes::new(bounded("mem_size", r.u64()?, MAX_MEM_SIZE.get())?),
        },
        Opcode::AllocSwap => RackOp::AllocSwap {
            user: ServerId::new(r.u32()?),
            mem_size: Bytes::new(bounded("mem_size", r.u64()?, MAX_MEM_SIZE.get())?),
        },
        Opcode::AsGetFreeMem => RackOp::AsGetFreeMem {
            host: ServerId::new(r.u32()?),
        },
        Opcode::GetLruZombie => RackOp::GetLruZombie,
    };
    r.finish()?;
    Ok(decoded)
}

/// Response tags, disjoint from request opcodes so a frame's direction is
/// visible from its first byte.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[repr(u8)]
enum RespTag {
    Lent = 0x81,
    Reclaimed = 0x82,
    Revoked = 0x83,
    Granted = 0x84,
    LruZombie = 0x85,
    Error = 0x86,
}

impl RespTag {
    fn from_byte(b: u8) -> Option<RespTag> {
        match b {
            0x81 => Some(RespTag::Lent),
            0x82 => Some(RespTag::Reclaimed),
            0x83 => Some(RespTag::Revoked),
            0x84 => Some(RespTag::Granted),
            0x85 => Some(RespTag::LruZombie),
            0x86 => Some(RespTag::Error),
            _ => None,
        }
    }
}

/// One granted buffer as it crosses the wire: enough for the client's
/// remote-mem-mgr to target one-sided RDMA at it. The registered MR key
/// travels as its raw value — the client never re-registers it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BufferDesc {
    /// Rack-unique buffer id.
    pub id: BufferId,
    /// The server whose RAM backs the buffer.
    pub host: ServerId,
    /// Raw memory-region key for one-sided access.
    pub mr_key: u64,
    /// Buffer size.
    pub size: Bytes,
    /// Whether the backing host is a zombie (`true`) or active.
    pub zombie: bool,
}

/// A typed error frame: the controller-side failures a client must
/// distinguish to react correctly (retry, shrink, or give up).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrorFrame {
    /// The named host is not registered with the controller.
    UnknownHost(ServerId),
    /// The named buffer is not in the controller database (or not
    /// granted to the calling manager).
    UnknownBuffer(BufferId),
    /// Guaranteed allocation rejected by admission control.
    AdmissionDenied {
        /// Buffers requested.
        requested: u64,
        /// Buffers actually free rack-wide.
        available: u64,
    },
    /// The caller does not use this buffer.
    NotTheUser {
        /// The disputed buffer.
        buffer: BufferId,
        /// The caller.
        user: ServerId,
    },
    /// No free capacity for the request.
    NoCapacity,
    /// The request frame failed to decode; `code` classifies the
    /// [`CodecError`] (1 truncated, 2 unknown opcode, 3 version,
    /// 4 trailing, 5 oversized).
    BadRequest {
        /// Coarse decode-failure class.
        code: u8,
    },
}

impl ErrorFrame {
    /// The bad-request frame for a failed decode.
    pub fn bad_request(e: CodecError) -> ErrorFrame {
        let code = match e {
            CodecError::Truncated => 1,
            CodecError::UnknownOpcode(_) => 2,
            CodecError::VersionMismatch(_) => 3,
            CodecError::TrailingBytes(_) => 4,
            CodecError::Oversized { .. } => 5,
        };
        ErrorFrame::BadRequest { code }
    }
}

impl core::fmt::Display for ErrorFrame {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ErrorFrame::UnknownHost(h) => write!(f, "{h} not registered"),
            ErrorFrame::UnknownBuffer(b) => write!(f, "{b:?} unknown"),
            ErrorFrame::AdmissionDenied {
                requested,
                available,
            } => write!(
                f,
                "admission control: {requested} buffers requested, {available} available"
            ),
            ErrorFrame::NotTheUser { buffer, user } => write!(f, "{user} does not use {buffer:?}"),
            ErrorFrame::NoCapacity => write!(f, "no free capacity"),
            ErrorFrame::BadRequest { code } => write!(f, "malformed request (class {code})"),
        }
    }
}

/// What the seven wire functions answer (§4.3–4.4).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ResponseBody {
    /// `GS_goto_zombie` / `AS_get_free_mem`: ids of the newly lent
    /// buffers (possibly empty — the host had nothing left to lend).
    Lent {
        /// Ids assigned to the lent buffers.
        buffers: Vec<BufferId>,
    },
    /// `GS_reclaim`: the reclaim plan the controller executed.
    Reclaimed {
        /// Buffers handed straight back (they were unallocated).
        returned_free: Vec<BufferId>,
        /// `(user, buffer)` pairs revoked via `US_reclaim`.
        revoked: Vec<(ServerId, BufferId)>,
    },
    /// `US_reclaim`: what happened to the revoked pages.
    Revoked {
        /// Pages re-placed into other granted slots.
        relocated: u64,
        /// Pages now served from the local backup only.
        fell_back: u64,
    },
    /// `GS_alloc_ext` / `GS_alloc_swap`: the granted descriptors
    /// (best-effort allocations may return fewer than requested).
    Granted {
        /// One descriptor per granted buffer.
        buffers: Vec<BufferDesc>,
    },
    /// `GS_get_lru_zombie`: the answer (`None` = no zombies in the rack).
    LruZombie {
        /// The zombie with the fewest allocated buffers.
        host: Option<ServerId>,
    },
    /// A typed error frame.
    Error(ErrorFrame),
}

/// A control-plane response: the modeled controller decision time plus
/// the operation's answer. `decision` is sim-clock, a pure function of
/// the request — which is what lets replay clients aggregate latency
/// into byte-identical metric exports regardless of scheduling.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RackResponse {
    /// Controller-side decision latency ([`RackOp::server_time`]).
    pub decision: SimDuration,
    /// The answer.
    pub body: ResponseBody,
}

fn put_resp_header(out: &mut Vec<u8>, tag: RespTag, decision: SimDuration) {
    out.push(tag as u8);
    out.extend_from_slice(&WIRE_VERSION.to_le_bytes());
    out.extend_from_slice(&decision.as_nanos().to_le_bytes());
}

fn put_id_list(out: &mut Vec<u8>, ids: &[BufferId]) {
    out.extend_from_slice(&(ids.len() as u32).to_le_bytes());
    for b in ids {
        out.extend_from_slice(&b.get().to_le_bytes());
    }
}

/// Encodes a response to its wire bytes.
pub fn encode_response(resp: &RackResponse) -> Vec<u8> {
    let mut out = Vec::with_capacity(64);
    match &resp.body {
        ResponseBody::Lent { buffers } => {
            put_resp_header(&mut out, RespTag::Lent, resp.decision);
            put_id_list(&mut out, buffers);
        }
        ResponseBody::Reclaimed {
            returned_free,
            revoked,
        } => {
            put_resp_header(&mut out, RespTag::Reclaimed, resp.decision);
            put_id_list(&mut out, returned_free);
            out.extend_from_slice(&(revoked.len() as u32).to_le_bytes());
            for (user, b) in revoked {
                out.extend_from_slice(&user.get().to_le_bytes());
                out.extend_from_slice(&b.get().to_le_bytes());
            }
        }
        ResponseBody::Revoked {
            relocated,
            fell_back,
        } => {
            put_resp_header(&mut out, RespTag::Revoked, resp.decision);
            out.extend_from_slice(&relocated.to_le_bytes());
            out.extend_from_slice(&fell_back.to_le_bytes());
        }
        ResponseBody::Granted { buffers } => {
            put_resp_header(&mut out, RespTag::Granted, resp.decision);
            out.extend_from_slice(&(buffers.len() as u32).to_le_bytes());
            for d in buffers {
                out.extend_from_slice(&d.id.get().to_le_bytes());
                out.extend_from_slice(&d.host.get().to_le_bytes());
                out.extend_from_slice(&d.mr_key.to_le_bytes());
                out.extend_from_slice(&d.size.get().to_le_bytes());
                out.push(d.zombie as u8);
            }
        }
        ResponseBody::LruZombie { host } => {
            put_resp_header(&mut out, RespTag::LruZombie, resp.decision);
            match host {
                Some(h) => {
                    out.push(1);
                    out.extend_from_slice(&h.get().to_le_bytes());
                }
                None => out.push(0),
            }
        }
        ResponseBody::Error(e) => {
            put_resp_header(&mut out, RespTag::Error, resp.decision);
            match e {
                ErrorFrame::UnknownHost(h) => {
                    out.push(1);
                    out.extend_from_slice(&h.get().to_le_bytes());
                }
                ErrorFrame::UnknownBuffer(b) => {
                    out.push(2);
                    out.extend_from_slice(&b.get().to_le_bytes());
                }
                ErrorFrame::AdmissionDenied {
                    requested,
                    available,
                } => {
                    out.push(3);
                    out.extend_from_slice(&requested.to_le_bytes());
                    out.extend_from_slice(&available.to_le_bytes());
                }
                ErrorFrame::NotTheUser { buffer, user } => {
                    out.push(4);
                    out.extend_from_slice(&buffer.get().to_le_bytes());
                    out.extend_from_slice(&user.get().to_le_bytes());
                }
                ErrorFrame::NoCapacity => out.push(5),
                ErrorFrame::BadRequest { code } => {
                    out.push(6);
                    out.push(*code);
                }
            }
        }
    }
    out
}

fn read_id_list(r: &mut Reader<'_>) -> Result<Vec<BufferId>, CodecError> {
    let count = bounded_count("id_list", r.u32()?)?;
    let mut ids = Vec::with_capacity(count.min(r.buf.len() / 8 + 1));
    for _ in 0..count {
        ids.push(BufferId::new(r.u64()?));
    }
    Ok(ids)
}

/// Decodes wire bytes back into a response.
pub fn decode_response(bytes: &[u8]) -> Result<RackResponse, CodecError> {
    let mut r = Reader::new(bytes);
    let tag = r.u8()?;
    let tag = RespTag::from_byte(tag).ok_or(CodecError::UnknownOpcode(tag))?;
    let version = r.u16()?;
    if version != WIRE_VERSION {
        return Err(CodecError::VersionMismatch(version));
    }
    let decision = SimDuration::from_nanos(r.u64()?);
    let body = match tag {
        RespTag::Lent => ResponseBody::Lent {
            buffers: read_id_list(&mut r)?,
        },
        RespTag::Reclaimed => {
            let returned_free = read_id_list(&mut r)?;
            let count = bounded_count("revoked", r.u32()?)?;
            let mut revoked = Vec::with_capacity(count.min(r.buf.len() / 12 + 1));
            for _ in 0..count {
                let user = ServerId::new(r.u32()?);
                revoked.push((user, BufferId::new(r.u64()?)));
            }
            ResponseBody::Reclaimed {
                returned_free,
                revoked,
            }
        }
        RespTag::Revoked => ResponseBody::Revoked {
            relocated: r.u64()?,
            fell_back: r.u64()?,
        },
        RespTag::Granted => {
            let count = bounded_count("buffers", r.u32()?)?;
            let mut buffers = Vec::with_capacity(count.min(r.buf.len() / 29 + 1));
            for _ in 0..count {
                buffers.push(BufferDesc {
                    id: BufferId::new(r.u64()?),
                    host: ServerId::new(r.u32()?),
                    mr_key: r.u64()?,
                    size: Bytes::new(r.u64()?),
                    zombie: r.u8()? != 0,
                });
            }
            ResponseBody::Granted { buffers }
        }
        RespTag::LruZombie => ResponseBody::LruZombie {
            host: if r.u8()? != 0 {
                Some(ServerId::new(r.u32()?))
            } else {
                None
            },
        },
        RespTag::Error => {
            let class = r.u8()?;
            let e = match class {
                1 => ErrorFrame::UnknownHost(ServerId::new(r.u32()?)),
                2 => ErrorFrame::UnknownBuffer(BufferId::new(r.u64()?)),
                3 => ErrorFrame::AdmissionDenied {
                    requested: r.u64()?,
                    available: r.u64()?,
                },
                4 => ErrorFrame::NotTheUser {
                    buffer: BufferId::new(r.u64()?),
                    user: ServerId::new(r.u32()?),
                },
                5 => ErrorFrame::NoCapacity,
                6 => ErrorFrame::BadRequest { code: r.u8()? },
                other => return Err(CodecError::UnknownOpcode(other)),
            };
            ResponseBody::Error(e)
        }
    };
    r.finish()?;
    Ok(RackResponse { decision, body })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples() -> Vec<RackOp> {
        vec![
            RackOp::GotoZombie {
                host: ServerId::new(3),
                buffers: 240,
            },
            RackOp::Reclaim {
                host: ServerId::new(3),
                nb_buffers: 12,
            },
            RackOp::UsReclaim {
                user: ServerId::new(0),
                buff_ids: vec![BufferId::new(5), BufferId::new(99), BufferId::new(u64::MAX)],
            },
            RackOp::UsReclaim {
                user: ServerId::new(1),
                buff_ids: vec![],
            },
            RackOp::AllocExt {
                user: ServerId::new(7),
                mem_size: Bytes::gib(3),
            },
            RackOp::AllocSwap {
                user: ServerId::new(7),
                mem_size: Bytes::mib(512),
            },
            RackOp::AsGetFreeMem {
                host: ServerId::new(2),
            },
            RackOp::GetLruZombie,
        ]
    }

    #[test]
    fn round_trips() {
        for op in samples() {
            let bytes = encode(&op);
            assert_eq!(decode(&bytes), Ok(op.clone()), "{}", op.wire_name());
        }
    }

    #[test]
    fn truncation_detected_at_every_length() {
        for op in samples() {
            let bytes = encode(&op);
            for cut in 0..bytes.len() {
                let r = decode(&bytes[..cut]);
                assert!(r.is_err(), "{} cut at {cut} decoded: {r:?}", op.wire_name());
            }
        }
    }

    #[test]
    fn trailing_bytes_detected() {
        let mut bytes = encode(&RackOp::GetLruZombie);
        bytes.push(0);
        assert_eq!(decode(&bytes), Err(CodecError::TrailingBytes(1)));
    }

    #[test]
    fn bad_opcode_and_version() {
        let mut bytes = encode(&RackOp::GetLruZombie);
        bytes[0] = 0xEE;
        assert_eq!(decode(&bytes), Err(CodecError::UnknownOpcode(0xEE)));

        let mut bytes = encode(&RackOp::GetLruZombie);
        bytes[1] = 0xFF;
        bytes[2] = 0xFF;
        assert_eq!(decode(&bytes), Err(CodecError::VersionMismatch(0xFFFF)));
    }

    #[test]
    fn huge_declared_count_does_not_blow_memory() {
        // A malicious UsReclaim declaring 4 billion ids but carrying none:
        // rejected by the list-length limit before any allocation.
        let mut bytes = Vec::new();
        bytes.push(3); // UsReclaim.
        bytes.extend_from_slice(&WIRE_VERSION.to_le_bytes());
        bytes.extend_from_slice(&0u32.to_le_bytes()); // user.
        bytes.extend_from_slice(&u32::MAX.to_le_bytes()); // count.
        assert_eq!(
            decode(&bytes),
            Err(CodecError::Oversized {
                field: "buff_ids",
                got: u32::MAX as u64,
                max: MAX_LIST_LEN as u64,
            })
        );
        // A declared count just inside the limit still fails on missing
        // bytes, not on the limit.
        let mut bytes = Vec::new();
        bytes.push(3);
        bytes.extend_from_slice(&WIRE_VERSION.to_le_bytes());
        bytes.extend_from_slice(&0u32.to_le_bytes());
        bytes.extend_from_slice(&MAX_LIST_LEN.to_le_bytes());
        assert_eq!(decode(&bytes), Err(CodecError::Truncated));
    }

    #[test]
    fn absurd_sizes_rejected_at_decode() {
        let op = RackOp::AllocExt {
            user: ServerId::new(0),
            mem_size: Bytes::new(u64::MAX),
        };
        assert_eq!(
            decode(&encode(&op)),
            Err(CodecError::Oversized {
                field: "mem_size",
                got: u64::MAX,
                max: MAX_MEM_SIZE.get(),
            })
        );
        let op = RackOp::Reclaim {
            host: ServerId::new(0),
            nb_buffers: MAX_NB_BUFFERS + 1,
        };
        assert!(matches!(
            decode(&encode(&op)),
            Err(CodecError::Oversized {
                field: "nb_buffers",
                ..
            })
        ));
        // At the limit, both still decode.
        let op = RackOp::AllocExt {
            user: ServerId::new(0),
            mem_size: MAX_MEM_SIZE,
        };
        assert_eq!(decode(&encode(&op)), Ok(op));
    }

    fn response_samples() -> Vec<RackResponse> {
        let d = SimDuration::from_micros(17);
        vec![
            RackResponse {
                decision: d,
                body: ResponseBody::Lent {
                    buffers: vec![BufferId::new(0), BufferId::new(7)],
                },
            },
            RackResponse {
                decision: d,
                body: ResponseBody::Lent { buffers: vec![] },
            },
            RackResponse {
                decision: d,
                body: ResponseBody::Reclaimed {
                    returned_free: vec![BufferId::new(1)],
                    revoked: vec![(ServerId::new(4), BufferId::new(2))],
                },
            },
            RackResponse {
                decision: d,
                body: ResponseBody::Revoked {
                    relocated: 3,
                    fell_back: 1,
                },
            },
            RackResponse {
                decision: d,
                body: ResponseBody::Granted {
                    buffers: vec![BufferDesc {
                        id: BufferId::new(9),
                        host: ServerId::new(2),
                        mr_key: 77,
                        size: Bytes::mib(64),
                        zombie: true,
                    }],
                },
            },
            RackResponse {
                decision: d,
                body: ResponseBody::LruZombie {
                    host: Some(ServerId::new(5)),
                },
            },
            RackResponse {
                decision: d,
                body: ResponseBody::LruZombie { host: None },
            },
            RackResponse {
                decision: d,
                body: ResponseBody::Error(ErrorFrame::AdmissionDenied {
                    requested: 10,
                    available: 2,
                }),
            },
            RackResponse {
                decision: d,
                body: ResponseBody::Error(ErrorFrame::NotTheUser {
                    buffer: BufferId::new(3),
                    user: ServerId::new(1),
                }),
            },
            RackResponse {
                decision: d,
                body: ResponseBody::Error(ErrorFrame::bad_request(CodecError::Truncated)),
            },
        ]
    }

    #[test]
    fn responses_round_trip() {
        for resp in response_samples() {
            let bytes = encode_response(&resp);
            assert_eq!(decode_response(&bytes), Ok(resp.clone()), "{resp:?}");
        }
    }

    #[test]
    fn response_truncation_detected_at_every_length() {
        for resp in response_samples() {
            let bytes = encode_response(&resp);
            for cut in 0..bytes.len() {
                let r = decode_response(&bytes[..cut]);
                assert!(r.is_err(), "{resp:?} cut at {cut} decoded: {r:?}");
            }
        }
    }

    #[test]
    fn response_rejects_request_opcodes_and_vice_versa() {
        let req = encode(&RackOp::GetLruZombie);
        assert_eq!(
            decode_response(&req),
            Err(CodecError::UnknownOpcode(7)),
            "request bytes must not decode as a response"
        );
        let resp = encode_response(&RackResponse {
            decision: SimDuration::ZERO,
            body: ResponseBody::LruZombie { host: None },
        });
        assert_eq!(
            decode(&resp),
            Err(CodecError::UnknownOpcode(0x85)),
            "response bytes must not decode as a request"
        );
    }

    #[test]
    fn oversized_response_lists_rejected() {
        let mut bytes = Vec::new();
        bytes.push(0x81); // Lent.
        bytes.extend_from_slice(&WIRE_VERSION.to_le_bytes());
        bytes.extend_from_slice(&0u64.to_le_bytes()); // decision.
        bytes.extend_from_slice(&u32::MAX.to_le_bytes()); // count.
        assert!(matches!(
            decode_response(&bytes),
            Err(CodecError::Oversized {
                field: "id_list",
                ..
            })
        ));
    }
}
