//! Wire encoding of the control-plane protocol.
//!
//! The RPC layer moves bytes; this module defines what those bytes are. A
//! small, versioned, little-endian TLV format — one opcode byte, a u16
//! version, then the operation's fields; variable-length id lists carry a
//! u32 count. Nothing here allocates on the decode hot path beyond the
//! output vectors, and every decoder is total: corrupt input yields
//! [`CodecError`], never a panic.

use zombieland_mem::buffer::BufferId;
use zombieland_simcore::Bytes;

use crate::protocol::RackOp;
use crate::server::ServerId;

/// Protocol version carried in every message.
pub const WIRE_VERSION: u16 = 1;

/// Opcodes, one per §4.3–4.4 function.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[repr(u8)]
enum Opcode {
    GotoZombie = 1,
    Reclaim = 2,
    UsReclaim = 3,
    AllocExt = 4,
    AllocSwap = 5,
    AsGetFreeMem = 6,
    GetLruZombie = 7,
}

impl Opcode {
    fn from_byte(b: u8) -> Option<Opcode> {
        match b {
            1 => Some(Opcode::GotoZombie),
            2 => Some(Opcode::Reclaim),
            3 => Some(Opcode::UsReclaim),
            4 => Some(Opcode::AllocExt),
            5 => Some(Opcode::AllocSwap),
            6 => Some(Opcode::AsGetFreeMem),
            7 => Some(Opcode::GetLruZombie),
            _ => None,
        }
    }
}

/// Decode failures.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CodecError {
    /// Fewer bytes than the fields require.
    Truncated,
    /// Unknown opcode byte.
    UnknownOpcode(u8),
    /// A protocol version this peer does not speak.
    VersionMismatch(u16),
    /// Bytes left over after the last field.
    TrailingBytes(usize),
}

impl core::fmt::Display for CodecError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "message truncated"),
            CodecError::UnknownOpcode(b) => write!(f, "unknown opcode {b:#x}"),
            CodecError::VersionMismatch(v) => write!(f, "wire version {v} unsupported"),
            CodecError::TrailingBytes(n) => write!(f, "{n} trailing bytes"),
        }
    }
}

impl std::error::Error for CodecError {}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        let end = self.pos.checked_add(n).ok_or(CodecError::Truncated)?;
        if end > self.buf.len() {
            return Err(CodecError::Truncated);
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, CodecError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("2")))
    }

    fn u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    fn u64(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    fn finish(self) -> Result<(), CodecError> {
        let rest = self.buf.len() - self.pos;
        if rest == 0 {
            Ok(())
        } else {
            Err(CodecError::TrailingBytes(rest))
        }
    }
}

fn put_header(out: &mut Vec<u8>, op: Opcode) {
    out.push(op as u8);
    out.extend_from_slice(&WIRE_VERSION.to_le_bytes());
}

/// Encodes an operation to its wire bytes.
pub fn encode(op: &RackOp) -> Vec<u8> {
    let mut out = Vec::with_capacity(32);
    match op {
        RackOp::GotoZombie { host, buffers } => {
            put_header(&mut out, Opcode::GotoZombie);
            out.extend_from_slice(&host.get().to_le_bytes());
            out.extend_from_slice(&buffers.to_le_bytes());
        }
        RackOp::Reclaim { host, nb_buffers } => {
            put_header(&mut out, Opcode::Reclaim);
            out.extend_from_slice(&host.get().to_le_bytes());
            out.extend_from_slice(&nb_buffers.to_le_bytes());
        }
        RackOp::UsReclaim { user, buff_ids } => {
            put_header(&mut out, Opcode::UsReclaim);
            out.extend_from_slice(&user.get().to_le_bytes());
            out.extend_from_slice(&(buff_ids.len() as u32).to_le_bytes());
            for b in buff_ids {
                out.extend_from_slice(&b.get().to_le_bytes());
            }
        }
        RackOp::AllocExt { user, mem_size } => {
            put_header(&mut out, Opcode::AllocExt);
            out.extend_from_slice(&user.get().to_le_bytes());
            out.extend_from_slice(&mem_size.get().to_le_bytes());
        }
        RackOp::AllocSwap { user, mem_size } => {
            put_header(&mut out, Opcode::AllocSwap);
            out.extend_from_slice(&user.get().to_le_bytes());
            out.extend_from_slice(&mem_size.get().to_le_bytes());
        }
        RackOp::AsGetFreeMem { host } => {
            put_header(&mut out, Opcode::AsGetFreeMem);
            out.extend_from_slice(&host.get().to_le_bytes());
        }
        RackOp::GetLruZombie => {
            put_header(&mut out, Opcode::GetLruZombie);
        }
    }
    out
}

/// Decodes wire bytes back into an operation.
pub fn decode(bytes: &[u8]) -> Result<RackOp, CodecError> {
    let mut r = Reader::new(bytes);
    let op = r.u8()?;
    let op = Opcode::from_byte(op).ok_or(CodecError::UnknownOpcode(op))?;
    let version = r.u16()?;
    if version != WIRE_VERSION {
        return Err(CodecError::VersionMismatch(version));
    }
    let decoded = match op {
        Opcode::GotoZombie => RackOp::GotoZombie {
            host: ServerId::new(r.u32()?),
            buffers: r.u64()?,
        },
        Opcode::Reclaim => RackOp::Reclaim {
            host: ServerId::new(r.u32()?),
            nb_buffers: r.u64()?,
        },
        Opcode::UsReclaim => {
            let user = ServerId::new(r.u32()?);
            let count = r.u32()? as usize;
            // Bound the preallocation by what the buffer can even hold.
            let mut buff_ids = Vec::with_capacity(count.min(bytes.len() / 8 + 1));
            for _ in 0..count {
                buff_ids.push(BufferId::new(r.u64()?));
            }
            RackOp::UsReclaim { user, buff_ids }
        }
        Opcode::AllocExt => RackOp::AllocExt {
            user: ServerId::new(r.u32()?),
            mem_size: Bytes::new(r.u64()?),
        },
        Opcode::AllocSwap => RackOp::AllocSwap {
            user: ServerId::new(r.u32()?),
            mem_size: Bytes::new(r.u64()?),
        },
        Opcode::AsGetFreeMem => RackOp::AsGetFreeMem {
            host: ServerId::new(r.u32()?),
        },
        Opcode::GetLruZombie => RackOp::GetLruZombie,
    };
    r.finish()?;
    Ok(decoded)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples() -> Vec<RackOp> {
        vec![
            RackOp::GotoZombie {
                host: ServerId::new(3),
                buffers: 240,
            },
            RackOp::Reclaim {
                host: ServerId::new(3),
                nb_buffers: 12,
            },
            RackOp::UsReclaim {
                user: ServerId::new(0),
                buff_ids: vec![BufferId::new(5), BufferId::new(99), BufferId::new(u64::MAX)],
            },
            RackOp::UsReclaim {
                user: ServerId::new(1),
                buff_ids: vec![],
            },
            RackOp::AllocExt {
                user: ServerId::new(7),
                mem_size: Bytes::gib(3),
            },
            RackOp::AllocSwap {
                user: ServerId::new(7),
                mem_size: Bytes::mib(512),
            },
            RackOp::AsGetFreeMem {
                host: ServerId::new(2),
            },
            RackOp::GetLruZombie,
        ]
    }

    #[test]
    fn round_trips() {
        for op in samples() {
            let bytes = encode(&op);
            assert_eq!(decode(&bytes), Ok(op.clone()), "{}", op.wire_name());
        }
    }

    #[test]
    fn truncation_detected_at_every_length() {
        for op in samples() {
            let bytes = encode(&op);
            for cut in 0..bytes.len() {
                let r = decode(&bytes[..cut]);
                assert!(r.is_err(), "{} cut at {cut} decoded: {r:?}", op.wire_name());
            }
        }
    }

    #[test]
    fn trailing_bytes_detected() {
        let mut bytes = encode(&RackOp::GetLruZombie);
        bytes.push(0);
        assert_eq!(decode(&bytes), Err(CodecError::TrailingBytes(1)));
    }

    #[test]
    fn bad_opcode_and_version() {
        let mut bytes = encode(&RackOp::GetLruZombie);
        bytes[0] = 0xEE;
        assert_eq!(decode(&bytes), Err(CodecError::UnknownOpcode(0xEE)));

        let mut bytes = encode(&RackOp::GetLruZombie);
        bytes[1] = 0xFF;
        bytes[2] = 0xFF;
        assert_eq!(decode(&bytes), Err(CodecError::VersionMismatch(0xFFFF)));
    }

    #[test]
    fn huge_declared_count_does_not_blow_memory() {
        // A malicious UsReclaim declaring 4 billion ids but carrying none.
        let mut bytes = Vec::new();
        bytes.push(3); // UsReclaim.
        bytes.extend_from_slice(&WIRE_VERSION.to_le_bytes());
        bytes.extend_from_slice(&0u32.to_le_bytes()); // user.
        bytes.extend_from_slice(&u32::MAX.to_le_bytes()); // count.
        assert_eq!(decode(&bytes), Err(CodecError::Truncated));
    }
}
