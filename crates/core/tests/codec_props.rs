//! Property tests for the wire codec: arbitrary operations round-trip,
//! and arbitrary bytes never panic the decoder.

use proptest::prelude::*;
use zombieland_core::codec::{decode, encode};
use zombieland_core::protocol::RackOp;
use zombieland_core::ServerId;
use zombieland_mem::buffer::BufferId;
use zombieland_simcore::Bytes;

fn ops() -> impl Strategy<Value = RackOp> {
    prop_oneof![
        (any::<u32>(), any::<u64>()).prop_map(|(h, b)| RackOp::GotoZombie {
            host: ServerId::new(h),
            buffers: b,
        }),
        (any::<u32>(), any::<u64>()).prop_map(|(h, n)| RackOp::Reclaim {
            host: ServerId::new(h),
            nb_buffers: n,
        }),
        (any::<u32>(), prop::collection::vec(any::<u64>(), 0..64)).prop_map(|(u, ids)| {
            RackOp::UsReclaim {
                user: ServerId::new(u),
                buff_ids: ids.into_iter().map(BufferId::new).collect(),
            }
        }),
        (any::<u32>(), any::<u64>()).prop_map(|(u, s)| RackOp::AllocExt {
            user: ServerId::new(u),
            mem_size: Bytes::new(s),
        }),
        (any::<u32>(), any::<u64>()).prop_map(|(u, s)| RackOp::AllocSwap {
            user: ServerId::new(u),
            mem_size: Bytes::new(s),
        }),
        any::<u32>().prop_map(|h| RackOp::AsGetFreeMem {
            host: ServerId::new(h),
        }),
        Just(RackOp::GetLruZombie),
    ]
}

proptest! {
    #[test]
    fn any_op_round_trips(op in ops()) {
        let bytes = encode(&op);
        prop_assert_eq!(decode(&bytes), Ok(op));
    }

    #[test]
    fn decoder_is_total(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        // Whatever arrives on the wire, decode returns Ok or Err — it
        // never panics and never allocates unboundedly.
        let _ = decode(&bytes);
    }

    #[test]
    fn request_len_covers_encoding(op in ops()) {
        // The RPC layer's size model is never smaller than the real
        // message.
        let encoded = encode(&op).len() as u64;
        prop_assert!(op.request_len().get() >= encoded);
    }
}
