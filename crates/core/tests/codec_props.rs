//! Property tests for the wire codec: in-limit operations and responses
//! round-trip exactly, arbitrary bytes never panic either decoder, and
//! sizes past the protocol limits are rejected with
//! [`CodecError::Oversized`] before they can feed the cost models.

use proptest::prelude::*;
use zombieland_core::codec::{
    decode, decode_response, encode, encode_response, BufferDesc, CodecError, ErrorFrame,
    RackResponse, ResponseBody, MAX_LIST_LEN, MAX_MEM_SIZE, MAX_NB_BUFFERS,
};
use zombieland_core::protocol::RackOp;
use zombieland_core::ServerId;
use zombieland_mem::buffer::BufferId;
use zombieland_simcore::{Bytes, SimDuration};

/// Operations whose fields respect the wire limits; these must
/// round-trip exactly. Ranges are inclusive of the limit itself.
fn ops() -> impl Strategy<Value = RackOp> {
    prop_oneof![
        (any::<u32>(), 0..MAX_NB_BUFFERS + 1).prop_map(|(h, b)| RackOp::GotoZombie {
            host: ServerId::new(h),
            buffers: b,
        }),
        (any::<u32>(), 0..MAX_NB_BUFFERS + 1).prop_map(|(h, n)| RackOp::Reclaim {
            host: ServerId::new(h),
            nb_buffers: n,
        }),
        (any::<u32>(), prop::collection::vec(any::<u64>(), 0..64)).prop_map(|(u, ids)| {
            RackOp::UsReclaim {
                user: ServerId::new(u),
                buff_ids: ids.into_iter().map(BufferId::new).collect(),
            }
        }),
        (any::<u32>(), 0..MAX_MEM_SIZE.get() + 1).prop_map(|(u, s)| RackOp::AllocExt {
            user: ServerId::new(u),
            mem_size: Bytes::new(s),
        }),
        (any::<u32>(), 0..MAX_MEM_SIZE.get() + 1).prop_map(|(u, s)| RackOp::AllocSwap {
            user: ServerId::new(u),
            mem_size: Bytes::new(s),
        }),
        any::<u32>().prop_map(|h| RackOp::AsGetFreeMem {
            host: ServerId::new(h),
        }),
        Just(RackOp::GetLruZombie),
    ]
}

/// Responses with in-limit list lengths, covering every tag.
fn responses() -> impl Strategy<Value = RackResponse> {
    let ids = || prop::collection::vec(any::<u64>(), 0..32);
    let body = prop_oneof![
        ids().prop_map(|v| ResponseBody::Lent {
            buffers: v.into_iter().map(BufferId::new).collect(),
        }),
        (
            ids(),
            prop::collection::vec((any::<u32>(), any::<u64>()), 0..32)
        )
            .prop_map(|(free, rev)| ResponseBody::Reclaimed {
                returned_free: free.into_iter().map(BufferId::new).collect(),
                revoked: rev
                    .into_iter()
                    .map(|(u, b)| (ServerId::new(u), BufferId::new(b)))
                    .collect(),
            }),
        (any::<u64>(), any::<u64>()).prop_map(|(r, f)| ResponseBody::Revoked {
            relocated: r,
            fell_back: f,
        }),
        prop::collection::vec(
            (any::<u64>(), any::<u32>(), any::<u64>(), any::<u64>()),
            0..16
        )
        .prop_map(|descs| ResponseBody::Granted {
            buffers: descs
                .into_iter()
                .map(|(id, host, mr, size)| BufferDesc {
                    id: BufferId::new(id),
                    host: ServerId::new(host),
                    mr_key: mr,
                    size: Bytes::new(size),
                    zombie: size % 2 == 0,
                })
                .collect(),
        }),
        any::<u32>().prop_map(|h| ResponseBody::LruZombie {
            host: (h % 3 != 0).then(|| ServerId::new(h)),
        }),
        any::<u32>().prop_map(|h| ResponseBody::Error(ErrorFrame::UnknownHost(ServerId::new(h)))),
        (any::<u64>(), any::<u64>()).prop_map(|(r, a)| ResponseBody::Error(
            ErrorFrame::AdmissionDenied {
                requested: r,
                available: a,
            }
        )),
        Just(ResponseBody::Error(ErrorFrame::NoCapacity)),
    ];
    (any::<u64>(), body).prop_map(|(d, body)| RackResponse {
        decision: SimDuration::from_nanos(d),
        body,
    })
}

proptest! {
    #[test]
    fn any_op_round_trips(op in ops()) {
        let bytes = encode(&op);
        prop_assert_eq!(decode(&bytes), Ok(op));
    }

    #[test]
    fn any_response_round_trips(resp in responses()) {
        let bytes = encode_response(&resp);
        prop_assert_eq!(decode_response(&bytes), Ok(resp));
    }

    #[test]
    fn decoder_is_total(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        // Whatever arrives on the wire, decode returns Ok or Err — it
        // never panics and never allocates unboundedly. Same for the
        // response direction.
        let _ = decode(&bytes);
        let _ = decode_response(&bytes);
    }

    #[test]
    fn mutated_frames_never_panic(
        op in ops(),
        byte in 0usize..64,
        flip in 1u64..256,
    ) {
        // Corrupting any byte of a valid frame yields Ok or Err, never a
        // panic — and if the corrupt frame still decodes cleanly, its
        // size fields still respect the wire limits.
        let mut bytes = encode(&op);
        let idx = byte % bytes.len();
        bytes[idx] ^= flip as u8;
        if let Ok(back) = decode(&bytes) {
            match back {
                RackOp::AllocExt { mem_size, .. } | RackOp::AllocSwap { mem_size, .. } => {
                    prop_assert!(mem_size <= MAX_MEM_SIZE);
                }
                RackOp::GotoZombie { buffers: n, .. } | RackOp::Reclaim { nb_buffers: n, .. } => {
                    prop_assert!(n <= MAX_NB_BUFFERS);
                }
                _ => {}
            }
        }
    }

    #[test]
    fn oversized_ops_rejected(op in ops(), excess in 1u64..1_000) {
        // Push a size field past its limit: the encoder is total so the
        // frame still serializes, but decode must answer Oversized.
        let inflated = match op {
            RackOp::GotoZombie { host, .. } => Some(RackOp::GotoZombie {
                host,
                buffers: MAX_NB_BUFFERS + excess,
            }),
            RackOp::Reclaim { host, .. } => Some(RackOp::Reclaim {
                host,
                nb_buffers: MAX_NB_BUFFERS + excess,
            }),
            RackOp::AllocExt { user, .. } => Some(RackOp::AllocExt {
                user,
                mem_size: Bytes::new(MAX_MEM_SIZE.get() + excess),
            }),
            RackOp::AllocSwap { user, .. } => Some(RackOp::AllocSwap {
                user,
                mem_size: Bytes::new(MAX_MEM_SIZE.get() + excess),
            }),
            // The remaining ops carry no size field to inflate.
            _ => None,
        };
        if let Some(inflated) = inflated {
            prop_assert!(matches!(
                decode(&encode(&inflated)),
                Err(CodecError::Oversized { .. })
            ));
            // The saturating cost models still answer something finite
            // for in-process construction of the same op.
            let _ = inflated.server_time();
            let _ = inflated.response_len();
        }
    }

    #[test]
    fn request_len_covers_encoding(op in ops()) {
        // The RPC layer's size model is never smaller than the real
        // message.
        let encoded = encode(&op).len() as u64;
        prop_assert!(op.request_len().get() >= encoded);
    }
}

/// The u32-count boundary for `US_reclaim` id lists: exactly
/// `MAX_LIST_LEN` ids round-trips, one more is rejected at decode.
#[test]
fn us_reclaim_id_list_at_the_count_boundary() {
    let at_limit = RackOp::UsReclaim {
        user: ServerId::new(1),
        buff_ids: (0..MAX_LIST_LEN as u64).map(BufferId::new).collect(),
    };
    assert_eq!(decode(&encode(&at_limit)), Ok(at_limit));

    let over_limit = RackOp::UsReclaim {
        user: ServerId::new(1),
        buff_ids: (0..MAX_LIST_LEN as u64 + 1).map(BufferId::new).collect(),
    };
    assert_eq!(
        decode(&encode(&over_limit)),
        Err(CodecError::Oversized {
            field: "buff_ids",
            got: MAX_LIST_LEN as u64 + 1,
            max: MAX_LIST_LEN as u64,
        })
    );
}
