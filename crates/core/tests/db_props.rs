//! Property tests: the controller database keeps its invariants under
//! arbitrary operation sequences, and stays deterministic (the mirroring
//! precondition).

use proptest::prelude::*;
use zombieland_core::db::{CtrlDb, DbError};
use zombieland_core::ServerId;
use zombieland_mem::buffer::BufferId;
use zombieland_rdma::Fabric;
use zombieland_simcore::Bytes;

const HOSTS: u32 = 5;

#[derive(Clone, Debug)]
enum Op {
    Lend { host: u32, n: u8, zombie: bool },
    Alloc { user: u32, nb: u8, guaranteed: bool },
    ReleaseSome { user: u32 },
    Reclaim { host: u32, nb: u8 },
    Wake { host: u32 },
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            ((0..HOSTS), (1u8..6), any::<bool>()).prop_map(|(host, n, zombie)| Op::Lend {
                host,
                n,
                zombie
            }),
            ((0..HOSTS), (1u8..8), any::<bool>()).prop_map(|(user, nb, guaranteed)| Op::Alloc {
                user,
                nb,
                guaranteed
            }),
            (0..HOSTS).prop_map(|user| Op::ReleaseSome { user }),
            ((0..HOSTS), (1u8..6)).prop_map(|(host, nb)| Op::Reclaim { host, nb }),
            (0..HOSTS).prop_map(|host| Op::Wake { host }),
        ],
        1..60,
    )
}

/// Applies one op; returns whether it mutated the DB (errors are fine —
/// they must just be the *right* errors).
fn apply(db: &mut CtrlDb, fabric: &mut Fabric, node: zombieland_rdma::NodeId, op: &Op) {
    match op {
        Op::Lend { host, n, zombie } => {
            let mrs: Vec<_> = (0..*n)
                .map(|_| fabric.register(node, Bytes::mib(64)).unwrap())
                .collect();
            db.lend(ServerId::new(*host), &mrs, *zombie).unwrap();
        }
        Op::Alloc {
            user,
            nb,
            guaranteed,
        } => match db.allocate(ServerId::new(*user), *nb as u64, *guaranteed) {
            Ok(recs) => {
                if *guaranteed {
                    assert_eq!(recs.len(), *nb as usize);
                }
            }
            Err(DbError::AdmissionDenied {
                requested,
                available,
            }) => {
                assert!(*guaranteed);
                assert!(available < requested);
            }
            Err(e) => panic!("unexpected {e}"),
        },
        Op::ReleaseSome { user } => {
            let mine: Vec<BufferId> = db
                .buffers_of_user(ServerId::new(*user))
                .iter()
                .take(2)
                .map(|r| r.id)
                .collect();
            if !mine.is_empty() {
                db.release(ServerId::new(*user), &mine).unwrap();
            }
        }
        Op::Reclaim { host, nb } => {
            let plan = db.reclaim(ServerId::new(*host), *nb as u64).unwrap();
            // Free buffers are always preferred: revocations happen only
            // when the request exceeded the host's free lent buffers.
            let _ = plan;
        }
        Op::Wake { host } => {
            db.mark_awake(ServerId::new(*host)).unwrap();
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn invariants_hold_under_arbitrary_ops(ops in ops()) {
        let mut fabric = Fabric::new();
        let node = fabric.attach();
        let mut db = CtrlDb::new();
        for h in 0..HOSTS {
            db.register_host(ServerId::new(h));
        }
        for op in &ops {
            apply(&mut db, &mut fabric, node, op);

            // Invariant 1: free count equals rows without a user.
            let mut free = 0u64;
            let mut per_user: std::collections::BTreeMap<u32, u64> = Default::default();
            for h in 0..HOSTS {
                for rec in db.buffers_of_host(ServerId::new(h)) {
                    prop_assert_eq!(rec.host, ServerId::new(h));
                    match rec.user {
                        None => free += 1,
                        Some(u) => {
                            // Invariant 2: nobody "remotely" uses their own
                            // host's memory.
                            prop_assert_ne!(u, rec.host);
                            *per_user.entry(u.get()).or_default() += 1;
                        }
                    }
                    // Invariant 3: zombie hosts serve zombie-kind buffers.
                    let expected = if db.is_zombie(rec.host) {
                        zombieland_core::db::BufferKind::Zombie
                    } else {
                        zombieland_core::db::BufferKind::Active
                    };
                    prop_assert_eq!(rec.kind, expected);
                }
            }
            prop_assert_eq!(free, db.free_buffers());
            // Invariant 4: per-user views agree with row scans.
            for (u, count) in per_user {
                prop_assert_eq!(
                    db.buffers_of_user(ServerId::new(u)).len() as u64,
                    count
                );
            }
        }
    }

    #[test]
    fn replay_determinism(ops in ops()) {
        // The same op sequence produces byte-identical databases — the
        // property the HA mirroring relies on.
        let run = |ops: &[Op]| {
            let mut fabric = Fabric::new();
            let node = fabric.attach();
            let mut db = CtrlDb::new();
            for h in 0..HOSTS {
                db.register_host(ServerId::new(h));
            }
            for op in ops {
                apply(&mut db, &mut fabric, node, op);
            }
            db
        };
        prop_assert_eq!(run(&ops), run(&ops));
    }

    #[test]
    fn reclaim_conserves_buffers(lent in 1u8..12, allocated in 0u8..12, take in 1u8..14) {
        let mut fabric = Fabric::new();
        let node = fabric.attach();
        let mut db = CtrlDb::new();
        db.register_host(ServerId::new(0));
        db.register_host(ServerId::new(1));
        let mrs: Vec<_> = (0..lent)
            .map(|_| fabric.register(node, Bytes::mib(64)).unwrap())
            .collect();
        db.lend(ServerId::new(1), &mrs, true).unwrap();
        let _ = db.allocate(ServerId::new(0), allocated as u64, false);
        let before = db.len();
        let plan = db.reclaim(ServerId::new(1), take as u64).unwrap();
        let reclaimed = plan.returned_free.len() + plan.revoked.len();
        prop_assert_eq!(reclaimed, (take as usize).min(lent as usize));
        prop_assert_eq!(db.len(), before - reclaimed);
        // Free buffers are consumed before any revocation.
        if !plan.revoked.is_empty() {
            prop_assert_eq!(db.free_buffers(), 0);
        }
    }
}
