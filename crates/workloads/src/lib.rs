//! The evaluation's benchmark workloads as memory access-pattern models.
//!
//! §6.1: "We evaluated ZombieStack with both micro and macro benchmarks."
//! What Tables 1–2 and Fig. 8 measure is how each application's *memory
//! locality* interacts with hypervisor paging, so each workload is modeled
//! as a deterministic stream of page accesses plus the CPU work per
//! access:
//!
//! - [`MicroBench`] — the paper's worst case: an application sweeping a
//!   big array of 4 KiB entries. Its hot region is just under half the
//!   VM's reserved memory, which produces the sharp penalty cliff between
//!   40 % and 50 % local memory that made the authors pick 50 % as
//!   ZombieStack's operating point.
//! - [`DataCaching`] — CloudSuite's Memcached-based Twitter cache:
//!   Zipf-skewed GETs with a small write fraction and µs-scale per-op
//!   work.
//! - [`Elasticsearch`] — the nightly NYC-taxis benchmark: structured
//!   queries mixing hot index/metadata pages with segment range scans.
//! - [`SparkSql`] — BigBench query 23 on a 100 GB dataset: phase-wise
//!   partition scans with shuffle writes; the least cache-friendly of the
//!   macro set.
//!
//! All patterns implement [`Workload`]; the hypervisor's paging engine
//! consumes the stream without knowing which application produced it.

use zombieland_simcore::{DetRng, Pages, SimDuration, Zipf};

/// One memory access emitted by a workload.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Access {
    /// Guest page touched (within `0..wss()`).
    pub page: u64,
    /// Whether the access dirties the page.
    pub write: bool,
}

/// A deterministic stream of page accesses with an associated CPU cost.
pub trait Workload {
    /// Workload name (table row label).
    fn name(&self) -> &'static str;

    /// Working-set size in pages.
    fn wss(&self) -> Pages;

    /// CPU work per access, charged whether or not the page faults.
    /// Micro-benchmarks do almost nothing per touched page; macro
    /// applications parse requests, score documents, evaluate operators.
    ///
    /// Must be constant for the lifetime of a workload instance: the
    /// batched engine samples it once per run and charges it per access,
    /// which is only equivalent to per-access sampling when the value
    /// never changes.
    fn base_op_cost(&self) -> SimDuration;

    /// The next access.
    fn next_access(&mut self) -> Access;

    /// Fills `buf` with the next `buf.len()` accesses — exactly the
    /// stream repeated [`Workload::next_access`] calls would produce.
    ///
    /// The default implementation is that loop; because default methods
    /// are monomorphized per implementor, the inner calls dispatch
    /// statically, so a batch costs one virtual call instead of one per
    /// access. Implementors overriding this must keep the stream
    /// byte-identical to `next_access`.
    fn fill(&mut self, buf: &mut [Access]) {
        for slot in buf {
            *slot = self.next_access();
        }
    }

    /// Suggested number of accesses for one measured run.
    fn suggested_ops(&self) -> u64;

    /// Clones the workload's full state behind the trait object.
    ///
    /// Construction is a pure function of `(wss, seed)`, so a clone of a
    /// freshly built workload replays the same access stream a fresh
    /// build would — which is what lets experiment grids cache one
    /// prototype per distinct parameter set and clone on use instead of
    /// reconstructing per cell.
    fn clone_box(&self) -> Box<dyn Workload>;
}

/// The paper's micro-benchmark: iterating read/write over the entries of
/// a large array (one entry = one 4 KiB page).
///
/// The guest's pages split into three regions, as in any real VM running
/// the benchmark:
///
/// - a small, intensely hot **OS region** (kernel, libc, the benchmark's
///   own code/stack) — the pages whose accessed bits let Clock and Mixed
///   beat FIFO in Fig. 8: FIFO cycles them out with the sweep and
///   re-faults them, Clock's second chance protects them;
/// - the cyclic **sweep region** over the array's hot part — just under
///   half the working set, producing the sharp Table 1 penalty cliff
///   between 40 % and 50 % local memory that made the authors pick 50 %
///   as ZombieStack's operating point;
/// - rare uniform strays over the rest of the array.
#[derive(Clone, Debug)]
pub struct MicroBench {
    wss: Pages,
    os_len: u64,
    sweep_len: u64,
    cursor: u64,
    rng: DetRng,
    ops: u64,
}

impl MicroBench {
    /// Fraction of the working set that is intensely hot OS/runtime
    /// pages.
    pub const OS_FRACTION: f64 = 0.08;
    /// Fraction of the working set the cyclic sweep covers; together with
    /// the OS region this is just under half the VM's memory.
    pub const SWEEP_FRACTION: f64 = 0.40;
    /// Fraction of the working set covered by the hot regions combined.
    pub const HOT_FRACTION: f64 = Self::OS_FRACTION + Self::SWEEP_FRACTION;
    /// Share of accesses hitting the OS region.
    const OS_RATE: f64 = 0.20;
    /// Share of accesses straying uniformly over the whole array. These
    /// cold misses are what separates the policies when the hot set fits:
    /// each stray forces an eviction, and FIFO's victim (the *oldest*
    /// page) is usually hot, while Clock's second chance steers the
    /// eviction onto another stray.
    const STRAY_RATE: f64 = 0.02;

    /// Creates the micro-benchmark over `wss` pages.
    pub fn new(wss: Pages, seed: u64) -> Self {
        let n = wss.count();
        MicroBench {
            wss,
            os_len: ((n as f64 * Self::OS_FRACTION) as u64).max(1),
            sweep_len: ((n as f64 * Self::SWEEP_FRACTION) as u64).max(1),
            cursor: 0,
            rng: DetRng::new(seed),
            ops: n * 6,
        }
    }
}

impl Workload for MicroBench {
    fn clone_box(&self) -> Box<dyn Workload> {
        Box::new(self.clone())
    }

    fn name(&self) -> &'static str {
        "micro-bench"
    }

    fn wss(&self) -> Pages {
        self.wss
    }

    fn base_op_cost(&self) -> SimDuration {
        // Touching and updating one 4 KiB entry: ~70 ns (memory-bandwidth
        // bound loop).
        SimDuration::from_nanos(70)
    }

    fn next_access(&mut self) -> Access {
        let roll = self.rng.f64();
        let hot = self.os_len + self.sweep_len;
        let page = if roll < Self::STRAY_RATE && hot < self.wss.count() {
            // Cold strays: uniform over the array beyond the hot part.
            hot + self.rng.below(self.wss.count() - hot)
        } else if roll < Self::STRAY_RATE + Self::OS_RATE {
            self.rng.below(self.os_len)
        } else {
            let p = self.os_len + self.cursor;
            self.cursor = (self.cursor + 1) % self.sweep_len;
            p
        };
        // "Performs read/write operations": array entries alternate
        // read/write; OS pages are read-mostly.
        Access {
            page,
            write: page >= self.os_len && page % 2 == 0,
        }
    }

    fn suggested_ops(&self) -> u64 {
        self.ops
    }
}

/// CloudSuite Data Caching (Memcached with a Twitter dataset): highly
/// skewed key popularity, read-mostly.
#[derive(Clone, Debug)]
pub struct DataCaching {
    wss: Pages,
    zipf: Zipf,
    rng: DetRng,
}

impl DataCaching {
    /// Creates the workload over `wss` pages of cache data.
    pub fn new(wss: Pages, seed: u64) -> Self {
        DataCaching {
            wss,
            zipf: Zipf::new(wss.count(), 0.85),
            rng: DetRng::new(seed),
        }
    }
}

impl Workload for DataCaching {
    fn clone_box(&self) -> Box<dyn Workload> {
        Box::new(self.clone())
    }

    fn name(&self) -> &'static str {
        "data-caching"
    }

    fn wss(&self) -> Pages {
        self.wss
    }

    fn base_op_cost(&self) -> SimDuration {
        // One memcached op: parse + hash + respond, ~12 µs server side.
        SimDuration::from_micros(12)
    }

    fn next_access(&mut self) -> Access {
        Access {
            page: self.zipf.sample(&mut self.rng),
            write: self.rng.chance(0.05),
        }
    }

    fn suggested_ops(&self) -> u64 {
        self.wss.count() * 3
    }
}

/// Elasticsearch nightly benchmark (NYC taxis, structured queries): hot
/// index/metadata pages plus bounded segment range scans.
#[derive(Clone, Debug)]
pub struct Elasticsearch {
    wss: Pages,
    zipf: Zipf,
    rng: DetRng,
    scan_left: u64,
    scan_pos: u64,
}

impl Elasticsearch {
    /// Pages read per segment scan burst.
    const SCAN_LEN: u64 = 64;

    /// Creates the workload over `wss` pages of index data.
    pub fn new(wss: Pages, seed: u64) -> Self {
        Elasticsearch {
            wss,
            zipf: Zipf::new(wss.count(), 0.85),
            rng: DetRng::new(seed),
            scan_left: 0,
            scan_pos: 0,
        }
    }
}

impl Workload for Elasticsearch {
    fn clone_box(&self) -> Box<dyn Workload> {
        Box::new(self.clone())
    }

    fn name(&self) -> &'static str {
        "elasticsearch"
    }

    fn wss(&self) -> Pages {
        self.wss
    }

    fn base_op_cost(&self) -> SimDuration {
        // Per-page work while evaluating a structured query: ~9 µs.
        SimDuration::from_micros(9)
    }

    fn next_access(&mut self) -> Access {
        if self.scan_left > 0 {
            self.scan_left -= 1;
            let p = self.scan_pos;
            self.scan_pos = (self.scan_pos + 1) % self.wss.count();
            return Access {
                page: p,
                write: false,
            };
        }
        // 15 % of ops start a segment scan; the rest hit the skewed
        // index/docvalue set. ~8 % of ops are indexing writes.
        if self.rng.chance(0.15) {
            self.scan_left = Self::SCAN_LEN.min(self.wss.count()) - 1;
            self.scan_pos = self.rng.below(self.wss.count());
            let p = self.scan_pos;
            self.scan_pos = (self.scan_pos + 1) % self.wss.count();
            Access {
                page: p,
                write: false,
            }
        } else {
            Access {
                page: self.zipf.sample(&mut self.rng),
                write: self.rng.chance(0.08),
            }
        }
    }

    fn suggested_ops(&self) -> u64 {
        self.wss.count() * 3
    }
}

/// Spark SQL running BigBench query 23: repeated partition scans with
/// shuffle writes — weak temporal locality, strong spatial locality.
#[derive(Clone, Debug)]
pub struct SparkSql {
    wss: Pages,
    partitions: u64,
    rng: DetRng,
    scan_left: u64,
    scan_pos: u64,
    zipf: Zipf,
}

impl SparkSql {
    /// Creates the workload over `wss` pages of RDD/shuffle data.
    pub fn new(wss: Pages, seed: u64) -> Self {
        SparkSql {
            wss,
            partitions: 32,
            rng: DetRng::new(seed),
            scan_left: 0,
            scan_pos: 0,
            zipf: Zipf::new(wss.count(), 0.75),
        }
    }
}

impl Workload for SparkSql {
    fn clone_box(&self) -> Box<dyn Workload> {
        Box::new(self.clone())
    }

    fn name(&self) -> &'static str {
        "spark-sql"
    }

    fn wss(&self) -> Pages {
        self.wss
    }

    fn base_op_cost(&self) -> SimDuration {
        // Row-batch operator work per touched page: ~7 µs.
        SimDuration::from_micros(7)
    }

    fn next_access(&mut self) -> Access {
        if self.scan_left > 0 {
            self.scan_left -= 1;
            let p = self.scan_pos;
            self.scan_pos = (self.scan_pos + 1) % self.wss.count();
            return Access {
                page: p,
                write: self.rng.chance(0.2),
            };
        }
        // 25 % of ops start scanning a random partition chunk; the rest
        // hit hot shuffle/broadcast pages.
        if self.rng.chance(0.25) {
            let part_len = (self.wss.count() / self.partitions).max(1);
            let burst = part_len.min(128);
            self.scan_left = burst - 1;
            // A random burst-aligned window inside a random partition, so
            // scans sweep the whole dataset over time.
            let offset = if part_len > burst {
                self.rng.below(part_len - burst + 1)
            } else {
                0
            };
            self.scan_pos = self.rng.below(self.partitions) * part_len + offset;
            Access {
                page: self.scan_pos,
                write: self.rng.chance(0.2),
            }
        } else {
            Access {
                page: self.zipf.sample(&mut self.rng),
                write: self.rng.chance(0.1),
            }
        }
    }

    fn suggested_ops(&self) -> u64 {
        self.wss.count() * 3
    }
}

/// The four paper workloads' table-row names, in Table 1 order.
pub const WORKLOAD_NAMES: [&str; 4] = ["micro-bench", "data-caching", "elasticsearch", "spark-sql"];

/// Builds one of the four paper workloads by table-row name.
pub fn by_name(name: &str, wss: Pages, seed: u64) -> Option<Box<dyn Workload>> {
    match name {
        "micro-bench" => Some(Box::new(MicroBench::new(wss, seed))),
        "data-caching" => Some(Box::new(DataCaching::new(wss, seed))),
        "elasticsearch" => Some(Box::new(Elasticsearch::new(wss, seed))),
        "spark-sql" => Some(Box::new(SparkSql::new(wss, seed))),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all(wss: Pages) -> Vec<Box<dyn Workload>> {
        ["micro-bench", "data-caching", "elasticsearch", "spark-sql"]
            .iter()
            .map(|n| by_name(n, wss, 42).unwrap())
            .collect()
    }

    #[test]
    fn clone_box_replays_the_fresh_stream() {
        // A clone of a freshly built prototype is indistinguishable from
        // another fresh build — the contract prototype caching relies on.
        for name in WORKLOAD_NAMES {
            let mut fresh = by_name(name, Pages::new(512), 9).unwrap();
            let prototype = by_name(name, Pages::new(512), 9).unwrap();
            let mut cloned = prototype.clone_box();
            assert_eq!(cloned.name(), fresh.name());
            assert_eq!(cloned.wss(), fresh.wss());
            assert_eq!(cloned.suggested_ops(), fresh.suggested_ops());
            for _ in 0..2_000 {
                assert_eq!(cloned.next_access(), fresh.next_access(), "{name}");
            }
        }
    }

    #[test]
    fn fill_matches_repeated_next_access() {
        // The batched engine consumes the stream through `fill`; it must
        // be byte-identical to the per-op path, including across uneven
        // batch boundaries.
        for name in WORKLOAD_NAMES {
            let mut by_fill = by_name(name, Pages::new(512), 7).unwrap();
            let mut by_next = by_name(name, Pages::new(512), 7).unwrap();
            let mut buf = [Access {
                page: 0,
                write: false,
            }; 257];
            for batch in [1usize, 257, 64, 3, 256] {
                by_fill.fill(&mut buf[..batch]);
                for (i, got) in buf[..batch].iter().enumerate() {
                    assert_eq!(*got, by_next.next_access(), "{name} op {i} of {batch}");
                }
            }
        }
    }

    #[test]
    fn clone_box_snapshots_midstream_state() {
        let mut w = by_name("micro-bench", Pages::new(256), 3).unwrap();
        for _ in 0..100 {
            w.next_access();
        }
        let mut snap = w.clone_box();
        for _ in 0..500 {
            assert_eq!(snap.next_access(), w.next_access());
        }
    }

    #[test]
    fn accesses_stay_in_bounds() {
        for mut w in all(Pages::new(512)) {
            for _ in 0..5_000 {
                let a = w.next_access();
                assert!(a.page < 512, "{} emitted page {}", w.name(), a.page);
            }
        }
    }

    #[test]
    fn deterministic_streams() {
        let mut a = MicroBench::new(Pages::new(256), 7);
        let mut b = MicroBench::new(Pages::new(256), 7);
        for _ in 0..1_000 {
            assert_eq!(a.next_access(), b.next_access());
        }
    }

    #[test]
    fn micro_sweeps_hot_region() {
        let mut w = MicroBench::new(Pages::new(1_000), 1);
        let hot = (1_000.0 * MicroBench::HOT_FRACTION) as u64;
        let mut seen = std::collections::HashSet::new();
        for _ in 0..(hot * 3) {
            seen.insert(w.next_access().page);
        }
        // The sweep + OS accesses cover the whole hot region quickly.
        let covered = (0..hot).filter(|p| seen.contains(p)).count() as u64;
        assert!(covered > hot * 90 / 100, "covered {covered}/{hot}");
    }

    #[test]
    fn micro_os_region_is_hot() {
        let mut w = MicroBench::new(Pages::new(1_000), 2);
        let os = (1_000.0 * MicroBench::OS_FRACTION) as u64;
        let mut os_hits = 0u64;
        for _ in 0..10_000 {
            if w.next_access().page < os {
                os_hits += 1;
            }
        }
        // ~20 % of accesses land on the 8 % OS region.
        let frac = os_hits as f64 / 10_000.0;
        assert!((0.15..0.30).contains(&frac), "os fraction {frac}");
    }

    #[test]
    fn data_caching_is_skewed() {
        let mut w = DataCaching::new(Pages::new(10_000), 2);
        let mut counts = vec![0u32; 10_000];
        for _ in 0..50_000 {
            counts[w.next_access().page as usize] += 1;
        }
        // The top 10 % of pages absorb most accesses.
        let mut sorted = counts.clone();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        let head: u32 = sorted[..1_000].iter().sum();
        assert!(head as f64 > 0.6 * 50_000.0, "head {head}");
    }

    #[test]
    fn macro_ops_cost_more_than_micro() {
        let wss = Pages::new(100);
        let micro = MicroBench::new(wss, 0);
        for w in all(wss).iter().skip(1) {
            assert!(w.base_op_cost() > micro.base_op_cost() * 10, "{}", w.name());
        }
    }

    #[test]
    fn scans_are_sequential() {
        let mut w = SparkSql::new(Pages::new(4_096), 3);
        // Find a scan burst and check consecutive pages.
        let mut last: Option<u64> = None;
        let mut sequential = 0u32;
        for _ in 0..10_000 {
            let a = w.next_access();
            if let Some(l) = last {
                if a.page == l + 1 {
                    sequential += 1;
                }
            }
            last = Some(a.page);
        }
        assert!(sequential > 2_000, "sequential pairs {sequential}");
    }

    #[test]
    fn by_name_rejects_unknown() {
        assert!(by_name("nginx", Pages::new(1), 0).is_none());
    }
}
