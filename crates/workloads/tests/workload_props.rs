//! Property tests: every workload generator stays in bounds, is
//! deterministic per seed, and keeps its documented character for
//! arbitrary working-set sizes.

use proptest::prelude::*;
use zombieland_simcore::Pages;
use zombieland_workloads::{by_name, WORKLOAD_NAMES};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn always_in_bounds(
        wss in 1u64..50_000,
        seed in any::<u64>(),
        which in 0usize..4,
    ) {
        let name = WORKLOAD_NAMES[which];
        let mut w = by_name(name, Pages::new(wss), seed).expect("known");
        prop_assert_eq!(w.wss().count(), wss);
        for _ in 0..2_000 {
            let a = w.next_access();
            prop_assert!(a.page < wss, "{} emitted {} (wss {})", name, a.page, wss);
        }
    }

    #[test]
    fn deterministic_per_seed(
        wss in 16u64..5_000,
        seed in any::<u64>(),
        which in 0usize..4,
    ) {
        let name = WORKLOAD_NAMES[which];
        let mut a = by_name(name, Pages::new(wss), seed).expect("known");
        let mut b = by_name(name, Pages::new(wss), seed).expect("known");
        for _ in 0..500 {
            prop_assert_eq!(a.next_access(), b.next_access());
        }
    }

    #[test]
    fn op_counts_and_costs_positive(
        wss in 1u64..10_000,
        which in 0usize..4,
    ) {
        let w = by_name(WORKLOAD_NAMES[which], Pages::new(wss), 1).expect("known");
        prop_assert!(w.suggested_ops() > 0);
        prop_assert!(w.base_op_cost().as_nanos() > 0);
    }
}
