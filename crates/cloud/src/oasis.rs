//! The Oasis baseline (§6.6.2): hybrid consolidation with partial VM
//! migration.
//!
//! Oasis \[55\] saves energy by *partially* migrating idle VMs: only the
//! VM's working set moves to another host, the rest of its memory is
//! parked on a dedicated low-power **memory server** (consuming "about
//! 40 % of a regular server's total energy consumption, as stated in the
//! original paper"), and the emptied source suspends. The comparison in
//! Fig. 10 pits this against plain Neat and against ZombieStack.

use crate::placement::{HostPowerState, HostView, VmView};

/// Oasis policy parameters.
#[derive(Clone, Copy, Debug)]
pub struct OasisConfig {
    /// CPU utilization below which a host is underused (paper: 20 %).
    pub underload_threshold: f64,
    /// CPU utilization below which a VM counts as idle (paper: 1 %).
    pub idle_vm_threshold: f64,
    /// Power of a memory server relative to a regular server (paper:
    /// 40 %).
    pub memory_server_fraction: f64,
}

impl Default for OasisConfig {
    fn default() -> Self {
        OasisConfig {
            underload_threshold: 0.20,
            idle_vm_threshold: 0.01,
            memory_server_fraction: 0.40,
        }
    }
}

impl OasisConfig {
    /// Whether a VM qualifies as idle.
    pub fn is_idle(&self, vm: &VmView) -> bool {
        vm.cpu_used < self.idle_vm_threshold
    }

    /// Whether a host qualifies as underused.
    pub fn is_underused(&self, host: &HostView) -> bool {
        host.state == HostPowerState::Active
            && host.cpu_used < self.underload_threshold * host.cpu_capacity
    }

    /// Memory parked on memory servers when `vm` is partially migrated:
    /// everything beyond the working set that moves with it.
    pub fn parked_memory(&self, vm: &VmView) -> f64 {
        (vm.mem_booked - vm.mem_used).max(0.0)
    }

    /// How many memory servers (in regular-server units of capacity 1.0)
    /// a total of `parked` parked memory needs.
    pub fn memory_servers_for(&self, parked: f64) -> u32 {
        parked.ceil() as u32
    }

    /// Power drawn by the memory servers holding `parked` memory, in
    /// units of one regular server's maximum power.
    pub fn memory_server_power(&self, parked: f64) -> f64 {
        self.memory_servers_for(parked) as f64 * self.memory_server_fraction
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vm(cpu_used: f64, booked: f64, used: f64) -> VmView {
        VmView {
            id: 0,
            cpu_booked: 0.25,
            mem_booked: booked,
            cpu_used,
            mem_used: used,
        }
    }

    #[test]
    fn idle_detection() {
        let cfg = OasisConfig::default();
        assert!(cfg.is_idle(&vm(0.005, 0.5, 0.1)));
        assert!(!cfg.is_idle(&vm(0.05, 0.5, 0.1)));
    }

    #[test]
    fn parked_memory_excludes_working_set() {
        let cfg = OasisConfig::default();
        assert!((cfg.parked_memory(&vm(0.0, 0.5, 0.1)) - 0.4).abs() < 1e-12);
        assert_eq!(cfg.parked_memory(&vm(0.0, 0.1, 0.2)), 0.0);
    }

    #[test]
    fn memory_servers_cost_forty_percent() {
        let cfg = OasisConfig::default();
        assert_eq!(cfg.memory_servers_for(0.0), 0);
        assert_eq!(cfg.memory_servers_for(0.3), 1);
        assert_eq!(cfg.memory_servers_for(2.4), 3);
        assert!((cfg.memory_server_power(2.4) - 1.2).abs() < 1e-12);
    }
}
