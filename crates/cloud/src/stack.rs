//! ZombieStack bound to a live rack: the end-to-end stack the examples
//! and integration tests drive.
//!
//! [`ZombieStack`] owns a [`Rack`] and runs the OpenStack-layer decisions
//! against it: Nova-style placement with the 50 % rule (allocating the
//! remote share via `GS_alloc_ext`), Neat-style consolidation (pushing
//! emptied servers into Sz through the real ACPI/fabric path), and the
//! modified migration protocol.

use std::collections::BTreeMap;

use zombieland_core::{Rack, RackConfig, RackError, ServerId};
use zombieland_mem::buffer::BufferId;
use zombieland_simcore::{Bytes, SimDuration, SimTime};

use crate::consolidation::{ConsolidationMode, Neat};
use crate::migration::{self, MigrationStats};
use crate::placement::{HostPowerState, HostView, NovaScheduler, VmView};

/// A VM request at the cloud API.
#[derive(Clone, Copy, Debug)]
pub struct VmSpec {
    /// VM identifier.
    pub id: u64,
    /// Booked CPU as a fraction of one server.
    pub cpu: f64,
    /// Booked (reserved) memory.
    pub mem: Bytes,
    /// Current working set (for migration and the 30 % rule).
    pub wss: Bytes,
    /// Actual CPU utilization (fraction of one server).
    pub cpu_used: f64,
}

/// A placed VM.
#[derive(Clone, Debug)]
pub struct PlacedVm {
    /// The request.
    pub spec: VmSpec,
    /// Host server.
    pub host: ServerId,
    /// Local share of its memory.
    pub local: Bytes,
    /// Remote buffers backing the rest.
    pub remote_buffers: Vec<BufferId>,
}

/// Consolidation round report.
#[derive(Clone, Debug, Default)]
pub struct ConsolidationReport {
    /// VMs migrated (id, from, to) with their timing.
    pub migrations: Vec<(u64, ServerId, ServerId, MigrationStats)>,
    /// Servers pushed into Sz this round.
    pub suspended: Vec<ServerId>,
    /// Total migration time.
    pub migration_time: SimDuration,
}

/// The cloud operating system over one rack.
pub struct ZombieStack {
    rack: Rack,
    scheduler: NovaScheduler,
    neat: Neat,
    vms: BTreeMap<u64, PlacedVm>,
    last_consolidation: Option<SimTime>,
    last_swap_refresh: Option<SimTime>,
}

impl ZombieStack {
    /// Boots the stack over a fresh rack.
    pub fn new(config: RackConfig) -> Self {
        ZombieStack {
            rack: Rack::new(config),
            scheduler: NovaScheduler::zombiestack(),
            neat: Neat::new(ConsolidationMode::ZombieStack),
            vms: BTreeMap::new(),
            last_consolidation: None,
            last_swap_refresh: None,
        }
    }

    /// Read access to the rack.
    pub fn rack(&self) -> &Rack {
        &self.rack
    }

    /// The placed VMs.
    pub fn vms(&self) -> impl Iterator<Item = &PlacedVm> {
        self.vms.values()
    }

    fn server_ram(&self) -> Bytes {
        self.rack.config().ram_per_server
    }

    fn norm(&self, b: Bytes) -> f64 {
        b.get() as f64 / self.server_ram().get() as f64
    }

    fn host_view(&self, s: ServerId) -> HostView {
        let state = match self.rack.state(s) {
            Ok(zombieland_acpi::SleepState::S0) => HostPowerState::Active,
            Ok(zombieland_acpi::SleepState::Sz) => HostPowerState::Zombie,
            _ => HostPowerState::Sleeping,
        };
        let mut cpu_booked = 0.0;
        let mut cpu_used = 0.0;
        let mut mem_local = Bytes::ZERO;
        for vm in self.vms.values().filter(|v| v.host == s) {
            cpu_booked += vm.spec.cpu;
            cpu_used += vm.spec.cpu_used;
            mem_local += vm.local;
        }
        HostView {
            id: s.get(),
            state,
            cpu_capacity: 1.0,
            mem_capacity: self.norm(self.server_ram() - self.rack.config().system_reserved),
            cpu_booked,
            mem_booked_local: self.norm(mem_local),
            cpu_used,
        }
    }

    fn views(&self) -> Vec<HostView> {
        self.rack
            .server_ids()
            .into_iter()
            .map(|s| self.host_view(s))
            .collect()
    }

    fn vm_view(&self, spec: &VmSpec) -> VmView {
        VmView {
            id: spec.id,
            cpu_booked: spec.cpu,
            mem_booked: self.norm(spec.mem),
            cpu_used: spec.cpu_used,
            mem_used: self.norm(spec.wss),
        }
    }

    fn remote_pool(&self) -> f64 {
        self.norm(self.rack.db().free_memory())
    }

    fn sync_local_usage(&mut self, s: ServerId) -> Result<(), RackError> {
        let used: Bytes = self
            .vms
            .values()
            .filter(|v| v.host == s)
            .map(|v| v.local)
            .sum();
        self.rack.set_local_usage(s, used)
    }

    /// Boots a VM: schedules it under the 50 % rule, allocates the remote
    /// share via `GS_alloc_ext`, and records the placement. When no
    /// active host fits, the zombie with the fewest allocated buffers is
    /// woken (`GS_get_lru_zombie`, §5.2) and placement retried.
    pub fn boot_vm(&mut self, spec: VmSpec) -> Result<ServerId, RackError> {
        let vm = self.vm_view(&spec);
        let placement = loop {
            let views = self.views();
            if let Some(p) = self.scheduler.schedule(&views, &vm, self.remote_pool()) {
                break p;
            }
            // "If there is no host that satisfies this requirement, we
            // choose and wake up a zombie host."
            let Some(lru) = self.rack.get_lru_zombie(ServerId::new(0))? else {
                return Err(RackError::Db(
                    zombieland_core::db::DbError::AdmissionDenied {
                        requested: zombieland_mem::buffer::buffers_for(spec.mem),
                        available: 0,
                    },
                ));
            };
            self.rack.wake(lru, None)?;
        };
        let host = ServerId::new(placement.host);
        let local = spec
            .mem
            .mul_f64(placement.local_mem / vm.mem_booked.max(1e-12));
        let remote = spec.mem.saturating_sub(local);
        let remote_buffers = if remote > Bytes::ZERO {
            self.rack.alloc_ext(host, remote)?.buffers
        } else {
            Vec::new()
        };
        self.vms.insert(
            spec.id,
            PlacedVm {
                spec,
                host,
                local,
                remote_buffers,
            },
        );
        self.sync_local_usage(host)?;
        Ok(host)
    }

    /// Destroys a VM, releasing its remote buffers.
    pub fn shutdown_vm(&mut self, id: u64) -> Result<(), RackError> {
        let Some(vm) = self.vms.remove(&id) else {
            return Ok(());
        };
        if !vm.remote_buffers.is_empty() {
            self.rack.release(vm.host, &vm.remote_buffers)?;
        }
        self.sync_local_usage(vm.host)
    }

    /// Migrates one VM to `target` using the ZombieStack protocol: only
    /// the local (hot) part moves; the remote part is re-pointed
    /// ("update the ownership pointers for the remote memory
    /// components", §5.3), and the local/remote split is re-balanced for
    /// the target's free memory.
    fn migrate(&mut self, id: u64, target: ServerId) -> Result<MigrationStats, RackError> {
        let vm = self.vms.get(&id).expect("caller validated").clone();
        let source = vm.host;
        let stats = migration::zombiestack_migration(vm.local.min(vm.spec.wss));

        // Ownership of the existing remote buffers moves with the VM; the
        // data itself stays on its zombie hosts (no copy).
        if !vm.remote_buffers.is_empty() {
            self.rack
                .transfer_buffers(source, target, &vm.remote_buffers)?;
        }

        // Re-split: as much local memory as the target can spare, the
        // rest remote (allocating the shortfall).
        let target_view = self.host_view(target);
        let free_local = self
            .server_ram()
            .mul_f64((target_view.mem_capacity - target_view.mem_booked_local).max(0.0));
        let new_local = vm.spec.mem.min(free_local);
        let need_remote = vm.spec.mem.saturating_sub(new_local);
        let have_remote = zombieland_mem::buffer::BUFF_SIZE * vm.remote_buffers.len() as u64;
        let mut buffers = vm.remote_buffers.clone();
        if need_remote > have_remote {
            let extra = self.rack.alloc_ext(target, need_remote - have_remote)?;
            buffers.extend(extra.buffers);
        }

        let vm_mut = self.vms.get_mut(&id).expect("present");
        vm_mut.host = target;
        vm_mut.local = vm
            .spec
            .mem
            .saturating_sub(zombieland_mem::buffer::BUFF_SIZE * buffers.len() as u64);
        vm_mut.remote_buffers = buffers;
        self.sync_local_usage(source)?;
        self.sync_local_usage(target)?;
        Ok(stats)
    }

    /// Refreshes the Explicit-SD pools: "this function is periodically
    /// called (i.e. every 1 hour) in order to take advantage of unused
    /// remote buffers" (§4.4). Asks `GS_alloc_swap` for up to `per_host`
    /// extra swap memory on every active host.
    pub fn refresh_swap(&mut self, per_host: Bytes) -> Result<u64, RackError> {
        let mut granted = 0u64;
        for s in self.rack.server_ids() {
            if self.rack.state(s)? != zombieland_acpi::SleepState::S0 {
                continue;
            }
            granted += self.rack.alloc_swap(s, per_host)?.buffers.len() as u64;
        }
        Ok(granted)
    }

    /// The operator loop: call periodically with simulation time. Sends
    /// the controller heartbeat, checks for failover, runs consolidation
    /// on the Neat cadence (5 min) and the swap refresh on the paper's
    /// hourly cadence (§4.4). Returns the consolidation report when a
    /// round ran.
    pub fn tick(&mut self, now: SimTime) -> Result<Option<ConsolidationReport>, RackError> {
        self.rack.heartbeat(now);
        self.rack.check_failover(now);

        if self
            .last_swap_refresh
            .is_none_or(|t| now.saturating_since(t) >= SimDuration::from_hours(1))
        {
            self.last_swap_refresh = Some(now);
            // Top up every active host's Explicit-SD pool, best effort.
            let _ = self.refresh_swap(Bytes::mib(256))?;
        }

        if self
            .last_consolidation
            .is_none_or(|t| now.saturating_since(t) >= SimDuration::from_mins(5))
        {
            self.last_consolidation = Some(now);
            return Ok(Some(self.consolidate()?));
        }
        Ok(None)
    }

    /// One Neat consolidation round: first relieve overloaded hosts
    /// (steps 2–4 of the Neat algorithm), then evacuate underloaded hosts
    /// onto their peers (30 % rule) and push the emptied hosts into Sz.
    pub fn consolidate(&mut self) -> Result<ConsolidationReport, RackError> {
        let mut report = ConsolidationReport::default();

        // Overload relief: shed the smallest sufficient VMs.
        let views = self.views();
        for host_id in self.neat.overloaded(&views) {
            let source = ServerId::new(host_id);
            let resident: Vec<VmView> = self
                .vms
                .values()
                .filter(|v| v.host == source)
                .map(|v| self.vm_view(&v.spec))
                .collect();
            let host_view = self.host_view(source);
            for vm_id in self.neat.select_vms_to_shed(&host_view, &resident) {
                let spec = self.vms[&vm_id].spec;
                let vm = self.vm_view(&spec);
                let fresh = self.views();
                if let Some(t) = self
                    .neat
                    .pick_target(&fresh, host_id, &vm, self.remote_pool())
                {
                    let target = ServerId::new(t);
                    let stats = self.migrate(vm_id, target)?;
                    report.migration_time += stats.total;
                    report.migrations.push((vm_id, source, target, stats));
                }
            }
        }

        let views = self.views();
        for host_id in self.neat.underloaded(&views) {
            // Never suspend the last active host: the rack must keep
            // compute capacity for arrivals (and someone to run agents).
            let actives = self
                .rack
                .server_ids()
                .into_iter()
                .filter(|&s| self.rack.state(s) == Ok(zombieland_acpi::SleepState::S0))
                .count();
            if actives <= 1 {
                break;
            }
            let source = ServerId::new(host_id);
            let resident: Vec<u64> = self
                .vms
                .values()
                .filter(|v| v.host == source)
                .map(|v| v.spec.id)
                .collect();
            // Find a target for every VM; abort the host if any VM is
            // stuck (all-or-nothing evacuation).
            let mut moves = Vec::new();
            let mut ok = true;
            for vm_id in &resident {
                let spec = self.vms[vm_id].spec;
                let vm = self.vm_view(&spec);
                let fresh_views = self.views();
                match self
                    .neat
                    .pick_target(&fresh_views, host_id, &vm, self.remote_pool())
                {
                    Some(t) => moves.push((*vm_id, ServerId::new(t))),
                    None => {
                        ok = false;
                        break;
                    }
                }
            }
            if !ok {
                continue;
            }
            for (vm_id, target) in moves {
                let stats = self.migrate(vm_id, target)?;
                report.migration_time += stats.total;
                report.migrations.push((vm_id, source, target, stats));
            }
            // The host is empty: push it into Sz (its memory joins the
            // pool).
            self.rack.goto_zombie(source)?;
            report.suspended.push(source);
        }
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(id: u64, cpu: f64, mem_gib: u64, cpu_used: f64) -> VmSpec {
        VmSpec {
            id,
            cpu,
            mem: Bytes::gib(mem_gib),
            wss: Bytes::gib(mem_gib).mul_f64(0.8),
            cpu_used,
        }
    }

    fn spec_mem(id: u64, cpu: f64, mem_gib: u64, wss_gib: u64, cpu_used: f64) -> VmSpec {
        VmSpec {
            id,
            cpu,
            mem: Bytes::gib(mem_gib),
            wss: Bytes::gib(wss_gib).mul_f64(0.8),
            cpu_used,
        }
    }

    #[test]
    fn boot_places_and_allocates_remote() {
        let mut stack = ZombieStack::new(RackConfig::default());
        // One server becomes a zombie so the pool is non-empty.
        let ids = stack.rack.server_ids();
        stack.rack.goto_zombie(ids[3]).unwrap();
        // A VM bigger than any host's free memory: must split.
        let host = stack.boot_vm(spec(1, 0.5, 20, 0.3)).unwrap();
        let vm = stack.vms().next().unwrap();
        assert_eq!(vm.host, host);
        assert!(vm.local < Bytes::gib(20));
        assert!(!vm.remote_buffers.is_empty());
        // 50 % rule respected.
        assert!(vm.local.get() * 2 >= Bytes::gib(20).get());
    }

    #[test]
    fn consolidation_empties_idle_hosts_into_sz() {
        let mut stack = ZombieStack::new(RackConfig {
            servers: 3,
            ..RackConfig::default()
        });
        // A busy, memory-heavy VM fills host 0 (12 GiB of the 15 GiB
        // usable), so the idle VM (8 GiB, needing >= 4 GiB local under the
        // 50 % rule) cannot stack there and lands on host 1 alone.
        stack.boot_vm(spec_mem(1, 0.4, 12, 10, 0.35)).unwrap();
        stack.boot_vm(spec_mem(3, 0.3, 8, 8, 0.05)).unwrap();
        let hosts_used: std::collections::HashSet<ServerId> = stack.vms().map(|v| v.host).collect();
        assert_eq!(hosts_used.len(), 2, "load spread over 2 hosts");

        let report = stack.consolidate().unwrap();
        // The empty host 2 was zombified first, which fills the remote
        // pool; then host 1 (idle VM only) evacuated under the 30 % rule
        // (3 GiB free on host 0 >= 30 % of the 6.4 GiB WSS) and zombified
        // too.
        assert_eq!(report.suspended.len(), 2);
        assert_eq!(report.migrations.len(), 1);
        let (vm_id, from, to, stats) = &report.migrations[0];
        assert_eq!(*vm_id, 3);
        assert_ne!(from, to);
        assert!(stats.total > SimDuration::ZERO);
        for z in &report.suspended {
            assert_eq!(
                stack.rack.state(*z).unwrap(),
                zombieland_acpi::SleepState::Sz
            );
        }
        assert!(stack.rack.db().free_buffers() > 0, "memory joined the pool");
        // The migrated VM's memory was re-split: part local on the busy
        // host, the rest in remote buffers.
        let vm = stack.vms().find(|v| v.spec.id == 3).unwrap();
        assert!(vm.local < Bytes::gib(8));
        assert!(!vm.remote_buffers.is_empty());
        // All VMs live on active hosts.
        for vm in stack.vms() {
            assert!(!report.suspended.contains(&vm.host));
        }
    }

    #[test]
    fn boot_wakes_lru_zombie_when_nothing_fits() {
        let mut stack = ZombieStack::new(RackConfig {
            servers: 2,
            ..RackConfig::default()
        });
        let ids = stack.rack.server_ids();
        // One host is a zombie; the other fills up on CPU.
        stack.rack.goto_zombie(ids[1]).unwrap();
        stack.boot_vm(spec(1, 0.9, 4, 0.8)).unwrap();
        // This VM fits nowhere active: the zombie must wake to host it.
        let host = stack.boot_vm(spec(2, 0.5, 4, 0.4)).unwrap();
        assert_eq!(host, ids[1]);
        assert_eq!(
            stack.rack.state(ids[1]).unwrap(),
            zombieland_acpi::SleepState::S0
        );
    }

    #[test]
    fn boot_fails_when_rack_exhausted() {
        let mut stack = ZombieStack::new(RackConfig {
            servers: 1,
            ..RackConfig::default()
        });
        stack.boot_vm(spec(1, 0.9, 4, 0.8)).unwrap();
        assert!(stack.boot_vm(spec(2, 0.5, 4, 0.4)).is_err());
    }

    #[test]
    fn overloaded_hosts_shed_vms() {
        let mut stack = ZombieStack::new(RackConfig {
            servers: 2,
            ..RackConfig::default()
        });
        // Overload host 0 (>90 % used), with a peer that has room. The
        // second VM is the smallest by memory, so the MMT heuristic sheds
        // it — and it fits on the peer.
        stack.boot_vm(spec(1, 0.6, 2, 0.55)).unwrap();
        stack.boot_vm(spec(2, 0.39, 1, 0.38)).unwrap();
        stack.boot_vm(spec(3, 0.5, 2, 0.45)).unwrap(); // Lands on host 1.
        let report = stack.consolidate().unwrap();
        assert!(
            !report.migrations.is_empty(),
            "the overloaded host shed at least one VM"
        );
        // No host remains overloaded.
        for s in stack.rack.server_ids() {
            let v = stack.host_view(s);
            assert!(v.cpu_used <= 0.9 + 1e-9, "host {s}: {}", v.cpu_used);
        }
    }

    #[test]
    fn refresh_swap_harvests_unused_buffers() {
        let mut stack = ZombieStack::new(RackConfig::default());
        let ids = stack.rack.server_ids();
        stack.rack.goto_zombie(ids[3]).unwrap();
        let granted = stack.refresh_swap(Bytes::mib(256)).unwrap();
        assert_eq!(granted, 3 * 4, "4 buffers for each of 3 active hosts");
        // A second refresh keeps taking from the pool (best effort).
        let more = stack.refresh_swap(Bytes::mib(256)).unwrap();
        assert_eq!(more, 12);
    }

    #[test]
    fn operator_tick_paces_consolidation_and_refresh() {
        let mut stack = ZombieStack::new(RackConfig::default());
        let t0 = SimTime::ZERO;
        // First tick runs both.
        let first = stack.tick(t0).unwrap();
        assert!(first.is_some(), "first tick consolidates");
        // One minute later: neither cadence due.
        let soon = stack.tick(t0 + SimDuration::from_mins(1)).unwrap();
        assert!(soon.is_none());
        // Five minutes later: consolidation due again.
        let later = stack.tick(t0 + SimDuration::from_mins(6)).unwrap();
        assert!(later.is_some());
        // The empty rack consolidated down to one active host; the rest
        // are zombies serving the pool.
        let ids = stack.rack.server_ids();
        let zombies = ids
            .iter()
            .filter(|&&s| stack.rack.state(s) == Ok(zombieland_acpi::SleepState::Sz))
            .count();
        assert_eq!(zombies, 3, "all but the last active host zombified");
        // Fast-forward past the hour: the swap refresh draws from the
        // pool for the remaining active host.
        stack.tick(t0 + SimDuration::from_hours(2)).unwrap();
        let swap_buffers: u64 = ids
            .iter()
            .map(|&s| {
                stack
                    .rack
                    .manager(s)
                    .granted_buffers(zombieland_core::manager::PoolKind::Swap)
                    .len() as u64
            })
            .sum();
        assert!(swap_buffers > 0, "hourly GS_alloc_swap refresh ran");
    }

    #[test]
    fn shutdown_releases_buffers() {
        let mut stack = ZombieStack::new(RackConfig::default());
        let ids = stack.rack.server_ids();
        stack.rack.goto_zombie(ids[3]).unwrap();
        let before = stack.rack.db().free_buffers();
        stack.boot_vm(spec(1, 0.5, 20, 0.3)).unwrap();
        assert!(stack.rack.db().free_buffers() < before);
        stack.shutdown_vm(1).unwrap();
        assert_eq!(stack.rack.db().free_buffers(), before);
    }
}
