//! VM migration timing models (§5.3, evaluated in Fig. 9).
//!
//! Vanilla live migration pre-copies: it transfers the whole VM memory,
//! then a fixed number of dirty-page rounds, then stop-and-copies the
//! residue. Its duration is dominated by the full-memory first round, so
//! it barely depends on the working-set size — exactly what Fig. 9 shows.
//!
//! ZombieStack migration is post-copy-flavoured: the VM stops, only the
//! *local hot part* (about half the WSS under the 50 % rule) crosses the
//! wire, and the VM resumes on the destination; the remote part needs no
//! migration at all — only its ownership pointers change. Duration
//! therefore scales with the WSS and beats vanilla everywhere, most
//! dramatically at small working sets.

use zombieland_simcore::{Bytes, SimDuration, SimTime};

/// Migration-network throughput. The paper's management network moves
/// pre-copy traffic at sub-GB/s effective rates (TCP, page-diff
/// bookkeeping), far below the InfiniBand data plane.
pub const MIGRATION_BANDWIDTH_BPS: f64 = 0.35e9;

/// Dirty-page rounds a vanilla pre-copy performs after the first full
/// pass ("the number of iteration\[s\] performed by the hypervisor for
/// transferring dirty pages is fixed").
pub const PRECOPY_ROUNDS: u32 = 4;

/// Fraction of the working set dirtied during one pre-copy round.
pub const DIRTY_PER_ROUND: f64 = 0.08;

/// Fixed protocol overhead: connection setup, listener VM creation,
/// final handoff.
pub const HANDOFF: SimDuration = SimDuration::from_millis(900);

/// Result of one migration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MigrationStats {
    /// Wall-clock duration of the whole migration.
    pub total: SimDuration,
    /// VM unavailability (stop-and-copy window).
    pub downtime: SimDuration,
    /// Bytes moved across the migration network.
    pub bytes: Bytes,
}

fn wire_time(bytes: Bytes) -> SimDuration {
    SimDuration::from_secs_f64(bytes.get() as f64 / MIGRATION_BANDWIDTH_BPS)
}

/// Records one migration decision on the current observability
/// collector, stamped at its own completion time.
fn observe_migration(protocol: &'static str, stats: &MigrationStats) {
    zombieland_obs::sink::counter_add("cloud.migrations", 1);
    zombieland_obs::sink::hist_record("cloud.migration_ns", stats.total.as_nanos());
    zombieland_obs::sink::hist_record("cloud.downtime_ns", stats.downtime.as_nanos());
    zombieland_obs::trace_event!(SimTime::ZERO + stats.total, "cloud", "migration",
        "protocol" => protocol,
        "total_ns" => stats.total.as_nanos(),
        "downtime_ns" => stats.downtime.as_nanos(),
        "bytes" => stats.bytes.get());
}

/// Vanilla pre-copy of a VM with `vm_mem` reserved memory and `wss`
/// working set.
pub fn vanilla_precopy(vm_mem: Bytes, wss: Bytes) -> MigrationStats {
    // Round 0 copies everything; each later round copies the pages the
    // running VM dirtied meanwhile; the final stop-copy moves the last
    // round's residue.
    let dirty = wss.mul_f64(DIRTY_PER_ROUND);
    let bytes = vm_mem + dirty * PRECOPY_ROUNDS as u64;
    let downtime = wire_time(dirty) + HANDOFF;
    let stats = MigrationStats {
        total: wire_time(bytes) + HANDOFF,
        downtime,
        bytes,
    };
    observe_migration("vanilla_precopy", &stats);
    stats
}

/// ZombieStack migration of a VM whose local (hot) memory part is
/// `local_part`; the remote part stays where it is.
pub fn zombiestack_migration(local_part: Bytes) -> MigrationStats {
    // Stop, copy the hot pages, update remote-buffer ownership, resume.
    let copy = wire_time(local_part);
    let stats = MigrationStats {
        total: copy + HANDOFF,
        downtime: copy + HANDOFF,
        bytes: local_part,
    };
    observe_migration("zombiestack", &stats);
    stats
}

/// Oasis-style *partial* migration [55, 58]: only the working set crosses
/// the wire to the new host; the remaining (cold) memory is shipped to a
/// low-power memory server lazily, off the critical path. Downtime covers
/// just the working-set copy.
///
/// This is the baseline's counterpart to [`zombiestack_migration`]: both
/// move ~the hot pages, but Oasis then needs a *dedicated memory server*
/// to park the rest, while ZombieStack's remote part never moves at all.
pub fn oasis_partial_migration(vm_mem: Bytes, wss: Bytes) -> MigrationStats {
    let hot = wss.min(vm_mem);
    let copy = wire_time(hot);
    // The cold transfer to the memory server streams in the background;
    // only the hot copy and the handoff gate the VM.
    let stats = MigrationStats {
        total: copy + HANDOFF,
        downtime: copy + HANDOFF,
        bytes: vm_mem, // Everything crosses the network eventually.
    };
    observe_migration("oasis_partial", &stats);
    stats
}

/// One Fig. 9 data point: both protocols on a VM of `vm_mem`, with the
/// working set at `wss_ratio` of the VM memory, under ZombieStack's 50 %
/// local split.
pub fn figure9_point(vm_mem: Bytes, wss_ratio: f64) -> (MigrationStats, MigrationStats) {
    let wss = vm_mem.mul_f64(wss_ratio);
    let native = vanilla_precopy(vm_mem, wss);
    // "Only the memory pages within the local memory (about 50 % of the
    // WSS - see Section 5) are transferred."
    let zombie = zombiestack_migration(wss.mul_f64(0.5));
    (native, zombie)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn native_nearly_flat_in_wss() {
        let mem = Bytes::gib(7);
        let (low, _) = figure9_point(mem, 0.2);
        let (high, _) = figure9_point(mem, 0.8);
        let ratio = high.total.as_secs_f64() / low.total.as_secs_f64();
        assert!(
            ratio < 1.25,
            "native migration almost unaffected by WSS: ratio {ratio}"
        );
        // And in the paper's ~20-30 s ballpark for a 7 GiB VM.
        assert!(low.total.as_secs_f64() > 15.0 && high.total.as_secs_f64() < 35.0);
    }

    #[test]
    fn zombiestack_scales_with_wss_and_wins() {
        let mem = Bytes::gib(7);
        for ratio in [0.2, 0.4, 0.6, 0.8] {
            let (native, zombie) = figure9_point(mem, ratio);
            assert!(
                zombie.total < native.total,
                "zombie wins at wss={ratio}: {:?} vs {:?}",
                zombie.total,
                native.total
            );
        }
        let (_, z_low) = figure9_point(mem, 0.2);
        let (_, z_high) = figure9_point(mem, 0.8);
        // Scales with WSS: ~4× more data, ~4× longer (minus handoff).
        assert!(z_high.total.as_secs_f64() / z_low.total.as_secs_f64() > 2.5);
        // The advantage is largest at low WSS.
        let (n_low, _) = figure9_point(mem, 0.2);
        assert!(n_low.total.as_secs_f64() / z_low.total.as_secs_f64() > 5.0);
    }

    #[test]
    fn zombie_moves_fewer_bytes() {
        let (native, zombie) = figure9_point(Bytes::gib(7), 0.5);
        assert!(zombie.bytes.get() * 3 < native.bytes.get());
    }

    #[test]
    fn oasis_partial_between_native_and_zombiestack() {
        let mem = Bytes::gib(7);
        for ratio in [0.2, 0.5, 0.8] {
            let wss = mem.mul_f64(ratio);
            let (native, zombie) = figure9_point(mem, ratio);
            let oasis = oasis_partial_migration(mem, wss);
            // Oasis moves the whole WSS; ZombieStack only its local half.
            assert!(oasis.total < native.total, "wss={ratio}");
            assert!(zombie.total < oasis.total, "wss={ratio}");
            // But Oasis eventually ships all the memory off-host.
            assert_eq!(oasis.bytes, mem);
            assert!(zombie.bytes < oasis.bytes);
        }
    }

    #[test]
    fn downtime_tradeoff() {
        // Pre-copy's price for the long total is a short stop-and-copy;
        // ZombieStack stops for its whole (much shorter) copy.
        let (native, zombie) = figure9_point(Bytes::gib(7), 0.5);
        assert!(native.downtime < native.total);
        assert_eq!(zombie.downtime, zombie.total);
    }
}
