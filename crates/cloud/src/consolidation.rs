//! VM consolidation after OpenStack Neat (§5.2).
//!
//! Neat's algorithm in four steps \[57\]: find underloaded hosts (evacuate
//! and suspend them); find overloaded hosts (offload to meet QoS); select
//! which VMs to migrate; place them (waking sleeping hosts if needed).
//!
//! ZombieStack changes two things: the placement constraint drops from
//! "all booked resources" to "30 % of the VM's working set locally"
//! (remote memory covers the rest), and when a wake-up is unavoidable it
//! prefers the zombie with the fewest allocated buffers
//! (`GS_get_lru_zombie`) to minimize reclaim traffic.

use crate::placement::{HostPowerState, HostView, VmView};

/// Which variant of the consolidator runs.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ConsolidationMode {
    /// Vanilla Neat: full-booking placement, suspended hosts go to S3
    /// (their memory leaves the pool).
    VanillaNeat,
    /// ZombieStack: 30 %-of-WSS placement, emptied hosts go to Sz and
    /// keep serving memory.
    ZombieStack,
}

/// The consolidation planner.
#[derive(Clone, Copy, Debug)]
pub struct Neat {
    /// Mode.
    pub mode: ConsolidationMode,
    /// Hosts below this actual CPU utilization are underloaded (paper
    /// setups use 20 %).
    pub underload_threshold: f64,
    /// Hosts above this are overloaded and must shed VMs.
    pub overload_threshold: f64,
}

impl Neat {
    /// The paper's thresholds. `const` so policy objects can embed a
    /// planner in `static` items.
    pub const fn new(mode: ConsolidationMode) -> Self {
        Neat {
            mode,
            underload_threshold: 0.20,
            overload_threshold: 0.90,
        }
    }

    /// Step 1: underloaded hosts — candidates for full evacuation,
    /// ordered least-loaded first so the emptiest hosts evacuate first.
    pub fn underloaded(&self, hosts: &[HostView]) -> Vec<u32> {
        let mut v: Vec<&HostView> = hosts
            .iter()
            .filter(|h| {
                h.state == HostPowerState::Active
                    && h.cpu_used < self.underload_threshold * h.cpu_capacity
            })
            .collect();
        v.sort_by(|a, b| {
            (a.cpu_used, a.id)
                .partial_cmp(&(b.cpu_used, b.id))
                .expect("no NaN")
        });
        v.into_iter().map(|h| h.id).collect()
    }

    /// Step 2: overloaded hosts.
    pub fn overloaded(&self, hosts: &[HostView]) -> Vec<u32> {
        hosts
            .iter()
            .filter(|h| {
                h.state == HostPowerState::Active
                    && h.cpu_used > self.overload_threshold * h.cpu_capacity
            })
            .map(|h| h.id)
            .collect()
    }

    /// Step 3 for an overloaded host: pick VMs to shed until the host
    /// drops below the overload threshold — smallest sufficient VMs first
    /// (the minimum-migration-time heuristic).
    pub fn select_vms_to_shed(&self, host: &HostView, vms: &[VmView]) -> Vec<u64> {
        let mut excess = host.cpu_used - self.overload_threshold * host.cpu_capacity;
        if excess <= 0.0 {
            return Vec::new();
        }
        // Smallest-first keeps migration cost low while shedding load.
        let mut candidates: Vec<&VmView> = vms.iter().collect();
        candidates.sort_by(|a, b| {
            (a.mem_used, a.id)
                .partial_cmp(&(b.mem_used, b.id))
                .expect("no NaN")
        });
        let mut picked = Vec::new();
        for vm in candidates {
            if excess <= 0.0 {
                break;
            }
            if vm.cpu_used > 0.0 {
                picked.push(vm.id);
                excess -= vm.cpu_used;
            }
        }
        picked
    }

    /// The placement feasibility test for a migrating VM (step 4).
    ///
    /// Vanilla Neat requires the full booking locally. ZombieStack "only
    /// check\[s\] if 30 % of the VM's working set size is available on the
    /// target server" — remote memory covers the rest.
    pub fn fits(&self, target: &HostView, vm: &VmView, remote_pool: f64) -> bool {
        if target.state != HostPowerState::Active {
            return false;
        }
        if target.cpu_free() + 1e-12 < vm.cpu_booked {
            return false;
        }
        match self.mode {
            ConsolidationMode::VanillaNeat => target.mem_free() + 1e-12 >= vm.mem_booked,
            ConsolidationMode::ZombieStack => {
                let need_local = 0.30 * vm.mem_used;
                let local = vm.mem_booked.min(target.mem_free());
                local + 1e-12 >= need_local && (vm.mem_booked - local) <= remote_pool + 1e-12
            }
        }
    }

    /// Picks a migration target for `vm` among active hosts: stacking
    /// (most booked CPU first), never the source.
    pub fn pick_target(
        &self,
        hosts: &[HostView],
        source: u32,
        vm: &VmView,
        remote_pool: f64,
    ) -> Option<u32> {
        let picked = hosts
            .iter()
            .filter(|h| h.id != source && self.fits(h, vm, remote_pool))
            .max_by(|a, b| {
                (a.cpu_booked, b.id)
                    .partial_cmp(&(b.cpu_booked, a.id))
                    .expect("no NaN")
            })
            .map(|h| h.id);
        match picked {
            Some(_) => zombieland_obs::sink::counter_add("cloud.consolidation_targets", 1),
            None => zombieland_obs::sink::counter_add("cloud.consolidation_misses", 1),
        }
        picked
    }

    /// When no active host fits, which sleeping/zombie host to wake.
    /// ZombieStack prefers the zombie with the least allocated remote
    /// memory (`allocated_by_host`, indexed like `hosts`); vanilla picks
    /// any sleeping host.
    pub fn pick_wakeup(&self, hosts: &[HostView], allocated_by_host: &[f64]) -> Option<u32> {
        match self.mode {
            ConsolidationMode::VanillaNeat => hosts
                .iter()
                .find(|h| h.state == HostPowerState::Sleeping)
                .map(|h| h.id),
            ConsolidationMode::ZombieStack => hosts
                .iter()
                .filter(|h| h.state == HostPowerState::Zombie)
                .min_by(|a, b| {
                    let (aa, bb) = (
                        allocated_by_host[a.id as usize],
                        allocated_by_host[b.id as usize],
                    );
                    (aa, a.id).partial_cmp(&(bb, b.id)).expect("no NaN")
                })
                .map(|h| h.id)
                .or_else(|| {
                    hosts
                        .iter()
                        .find(|h| h.state == HostPowerState::Sleeping)
                        .map(|h| h.id)
                }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn host(
        id: u32,
        state: HostPowerState,
        cpu_used: f64,
        cpu_booked: f64,
        mem_local: f64,
    ) -> HostView {
        HostView {
            id,
            state,
            cpu_capacity: 1.0,
            mem_capacity: 1.0,
            cpu_booked,
            mem_booked_local: mem_local,
            cpu_used,
        }
    }

    fn vm(id: u64, cpu: f64, mem: f64) -> VmView {
        VmView {
            id,
            cpu_booked: cpu,
            mem_booked: mem,
            cpu_used: cpu * 0.8,
            mem_used: mem * 0.8,
        }
    }

    #[test]
    fn underload_detection_sorted() {
        let neat = Neat::new(ConsolidationMode::ZombieStack);
        let hosts = [
            host(0, HostPowerState::Active, 0.15, 0.3, 0.3),
            host(1, HostPowerState::Active, 0.05, 0.1, 0.1),
            host(2, HostPowerState::Active, 0.50, 0.6, 0.6),
            host(3, HostPowerState::Zombie, 0.0, 0.0, 0.0),
        ];
        assert_eq!(neat.underloaded(&hosts), vec![1, 0]);
        assert!(neat.overloaded(&hosts).is_empty());
    }

    #[test]
    fn overload_sheds_smallest_sufficient_vms() {
        let neat = Neat::new(ConsolidationMode::ZombieStack);
        let h = host(0, HostPowerState::Active, 0.97, 1.0, 0.9);
        let vms = [vm(1, 0.5, 0.5), vm(2, 0.05, 0.05), vm(3, 0.2, 0.2)];
        let shed = neat.select_vms_to_shed(&h, &vms);
        // 0.97 - 0.90 = 0.07 excess; the smallest VM (0.04 used cpu) is
        // not enough alone, the next smallest completes it.
        assert_eq!(shed, vec![2, 3]);
    }

    #[test]
    fn zombiestack_thirty_percent_rule() {
        let neat = Neat::new(ConsolidationMode::ZombieStack);
        let vanilla = Neat::new(ConsolidationMode::VanillaNeat);
        // Target with 0.2 free memory; VM books 0.5, uses 0.4.
        let target = host(1, HostPowerState::Active, 0.3, 0.4, 0.8);
        let v = vm(9, 0.2, 0.5);
        // Vanilla needs 0.5 free: rejected.
        assert!(!vanilla.fits(&target, &v, 10.0));
        // ZombieStack needs 0.3 × 0.4 = 0.12 local: accepted.
        assert!(neat.fits(&target, &v, 10.0));
        // But not when the remote pool cannot take the overflow.
        assert!(!neat.fits(&target, &v, 0.1));
    }

    #[test]
    fn wakeup_prefers_lru_zombie() {
        let neat = Neat::new(ConsolidationMode::ZombieStack);
        let hosts = [
            host(0, HostPowerState::Zombie, 0.0, 0.0, 0.0),
            host(1, HostPowerState::Zombie, 0.0, 0.0, 0.0),
            host(2, HostPowerState::Sleeping, 0.0, 0.0, 0.0),
        ];
        let allocated = [0.6, 0.1, 0.0];
        assert_eq!(neat.pick_wakeup(&hosts, &allocated), Some(1));
        // Vanilla has no zombies; it wakes the S3 host.
        let vanilla = Neat::new(ConsolidationMode::VanillaNeat);
        assert_eq!(vanilla.pick_wakeup(&hosts, &allocated), Some(2));
    }

    #[test]
    fn migration_target_stacks() {
        let neat = Neat::new(ConsolidationMode::ZombieStack);
        let hosts = [
            host(0, HostPowerState::Active, 0.1, 0.1, 0.1),
            host(1, HostPowerState::Active, 0.6, 0.7, 0.3),
            host(2, HostPowerState::Active, 0.4, 0.5, 0.3),
        ];
        let v = vm(5, 0.2, 0.3);
        assert_eq!(neat.pick_target(&hosts, 0, &v, 10.0), Some(1));
        // The source itself is never chosen.
        assert_eq!(neat.pick_target(&hosts, 1, &v, 10.0), Some(2));
    }
}
