//! Remote-memory-aware VM placement (§5.1).
//!
//! Nova places a VM in two phases: *filter* the hosts able to take it,
//! then *weigh* the survivors. ZombieStack relaxes the memory filter:
//! a host qualifies if it can serve **50 %** of the VM's memory locally
//! (the empirically chosen compromise of §6.3) and the rack's remote pool
//! covers the rest. The weigher implements VM stacking (most-loaded
//! first), the strategy that creates empty servers to push into Sz.

/// The power condition of a host as the scheduler sees it.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum HostPowerState {
    /// Running (S0), can host VMs.
    Active,
    /// In Sz: serves memory, cannot host VMs without waking.
    Zombie,
    /// In S3: dark, must wake before doing anything.
    Sleeping,
}

/// A host as the placement logic sees it. Capacities are normalized to
/// "one server" = 1.0 on both axes (matching the trace format).
#[derive(Clone, Copy, Debug)]
pub struct HostView {
    /// Host identifier.
    pub id: u32,
    /// Power state.
    pub state: HostPowerState,
    /// CPU capacity (1.0 = whole server).
    pub cpu_capacity: f64,
    /// Memory capacity.
    pub mem_capacity: f64,
    /// Booked CPU of resident VMs.
    pub cpu_booked: f64,
    /// Locally booked memory of resident VMs (their local shares).
    pub mem_booked_local: f64,
    /// Actual CPU utilization (for consolidation decisions).
    pub cpu_used: f64,
}

impl HostView {
    /// Free CPU capacity.
    pub fn cpu_free(&self) -> f64 {
        (self.cpu_capacity - self.cpu_booked).max(0.0)
    }

    /// Free local memory.
    pub fn mem_free(&self) -> f64 {
        (self.mem_capacity - self.mem_booked_local).max(0.0)
    }
}

/// A VM (trace task) as the placement logic sees it.
#[derive(Clone, Copy, Debug)]
pub struct VmView {
    /// VM identifier.
    pub id: u64,
    /// Booked CPU.
    pub cpu_booked: f64,
    /// Booked memory.
    pub mem_booked: f64,
    /// Actual average CPU use.
    pub cpu_used: f64,
    /// Actual average memory use (the working set for migration).
    pub mem_used: f64,
}

/// What a successful placement decided.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Placement {
    /// The chosen host.
    pub host: u32,
    /// Memory served from the host's local RAM.
    pub local_mem: f64,
    /// Memory served from the remote pool.
    pub remote_mem: f64,
}

/// The Nova-like scheduler.
#[derive(Clone, Copy, Debug)]
pub struct NovaScheduler {
    /// Minimum fraction of a VM's memory that must be local
    /// (ZombieStack: 0.5; vanilla Nova: 1.0).
    pub min_local_fraction: f64,
}

impl NovaScheduler {
    /// ZombieStack's configuration: the 50 % rule of §5.1/§6.3. `const`
    /// so policy objects can embed a scheduler in `static` items.
    pub const fn zombiestack() -> Self {
        NovaScheduler {
            min_local_fraction: 0.5,
        }
    }

    /// Vanilla Nova: all memory must be local.
    pub const fn vanilla() -> Self {
        NovaScheduler {
            min_local_fraction: 1.0,
        }
    }

    /// Phase 1: can `host` take `vm`, given `remote_pool` free remote
    /// memory? Returns the split it would use (as much local as
    /// available, topped up remotely).
    pub fn filter(&self, host: &HostView, vm: &VmView, remote_pool: f64) -> Option<Placement> {
        if host.state != HostPowerState::Active {
            return None;
        }
        if host.cpu_free() + 1e-12 < vm.cpu_booked {
            return None;
        }
        let local = vm.mem_booked.min(host.mem_free());
        if local + 1e-12 < vm.mem_booked * self.min_local_fraction {
            return None;
        }
        let remote = vm.mem_booked - local;
        if remote > remote_pool + 1e-12 {
            return None;
        }
        Some(Placement {
            host: host.id,
            local_mem: local,
            remote_mem: remote,
        })
    }

    /// Phase 2: picks the best host among `hosts` for `vm` under the
    /// stacking strategy — the *most* loaded host that still fits, so
    /// load concentrates and empty servers emerge.
    pub fn schedule(&self, hosts: &[HostView], vm: &VmView, remote_pool: f64) -> Option<Placement> {
        let picked = hosts
            .iter()
            .filter_map(|h| self.filter(h, vm, remote_pool).map(|p| (h, p)))
            .max_by(|(a, _), (b, _)| {
                // Highest booked CPU first; host id breaks ties for
                // determinism.
                (a.cpu_booked, b.id)
                    .partial_cmp(&(b.cpu_booked, a.id))
                    .expect("no NaN load")
            })
            .map(|(_, p)| p);
        match picked {
            Some(_) => zombieland_obs::sink::counter_add("cloud.placements", 1),
            None => zombieland_obs::sink::counter_add("cloud.placement_rejects", 1),
        }
        picked
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn host(id: u32, cpu_booked: f64, mem_local: f64) -> HostView {
        HostView {
            id,
            state: HostPowerState::Active,
            cpu_capacity: 1.0,
            mem_capacity: 1.0,
            cpu_booked,
            mem_booked_local: mem_local,
            cpu_used: cpu_booked * 0.6,
        }
    }

    fn vm(cpu: f64, mem: f64) -> VmView {
        VmView {
            id: 1,
            cpu_booked: cpu,
            mem_booked: mem,
            cpu_used: cpu * 0.5,
            mem_used: mem * 0.7,
        }
    }

    #[test]
    fn vanilla_needs_full_local_memory() {
        let s = NovaScheduler::vanilla();
        let h = host(0, 0.0, 0.7); // 0.3 local memory free.
        let v = vm(0.2, 0.5);
        assert!(s.filter(&h, &v, 10.0).is_none());
        // ZombieStack takes it: 0.3 local (≥ 50 % of 0.5) + 0.2 remote.
        let z = NovaScheduler::zombiestack();
        let p = z.filter(&h, &v, 10.0).unwrap();
        assert!((p.local_mem - 0.3).abs() < 1e-9);
        assert!((p.remote_mem - 0.2).abs() < 1e-9);
    }

    #[test]
    fn fifty_percent_rule_enforced() {
        let z = NovaScheduler::zombiestack();
        let h = host(0, 0.0, 0.8); // Only 0.2 free.
        let v = vm(0.1, 0.5); // Needs ≥ 0.25 local.
        assert!(z.filter(&h, &v, 10.0).is_none());
    }

    #[test]
    fn remote_pool_must_cover_the_rest() {
        let z = NovaScheduler::zombiestack();
        let h = host(0, 0.0, 0.7);
        let v = vm(0.1, 0.5);
        assert!(z.filter(&h, &v, 0.1).is_none(), "pool too small");
        assert!(z.filter(&h, &v, 0.2).is_some());
    }

    #[test]
    fn cpu_filter_and_power_state() {
        let z = NovaScheduler::zombiestack();
        let mut h = host(0, 0.95, 0.0);
        assert!(z.filter(&h, &vm(0.1, 0.1), 1.0).is_none(), "no cpu room");
        h.cpu_booked = 0.5;
        h.state = HostPowerState::Zombie;
        assert!(
            z.filter(&h, &vm(0.1, 0.1), 1.0).is_none(),
            "zombies can't host"
        );
    }

    #[test]
    fn local_memory_preferred_over_remote() {
        // The scheduler uses as much local memory as it can get.
        let z = NovaScheduler::zombiestack();
        let h = host(0, 0.0, 0.2);
        let p = z.filter(&h, &vm(0.1, 0.5), 10.0).unwrap();
        assert!((p.local_mem - 0.5).abs() < 1e-9, "fits fully local: {p:?}");
        assert_eq!(p.remote_mem, 0.0);
    }

    #[test]
    fn stacking_picks_most_loaded_host() {
        let z = NovaScheduler::zombiestack();
        let hosts = [host(0, 0.2, 0.2), host(1, 0.6, 0.2), host(2, 0.4, 0.2)];
        let p = z.schedule(&hosts, &vm(0.2, 0.3), 10.0).unwrap();
        assert_eq!(p.host, 1);
        // When the most-loaded host is full, fall to the next.
        let hosts = [host(0, 0.2, 0.2), host(1, 0.95, 0.2), host(2, 0.4, 0.2)];
        let p = z.schedule(&hosts, &vm(0.2, 0.3), 10.0).unwrap();
        assert_eq!(p.host, 2);
    }

    #[test]
    fn no_host_fits() {
        let z = NovaScheduler::zombiestack();
        let hosts = [host(0, 0.99, 0.99)];
        assert_eq!(z.schedule(&hosts, &vm(0.2, 0.3), 10.0), None);
    }
}
