//! ZombieStack: the cloud operating system layer (§5).
//!
//! The paper builds its prototype on OpenStack: Nova does placement,
//! OpenStack Neat does consolidation, and a modified migration protocol
//! moves VMs whose memory is partly remote. This crate implements those
//! policies — plus the Oasis baseline the evaluation compares against —
//! in two forms:
//!
//! - **Pure policy logic** over abstract host/VM views
//!   ([`placement`], [`consolidation`], [`oasis`], [`migration`]), which
//!   the datacenter-scale simulator drives for Fig. 10;
//! - **A live binding** ([`stack`]) that runs the same decisions against
//!   a real [`zombieland_core::Rack`], used by the examples and
//!   integration tests to exercise the whole stack end to end.

pub mod consolidation;
pub mod migration;
pub mod oasis;
pub mod placement;
pub mod stack;

pub use consolidation::{ConsolidationMode, Neat};
pub use placement::{HostPowerState, HostView, NovaScheduler, VmView};
