//! Suspendable devices and their power-management callbacks.
//!
//! §3.1: "We identify the set of devices which should be kept up during
//! the Sz state (e.g., Infiniband card and its associated PCIe devices).
//! The `pm_suspend()` call for these devices has been modified in order to
//! prevent them from transitioning to the sleep state."

use core::fmt;

use crate::state::SleepState;

/// Classes of devices on the platform, as the modified OSPM sees them.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum DeviceClass {
    /// CPU cores / package.
    Cpu,
    /// The integrated memory controller.
    MemoryController,
    /// The Infiniband HCA (MLNX_OFED-driven in the prototype).
    InfinibandHca,
    /// A PCIe bridge or root port.
    PcieBridge,
    /// Block storage.
    Storage,
    /// Anything else (USB, GPU, audio...).
    Other,
}

/// Runtime PM state of a device.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DevicePmState {
    /// Operating normally.
    Active,
    /// Powered but quiesced, serving only autonomous functions (DMA to
    /// memory for the HCA, refresh for the memory controller).
    ActiveIdle,
    /// Suspended per the target S-state.
    Suspended,
}

/// What `pm_suspend` decided for a device.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SuspendAction {
    /// Transitioned to the device sleep state.
    Suspended,
    /// Kept awake (Sz keep-up set), demoted only to active idle.
    KeptAwake,
}

/// A device instance with its driver's PM behaviour.
#[derive(Clone, Debug)]
pub struct Device {
    name: &'static str,
    class: DeviceClass,
    /// Whether this PCIe bridge is on the HCA's path to memory (only
    /// meaningful for `PcieBridge`).
    on_hca_path: bool,
    state: DevicePmState,
}

impl Device {
    /// Creates a device in the active state.
    pub fn new(name: &'static str, class: DeviceClass) -> Self {
        Device {
            name,
            class,
            on_hca_path: false,
            state: DevicePmState::Active,
        }
    }

    /// Marks a PCIe bridge as being on the HCA-to-memory path.
    pub fn on_hca_path(mut self) -> Self {
        self.on_hca_path = true;
        self
    }

    /// Device name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Device class.
    pub fn class(&self) -> DeviceClass {
        self.class
    }

    /// Current PM state.
    pub fn pm_state(&self) -> DevicePmState {
        self.state
    }

    /// Whether the Sz keep-up set includes this device: the Infiniband
    /// card, its PCIe path, and the memory controller.
    pub fn keep_awake_in_sz(&self) -> bool {
        match self.class {
            DeviceClass::InfinibandHca | DeviceClass::MemoryController => true,
            DeviceClass::PcieBridge => self.on_hca_path,
            _ => false,
        }
    }

    /// The (modified) `pm_suspend` callback: transitions the device for
    /// the given target state and reports what happened.
    pub fn pm_suspend(&mut self, target: SleepState) -> SuspendAction {
        debug_assert!(target.is_sleeping(), "pm_suspend needs a sleep target");
        if target == SleepState::Sz && self.keep_awake_in_sz() {
            self.state = DevicePmState::ActiveIdle;
            SuspendAction::KeptAwake
        } else {
            self.state = DevicePmState::Suspended;
            SuspendAction::Suspended
        }
    }

    /// The `pm_resume` callback.
    pub fn pm_resume(&mut self) {
        self.state = DevicePmState::Active;
    }
}

/// The standard loadout of the paper's testbed servers (HP Elite 8300 with
/// a ConnectX-3): one of each interesting device plus a generic bridge.
pub fn standard_devices() -> Vec<Device> {
    vec![
        Device::new("cpu0", DeviceClass::Cpu),
        Device::new("imc0", DeviceClass::MemoryController),
        Device::new("mlx4_0", DeviceClass::InfinibandHca),
        Device::new("pcie-rp0", DeviceClass::PcieBridge).on_hca_path(),
        Device::new("pcie-rp1", DeviceClass::PcieBridge),
        Device::new("sda", DeviceClass::Storage),
        Device::new("usb0", DeviceClass::Other),
    ]
}

impl fmt::Display for Device {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({:?}, {:?})", self.name, self.class, self.state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sz_keeps_ib_and_its_path_awake() {
        let mut devs = standard_devices();
        for d in &mut devs {
            d.pm_suspend(SleepState::Sz);
        }
        let kept: Vec<&str> = devs
            .iter()
            .filter(|d| d.pm_state() == DevicePmState::ActiveIdle)
            .map(|d| d.name())
            .collect();
        assert_eq!(kept, ["imc0", "mlx4_0", "pcie-rp0"]);
    }

    #[test]
    fn s3_suspends_everything() {
        let mut devs = standard_devices();
        for d in &mut devs {
            assert_eq!(d.pm_suspend(SleepState::S3), SuspendAction::Suspended);
            assert_eq!(d.pm_state(), DevicePmState::Suspended);
        }
    }

    #[test]
    fn off_path_bridge_is_not_kept() {
        let b = Device::new("x", DeviceClass::PcieBridge);
        assert!(!b.keep_awake_in_sz());
        let b = b.on_hca_path();
        assert!(b.keep_awake_in_sz());
    }

    #[test]
    fn resume_reactivates() {
        let mut d = Device::new("mlx4_0", DeviceClass::InfinibandHca);
        d.pm_suspend(SleepState::Sz);
        d.pm_resume();
        assert_eq!(d.pm_state(), DevicePmState::Active);
    }
}
