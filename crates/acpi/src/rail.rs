//! Power-supply domains (rails) and their per-state configuration.
//!
//! The paper's whole hardware ask is here: "Sz only requires completely
//! independent power domains for CPU and memory" (§1). This module models
//! each board component's rail and the level it sits at in every sleep
//! state. The distinguishing Sz row keeps the memory in **active idle**
//! ("the memory behavior of Sz mimics that of Si0x state specifications,
//! where the memory is kept in active idle, unlike the low-power self
//! refresh mode of S3") and keeps the NIC-to-memory path powered.

use core::fmt;

use crate::state::SleepState;

/// A power-supply domain on the board.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Rail {
    /// CPU package(s) and VRMs.
    Cpu,
    /// DRAM DIMMs and the memory controller.
    Memory,
    /// The Infiniband HCA.
    Nic,
    /// The PCIe segment between the HCA and memory (root complex path).
    PciePath,
    /// SATA/NVMe storage.
    Storage,
    /// Chipset/baseboard management (always minimally powered for wake).
    Chipset,
}

impl Rail {
    /// Every modeled rail.
    pub const ALL: [Rail; 6] = [
        Rail::Cpu,
        Rail::Memory,
        Rail::Nic,
        Rail::PciePath,
        Rail::Storage,
        Rail::Chipset,
    ];
}

impl fmt::Display for Rail {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Rail::Cpu => "cpu",
            Rail::Memory => "memory",
            Rail::Nic => "nic",
            Rail::PciePath => "pcie-path",
            Rail::Storage => "storage",
            Rail::Chipset => "chipset",
        };
        f.write_str(s)
    }
}

/// The level a rail sits at.
#[derive(Clone, Copy, PartialEq, Eq, Debug, PartialOrd, Ord)]
pub enum RailLevel {
    /// Unpowered.
    Off,
    /// Minimal retention/wake power (e.g. DRAM self-refresh, WoL standby).
    Standby,
    /// Powered and ready to serve, but not executing (memory active idle,
    /// NIC serving one-sided ops).
    ActiveIdle,
    /// Fully active.
    On,
}

/// The rail configuration a sleep state requires.
pub fn rail_levels(state: SleepState) -> [(Rail, RailLevel); 6] {
    use RailLevel::*;
    match state {
        SleepState::S0 => [
            (Rail::Cpu, On),
            (Rail::Memory, On),
            (Rail::Nic, On),
            (Rail::PciePath, On),
            (Rail::Storage, On),
            (Rail::Chipset, On),
        ],
        // S3: RAM self-refresh, NIC in WoL standby, PCIe mostly off.
        SleepState::S3 => [
            (Rail::Cpu, Off),
            (Rail::Memory, Standby),
            (Rail::Nic, Standby),
            (Rail::PciePath, Standby),
            (Rail::Storage, Off),
            (Rail::Chipset, Standby),
        ],
        // S4/S5: everything off except the wake logic.
        SleepState::S4 | SleepState::S5 => [
            (Rail::Cpu, Off),
            (Rail::Memory, Off),
            (Rail::Nic, Standby),
            (Rail::PciePath, Off),
            (Rail::Storage, Off),
            (Rail::Chipset, Standby),
        ],
        // Sz: like S3 but memory in ACTIVE IDLE and the NIC→memory path
        // kept alive to serve one-sided RDMA.
        SleepState::Sz => [
            (Rail::Cpu, Off),
            (Rail::Memory, ActiveIdle),
            (Rail::Nic, ActiveIdle),
            (Rail::PciePath, ActiveIdle),
            (Rail::Storage, Off),
            (Rail::Chipset, Standby),
        ],
    }
}

/// Looks up the level of one rail in one state.
pub fn level_of(state: SleepState, rail: Rail) -> RailLevel {
    rail_levels(state)
        .iter()
        .find(|(r, _)| *r == rail)
        .map(|(_, l)| *l)
        .expect("rail_levels covers every rail")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn s0_everything_on() {
        assert!(rail_levels(SleepState::S0)
            .iter()
            .all(|&(_, l)| l == RailLevel::On));
    }

    #[test]
    fn sz_differs_from_s3_only_on_the_memory_path() {
        // The paper's claim: Sz is S3 plus an alive memory/NIC/PCIe path.
        for rail in Rail::ALL {
            let s3 = level_of(SleepState::S3, rail);
            let sz = level_of(SleepState::Sz, rail);
            match rail {
                Rail::Memory | Rail::Nic | Rail::PciePath => {
                    assert_eq!(sz, RailLevel::ActiveIdle, "{rail}");
                    assert!(sz > s3, "{rail} must be more awake in Sz");
                }
                _ => assert_eq!(s3, sz, "{rail} must match S3"),
            }
        }
    }

    #[test]
    fn cpu_is_off_in_every_sleeping_state() {
        for s in [
            SleepState::S3,
            SleepState::S4,
            SleepState::S5,
            SleepState::Sz,
        ] {
            assert_eq!(level_of(s, Rail::Cpu), RailLevel::Off, "{s}");
        }
    }

    #[test]
    fn memory_retention_matches_state_semantics() {
        // RAM contents survive iff the memory rail is at least in standby.
        for s in SleepState::ALL {
            let retained = level_of(s, Rail::Memory) >= RailLevel::Standby;
            assert_eq!(retained, s.preserves_ram(), "{s}");
        }
    }
}
