//! The Sz ACPI specification extension, as a firmware table.
//!
//! §3 of the paper: implementing Sz "requires modifications across the
//! stack from hardware and firmware to the OS, **as well as to the ACPI
//! specifications**". This module makes that concrete: an ACPI-style
//! table (signature `ZMBI`) through which Sz-capable firmware advertises
//! the new state to the OS — which `SLP_TYP` encoding triggers it, which
//! power domains are independently switchable, and the enter/exit
//! latencies. Like every ACPI table it carries a length, revision and a
//! bytewise checksum the OS validates before trusting it.

use crate::rail::Rail;
use crate::regs::SlpTyp;

/// The table signature, "ZMBI".
pub const SIGNATURE: [u8; 4] = *b"ZMBI";
/// Serialized table length.
pub const TABLE_LEN: usize = 48;
/// Current revision of the extension.
pub const REVISION: u8 = 1;

/// The Sz capability table firmware publishes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SzTable {
    /// Table revision.
    pub revision: u8,
    /// OEM identifier (padded ASCII).
    pub oem_id: [u8; 6],
    /// Whether the board actually implements Sz.
    pub sz_supported: bool,
    /// The `SLP_TYP` encoding that triggers Sz.
    pub slp_typ_sz: u8,
    /// Bitmap of rails with independent power domains
    /// (bit `i` = `Rail::ALL[i]`).
    pub independent_rails: u8,
    /// Sz enter latency in milliseconds.
    pub enter_latency_ms: u32,
    /// Sz exit latency in milliseconds.
    pub exit_latency_ms: u32,
}

/// Errors when parsing a table image.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TableError {
    /// Not a ZMBI table.
    BadSignature,
    /// Declared length disagrees with the image.
    BadLength,
    /// The bytes don't sum to zero.
    BadChecksum,
    /// A revision this OS doesn't know.
    UnsupportedRevision(u8),
}

impl core::fmt::Display for TableError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            TableError::BadSignature => write!(f, "not a ZMBI table"),
            TableError::BadLength => write!(f, "length mismatch"),
            TableError::BadChecksum => write!(f, "checksum invalid"),
            TableError::UnsupportedRevision(r) => write!(f, "unknown revision {r}"),
        }
    }
}

impl std::error::Error for TableError {}

impl SzTable {
    /// The table an Sz-capable board publishes: CPU and memory (and the
    /// NIC path) on independent domains, S3-class latencies.
    pub fn sz_capable() -> Self {
        SzTable {
            revision: REVISION,
            oem_id: *b"ZMBLND",
            sz_supported: true,
            slp_typ_sz: SlpTyp::Sz as u8,
            independent_rails: rail_bit(Rail::Cpu)
                | rail_bit(Rail::Memory)
                | rail_bit(Rail::Nic)
                | rail_bit(Rail::PciePath),
            enter_latency_ms: 2_950,
            exit_latency_ms: 3_800,
        }
    }

    /// The table a stock board publishes (present but `sz_supported =
    /// false`, so OSes can distinguish "old firmware" from "no Sz").
    pub fn stock() -> Self {
        SzTable {
            revision: REVISION,
            oem_id: *b"LEGACY",
            sz_supported: false,
            slp_typ_sz: 0,
            independent_rails: 0,
            enter_latency_ms: 0,
            exit_latency_ms: 0,
        }
    }

    /// Whether `rail` sits on an independently switchable power domain.
    pub fn rail_independent(&self, rail: Rail) -> bool {
        self.independent_rails & rail_bit(rail) != 0
    }

    /// Serializes to the fixed-size table image, computing the checksum
    /// so the whole image sums to zero (mod 256) — the ACPI convention.
    pub fn to_bytes(&self) -> [u8; TABLE_LEN] {
        let mut b = [0u8; TABLE_LEN];
        b[0..4].copy_from_slice(&SIGNATURE);
        b[4..8].copy_from_slice(&(TABLE_LEN as u32).to_le_bytes());
        b[8] = self.revision;
        // b[9] is the checksum, patched last.
        b[10..16].copy_from_slice(&self.oem_id);
        b[16] = self.sz_supported as u8;
        b[17] = self.slp_typ_sz;
        b[18] = self.independent_rails;
        b[20..24].copy_from_slice(&self.enter_latency_ms.to_le_bytes());
        b[24..28].copy_from_slice(&self.exit_latency_ms.to_le_bytes());
        let sum: u8 = b.iter().fold(0u8, |a, &x| a.wrapping_add(x));
        b[9] = sum.wrapping_neg();
        b
    }

    /// Parses and validates a table image.
    pub fn from_bytes(image: &[u8]) -> Result<SzTable, TableError> {
        if image.len() < TABLE_LEN || image[0..4] != SIGNATURE {
            return Err(TableError::BadSignature);
        }
        let len = u32::from_le_bytes(image[4..8].try_into().expect("4 bytes")) as usize;
        if len != TABLE_LEN || image.len() != TABLE_LEN {
            return Err(TableError::BadLength);
        }
        let sum: u8 = image.iter().fold(0u8, |a, &x| a.wrapping_add(x));
        if sum != 0 {
            return Err(TableError::BadChecksum);
        }
        let revision = image[8];
        if revision != REVISION {
            return Err(TableError::UnsupportedRevision(revision));
        }
        Ok(SzTable {
            revision,
            oem_id: image[10..16].try_into().expect("6 bytes"),
            sz_supported: image[16] != 0,
            slp_typ_sz: image[17],
            independent_rails: image[18],
            enter_latency_ms: u32::from_le_bytes(image[20..24].try_into().expect("4 bytes")),
            exit_latency_ms: u32::from_le_bytes(image[24..28].try_into().expect("4 bytes")),
        })
    }
}

fn rail_bit(rail: Rail) -> u8 {
    let idx = Rail::ALL
        .iter()
        .position(|&r| r == rail)
        .expect("ALL covers every rail");
    1u8 << idx
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        for table in [SzTable::sz_capable(), SzTable::stock()] {
            let image = table.to_bytes();
            assert_eq!(SzTable::from_bytes(&image), Ok(table));
        }
    }

    #[test]
    fn checksum_zeroes_the_image() {
        let image = SzTable::sz_capable().to_bytes();
        let sum: u8 = image.iter().fold(0u8, |a, &x| a.wrapping_add(x));
        assert_eq!(sum, 0);
    }

    #[test]
    fn corruption_detected() {
        let mut image = SzTable::sz_capable().to_bytes();
        image[17] ^= 0xFF; // Flip the SLP_TYP byte.
        assert_eq!(SzTable::from_bytes(&image), Err(TableError::BadChecksum));

        let mut bad_sig = SzTable::sz_capable().to_bytes();
        bad_sig[0] = b'X';
        assert_eq!(SzTable::from_bytes(&bad_sig), Err(TableError::BadSignature));

        assert_eq!(
            SzTable::from_bytes(&[0u8; 8]),
            Err(TableError::BadSignature)
        );
    }

    #[test]
    fn capability_semantics() {
        let t = SzTable::sz_capable();
        assert!(t.sz_supported);
        assert!(t.rail_independent(Rail::Cpu));
        assert!(t.rail_independent(Rail::Memory));
        assert!(!t.rail_independent(Rail::Storage));
        assert_eq!(t.slp_typ_sz, SlpTyp::Sz as u8);

        let s = SzTable::stock();
        assert!(!s.sz_supported);
        assert!(!s.rail_independent(Rail::Memory));
    }

    #[test]
    fn unknown_revision_rejected() {
        let mut t = SzTable::sz_capable();
        t.revision = 9;
        let image = t.to_bytes();
        assert_eq!(
            SzTable::from_bytes(&image),
            Err(TableError::UnsupportedRevision(9))
        );
    }
}
