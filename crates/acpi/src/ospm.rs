//! The OS power-management suspend path (Linux OSPM), patched for Sz.
//!
//! Fig. 6 of the paper lists the exact call chain from
//! `echo zom > /sys/power/state` down to the hardware sleep trigger, with
//! three modifications relative to the stock S3 path: the new `zom`
//! keyword, the keep-awake device filtering inside the device suspend
//! phase, and the new PM1 encodings written by
//! `x86_acpi_enter_sleep_state`/`acpi_hw_legacy_sleep`. This module
//! executes that chain step by step and records it, so the Fig. 6 trace is
//! reproducible output rather than documentation.

use core::fmt;

use crate::device::{Device, SuspendAction};
use crate::regs::Pm1Block;
use crate::state::SleepState;

/// The Fig. 6 call chain, in order. The starred entries are the ones the
/// paper modifies (lines 1, 10 and 12 in the figure, plus `tboot_sleep`).
pub const SUSPEND_PATH: [&str; 12] = [
    "pm_suspend",
    "enter_state",
    "suspend_prepare",
    "suspend_devices_and_enter",
    "suspend_enter",
    "acpi_suspend_enter",
    "x86_acpi_suspend_lowlevel",
    "do_suspend_lowlevel",
    "x86_acpi_enter_sleep_state",
    "acpi_hw_legacy_sleep",
    "acpi_os_prepare_sleep",
    "tboot_sleep",
];

/// The wake/resume call chain (the reverse of Fig. 6): firmware hands
/// control back after chipset reinit and the kernel unwinds its suspend
/// stack, resuming devices last-suspended-first.
pub const RESUME_PATH: [&str; 6] = [
    "acpi_hw_legacy_wake",
    "x86_acpi_resume_lowlevel",
    "acpi_suspend_exit",
    "resume_devices",
    "thaw_processes",
    "pm_resume_end",
];

/// Errors from the suspend entry point.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum OspmError {
    /// The string written to `/sys/power/state` is not a known keyword.
    UnknownKeyword(String),
    /// The system is not in S0 (you cannot suspend a suspended system).
    NotRunning(SleepState),
}

impl fmt::Display for OspmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OspmError::UnknownKeyword(kw) => write!(f, "invalid /sys/power/state value {kw:?}"),
            OspmError::NotRunning(s) => write!(f, "cannot suspend from {s}"),
        }
    }
}

impl std::error::Error for OspmError {}

/// Everything one suspend attempt did, up to (and including) latching the
/// PM1 registers. The firmware takes over from there.
#[derive(Clone, Debug)]
pub struct SuspendReport {
    /// The state that was requested.
    pub target: SleepState,
    /// The kernel functions traversed, in order (compare with Fig. 6).
    pub call_trace: Vec<&'static str>,
    /// Per-device outcome of the (modified) `pm_suspend` calls.
    pub device_actions: Vec<(&'static str, SuspendAction)>,
}

impl SuspendReport {
    /// Devices that stayed awake (must be exactly the Infiniband path for
    /// Sz, empty otherwise).
    pub fn kept_awake(&self) -> Vec<&'static str> {
        self.device_actions
            .iter()
            .filter(|(_, a)| *a == SuspendAction::KeptAwake)
            .map(|(n, _)| *n)
            .collect()
    }
}

/// The OSPM kernel component.
#[derive(Debug)]
pub struct Ospm {
    devices: Vec<Device>,
    state: SleepState,
}

impl Ospm {
    /// Boots an OSPM instance managing the given devices, in S0.
    pub fn new(devices: Vec<Device>) -> Self {
        Ospm {
            devices,
            state: SleepState::S0,
        }
    }

    /// The system state as OSPM believes it.
    pub fn state(&self) -> SleepState {
        self.state
    }

    /// Read access to the managed devices.
    pub fn devices(&self) -> &[Device] {
        &self.devices
    }

    /// Handles a write to `/sys/power/state` — the entry point of Fig. 6.
    ///
    /// Returns the suspend report and the latched PM1 block; the caller
    /// (the platform) hands the PM1 request to the firmware.
    pub fn write_sys_power_state(
        &mut self,
        keyword: &str,
    ) -> Result<(SuspendReport, Pm1Block), OspmError> {
        let target = SleepState::from_sysfs_keyword(keyword)
            .ok_or_else(|| OspmError::UnknownKeyword(keyword.to_string()))?;
        if self.state != SleepState::S0 {
            return Err(OspmError::NotRunning(self.state));
        }

        let mut call_trace = Vec::with_capacity(SUSPEND_PATH.len());
        let mut device_actions = Vec::new();
        let mut pm1 = Pm1Block::default();

        for step in SUSPEND_PATH {
            call_trace.push(step);
            match step {
                // The device phase: every driver's (modified) pm_suspend.
                "suspend_devices_and_enter" => {
                    for dev in &mut self.devices {
                        let action = dev.pm_suspend(target);
                        device_actions.push((dev.name(), action));
                    }
                }
                // The register phase: program SLP_TYP/SLP_EN (with the new
                // encoding when the target is Sz).
                "x86_acpi_enter_sleep_state" => {
                    pm1.request(target);
                }
                _ => {}
            }
        }

        self.state = target;
        Ok((
            SuspendReport {
                target,
                call_trace,
                device_actions,
            },
            pm1,
        ))
    }

    /// Resume: firmware reinitialised the chipset and passed control back;
    /// OSPM resumes every device.
    pub fn resume(&mut self) {
        self.resume_traced();
    }

    /// Resume with the traversed call chain recorded (the reverse of the
    /// Fig. 6 trace). Devices resume in reverse suspension order.
    pub fn resume_traced(&mut self) -> Vec<&'static str> {
        let mut call_trace = Vec::with_capacity(RESUME_PATH.len());
        for step in RESUME_PATH {
            call_trace.push(step);
            if step == "resume_devices" {
                for dev in self.devices.iter_mut().rev() {
                    dev.pm_resume();
                }
            }
        }
        self.state = SleepState::S0;
        call_trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::standard_devices;

    #[test]
    fn zom_keyword_follows_fig6_path() {
        let mut ospm = Ospm::new(standard_devices());
        let (report, pm1) = ospm.write_sys_power_state("zom").unwrap();
        assert_eq!(report.target, SleepState::Sz);
        assert_eq!(report.call_trace, SUSPEND_PATH);
        assert_eq!(pm1.pending(), Some(SleepState::Sz));
        assert_eq!(ospm.state(), SleepState::Sz);
    }

    #[test]
    fn sz_keeps_only_the_ib_path_awake() {
        let mut ospm = Ospm::new(standard_devices());
        let (report, _) = ospm.write_sys_power_state("zom").unwrap();
        assert_eq!(report.kept_awake(), ["imc0", "mlx4_0", "pcie-rp0"]);
    }

    #[test]
    fn s3_keeps_nothing_awake() {
        let mut ospm = Ospm::new(standard_devices());
        let (report, pm1) = ospm.write_sys_power_state("mem").unwrap();
        assert_eq!(report.target, SleepState::S3);
        assert!(report.kept_awake().is_empty());
        assert_eq!(pm1.pending(), Some(SleepState::S3));
    }

    #[test]
    fn bad_keyword_rejected() {
        let mut ospm = Ospm::new(standard_devices());
        assert_eq!(
            ospm.write_sys_power_state("zombie").unwrap_err(),
            OspmError::UnknownKeyword("zombie".into())
        );
        assert_eq!(ospm.state(), SleepState::S0);
    }

    #[test]
    fn cannot_suspend_twice() {
        let mut ospm = Ospm::new(standard_devices());
        ospm.write_sys_power_state("zom").unwrap();
        assert_eq!(
            ospm.write_sys_power_state("mem").unwrap_err(),
            OspmError::NotRunning(SleepState::Sz)
        );
    }

    #[test]
    fn resume_follows_the_reverse_path() {
        let mut ospm = Ospm::new(standard_devices());
        ospm.write_sys_power_state("zom").unwrap();
        let trace = ospm.resume_traced();
        assert_eq!(trace, RESUME_PATH);
        assert_eq!(ospm.state(), SleepState::S0);
    }

    #[test]
    fn resume_restores_s0_and_devices() {
        let mut ospm = Ospm::new(standard_devices());
        ospm.write_sys_power_state("zom").unwrap();
        ospm.resume();
        assert_eq!(ospm.state(), SleepState::S0);
        assert!(ospm
            .devices()
            .iter()
            .all(|d| d.pm_state() == crate::device::DevicePmState::Active));
    }
}
