//! The whole platform: OSPM + PM1 registers + firmware + rails.

use core::fmt;

use zombieland_simcore::{SimDuration, SimTime};

use crate::device::standard_devices;
use crate::firmware::{Firmware, FirmwareError, Transition};
use crate::ospm::{Ospm, OspmError, SuspendReport};
use crate::state::SleepState;

/// Errors from full-platform transitions.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PlatformError {
    /// The OS rejected the request.
    Ospm(OspmError),
    /// The firmware rejected the request.
    Firmware(FirmwareError),
    /// Wake was requested but the platform is already running.
    AlreadyRunning,
}

impl fmt::Display for PlatformError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlatformError::Ospm(e) => write!(f, "ospm: {e}"),
            PlatformError::Firmware(e) => write!(f, "firmware: {e}"),
            PlatformError::AlreadyRunning => write!(f, "platform already in S0"),
        }
    }
}

impl std::error::Error for PlatformError {}

impl From<OspmError> for PlatformError {
    fn from(e: OspmError) -> Self {
        PlatformError::Ospm(e)
    }
}

impl From<FirmwareError> for PlatformError {
    fn from(e: FirmwareError) -> Self {
        PlatformError::Firmware(e)
    }
}

/// Outcome of a completed suspend: OS trace + firmware audit + latency.
#[derive(Clone, Debug)]
pub struct SuspendOutcome {
    /// What the kernel did (Fig. 6 trace, device actions).
    pub report: SuspendReport,
    /// What the firmware did (rail switches).
    pub transition: Transition,
    /// Total enter latency.
    pub latency: SimDuration,
}

/// A server platform with power management.
///
/// # Examples
///
/// ```
/// use zombieland_acpi::{Platform, SleepState};
///
/// let mut p = Platform::sz_capable();
/// let outcome = p.suspend("zom").unwrap();
/// assert_eq!(p.state(), SleepState::Sz);
/// assert!(p.memory_remotely_accessible());
/// assert_eq!(outcome.report.kept_awake(), ["imc0", "mlx4_0", "pcie-rp0"]);
///
/// p.wake().unwrap();
/// assert_eq!(p.state(), SleepState::S0);
/// ```
#[derive(Debug)]
pub struct Platform {
    ospm: Ospm,
    firmware: Firmware,
    state: SleepState,
    suspend_count: u64,
    wake_count: u64,
    /// Cumulative transition latency — the platform's virtual clock,
    /// used to sim-time-stamp observability events.
    elapsed: SimDuration,
}

impl Platform {
    /// Builds and boots a platform with Sz-capable firmware and the
    /// standard testbed device loadout.
    pub fn sz_capable() -> Self {
        Self::with_firmware(Firmware::sz_capable())
    }

    /// Builds and boots a stock (non-Sz) platform.
    pub fn stock() -> Self {
        Self::with_firmware(Firmware::stock())
    }

    /// Builds and boots a platform with specific firmware.
    pub fn with_firmware(mut firmware: Firmware) -> Self {
        firmware.boot();
        Platform {
            ospm: Ospm::new(standard_devices()),
            firmware,
            state: SleepState::S0,
            suspend_count: 0,
            wake_count: 0,
            elapsed: SimDuration::ZERO,
        }
    }

    /// Total time this platform has spent in S-state transitions (its
    /// virtual clock for observability purposes).
    pub fn elapsed(&self) -> SimDuration {
        self.elapsed
    }

    /// The current global power state.
    pub fn state(&self) -> SleepState {
        self.state
    }

    /// Whether one-sided RDMA can currently reach this platform's memory.
    pub fn memory_remotely_accessible(&self) -> bool {
        self.state.memory_remotely_accessible()
    }

    /// Number of completed suspends.
    pub fn suspend_count(&self) -> u64 {
        self.suspend_count
    }

    /// Number of completed wakes.
    pub fn wake_count(&self) -> u64 {
        self.wake_count
    }

    /// The OSPM instance (for device inspection).
    pub fn ospm(&self) -> &Ospm {
        &self.ospm
    }

    /// Suspends via the `/sys/power/state` keyword (`"mem"`, `"disk"`,
    /// `"zom"`), running the kernel path and then the firmware sequencing.
    ///
    /// On firmware rejection (e.g. `zom` on a stock board) the OS state is
    /// rolled back to S0, as a failed `pm_suspend` does.
    pub fn suspend(&mut self, keyword: &str) -> Result<SuspendOutcome, PlatformError> {
        let (report, pm1) = self.ospm.write_sys_power_state(keyword)?;
        let target = pm1.pending().expect("OSPM always latches a request");
        match self.firmware.execute(self.state, target) {
            Ok(transition) => {
                let latency = transition.latency;
                self.state = target;
                self.suspend_count += 1;
                self.elapsed += latency;
                let now = SimTime::ZERO + self.elapsed;
                zombieland_obs::sink::counter_add("acpi.suspends", 1);
                zombieland_obs::sink::hist_record("acpi.suspend_ns", latency.as_nanos());
                zombieland_obs::trace_event!(now, "acpi", "suspend",
                    "state" => target.to_string(),
                    "latency_ns" => latency.as_nanos(),
                    "rail_switches" => transition.switches.len());
                if zombieland_obs::sink::trace_enabled() {
                    for sw in &transition.switches {
                        zombieland_obs::trace_event!(now, "acpi", "rail",
                            "rail" => sw.rail.to_string(),
                            "to" => format!("{:?}", sw.to));
                    }
                }
                Ok(SuspendOutcome {
                    report,
                    transition,
                    latency,
                })
            }
            Err(e) => {
                // Abort: resume devices, stay in S0.
                self.ospm.resume();
                Err(e.into())
            }
        }
    }

    /// Wakes the platform (Wake-on-LAN or power button), returning the
    /// exit latency.
    pub fn wake(&mut self) -> Result<SimDuration, PlatformError> {
        if self.state == SleepState::S0 {
            return Err(PlatformError::AlreadyRunning);
        }
        let from = self.state;
        let t = self.firmware.execute(self.state, SleepState::S0)?;
        self.ospm.resume();
        self.state = SleepState::S0;
        self.wake_count += 1;
        self.elapsed += t.latency;
        zombieland_obs::sink::counter_add("acpi.wakes", 1);
        zombieland_obs::sink::hist_record("acpi.wake_ns", t.latency.as_nanos());
        zombieland_obs::trace_event!(SimTime::ZERO + self.elapsed, "acpi", "wake",
            "from" => from.to_string(),
            "latency_ns" => t.latency.as_nanos());
        Ok(t.latency)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sz_cycle_on_capable_board() {
        let mut p = Platform::sz_capable();
        let out = p.suspend("zom").unwrap();
        assert_eq!(p.state(), SleepState::Sz);
        assert!(p.memory_remotely_accessible());
        assert!(out.latency > SimDuration::from_secs(1));
        let wake = p.wake().unwrap();
        assert_eq!(p.state(), SleepState::S0);
        assert!(wake > SimDuration::from_secs(1));
        assert_eq!(p.suspend_count(), 1);
        assert_eq!(p.wake_count(), 1);
    }

    #[test]
    fn stock_board_cannot_zombie_but_recovers() {
        let mut p = Platform::stock();
        let err = p.suspend("zom").unwrap_err();
        assert_eq!(
            err,
            PlatformError::Firmware(FirmwareError::SzNotProvisioned)
        );
        // Failed suspend leaves the platform running.
        assert_eq!(p.state(), SleepState::S0);
        // S3 still works.
        p.suspend("mem").unwrap();
        assert_eq!(p.state(), SleepState::S3);
        assert!(!p.memory_remotely_accessible());
    }

    #[test]
    fn s3_memory_is_unreachable() {
        let mut p = Platform::sz_capable();
        p.suspend("mem").unwrap();
        assert!(!p.memory_remotely_accessible());
    }

    #[test]
    fn wake_from_s0_rejected() {
        let mut p = Platform::sz_capable();
        assert_eq!(p.wake(), Err(PlatformError::AlreadyRunning));
    }

    #[test]
    fn repeated_cycles() {
        let mut p = Platform::sz_capable();
        for _ in 0..5 {
            p.suspend("zom").unwrap();
            p.wake().unwrap();
        }
        assert_eq!(p.suspend_count(), 5);
        assert_eq!(p.wake_count(), 5);
        assert_eq!(p.state(), SleepState::S0);
    }
}
