//! PM1 sleep-control registers.
//!
//! On real hardware the OS requests a sleep state by programming the
//! `SLP_TYP` field of the PM1A/PM1B control registers and then setting
//! `SLP_EN`; the platform latches the write and sequences the power rails.
//! §3.1: "Since this registers have unused values, we consider new ones for
//! triggering to zombie."

use crate::state::SleepState;

/// `SLP_TYP` encodings. Values for S0–S5 follow a typical x86 FADT; `Sz`
/// takes one of the reserved encodings exactly as the paper proposes.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[repr(u8)]
pub enum SlpTyp {
    /// Working.
    S0 = 0b000,
    /// Suspend-to-RAM.
    S3 = 0b101,
    /// Suspend-to-disk.
    S4 = 0b110,
    /// Soft off.
    S5 = 0b111,
    /// Zombie — a previously unused encoding.
    Sz = 0b100,
}

impl SlpTyp {
    /// The encoding for a sleep state.
    pub fn for_state(state: SleepState) -> SlpTyp {
        match state {
            SleepState::S0 => SlpTyp::S0,
            SleepState::S3 => SlpTyp::S3,
            SleepState::S4 => SlpTyp::S4,
            SleepState::S5 => SlpTyp::S5,
            SleepState::Sz => SlpTyp::Sz,
        }
    }

    /// Decodes back to the sleep state.
    pub fn state(self) -> SleepState {
        match self {
            SlpTyp::S0 => SleepState::S0,
            SlpTyp::S3 => SleepState::S3,
            SlpTyp::S4 => SleepState::S4,
            SlpTyp::S5 => SleepState::S5,
            SlpTyp::Sz => SleepState::Sz,
        }
    }
}

/// One PM1 control register (the model keeps only the sleep fields).
#[derive(Clone, Copy, Debug, Default)]
pub struct Pm1Control {
    slp_typ: Option<SlpTyp>,
    slp_en: bool,
}

impl Pm1Control {
    /// Programs the sleep type without arming it.
    pub fn write_slp_typ(&mut self, typ: SlpTyp) {
        self.slp_typ = Some(typ);
    }

    /// Sets `SLP_EN`, arming the transition. Returns the state the
    /// platform must now enter, if a type was programmed.
    pub fn set_slp_en(&mut self) -> Option<SleepState> {
        self.slp_en = true;
        self.slp_typ.map(SlpTyp::state)
    }

    /// Whether the register is armed.
    pub fn armed(&self) -> bool {
        self.slp_en && self.slp_typ.is_some()
    }

    /// Hardware clears the enable bit once the transition completes.
    pub fn ack(&mut self) {
        self.slp_en = false;
    }

    /// The programmed sleep type.
    pub fn slp_typ(&self) -> Option<SlpTyp> {
        self.slp_typ
    }
}

/// The PM1A/PM1B register pair. Real chipsets require the same value in
/// both; the model enforces it.
#[derive(Clone, Copy, Debug, Default)]
pub struct Pm1Block {
    /// PM1A control.
    pub a: Pm1Control,
    /// PM1B control.
    pub b: Pm1Control,
}

impl Pm1Block {
    /// Programs both registers and arms the transition, as
    /// `x86_acpi_enter_sleep_state` does. Returns the requested state.
    pub fn request(&mut self, state: SleepState) -> SleepState {
        let typ = SlpTyp::for_state(state);
        self.a.write_slp_typ(typ);
        self.b.write_slp_typ(typ);
        self.a.set_slp_en();
        self.b.set_slp_en().expect("type was just programmed")
    }

    /// Whether both registers agree and are armed.
    pub fn pending(&self) -> Option<SleepState> {
        if self.a.armed() && self.b.armed() && self.a.slp_typ() == self.b.slp_typ() {
            self.a.slp_typ().map(SlpTyp::state)
        } else {
            None
        }
    }

    /// Platform acknowledgement after the rails have switched.
    pub fn ack(&mut self) {
        self.a.ack();
        self.b.ack();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slp_typ_round_trips() {
        for s in SleepState::ALL {
            assert_eq!(SlpTyp::for_state(s).state(), s);
        }
    }

    #[test]
    fn sz_uses_a_distinct_encoding() {
        let codes: Vec<u8> = SleepState::ALL
            .iter()
            .map(|&s| SlpTyp::for_state(s) as u8)
            .collect();
        let mut dedup = codes.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(codes.len(), dedup.len(), "encodings must be unique");
    }

    #[test]
    fn request_arms_both_registers() {
        let mut pm1 = Pm1Block::default();
        assert_eq!(pm1.pending(), None);
        let s = pm1.request(SleepState::Sz);
        assert_eq!(s, SleepState::Sz);
        assert_eq!(pm1.pending(), Some(SleepState::Sz));
        pm1.ack();
        assert_eq!(pm1.pending(), None);
        // The type stays latched after ack; only the enable bit clears.
        assert_eq!(pm1.a.slp_typ(), Some(SlpTyp::Sz));
    }

    #[test]
    fn slp_en_without_typ_is_inert() {
        let mut r = Pm1Control::default();
        assert_eq!(r.set_slp_en(), None);
        assert!(!r.armed());
    }
}
