//! ACPI platform power model with the paper's new zombie (Sz) sleep state.
//!
//! §3 of the paper specifies Sz as "similar to S3 [...] with one key
//! difference: it keeps the memory banks of the platform active and
//! remotely accessible even when the server is suspended". Implementing it
//! requires separate power-supply domains for CPU and memory — that is the
//! hardware substitution this crate simulates:
//!
//! - [`rail`] — per-component power rails with the extra switches and
//!   control signaling Sz needs (§3.1 "power lines for these components
//!   require additional switches and control signaling for Sz enter/exit").
//! - [`regs`] — the PM1A/PM1B sleep-control registers. S3 writes the usual
//!   `SLP_TYP|SLP_EN`; Sz uses one of the unused `SLP_TYP` encodings, as
//!   the paper proposes.
//! - [`device`] — suspendable devices with the Linux-style `pm_suspend`
//!   callback; the Infiniband HCA and its PCIe root port are flagged
//!   *keep-awake* for Sz.
//! - [`ospm`] — the kernel's suspend entry path, mirroring the Fig. 6 call
//!   chain from `echo zom > /sys/power/state` down to
//!   `acpi_hw_legacy_sleep`.
//! - [`firmware`] — boot-time Sz chipset initialisation and the rail
//!   sequencing executed on each transition, including wake latencies.
//! - [`spec`] — the `ZMBI` ACPI table through which Sz-capable firmware
//!   advertises the new state (encoding, independent power domains,
//!   latencies) to the OS, with the standard checksum discipline.
//! - [`platform`] — ties everything into a [`platform::Platform`] whose
//!   observable state answers the one question the rest of the stack asks:
//!   *is this server's memory remotely accessible right now?*

pub mod device;
pub mod firmware;
pub mod ospm;
pub mod platform;
pub mod rail;
pub mod regs;
pub mod spec;
pub mod state;

pub use platform::Platform;
pub use state::SleepState;
