//! ACPI global sleep states, extended with Sz.

use core::fmt;

/// A global (system-level) ACPI power state.
///
/// S0 is fully on; S5 is soft-off. The paper adds **Sz**, the zombie state:
/// CPU-dead, memory-alive. S1/S2 are omitted (like on most real server
/// platforms, which implement only S0/S3/S4/S5).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum SleepState {
    /// Working: CPU executes instructions.
    S0,
    /// Suspend-to-RAM: memory in self-refresh, NIC in Wake-on-LAN only.
    S3,
    /// Suspend-to-disk (hibernate).
    S4,
    /// Soft off; no system state retained.
    S5,
    /// Zombie: everything off like S3, except the memory stays in active
    /// idle (not self-refresh) and the NIC-to-memory path keeps serving
    /// one-sided RDMA.
    Sz,
}

impl SleepState {
    /// All modeled states, most-active first.
    pub const ALL: [SleepState; 5] = [
        SleepState::S0,
        SleepState::S3,
        SleepState::S4,
        SleepState::S5,
        SleepState::Sz,
    ];

    /// Whether the CPU runs in this state.
    pub fn cpu_alive(self) -> bool {
        matches!(self, SleepState::S0)
    }

    /// Whether the platform's memory can be remotely read/written via
    /// one-sided RDMA in this state. This is the defining property of Sz.
    pub fn memory_remotely_accessible(self) -> bool {
        matches!(self, SleepState::S0 | SleepState::Sz)
    }

    /// Whether RAM content survives this state (needed to resume without
    /// rebooting, and for Sz to serve meaningful data).
    pub fn preserves_ram(self) -> bool {
        matches!(self, SleepState::S0 | SleepState::S3 | SleepState::Sz)
    }

    /// Whether this is a sleeping (non-working) state.
    pub fn is_sleeping(self) -> bool {
        !matches!(self, SleepState::S0)
    }

    /// The `/sys/power/state` keyword that requests this state ("zom" is
    /// the keyword the paper's kernel patch introduces; S0/S5 are not
    /// reachable through that file).
    pub fn sysfs_keyword(self) -> Option<&'static str> {
        match self {
            SleepState::S3 => Some("mem"),
            SleepState::S4 => Some("disk"),
            SleepState::Sz => Some("zom"),
            SleepState::S0 | SleepState::S5 => None,
        }
    }

    /// Parses a `/sys/power/state` keyword.
    pub fn from_sysfs_keyword(kw: &str) -> Option<SleepState> {
        match kw {
            "mem" => Some(SleepState::S3),
            "disk" => Some(SleepState::S4),
            "zom" => Some(SleepState::Sz),
            _ => None,
        }
    }
}

impl fmt::Display for SleepState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            SleepState::S0 => "S0",
            SleepState::S3 => "S3",
            SleepState::S4 => "S4",
            SleepState::S5 => "S5",
            SleepState::Sz => "Sz",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sz_is_cpu_dead_memory_alive() {
        assert!(!SleepState::Sz.cpu_alive());
        assert!(SleepState::Sz.memory_remotely_accessible());
        assert!(SleepState::Sz.preserves_ram());
        assert!(SleepState::Sz.is_sleeping());
    }

    #[test]
    fn only_s0_and_sz_serve_memory() {
        for s in SleepState::ALL {
            assert_eq!(
                s.memory_remotely_accessible(),
                matches!(s, SleepState::S0 | SleepState::Sz),
                "{s}"
            );
        }
    }

    #[test]
    fn s3_preserves_ram_s4_s5_do_not() {
        assert!(SleepState::S3.preserves_ram());
        assert!(!SleepState::S4.preserves_ram());
        assert!(!SleepState::S5.preserves_ram());
    }

    #[test]
    fn sysfs_keywords_round_trip() {
        for s in [SleepState::S3, SleepState::S4, SleepState::Sz] {
            let kw = s.sysfs_keyword().unwrap();
            assert_eq!(SleepState::from_sysfs_keyword(kw), Some(s));
        }
        assert_eq!(SleepState::from_sysfs_keyword("standby"), None);
        assert!(SleepState::S0.sysfs_keyword().is_none());
    }
}
