//! Firmware involvement in S-state transitions.
//!
//! §3.1: "Firmware is involved in S-state transitions during boot up and
//! during each Sz enter and exit. During boot up the firmware initialises
//! Sz chipset configurations. During Sz enter and exit the firmware
//! transitions individual devices to their corresponding S-states. [...]
//! During Sz exit, once the chipset state is reinitialised, the firmware
//! passes the control back to the OS."

use core::fmt;

use zombieland_simcore::SimDuration;

use crate::rail::{rail_levels, Rail, RailLevel};
use crate::state::SleepState;

/// Errors from the firmware layer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FirmwareError {
    /// Sz was requested on a platform whose boot firmware never
    /// initialised the zombie chipset configuration (i.e. non-Sz-capable
    /// hardware — the situation of every board on the market today).
    SzNotProvisioned,
    /// A transition was requested from a state whose exit the firmware
    /// does not handle this way (e.g. waking from S0).
    InvalidTransition {
        /// The state the platform is in.
        from: SleepState,
        /// The state that was requested.
        to: SleepState,
    },
}

impl fmt::Display for FirmwareError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FirmwareError::SzNotProvisioned => {
                write!(f, "board firmware lacks Sz chipset provisioning")
            }
            FirmwareError::InvalidTransition { from, to } => {
                write!(f, "firmware cannot transition {from} -> {to}")
            }
        }
    }
}

impl std::error::Error for FirmwareError {}

/// A rail switch the firmware performed, for transition audits.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RailSwitch {
    /// Which rail.
    pub rail: Rail,
    /// Level before.
    pub from: RailLevel,
    /// Level after.
    pub to: RailLevel,
}

/// Outcome of one firmware-sequenced transition.
#[derive(Clone, Debug)]
pub struct Transition {
    /// The state entered.
    pub to: SleepState,
    /// Rail switches performed, in sequencing order.
    pub switches: Vec<RailSwitch>,
    /// How long the firmware + hardware took.
    pub latency: SimDuration,
}

/// The platform firmware (BIOS/UEFI + EC).
#[derive(Clone, Debug)]
pub struct Firmware {
    sz_capable: bool,
    sz_provisioned: bool,
}

impl Firmware {
    /// Firmware of an Sz-capable board (separate CPU/memory power
    /// domains).
    pub fn sz_capable() -> Self {
        Firmware {
            sz_capable: true,
            sz_provisioned: false,
        }
    }

    /// Firmware of a stock board (no Sz support) — what every
    /// commodity server ships today.
    pub fn stock() -> Self {
        Firmware {
            sz_capable: false,
            sz_provisioned: false,
        }
    }

    /// Boot-time initialisation: on Sz-capable boards this sets up the
    /// zombie chipset configuration.
    pub fn boot(&mut self) {
        self.sz_provisioned = self.sz_capable;
    }

    /// Whether Sz can be entered.
    pub fn sz_ready(&self) -> bool {
        self.sz_provisioned
    }

    /// The `ZMBI` capability table this firmware publishes to the OS
    /// (see [`crate::spec`]).
    pub fn sz_table(&self) -> crate::spec::SzTable {
        if self.sz_capable {
            crate::spec::SzTable::sz_capable()
        } else {
            crate::spec::SzTable::stock()
        }
    }

    /// Latency to *enter* a sleeping state from S0 (device quiesce + rail
    /// sequencing). Sz costs the same as S3 plus a small constant for the
    /// extra switch signaling — the paper: "the additional work required
    /// for the actual steps is minimal for Sz as most of the board is
    /// still transitioned to S3".
    pub fn enter_latency(&self, to: SleepState) -> SimDuration {
        match to {
            SleepState::S0 => SimDuration::ZERO,
            SleepState::S3 => SimDuration::from_millis(2_800),
            SleepState::Sz => SimDuration::from_millis(2_800) + SimDuration::from_millis(150),
            SleepState::S4 => SimDuration::from_secs(14),
            SleepState::S5 => SimDuration::from_secs(8),
        }
    }

    /// Latency to *exit* a sleeping state back to S0 (wake, chipset
    /// reinit, control handed back to the OS).
    pub fn exit_latency(&self, from: SleepState) -> SimDuration {
        match from {
            SleepState::S0 => SimDuration::ZERO,
            SleepState::S3 => SimDuration::from_millis(3_600),
            SleepState::Sz => SimDuration::from_millis(3_600) + SimDuration::from_millis(200),
            SleepState::S4 => SimDuration::from_secs(25),
            SleepState::S5 => SimDuration::from_secs(60),
        }
    }

    /// Sequences the rails for a transition latched in PM1 and returns the
    /// audit record.
    pub fn execute(&self, from: SleepState, to: SleepState) -> Result<Transition, FirmwareError> {
        if to == SleepState::Sz && !self.sz_provisioned {
            return Err(FirmwareError::SzNotProvisioned);
        }
        // Enter: only from S0. Exit: only to S0.
        let entering = from == SleepState::S0 && to.is_sleeping();
        let exiting = from.is_sleeping() && to == SleepState::S0;
        if !(entering || exiting) {
            return Err(FirmwareError::InvalidTransition { from, to });
        }
        let before = rail_levels(from);
        let after = rail_levels(to);
        let switches = before
            .iter()
            .zip(after.iter())
            .filter(|((_, b), (_, a))| b != a)
            .map(|(&(rail, b), &(_, a))| RailSwitch {
                rail,
                from: b,
                to: a,
            })
            .collect();
        let latency = if entering {
            self.enter_latency(to)
        } else {
            self.exit_latency(from)
        };
        Ok(Transition {
            to,
            switches,
            latency,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stock_firmware_rejects_sz() {
        let mut fw = Firmware::stock();
        fw.boot();
        assert_eq!(
            fw.execute(SleepState::S0, SleepState::Sz).unwrap_err(),
            FirmwareError::SzNotProvisioned
        );
        // But S3 still works.
        assert!(fw.execute(SleepState::S0, SleepState::S3).is_ok());
    }

    #[test]
    fn sz_needs_boot_provisioning() {
        let mut fw = Firmware::sz_capable();
        assert!(!fw.sz_ready());
        assert!(fw.execute(SleepState::S0, SleepState::Sz).is_err());
        fw.boot();
        assert!(fw.execute(SleepState::S0, SleepState::Sz).is_ok());
    }

    #[test]
    fn sz_enter_switches_cpu_off_but_not_memory() {
        let mut fw = Firmware::sz_capable();
        fw.boot();
        let t = fw.execute(SleepState::S0, SleepState::Sz).unwrap();
        let cpu = t.switches.iter().find(|s| s.rail == Rail::Cpu).unwrap();
        assert_eq!(cpu.to, RailLevel::Off);
        let mem = t.switches.iter().find(|s| s.rail == Rail::Memory).unwrap();
        assert_eq!(mem.to, RailLevel::ActiveIdle);
    }

    #[test]
    fn sz_latency_close_to_s3() {
        let fw = Firmware::sz_capable();
        let s3 = fw.enter_latency(SleepState::S3);
        let sz = fw.enter_latency(SleepState::Sz);
        // "Similar to S3 in latency": within 10%.
        assert!(sz > s3);
        assert!(sz.as_nanos() as f64 / (s3.as_nanos() as f64) < 1.1);
    }

    #[test]
    fn lateral_transitions_rejected() {
        let mut fw = Firmware::sz_capable();
        fw.boot();
        assert!(matches!(
            fw.execute(SleepState::S3, SleepState::Sz),
            Err(FirmwareError::InvalidTransition { .. })
        ));
        assert!(matches!(
            fw.execute(SleepState::S0, SleepState::S0),
            Err(FirmwareError::InvalidTransition { .. })
        ));
    }

    #[test]
    fn wake_restores_all_rails() {
        let mut fw = Firmware::sz_capable();
        fw.boot();
        let t = fw.execute(SleepState::Sz, SleepState::S0).unwrap();
        for s in &t.switches {
            assert_eq!(s.to, RailLevel::On, "{:?}", s.rail);
        }
        assert!(t.latency > SimDuration::ZERO);
    }

    #[test]
    fn deeper_states_wake_slower() {
        let fw = Firmware::sz_capable();
        assert!(fw.exit_latency(SleepState::S3) < fw.exit_latency(SleepState::S4));
        assert!(fw.exit_latency(SleepState::S4) < fw.exit_latency(SleepState::S5));
    }
}
