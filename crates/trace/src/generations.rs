//! Server-generation memory:CPU capacity dataset (Fig. 3).
//!
//! Fig. 3 (after Lim et al. [7, 12]) plots the *normalized* memory : CPU
//! capacity ratio across commodity-server generations from 2005 to 2013.
//! Supply moved against demand: core counts doubled roughly every two
//! years while DIMM density doubled only every three and DIMM-per-channel
//! counts fell, so memory capacity per core dropped ~30 % every two years.
//! This module derives the series from those component trends rather than
//! hard-coding the curve.

/// One server generation's capacity parameters.
#[derive(Clone, Copy, Debug)]
pub struct Generation {
    /// Model year.
    pub year: u16,
    /// Cores per socket (doubling ≈ every 2 years).
    pub cores_per_socket: u32,
    /// Memory channels per socket (pin-limited: near constant).
    pub channels: u32,
    /// DIMMs per channel (declining with signal integrity at speed).
    pub dimms_per_channel: u32,
    /// GiB per DIMM (doubling ≈ every 3 years).
    pub gib_per_dimm: u32,
}

impl Generation {
    /// Memory capacity per core, in GiB.
    pub fn gib_per_core(&self) -> f64 {
        (self.channels * self.dimms_per_channel * self.gib_per_dimm) as f64
            / self.cores_per_socket as f64
    }

    /// Total memory capacity per socket, in GiB.
    pub fn gib_per_socket(&self) -> u32 {
        self.channels * self.dimms_per_channel * self.gib_per_dimm
    }
}

/// The generation with the given model year, if the table covers it.
pub fn by_year(year: u16) -> Option<&'static Generation> {
    GENERATIONS.iter().find(|g| g.year == year)
}

/// The 2005–2013 generation table (DDR2 → DDR3 era).
pub const GENERATIONS: [Generation; 9] = [
    Generation {
        year: 2005,
        cores_per_socket: 2,
        channels: 2,
        dimms_per_channel: 4,
        gib_per_dimm: 2,
    },
    Generation {
        year: 2006,
        cores_per_socket: 2,
        channels: 2,
        dimms_per_channel: 4,
        gib_per_dimm: 2,
    },
    Generation {
        year: 2007,
        cores_per_socket: 4,
        channels: 2,
        dimms_per_channel: 4,
        gib_per_dimm: 2,
    },
    Generation {
        year: 2008,
        cores_per_socket: 4,
        channels: 3,
        dimms_per_channel: 3,
        gib_per_dimm: 2,
    },
    Generation {
        year: 2009,
        cores_per_socket: 6,
        channels: 3,
        dimms_per_channel: 3,
        gib_per_dimm: 2,
    },
    Generation {
        year: 2010,
        cores_per_socket: 8,
        channels: 3,
        dimms_per_channel: 3,
        gib_per_dimm: 4,
    },
    Generation {
        year: 2011,
        cores_per_socket: 10,
        channels: 3,
        dimms_per_channel: 2,
        gib_per_dimm: 4,
    },
    Generation {
        year: 2012,
        cores_per_socket: 12,
        channels: 4,
        dimms_per_channel: 2,
        gib_per_dimm: 4,
    },
    Generation {
        year: 2013,
        cores_per_socket: 16,
        channels: 4,
        dimms_per_channel: 2,
        gib_per_dimm: 4,
    },
];

/// `(year, ratio)` normalized to the 2005 generation — the Fig. 3 series.
pub fn figure3() -> Vec<(u16, f64)> {
    let base = GENERATIONS[0].gib_per_core();
    GENERATIONS
        .iter()
        .map(|g| (g.year, g.gib_per_core() / base))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalized_to_one_at_start() {
        let pts = figure3();
        assert_eq!(pts[0], (2005, 1.0));
    }

    #[test]
    fn capacity_ratio_declines() {
        let pts = figure3();
        // Year-on-year the series may bump (a DIMM density doubling
        // landing), but over any two-year window it declines — the trend
        // Fig. 3 shows.
        for w in pts.windows(3) {
            assert!(w[2].1 <= w[0].1 + 1e-12, "{:?} -> {:?}", w[0], w[2]);
        }
        // Ends well below 0.4, as in Fig. 3.
        assert!(pts.last().unwrap().1 < 0.4, "{:?}", pts.last());
    }

    #[test]
    fn roughly_thirty_percent_drop_per_two_years() {
        // The ITRS-derived projection the paper quotes. Check the average
        // 2-year decay over the DDR3 era is in the 20–45 % band.
        let pts = figure3();
        let mut drops = Vec::new();
        for w in pts.windows(3) {
            if w[2].1 > 0.0 {
                drops.push(1.0 - w[2].1 / w[0].1);
            }
        }
        let avg = drops.iter().sum::<f64>() / drops.len() as f64;
        assert!((0.15..0.45).contains(&avg), "avg 2-year drop {avg}");
    }

    #[test]
    fn year_lookup_and_socket_capacity() {
        assert_eq!(by_year(2005).unwrap().gib_per_socket(), 16);
        assert_eq!(by_year(2013).unwrap().gib_per_socket(), 32);
        assert!(by_year(2004).is_none());
        assert!(by_year(2014).is_none());
    }

    #[test]
    fn channels_nearly_constant() {
        // ITRS: pin counts per socket stay flat, so channel counts do too.
        for g in GENERATIONS {
            assert!((2..=4).contains(&g.channels));
        }
    }
}
