//! AWS `m`-family instance dataset (Fig. 2).
//!
//! The paper plots the memory (GiB) : CPU (GHz) ratio of every
//! `m<n>.<size>` instance AWS introduced between 2006 and 2016 and reads
//! off a clear trend: memory demand grew roughly twice as fast as CPU
//! demand. The table below reconstructs that dataset from the public
//! launch history of the general-purpose family (CPU GHz taken as
//! vCPUs × sustained clock of the launch-generation part, the same
//! normalization the figure uses). Entries are approximate where AWS
//! never published exact clocks; the *trend* is what Fig. 2 argues from.

/// One `m`-family instance type at its introduction.
#[derive(Clone, Copy, Debug)]
pub struct Instance {
    /// Introduction year.
    pub year: u16,
    /// Instance name.
    pub name: &'static str,
    /// Memory in GiB.
    pub memory_gib: f64,
    /// Aggregate CPU in GHz (vCPUs × clock).
    pub cpu_ghz: f64,
}

impl Instance {
    /// The Fig. 2 metric.
    pub fn mem_cpu_ratio(&self) -> f64 {
        self.memory_gib / self.cpu_ghz
    }
}

/// The reconstructed `m<n>.<size>` launch dataset, 2006–2016.
pub const INSTANCES: [Instance; 16] = [
    Instance {
        year: 2006,
        name: "m1.small",
        memory_gib: 1.7,
        cpu_ghz: 1.7,
    },
    Instance {
        year: 2007,
        name: "m1.large",
        memory_gib: 7.5,
        cpu_ghz: 6.8,
    },
    Instance {
        year: 2007,
        name: "m1.xlarge",
        memory_gib: 15.0,
        cpu_ghz: 13.6,
    },
    Instance {
        year: 2009,
        name: "m2.xlarge",
        memory_gib: 17.1,
        cpu_ghz: 8.8,
    },
    Instance {
        year: 2009,
        name: "m2.2xlarge",
        memory_gib: 34.2,
        cpu_ghz: 17.6,
    },
    Instance {
        year: 2010,
        name: "m2.4xlarge",
        memory_gib: 68.4,
        cpu_ghz: 35.2,
    },
    Instance {
        year: 2012,
        name: "m1.medium",
        memory_gib: 3.75,
        cpu_ghz: 2.0,
    },
    Instance {
        year: 2012,
        name: "m3.xlarge",
        memory_gib: 15.0,
        cpu_ghz: 10.0,
    },
    Instance {
        year: 2012,
        name: "m3.2xlarge",
        memory_gib: 30.0,
        cpu_ghz: 20.0,
    },
    Instance {
        year: 2014,
        name: "m3.medium",
        memory_gib: 3.75,
        cpu_ghz: 2.5,
    },
    Instance {
        year: 2014,
        name: "m3.large",
        memory_gib: 7.5,
        cpu_ghz: 5.0,
    },
    Instance {
        year: 2015,
        name: "m4.large",
        memory_gib: 8.0,
        cpu_ghz: 4.8,
    },
    Instance {
        year: 2015,
        name: "m4.xlarge",
        memory_gib: 16.0,
        cpu_ghz: 9.6,
    },
    Instance {
        year: 2015,
        name: "m4.4xlarge",
        memory_gib: 64.0,
        cpu_ghz: 38.4,
    },
    Instance {
        year: 2016,
        name: "m4.16xlarge",
        memory_gib: 256.0,
        cpu_ghz: 147.2,
    },
    Instance {
        year: 2016,
        name: "m4.10xlarge",
        memory_gib: 160.0,
        cpu_ghz: 96.0,
    },
];

/// `(year, mean ratio of instances introduced that year)`, sorted — the
/// Fig. 2 series.
pub fn figure2() -> Vec<(u16, f64)> {
    let mut years: Vec<u16> = INSTANCES.iter().map(|i| i.year).collect();
    years.sort_unstable();
    years.dedup();
    years
        .into_iter()
        .map(|y| {
            let group: Vec<f64> = INSTANCES
                .iter()
                .filter(|i| i.year == y)
                .map(Instance::mem_cpu_ratio)
                .collect();
            (y, group.iter().sum::<f64>() / group.len() as f64)
        })
        .collect()
}

/// Least-squares slope of the Fig. 2 series in ratio/year.
pub fn trend_slope() -> f64 {
    let pts = figure2();
    let n = pts.len() as f64;
    let mx = pts.iter().map(|(y, _)| *y as f64).sum::<f64>() / n;
    let my = pts.iter().map(|(_, r)| r).sum::<f64>() / n;
    let cov: f64 = pts.iter().map(|(y, r)| (*y as f64 - mx) * (r - my)).sum();
    let var: f64 = pts.iter().map(|(y, _)| (*y as f64 - mx).powi(2)).sum();
    cov / var
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios_are_positive_and_sane() {
        for i in INSTANCES {
            let r = i.mem_cpu_ratio();
            assert!(r > 0.2 && r < 5.0, "{}: {r}", i.name);
        }
    }

    #[test]
    fn memory_demand_outpaces_cpu() {
        // The paper's claim: "the rate of growth for memory demand has
        // been approximately 2X of CPU demand". The late-period ratio is
        // at least ~1.7× the early-period ratio.
        let pts = figure2();
        let early = pts[0].1;
        let late = pts.last().unwrap().1;
        assert!(late / early > 1.5, "early {early}, late {late}");
        assert!(trend_slope() > 0.0);
    }

    #[test]
    fn figure2_is_sorted_by_year() {
        let pts = figure2();
        assert!(pts.windows(2).all(|w| w[0].0 < w[1].0));
        assert!(pts.len() >= 7);
    }
}
