//! Trace interchange: save and reload cluster traces as JSON.
//!
//! Synthetic traces are deterministic from a seed, but exporting lets a
//! run be archived with its exact inputs, edited by hand for what-if
//! experiments, or replaced wholesale by a trace converted from the real
//! Google dataset.

use zombieland_simcore::{SimDuration, SimTime};

use crate::google::{ClusterTrace, TaskSpec, TraceConfig};
use crate::json::{self, Value};

/// Errors when reloading a trace.
#[derive(Debug)]
pub enum ImportError {
    /// Malformed JSON.
    Json(json::ParseError),
    /// Structurally valid but semantically impossible (negative demand,
    /// tasks ending before they start, ...).
    Invalid(&'static str),
}

impl core::fmt::Display for ImportError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ImportError::Json(e) => write!(f, "json: {e}"),
            ImportError::Invalid(why) => write!(f, "invalid trace: {why}"),
        }
    }
}

impl std::error::Error for ImportError {}

impl From<json::ParseError> for ImportError {
    fn from(e: json::ParseError) -> Self {
        ImportError::Json(e)
    }
}

/// Field accessors that turn missing/mistyped fields into [`ImportError`].
fn req_u64(v: &Value, key: &'static str) -> Result<u64, ImportError> {
    v.get(key)
        .and_then(Value::as_u64)
        .ok_or(ImportError::Invalid(key))
}

fn req_f64(v: &Value, key: &'static str) -> Result<f64, ImportError> {
    v.get(key)
        .and_then(Value::as_f64)
        .ok_or(ImportError::Invalid(key))
}

impl ClusterTrace {
    /// Serializes the trace (config + every task) to JSON.
    pub fn to_json(&self) -> String {
        let task_value = |t: &TaskSpec| {
            Value::Object(vec![
                ("job".into(), Value::UInt(t.job as u64)),
                ("index".into(), Value::UInt(t.index as u64)),
                ("start_ns".into(), Value::UInt(t.start.as_nanos())),
                ("end_ns".into(), Value::UInt(t.end.as_nanos())),
                ("cpu_booked".into(), Value::Float(t.cpu_booked)),
                ("mem_booked".into(), Value::Float(t.mem_booked)),
                ("cpu_used".into(), Value::Float(t.cpu_used)),
                ("mem_used".into(), Value::Float(t.mem_used)),
            ])
        };
        let doc = Value::Object(vec![
            ("servers".into(), Value::UInt(self.config().servers as u64)),
            (
                "duration_ns".into(),
                Value::UInt(self.config().duration.as_nanos()),
            ),
            ("seed".into(), Value::UInt(self.config().seed)),
            (
                "mem_cpu_ratio".into(),
                Value::Float(self.config().mem_cpu_ratio),
            ),
            (
                "avg_utilization".into(),
                Value::Float(self.config().avg_utilization),
            ),
            (
                "tasks".into(),
                Value::Array(self.tasks().iter().map(task_value).collect()),
            ),
        ]);
        doc.pretty()
    }

    /// Reloads a trace from [`ClusterTrace::to_json`] output (or any
    /// hand-written/converted trace in the same format), validating it.
    pub fn from_json(text: &str) -> Result<ClusterTrace, ImportError> {
        let doc = json::parse(text)?;
        let servers = req_u64(&doc, "servers")?;
        if servers == 0 {
            return Err(ImportError::Invalid("zero servers"));
        }
        let servers =
            u32::try_from(servers).map_err(|_| ImportError::Invalid("server count too large"))?;
        let duration_ns = req_u64(&doc, "duration_ns")?;
        if duration_ns == 0 {
            return Err(ImportError::Invalid("zero duration"));
        }
        let task_values = doc
            .get("tasks")
            .and_then(Value::as_array)
            .ok_or(ImportError::Invalid("tasks"))?;
        let mut tasks = Vec::with_capacity(task_values.len());
        for t in task_values {
            let start_ns = req_u64(t, "start_ns")?;
            let end_ns = req_u64(t, "end_ns")?;
            if end_ns <= start_ns {
                return Err(ImportError::Invalid("task ends before it starts"));
            }
            let cpu_booked = req_f64(t, "cpu_booked")?;
            let mem_booked = req_f64(t, "mem_booked")?;
            let cpu_used = req_f64(t, "cpu_used")?;
            let mem_used = req_f64(t, "mem_used")?;
            if !(0.0..=1.0).contains(&cpu_booked) || !(0.0..=1.0).contains(&mem_booked) {
                return Err(ImportError::Invalid("booking outside one machine"));
            }
            if cpu_used > cpu_booked + 1e-9 || mem_used > mem_booked + 1e-9 {
                return Err(ImportError::Invalid("usage exceeds booking"));
            }
            tasks.push(TaskSpec {
                job: req_u64(t, "job")? as u32,
                index: req_u64(t, "index")? as u32,
                start: SimTime::from_nanos(start_ns),
                end: SimTime::from_nanos(end_ns),
                cpu_booked,
                mem_booked,
                cpu_used,
                mem_used,
            });
        }
        Ok(ClusterTrace::from_parts(
            TraceConfig {
                servers,
                duration: SimDuration::from_nanos(duration_ns),
                seed: req_u64(&doc, "seed")?,
                mem_cpu_ratio: req_f64(&doc, "mem_cpu_ratio")?,
                avg_utilization: req_f64(&doc, "avg_utilization")?,
            },
            tasks,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_preserves_everything() {
        let trace = ClusterTrace::generate(TraceConfig::small(3));
        let json = trace.to_json();
        let back = ClusterTrace::from_json(&json).unwrap();
        assert_eq!(back.tasks().len(), trace.tasks().len());
        assert_eq!(back.config().servers, trace.config().servers);
        for (a, b) in trace.tasks().iter().zip(back.tasks()) {
            assert_eq!(a.start, b.start);
            assert_eq!(a.end, b.end);
            assert_eq!(a.cpu_booked, b.cpu_booked);
            assert_eq!(a.mem_used, b.mem_used);
        }
        // And it drives the same events.
        assert_eq!(trace.events_len(), back.events_len());
    }

    #[test]
    fn validation_rejects_nonsense() {
        let trace = ClusterTrace::generate(TraceConfig::small(4));
        let mut json = trace.to_json();
        json = json.replacen("\"servers\": 100", "\"servers\": 0", 1);
        assert!(matches!(
            ClusterTrace::from_json(&json),
            Err(ImportError::Invalid("zero servers"))
        ));
        assert!(matches!(
            ClusterTrace::from_json("{not json"),
            Err(ImportError::Json(_))
        ));
    }

    #[test]
    fn rejects_usage_above_booking() {
        let json = r#"{
            "servers": 1, "duration_ns": 1000, "seed": 0,
            "mem_cpu_ratio": 1.0, "avg_utilization": 0.5,
            "tasks": [{
                "job": 0, "index": 0, "start_ns": 0, "end_ns": 10,
                "cpu_booked": 0.1, "mem_booked": 0.1,
                "cpu_used": 0.5, "mem_used": 0.05
            }]
        }"#;
        assert!(matches!(
            ClusterTrace::from_json(json),
            Err(ImportError::Invalid("usage exceeds booking"))
        ));
    }

    #[test]
    fn missing_field_is_reported() {
        let json = r#"{ "servers": 2, "duration_ns": 1000 }"#;
        assert!(matches!(
            ClusterTrace::from_json(json),
            Err(ImportError::Invalid("tasks"))
        ));
    }
}
