//! Trace interchange: save and reload cluster traces as JSON.
//!
//! Synthetic traces are deterministic from a seed, but exporting lets a
//! run be archived with its exact inputs, edited by hand for what-if
//! experiments, or replaced wholesale by a trace converted from the real
//! Google dataset.

use serde::{Deserialize, Serialize};
use zombieland_simcore::{SimDuration, SimTime};

use crate::google::{ClusterTrace, TaskSpec, TraceConfig};

#[derive(Serialize, Deserialize)]
struct TaskDto {
    job: u32,
    index: u32,
    start_ns: u64,
    end_ns: u64,
    cpu_booked: f64,
    mem_booked: f64,
    cpu_used: f64,
    mem_used: f64,
}

#[derive(Serialize, Deserialize)]
struct TraceDto {
    servers: u32,
    duration_ns: u64,
    seed: u64,
    mem_cpu_ratio: f64,
    avg_utilization: f64,
    tasks: Vec<TaskDto>,
}

/// Errors when reloading a trace.
#[derive(Debug)]
pub enum ImportError {
    /// Malformed JSON.
    Json(serde_json::Error),
    /// Structurally valid but semantically impossible (negative demand,
    /// tasks ending before they start, ...).
    Invalid(&'static str),
}

impl core::fmt::Display for ImportError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ImportError::Json(e) => write!(f, "json: {e}"),
            ImportError::Invalid(why) => write!(f, "invalid trace: {why}"),
        }
    }
}

impl std::error::Error for ImportError {}

impl From<serde_json::Error> for ImportError {
    fn from(e: serde_json::Error) -> Self {
        ImportError::Json(e)
    }
}

impl ClusterTrace {
    /// Serializes the trace (config + every task) to JSON.
    pub fn to_json(&self) -> String {
        let dto = TraceDto {
            servers: self.config().servers,
            duration_ns: self.config().duration.as_nanos(),
            seed: self.config().seed,
            mem_cpu_ratio: self.config().mem_cpu_ratio,
            avg_utilization: self.config().avg_utilization,
            tasks: self
                .tasks()
                .iter()
                .map(|t| TaskDto {
                    job: t.job,
                    index: t.index,
                    start_ns: t.start.as_nanos(),
                    end_ns: t.end.as_nanos(),
                    cpu_booked: t.cpu_booked,
                    mem_booked: t.mem_booked,
                    cpu_used: t.cpu_used,
                    mem_used: t.mem_used,
                })
                .collect(),
        };
        serde_json::to_string_pretty(&dto).expect("plain data serializes")
    }

    /// Reloads a trace from [`ClusterTrace::to_json`] output (or any
    /// hand-written/converted trace in the same format), validating it.
    pub fn from_json(json: &str) -> Result<ClusterTrace, ImportError> {
        let dto: TraceDto = serde_json::from_str(json)?;
        if dto.servers == 0 {
            return Err(ImportError::Invalid("zero servers"));
        }
        if dto.duration_ns == 0 {
            return Err(ImportError::Invalid("zero duration"));
        }
        let mut tasks = Vec::with_capacity(dto.tasks.len());
        for t in dto.tasks {
            if t.end_ns <= t.start_ns {
                return Err(ImportError::Invalid("task ends before it starts"));
            }
            if !(0.0..=1.0).contains(&t.cpu_booked) || !(0.0..=1.0).contains(&t.mem_booked) {
                return Err(ImportError::Invalid("booking outside one machine"));
            }
            if t.cpu_used > t.cpu_booked + 1e-9 || t.mem_used > t.mem_booked + 1e-9 {
                return Err(ImportError::Invalid("usage exceeds booking"));
            }
            tasks.push(TaskSpec {
                job: t.job,
                index: t.index,
                start: SimTime::from_nanos(t.start_ns),
                end: SimTime::from_nanos(t.end_ns),
                cpu_booked: t.cpu_booked,
                mem_booked: t.mem_booked,
                cpu_used: t.cpu_used,
                mem_used: t.mem_used,
            });
        }
        Ok(ClusterTrace::from_parts(
            TraceConfig {
                servers: dto.servers,
                duration: SimDuration::from_nanos(dto.duration_ns),
                seed: dto.seed,
                mem_cpu_ratio: dto.mem_cpu_ratio,
                avg_utilization: dto.avg_utilization,
            },
            tasks,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_preserves_everything() {
        let trace = ClusterTrace::generate(TraceConfig::small(3));
        let json = trace.to_json();
        let back = ClusterTrace::from_json(&json).unwrap();
        assert_eq!(back.tasks().len(), trace.tasks().len());
        assert_eq!(back.config().servers, trace.config().servers);
        for (a, b) in trace.tasks().iter().zip(back.tasks()) {
            assert_eq!(a.start, b.start);
            assert_eq!(a.end, b.end);
            assert_eq!(a.cpu_booked, b.cpu_booked);
            assert_eq!(a.mem_used, b.mem_used);
        }
        // And it drives the same events.
        assert_eq!(trace.events().len(), back.events().len());
    }

    #[test]
    fn validation_rejects_nonsense() {
        let trace = ClusterTrace::generate(TraceConfig::small(4));
        let mut json = trace.to_json();
        json = json.replacen("\"servers\": 100", "\"servers\": 0", 1);
        assert!(matches!(
            ClusterTrace::from_json(&json),
            Err(ImportError::Invalid("zero servers"))
        ));
        assert!(matches!(
            ClusterTrace::from_json("{not json"),
            Err(ImportError::Json(_))
        ));
    }

    #[test]
    fn rejects_usage_above_booking() {
        let json = r#"{
            "servers": 1, "duration_ns": 1000, "seed": 0,
            "mem_cpu_ratio": 1.0, "avg_utilization": 0.5,
            "tasks": [{
                "job": 0, "index": 0, "start_ns": 0, "end_ns": 10,
                "cpu_booked": 0.1, "mem_booked": 0.1,
                "cpu_used": 0.5, "mem_used": 0.05
            }]
        }"#;
        assert!(matches!(
            ClusterTrace::from_json(json),
            Err(ImportError::Invalid("usage exceeds booking"))
        ));
    }
}
