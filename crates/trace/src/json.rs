//! A minimal JSON value model, parser and pretty-printer.
//!
//! The trace interchange format ([`crate::export`]) used to lean on
//! `serde_json`, but the workspace is std-only, so this module provides
//! the small slice needed: parse any RFC 8259 document into a [`Value`],
//! and print values in the same two-space-indented layout `serde_json`'s
//! pretty printer uses (so previously exported traces and tests keep
//! working unchanged).

use core::fmt;

/// A parsed JSON value.
///
/// Numbers keep two representations: non-negative integers stay exact in
/// [`Value::UInt`] (u64 seeds must round-trip bit-for-bit; f64 only holds
/// 53 bits), everything else becomes [`Value::Float`].
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer literal.
    UInt(u64),
    /// Any other number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, in insertion order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a u64, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::UInt(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as an f64 (integers convert).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::UInt(v) => Some(*v as f64),
            Value::Float(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Renders with two-space indentation (serde_json pretty layout).
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out
    }

    /// Renders without any whitespace — one line, suitable for JSONL
    /// streams where each document must stay newline-free.
    pub fn compact(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::UInt(v) => out.push_str(&v.to_string()),
            Value::Float(v) => write_f64(out, *v),
            Value::Str(s) => write_string(out, s),
            Value::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            Value::Object(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(out, k);
                    out.push(':');
                    v.write_compact(out);
                }
                out.push('}');
            }
        }
    }

    fn write(&self, out: &mut String, depth: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::UInt(v) => out.push_str(&v.to_string()),
            Value::Float(v) => write_f64(out, *v),
            Value::Str(s) => write_string(out, s),
            Value::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    out.push_str(if i == 0 { "\n" } else { ",\n" });
                    indent(out, depth + 1);
                    item.write(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push(']');
            }
            Value::Object(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    out.push_str(if i == 0 { "\n" } else { ",\n" });
                    indent(out, depth + 1);
                    write_string(out, k);
                    out.push_str(": ");
                    v.write(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push('}');
            }
        }
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        // Rust's shortest round-trip formatting; force a decimal point so
        // the value re-parses as a float.
        let s = v.to_string();
        out.push_str(&s);
        if !s.contains(['.', 'e', 'E']) {
            out.push_str(".0");
        }
    } else {
        // JSON has no Inf/NaN; null is serde_json's lossy fallback too.
        out.push_str("null");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure, with the byte offset it occurred at.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the failure.
    pub offset: usize,
    /// What went wrong.
    pub msg: &'static str,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.msg, self.offset)
    }
}

impl std::error::Error for ParseError {}

/// Parses one JSON document (trailing whitespace allowed, nothing else).
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &'static str) -> ParseError {
        ParseError {
            offset: self.pos,
            msg,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8, msg: &'static str) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(msg))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{', "expected '{'")?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':', "expected ':'")?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"', "expected '\"'")?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not needed by the trace
                            // format; map lone surrogates to the
                            // replacement character like lossy decoders do.
                            s.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // byte sequence is valid).
                    let rest = &self.bytes[self.pos..];
                    let ch_len = match rest[0] {
                        0x00..=0x7f => 1,
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        _ => 4,
                    };
                    let chunk = std::str::from_utf8(&rest[..ch_len])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    s.push_str(chunk);
                    self.pos += ch_len;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut float = false;
        if self.peek() == Some(b'.') {
            float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !float {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Value::UInt(v));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_mixed_document() {
        let v = Value::Object(vec![
            ("n".into(), Value::UInt(u64::MAX)),
            ("f".into(), Value::Float(0.125)),
            ("whole".into(), Value::Float(3.0)),
            ("s".into(), Value::Str("a\"b\\c\nd".into())),
            (
                "a".into(),
                Value::Array(vec![Value::Null, Value::Bool(true), Value::UInt(0)]),
            ),
            ("empty".into(), Value::Array(vec![])),
        ]);
        let text = v.pretty();
        let back = parse(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn u64_seeds_survive_exactly() {
        // 2^53 + 1 is not representable in f64 — the UInt path must keep it.
        let v = Value::UInt((1 << 53) + 1);
        assert_eq!(parse(&v.pretty()).unwrap().as_u64(), Some((1 << 53) + 1));
    }

    #[test]
    fn floats_reparse_as_floats() {
        let text = Value::Float(2.0).pretty();
        assert_eq!(text, "2.0");
        assert_eq!(parse(&text).unwrap(), Value::Float(2.0));
    }

    #[test]
    fn pretty_matches_serde_layout() {
        let v = Value::Object(vec![
            ("servers".into(), Value::UInt(100)),
            ("tasks".into(), Value::Array(vec![Value::UInt(1)])),
        ]);
        assert_eq!(
            v.pretty(),
            "{\n  \"servers\": 100,\n  \"tasks\": [\n    1\n  ]\n}"
        );
    }

    #[test]
    fn compact_is_single_line_and_round_trips() {
        let v = Value::Object(vec![
            ("n".into(), Value::UInt(7)),
            ("s".into(), Value::Str("a\nb".into())),
            (
                "a".into(),
                Value::Array(vec![Value::Bool(false), Value::Null]),
            ),
            ("empty".into(), Value::Object(vec![])),
        ]);
        let text = v.compact();
        assert!(!text.contains('\n'));
        assert_eq!(
            text,
            "{\"n\":7,\"s\":\"a\\nb\",\"a\":[false,null],\"empty\":{}}"
        );
        assert_eq!(parse(&text).unwrap(), v);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse("{not json").is_err());
        assert!(parse("").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\": 1} trailing").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn parses_negatives_and_exponents() {
        assert_eq!(parse("-3.5").unwrap(), Value::Float(-3.5));
        assert_eq!(parse("1e3").unwrap(), Value::Float(1000.0));
        assert_eq!(parse("42").unwrap(), Value::UInt(42));
    }
}
