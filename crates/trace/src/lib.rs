//! Workload traces and the motivation datasets.
//!
//! Three data sources feed the paper's evaluation and motivation:
//!
//! - [`aws`] — the memory:CPU ratio of AWS `m<n>.<size>` instances over
//!   2006–2016 (Fig. 2): *demand* for memory grew ~2× faster than for CPU.
//! - [`generations`] — normalized memory:CPU *capacity* ratio of server
//!   generations 2005–2013 (Fig. 3): *supply* moved the opposite way.
//! - [`google`] — a synthetic generator statistically shaped like the
//!   Google cluster traces the paper replays (12 583 servers, 29 days;
//!   jobs → tasks with booked vs. used CPU/memory), plus the paper's
//!   "modified" transform where memory demand is twice CPU demand.
//!
//! The real Google traces are hundreds of gigabytes and not redistributable
//! here; the generator reproduces the properties the energy evaluation is
//! sensitive to — heavy-tailed task durations, booked-vs-used gaps, diurnal
//! load, and the memory:CPU demand ratio — with a deterministic seed.

pub mod aws;
pub mod export;
pub mod generations;
pub mod google;
pub mod json;

pub use google::{ClusterTrace, TaskSpec, TraceConfig};
